#ifndef LUTDLA_BASELINES_NVDLA_MODEL_H
#define LUTDLA_BASELINES_NVDLA_MODEL_H

/**
 * @file
 * NVDLA-like performance model, following the structure of the official
 * nvdla/hw performance spreadsheet the paper uses ([44]): the convolution
 * MAC engine processes `atomic_c` input channels x `atomic_k` output
 * channels per cycle, so a GEMM-lowered layer takes
 * ceil(K/atomic_c) * ceil(N/atomic_k) * M cycles at 100% pipe efficiency,
 * degraded by the channel-rounding losses the atomics imply.
 */

#include <vector>

#include "sim/config.h"

namespace lutdla::baselines {

/** NVDLA engine configuration. */
struct NvdlaConfig
{
    std::string name = "nvdla";
    int64_t atomic_c = 8;   ///< input-channel lanes per cycle
    int64_t atomic_k = 4;   ///< output channels per cycle
    double freq_hz = 1e9;
    double dram_bytes_per_sec = 25.6e9;
    /**
     * Average MAC-pipe efficiency beyond channel rounding (CBUF misses,
     * weight-fetch bubbles, stripe scheduling). Calibrated against the
     * official nvdla/hw performance sheet: the large config sustains
     * ~55% on ResNet-50, the small config ~90%.
     */
    double pipe_efficiency = 1.0;

    int64_t macsPerCycle() const { return atomic_c * atomic_k; }
    double peakGops() const
    {
        return 2.0 * static_cast<double>(macsPerCycle()) * freq_hz * 1e-9;
    }
};

/** The two benchmark configurations of Table VIII. */
NvdlaConfig nvdlaSmall();   ///< 32 MACs  -> 64 GOPS @ 1 GHz
NvdlaConfig nvdlaLarge();   ///< 1024 MACs -> 2048 GOPS @ 1 GHz

/** Timing result. */
struct NvdlaStats
{
    uint64_t total_cycles = 0;
    double effective_macs = 0.0;
    double dram_bytes = 0.0;

    double seconds(const NvdlaConfig &cfg) const
    {
        return static_cast<double>(total_cycles) / cfg.freq_hz;
    }
    double achievedGops(const NvdlaConfig &cfg) const
    {
        const double s = seconds(cfg);
        return s > 0 ? 2.0 * effective_macs / s * 1e-9 : 0.0;
    }
    NvdlaStats &
    operator+=(const NvdlaStats &rhs)
    {
        total_cycles += rhs.total_cycles;
        effective_macs += rhs.effective_macs;
        dram_bytes += rhs.dram_bytes;
        return *this;
    }
};

/** NVDLA-like GEMM/conv timing model. */
class NvdlaModel
{
  public:
    explicit NvdlaModel(NvdlaConfig config) : config_(config) {}

    NvdlaStats simulateGemm(const sim::GemmShape &gemm) const;
    NvdlaStats simulateNetwork(
        const std::vector<sim::GemmShape> &gemms) const;

    const NvdlaConfig &config() const { return config_; }

  private:
    NvdlaConfig config_;
};

} // namespace lutdla::baselines

#endif // LUTDLA_BASELINES_NVDLA_MODEL_H
