#include "baselines/pqa_model.h"

#include "util/logging.h"

namespace lutdla::baselines {

PqaStats
PqaModel::simulateGemm(const sim::GemmShape &gemm) const
{
    const PqaConfig &cfg = config_;
    LUTDLA_CHECK(gemm.m > 0 && gemm.k > 0 && gemm.n > 0, "bad GEMM");
    const int64_t nc = (gemm.k + cfg.v - 1) / cfg.v;

    PqaStats stats;
    stats.effective_macs = gemm.macs();

    // Sequential centroid scan: no dPE pipelining in PQA's CAM-style
    // comparison, so every (row, subspace) costs c / codebook_parallel.
    stats.similarity_cycles = static_cast<uint64_t>(
        static_cast<double>(gemm.m) * static_cast<double>(nc) *
        static_cast<double>(cfg.c) /
        static_cast<double>(cfg.codebook_parallel));

    // Lookup phase after similarity completes (no overlap).
    stats.lookup_cycles = static_cast<uint64_t>(
        static_cast<double>(gemm.m) * static_cast<double>(nc) *
        static_cast<double>(gemm.n) / static_cast<double>(cfg.banks));

    // Whole-layer LUT + centroids resident on chip.
    const double lut_bytes = static_cast<double>(cfg.c) *
                             static_cast<double>(nc) *
                             static_cast<double>(gemm.n) *
                             cfg.lut_entry_bits / 8.0;
    const double centroid_store =
        static_cast<double>(cfg.c) * static_cast<double>(cfg.v) *
        static_cast<double>(cfg.centroid_bytes);
    stats.onchip_bytes = lut_bytes + centroid_store;

    // Loading that table stalls compute (the "compute pause" the paper
    // criticizes).
    stats.load_cycles = static_cast<uint64_t>(
        lut_bytes / (cfg.dram_bytes_per_sec / cfg.freq_hz));
    return stats;
}

} // namespace lutdla::baselines
