#ifndef LUTDLA_BASELINES_PQA_MODEL_H
#define LUTDLA_BASELINES_PQA_MODEL_H

/**
 * @file
 * PQA-style LUT accelerator model (Table IX comparison).
 *
 * PQA (AbouElhamayed et al., TRETS'24) keeps the *entire* layer's
 * precomputed table on chip — no tiling, no ping-pong reuse — and runs the
 * similarity and lookup phases back-to-back without pipelining:
 *   similarity:  M * Nc * c cycles (sequential centroid comparisons),
 *   lookup:      M * Nc * N / banks cycles,
 * with the whole-layer LUT (12-bit entries) plus the centroid store
 * resident in on-chip memory. Reproduces the paper's published
 * 6912.25 KB / 7864k-cycle point for GEMM 512x768x768, v=4, c=32.
 */

#include "sim/config.h"

namespace lutdla::baselines {

/** PQA hardware parameters. */
struct PqaConfig
{
    int64_t v = 4;
    int64_t c = 32;
    int64_t banks = 16;             ///< parallel LUT banks
    int64_t codebook_parallel = 1;  ///< concurrent codebook comparisons
    double lut_entry_bits = 12.0;   ///< PQA stores 12-bit psums
    int64_t centroid_bytes = 2;     ///< FP16 centroid storage
    double freq_hz = 300e6;
    double dram_bytes_per_sec = 25.6e9;
};

/** Timing/memory result of one PQA run. */
struct PqaStats
{
    uint64_t similarity_cycles = 0;
    uint64_t lookup_cycles = 0;
    uint64_t load_cycles = 0;       ///< whole-layer LUT load (compute pause)
    double onchip_bytes = 0.0;
    double effective_macs = 0.0;

    /** Compute-phase cycles (the paper's Table IX number). */
    uint64_t computeCycles() const
    {
        return similarity_cycles + lookup_cycles;
    }

    /** End-to-end cycles including the initial LUT load pause. */
    uint64_t totalCycles() const
    {
        return computeCycles() + load_cycles;
    }
};

/** PQA timing/memory model. */
class PqaModel
{
  public:
    explicit PqaModel(PqaConfig config) : config_(config) {}

    PqaStats simulateGemm(const sim::GemmShape &gemm) const;

    const PqaConfig &config() const { return config_; }

  private:
    PqaConfig config_;
};

} // namespace lutdla::baselines

#endif // LUTDLA_BASELINES_PQA_MODEL_H
