#include "baselines/nvdla_model.h"

#include <algorithm>

#include "util/logging.h"

namespace lutdla::baselines {

NvdlaConfig
nvdlaSmall()
{
    NvdlaConfig cfg;
    cfg.name = "NVDLA-Small";
    cfg.atomic_c = 8;
    cfg.atomic_k = 4;
    cfg.freq_hz = 1e9;
    cfg.pipe_efficiency = 0.90;
    return cfg;
}

NvdlaConfig
nvdlaLarge()
{
    NvdlaConfig cfg;
    cfg.name = "NVDLA-Large";
    cfg.atomic_c = 32;
    cfg.atomic_k = 32;
    cfg.freq_hz = 1e9;
    cfg.pipe_efficiency = 0.55;
    return cfg;
}

NvdlaStats
NvdlaModel::simulateGemm(const sim::GemmShape &gemm) const
{
    const NvdlaConfig &cfg = config_;
    LUTDLA_CHECK(gemm.m > 0 && gemm.k > 0 && gemm.n > 0, "bad GEMM");

    const int64_t c_steps = (gemm.k + cfg.atomic_c - 1) / cfg.atomic_c;
    const int64_t k_steps = (gemm.n + cfg.atomic_k - 1) / cfg.atomic_k;

    NvdlaStats stats;
    stats.effective_macs = gemm.macs();
    // One output stripe per cycle: the engine walks M pixels for every
    // (atomic_c, atomic_k) step pair; weight fetch is pipelined by the
    // CBUF and costs a small per-stripe overhead.
    const double stripe_overhead = 8.0;
    stats.total_cycles = static_cast<uint64_t>(
        (static_cast<double>(gemm.m) + stripe_overhead) *
        static_cast<double>(c_steps) * static_cast<double>(k_steps) /
        cfg.pipe_efficiency);

    // DRAM: weights + activations + outputs, INT8.
    const double bw_limited_cycles =
        (static_cast<double>(gemm.k) * gemm.n +
         static_cast<double>(gemm.m) * gemm.k +
         static_cast<double>(gemm.m) * gemm.n) /
        (cfg.dram_bytes_per_sec / cfg.freq_hz);
    stats.total_cycles = std::max(
        stats.total_cycles, static_cast<uint64_t>(bw_limited_cycles));
    stats.dram_bytes = static_cast<double>(gemm.k) * gemm.n +
                       static_cast<double>(gemm.m) * gemm.k +
                       static_cast<double>(gemm.m) * gemm.n;
    return stats;
}

NvdlaStats
NvdlaModel::simulateNetwork(const std::vector<sim::GemmShape> &gemms) const
{
    NvdlaStats total;
    for (const auto &g : gemms)
        total += simulateGemm(g);
    return total;
}

} // namespace lutdla::baselines
