#include "baselines/systolic.h"

#include <algorithm>

#include "util/logging.h"

namespace lutdla::baselines {

SystolicStats
SystolicSimulator::simulateGemm(const sim::GemmShape &gemm) const
{
    const SystolicConfig &cfg = config_;
    LUTDLA_CHECK(gemm.m > 0 && gemm.k > 0 && gemm.n > 0, "bad GEMM");

    const int64_t tiles_k = (gemm.k + cfg.rows - 1) / cfg.rows;
    const int64_t tiles_n = (gemm.n + cfg.cols - 1) / cfg.cols;
    const double bw_per_cycle = cfg.dram_bytes_per_sec / cfg.freq_hz;
    const double tile_load_bytes =
        static_cast<double>(cfg.rows * cfg.cols * cfg.elem_bytes);
    const double tile_load_cycles = tile_load_bytes / bw_per_cycle;

    SystolicStats stats;
    stats.effective_macs = gemm.macs();

    // Each (k, n) weight tile streams all M rows; loads double-buffer
    // behind the stream, fill/drain costs rows+cols once per tile.
    const double per_tile =
        std::max(static_cast<double>(gemm.m), tile_load_cycles) +
        static_cast<double>(cfg.rows + cfg.cols);
    stats.total_cycles = static_cast<uint64_t>(
        per_tile * static_cast<double>(tiles_k * tiles_n));

    // Traffic: all weights once, activations once per n-tile sweep,
    // outputs once (psums held on-chip across k tiles).
    stats.dram_bytes =
        static_cast<double>(gemm.k) * gemm.n * cfg.elem_bytes +
        static_cast<double>(gemm.m) * gemm.k * cfg.elem_bytes *
            static_cast<double>(tiles_n) +
        static_cast<double>(gemm.m) * gemm.n * cfg.elem_bytes;
    return stats;
}

SystolicStats
SystolicSimulator::simulateNetwork(
    const std::vector<sim::GemmShape> &gemms) const
{
    SystolicStats total;
    for (const auto &g : gemms)
        total += simulateGemm(g);
    return total;
}

} // namespace lutdla::baselines
