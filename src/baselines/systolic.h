#ifndef LUTDLA_BASELINES_SYSTOLIC_H
#define LUTDLA_BASELINES_SYSTOLIC_H

/**
 * @file
 * Weight-stationary systolic-array timing model (Gemmini-class baseline).
 *
 * The array holds an R x C INT8 weight tile; activations stream in
 * skewed, products accumulate down columns. Per weight tile the array
 * spends max(M, tile-load) + (R + C) fill/drain cycles; double-buffered
 * weight loads overlap compute. This is the standard first-order model of
 * Gemmini's WS mode and is what the paper compares against in Fig. 13/14.
 */

#include <cstdint>

#include <vector>

#include "sim/config.h"

namespace lutdla::baselines {

/** Systolic array configuration. */
struct SystolicConfig
{
    int64_t rows = 16;     ///< K-dimension PEs
    int64_t cols = 16;     ///< N-dimension PEs
    double freq_hz = 500e6;
    int64_t elem_bytes = 1;
    double dram_bytes_per_sec = 25.6e9;

    double peakGops() const
    {
        return 2.0 * static_cast<double>(rows * cols) * freq_hz * 1e-9;
    }
};

/** Timing result of one systolic run. */
struct SystolicStats
{
    uint64_t total_cycles = 0;
    double effective_macs = 0.0;
    double dram_bytes = 0.0;

    double seconds(const SystolicConfig &cfg) const
    {
        return static_cast<double>(total_cycles) / cfg.freq_hz;
    }
    double achievedGops(const SystolicConfig &cfg) const
    {
        const double s = seconds(cfg);
        return s > 0 ? 2.0 * effective_macs / s * 1e-9 : 0.0;
    }
    double utilization(const SystolicConfig &cfg) const
    {
        return total_cycles
                   ? effective_macs /
                         (static_cast<double>(total_cycles) *
                          static_cast<double>(cfg.rows * cfg.cols))
                   : 0.0;
    }
    SystolicStats &
    operator+=(const SystolicStats &rhs)
    {
        total_cycles += rhs.total_cycles;
        effective_macs += rhs.effective_macs;
        dram_bytes += rhs.dram_bytes;
        return *this;
    }
};

/** Weight-stationary systolic simulator. */
class SystolicSimulator
{
  public:
    explicit SystolicSimulator(SystolicConfig config) : config_(config) {}

    SystolicStats simulateGemm(const sim::GemmShape &gemm) const;
    SystolicStats simulateNetwork(
        const std::vector<sim::GemmShape> &gemms) const;

    const SystolicConfig &config() const { return config_; }

  private:
    SystolicConfig config_;
};

} // namespace lutdla::baselines

#endif // LUTDLA_BASELINES_SYSTOLIC_H
