#include "serve/stage_transformer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "nn/activations.h"
#include "nn/attention.h"
#include "util/logging.h"

namespace lutdla::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t
nanosSince(Clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

std::string
epilogueSuffix(const std::vector<PointwiseOp> &ops)
{
    std::string out;
    for (PointwiseOp op : ops)
        out += op == PointwiseOp::Relu ? "+relu" : "+gelu";
    return out;
}

/** Size a skip slot's plane, growing the slot vector on first use. */
std::vector<float> &
skipPlane(StageScratch &scratch, int64_t slot, int64_t total)
{
    if (static_cast<size_t>(slot) >= scratch.skip.size())
        scratch.skip.resize(static_cast<size_t>(slot) + 1);
    std::vector<float> &plane = scratch.skip[static_cast<size_t>(slot)];
    if (plane.size() < static_cast<size_t>(total))
        plane.resize(static_cast<size_t>(total));
    return plane;
}

} // namespace

std::string
SkipSaveStage::description() const
{
    return "skip-save#" + std::to_string(slot_);
}

void
SkipSaveStage::forwardInPlace(float *data, int64_t rows,
                              StageScratch &scratch) const
{
    const int64_t total = rows * width_;
    std::vector<float> &plane = skipPlane(scratch, slot_, total);
    std::memcpy(plane.data(), data,
                static_cast<size_t>(total) * sizeof(float));
}

std::string
ResidualAddStage::description() const
{
    return "residual-add#" + std::to_string(slot_);
}

void
ResidualAddStage::forwardInPlace(float *data, int64_t rows,
                                 StageScratch &scratch) const
{
    const int64_t total = rows * width_;
    LUTDLA_CHECK(static_cast<size_t>(slot_) < scratch.skip.size() &&
                     scratch.skip[static_cast<size_t>(slot_)].size() >=
                         static_cast<size_t>(total),
                 "residual-add slot ", slot_,
                 " has no saved plane of ", total,
                 " floats; SkipSaveStage must precede it");
    const float *saved = scratch.skip[static_cast<size_t>(slot_)].data();
    for (int64_t i = 0; i < total; ++i)
        data[i] += saved[i];
}

void
SoftmaxStage::forwardInPlace(float *data, int64_t rows,
                             StageScratch &) const
{
    nn::softmaxForward(data, rows, width_, data);
}

AttentionStage::AttentionStage(Arenas arenas, int64_t seq_len,
                               int64_t heads,
                               const lutboost::KernelBackend *backend,
                               std::vector<PointwiseOp> epilogue,
                               int64_t shard_rows,
                               lutboost::EncodePrecision encode)
    : arenas_(std::move(arenas)), seq_len_(seq_len), heads_(heads),
      d_model_(arenas_.q->outFeatures()),
      backend_(backend != nullptr ? backend
                                  : &lutboost::referenceBackend()),
      epilogue_(std::move(epilogue)), shard_rows_(shard_rows),
      encode_(lutboost::EncodePrecision::Float32)
{
    LUTDLA_CHECK(arenas_.q && arenas_.k && arenas_.v && arenas_.o,
                 "AttentionStage needs all four projection arenas");
    LUTDLA_CHECK(seq_len_ >= 1, "seq_len must be >= 1");
    LUTDLA_CHECK(heads_ >= 1 && d_model_ % heads_ == 0,
                 "heads must divide d_model");
    backend_->prepare(*arenas_.q);
    backend_->prepare(*arenas_.k);
    backend_->prepare(*arenas_.v);
    backend_->prepare(*arenas_.o);
    // The stage is one plan unit, so the encode choice is all-or-nothing
    // across the four projections: Int8 resolves only when every arena
    // carries the quantized encode bank (they share metric and geometry
    // in practice, so this is not restrictive).
    if (encode == lutboost::EncodePrecision::Int8 &&
        arenas_.q->int8EncodeSupported() &&
        arenas_.k->int8EncodeSupported() &&
        arenas_.v->int8EncodeSupported() &&
        arenas_.o->int8EncodeSupported()) {
        arenas_.q->ensureInt8EncodeBank();
        arenas_.k->ensureInt8EncodeBank();
        arenas_.v->ensureInt8EncodeBank();
        arenas_.o->ensureInt8EncodeBank();
        encode_ = lutboost::EncodePrecision::Int8;
    }
}

std::string
AttentionStage::description() const
{
    std::string out = "attention(h" + std::to_string(heads_) + ",t" +
                      std::to_string(seq_len_) + ")";
    if (!backend_->bitExact())
        out += "[" + backend_->name() + "]";
    if (encode_ == lutboost::EncodePrecision::Int8)
        out += "[enc:int8]";
    return out + epilogueSuffix(epilogue_);
}

int64_t
AttentionStage::tableBytes() const
{
    return backend_->tableBytes(*arenas_.q) +
           backend_->tableBytes(*arenas_.k) +
           backend_->tableBytes(*arenas_.v) +
           backend_->tableBytes(*arenas_.o);
}

int64_t
AttentionStage::encodeBytes() const
{
    const auto arena_encode_bytes =
        [&](const lutboost::LutTableArena &arena) {
            if (encode_ == lutboost::EncodePrecision::Int8)
                return arena.int8EncodeTableBytes();
            return arena.inFeatures() * arena.numCentroids() *
                   static_cast<int64_t>(sizeof(float));
        };
    return arena_encode_bytes(*arenas_.q) + arena_encode_bytes(*arenas_.k) +
           arena_encode_bytes(*arenas_.v) + arena_encode_bytes(*arenas_.o);
}

int64_t
AttentionStage::residentBytes() const
{
    int64_t bytes = backend_->residentBytes(*arenas_.q) +
                    backend_->residentBytes(*arenas_.k) +
                    backend_->residentBytes(*arenas_.v) +
                    backend_->residentBytes(*arenas_.o);
    if (encode_ == lutboost::EncodePrecision::Int8)
        bytes += arenas_.q->int8EncodeResidentBytes() +
                 arenas_.k->int8EncodeResidentBytes() +
                 arenas_.v->int8EncodeResidentBytes() +
                 arenas_.o->int8EncodeResidentBytes();
    return bytes;
}

void
AttentionStage::forward(const float *in, int64_t rows, float *out,
                        StageScratch &scratch) const
{
    LUTDLA_CHECK(rows % seq_len_ == 0, "attention batch of ", rows,
                 " rows is not a multiple of seq_len ", seq_len_,
                 "; the engine admits whole sequences only");
    const int64_t total = rows * d_model_;
    scratch.attn_q.resize(static_cast<size_t>(total));
    scratch.attn_k.resize(static_cast<size_t>(total));
    scratch.attn_v.resize(static_cast<size_t>(total));
    scratch.attn_ctx.resize(static_cast<size_t>(total));

    // Three projection LUT-GEMMs into the worker's attention planes; the
    // shared arena body shards them over rows exactly like ArenaStage.
    static const std::vector<PointwiseOp> kNoEpilogue;
    arenaGemmForward(*arenas_.q, *backend_, in, rows,
                     scratch.attn_q.data(), shard_rows_, kNoEpilogue,
                     scratch, encode_);
    arenaGemmForward(*arenas_.k, *backend_, in, rows,
                     scratch.attn_k.data(), shard_rows_, kNoEpilogue,
                     scratch, encode_);
    arenaGemmForward(*arenas_.v, *backend_, in, rows,
                     scratch.attn_v.data(), shard_rows_, kNoEpilogue,
                     scratch, encode_);

    // Scaled-dot-product core: the shared eval kernel per sequence, into
    // a zeroed context plane. Sequences are independent, so sharding over
    // them is bit-exact (disjoint context rows); each participant brings
    // its own probability plane. Charged to the gather phase.
    const auto t0 = Clock::now();
    std::fill(scratch.attn_ctx.begin(),
              scratch.attn_ctx.begin() + static_cast<size_t>(total), 0.0f);
    const int64_t sequences = rows / seq_len_;
    const int64_t probs_floats = heads_ * seq_len_ * seq_len_;
    const float *q = scratch.attn_q.data();
    const float *k = scratch.attn_k.data();
    const float *v = scratch.attn_v.data();
    float *ctx = scratch.attn_ctx.data();
    const auto run_sequence = [&](int64_t b, StageScratch &local) {
        local.attn_probs.resize(static_cast<size_t>(probs_floats));
        const int64_t off = b * seq_len_ * d_model_;
        nn::attentionSequenceContext(q + off, k + off, v + off, seq_len_,
                                     heads_, d_model_, ctx + off,
                                     local.attn_probs.data());
    };
    if (scratch.pool != nullptr && sequences >= 2) {
        scratch.pool->parallelFor(sequences, run_sequence, scratch);
    } else {
        for (int64_t b = 0; b < sequences; ++b)
            run_sequence(b, scratch);
    }
    scratch.gather_ns += nanosSince(t0);

    // Output projection (with any fused epilogue) into the stage output.
    arenaGemmForward(*arenas_.o, *backend_, ctx, rows, out, shard_rows_,
                     epilogue_, scratch, encode_);
}

} // namespace lutdla::serve
