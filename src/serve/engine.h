#ifndef LUTDLA_SERVE_ENGINE_H
#define LUTDLA_SERVE_ENGINE_H

/**
 * @file
 * InferenceEngine: batched multi-threaded serving on top of a FrozenModel.
 *
 * Once LUTBoost freezes a model, inference is pure table-gather-and-
 * accumulate — an embarrassingly batchable workload. The engine exploits
 * that with a bounded MPMC request queue and a worker pool that performs
 * dynamic batching: a worker opens a batch with the first request it pops,
 * then keeps admitting requests until the batch holds `max_batch` rows or
 * `max_wait_us` has elapsed since the batch opened, whichever comes first.
 * The coalesced rows run through the frozen stage graph
 * (FrozenModel::forwardBatch): each worker iterates the model's stages with
 * its own reusable StageScratch, so steady-state batches perform no
 * allocations and each LUT stage's row-blocked arena kernel is where the
 * throughput comes from — every subspace's table bank is loaded into cache
 * once per batch instead of once per row.
 *
 * Intra-batch parallelism: dynamic batching alone serializes a LARGE
 * batch on the one worker that coalesced it, so on a multi-worker engine
 * each LUT stage additionally shards its encode and gather phases over
 * the pool (IntraBatchPool, implemented here): the initiating worker
 * publishes a shard task on the shared WorkQueue, idle workers steal row
 * blocks from it (wait-free atomic cursor), and every participant runs
 * kernels with its own scratch. Busy workers simply don't help — progress
 * never depends on a free worker — and results are bit-exact with the
 * unsharded sweep because shards cover disjoint rows.
 *
 * Request lifecycle: submitAsync() validates, stamps, and enqueues the
 * request and returns a future; a worker later fulfills the promise with
 * the [rows, outputWidth] result or a typed api::Status. submit() is the
 * blocking convenience wrapper. Every error is data — the engine never
 * panics on a bad request.
 *
 * Admission control: the classic submitAsync() blocks for backpressure
 * when the bounded queue is full — correct for trusted in-process
 * producers, wrong under overload from many tenants (the producer hangs
 * unboundedly). AdmitOptions bounds that wait: max_wait_us = 0 is the
 * non-blocking trySubmit path, > 0 waits at most that long; either way a
 * full queue answers with a typed ResourceExhausted instead of blocking.
 * The multi-tenant FrontDoor (serve/frontdoor.h) builds its never-block
 * priority shedding on the same principle.
 *
 * Shutdown contract: shutdown() refuses new submissions, lets workers
 * drain everything already queued, then joins them; every accepted request
 * still gets its result. The destructor calls shutdown().
 */

#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/status.h"
#include "serve/frozen_model.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace lutdla::serve {

/** Engine tuning knobs; see docs/SERVING.md for the tuning guide. */
struct EngineOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    int threads = 0;
    /** Max rows per executed batch (also the per-request row cap). */
    int64_t max_batch = 64;
    /** Max microseconds a batch waits for more rows after it opens. */
    int64_t max_wait_us = 200;
    /** Bounded request-queue capacity (requests, not rows). */
    int64_t queue_capacity = 256;
    /**
     * Spawn workers in the constructor. Turn off to pre-fill the queue and
     * then start() — deterministic batch composition, used by tests and
     * the serving demo. While workers are not running, submissions beyond
     * queue_capacity fail fast with FailedPrecondition instead of
     * blocking (nothing could ever drain the queue).
     */
    bool autostart = true;
};

/**
 * How long a submission may wait for queue space before it is refused
 * with ResourceExhausted: -1 blocks indefinitely (the classic
 * backpressure behavior), 0 never waits (trySubmit), > 0 waits at most
 * that many microseconds.
 */
struct AdmitOptions
{
    int64_t max_wait_us = -1;

    /** Non-blocking admission (fail fast when the queue is full). */
    static AdmitOptions
    nonBlocking()
    {
        return {0};
    }

    /** Wait at most `us` microseconds for queue space. */
    static AdmitOptions
    boundedWait(int64_t us)
    {
        return {us};
    }
};

/** Batched multi-threaded inference engine over a frozen LUT model.
 * Implements IntraBatchPool so LUT stages can shard a batch's encode /
 * gather phases across the worker pool. */
class InferenceEngine : private IntraBatchPool
{
  public:
    /**
     * Validate options and build an engine. InvalidArgument on nonsense
     * knobs (threads < 0, max_batch < 1, ...). The returned engine is
     * ready for submissions (workers already running when autostart).
     */
    static api::Result<std::shared_ptr<InferenceEngine>>
    create(FrozenModel model, const EngineOptions &options = {});

    /** Prefer create(); this constructor trusts `options` blindly. */
    InferenceEngine(FrozenModel model, const EngineOptions &options);

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /** Graceful shutdown() — accepted requests are always answered. */
    ~InferenceEngine();

    /** Spawn the worker pool; idempotent; no-op after shutdown(). */
    void start();

    /**
     * Refuse new submissions, drain queued work, join workers. Idempotent.
     * If the engine was never start()ed, queued requests are failed with
     * FailedPrecondition instead of hanging.
     */
    void shutdown();

    /**
     * Serve one request of [rows, inputWidth()] and block for the result.
     * Errors come back as statuses: InvalidArgument for zero rows, width
     * mismatch, or rows > max_batch; FailedPrecondition after shutdown().
     */
    api::Result<Tensor> submit(const Tensor &rows);

    /** Fire-and-wait-later variant of submit(). */
    std::future<api::Result<Tensor>> submitAsync(Tensor rows);

    /**
     * submitAsync() with explicit admission control: when the queue is
     * full, wait at most admit.max_wait_us for space (0 = don't wait)
     * and answer ResourceExhausted on timeout instead of blocking the
     * submitter unboundedly.
     */
    std::future<api::Result<Tensor>> submitAsync(Tensor rows,
                                                 AdmitOptions admit);

    /**
     * Non-blocking submit: serve the request if the queue has space
     * right now, otherwise return ResourceExhausted immediately (still
     * blocks for the RESULT like submit(); only admission never waits).
     */
    api::Result<Tensor> trySubmit(const Tensor &rows);

    /** Consistent snapshot of the lifetime serving statistics. */
    EngineStats stats() const;

    /** The frozen model being served. */
    const FrozenModel &model() const { return model_; }

    /** The options the engine runs with. */
    const EngineOptions &options() const { return options_; }

  private:
    struct Request
    {
        Tensor input;
        std::promise<api::Result<Tensor>> promise;
        std::chrono::steady_clock::time_point enqueued;
        int64_t rows = 0;
    };

    void workerLoop(int slot);
    void runBatch(std::vector<Request> &batch, int64_t rows,
                  StageScratch &scratch, int slot);
    void failRemaining();

    /** Claim-and-run loop every shard participant executes. Returns
     * whether this participant executed at least one block — workerLoop
     * uses that to count shard-stealing helpers as active workers. */
    bool runShards(ShardTask &task, StageScratch &scratch);

    /** IntraBatchPool: shard a LUT-stage phase over the worker pool. */
    void parallelFor(int64_t blocks, const ShardFn &fn,
                     StageScratch &caller) override;

    FrozenModel model_;
    EngineOptions options_;
    WorkQueue<Request> queue_;

    std::mutex lifecycle_mu_;
    std::vector<std::thread> workers_;
    bool started_ = false;
    bool shut_down_ = false;

    mutable std::mutex stats_mu_;
    uint64_t requests_ = 0;
    uint64_t rows_ = 0;
    uint64_t batches_ = 0;
    uint64_t rejected_ = 0;
    std::vector<uint64_t> batch_fill_;
    uint64_t encode_ns_ = 0;
    uint64_t gather_ns_ = 0;
    std::vector<uint8_t> worker_ran_batch_;  ///< per-slot participation
    LatencyHistogram latency_;
    LatencyHistogram queue_wait_;  ///< submit -> batch execution start
    LatencyHistogram service_;     ///< batch execution start -> done
    bool saw_first_submit_ = false;
    std::chrono::steady_clock::time_point first_submit_;
    std::chrono::steady_clock::time_point last_done_;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_ENGINE_H
