#ifndef LUTDLA_SERVE_FROZEN_MODEL_H
#define LUTDLA_SERVE_FROZEN_MODEL_H

/**
 * @file
 * FrozenModel: the serving layer's immutable view of a deployed network —
 * a stage graph (see serve/stage.h) produced by one lowering pass over a
 * LUTBoost-converted model. Each stage is an immutable node (arena GEMM,
 * im2col-lowered conv, pooling, flatten, norm, pointwise activation);
 * once built, the model shares arenas by shared_ptr and never touches the
 * mutable nn:: training graph again, which is what makes concurrent
 * forwardBatch() calls safe and keeps a live engine unaffected by later
 * re-training or re-freezing of the source model.
 *
 * Two builders:
 *  - fromModel(): lower a LUTBoost-converted, frozen nn model — Sequential
 *    chains of LutLinear / LutConv2d / ReLU / GELU / Softmax / MaxPool2d /
 *    GlobalAvgPool / BatchNorm2d / LayerNorm / Flatten, plus the
 *    non-linear-dataflow layers that lower onto skip edges
 *    (serve/stage_transformer.h): TransformerBlock and identity-shortcut
 *    ResidualBlock become SkipSave/ResidualAdd pairs around their trunk
 *    stages, and MultiHeadSelfAttention becomes an AttentionStage over
 *    four projection arenas. MLP chains lower directly; CNN chains
 *    additionally need the input image shape (ServeInputShape) because
 *    serving works on flat rows; attention fixes rowGroup() to the
 *    sequence length. Bit-exact with eval-mode model->forward() under the
 *    default plan.
 *  - fromTrace(): synthesize a load-testing model from a workload's GEMM
 *    trace (randomized codebooks/weights, one arena stage per traced
 *    layer). Stage widths follow the trace, so consecutive stages need
 *    not chain; the lowering inserts explicit WidthAdaptStage nodes
 *    (cyclic column replication), preserving each layer's true gather
 *    workload.
 *
 * Both builders finish with the planning pass (serve/plan.h): LUT stages
 * are bound to the kernel backend the PlanOptions select (bit-exact
 * float32 by default, packed-code + INT8-table quantized on request) and
 * fusable neighbors (pointwise epilogues, width-adapt prologues) fold
 * into them. The resulting per-stage decisions are inspectable through
 * plan() / planSummary().
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/status.h"
#include "nn/layer.h"
#include "serve/plan.h"
#include "serve/stage.h"
#include "sim/config.h"
#include "vq/pq.h"

namespace lutdla::serve {

/** Synthesized quantizer + weights for one traced GEMM layer. */
struct TraceLayer
{
    vq::ProductQuantizer quantizer;
    Tensor weights;  ///< [k, n]
};

/**
 * Deterministically synthesize one trace layer (Gaussian codebooks and
 * 1/sqrt(k)-scaled weights from `seed` + `index`). Single source of truth
 * for FrozenModel::fromTrace AND reference-path baselines (e.g.
 * bench_serve_throughput), so both serving stacks are built from
 * identical numbers and stay comparable.
 */
TraceLayer synthesizeTraceLayer(const sim::GemmShape &gemm,
                                const vq::PQConfig &pq, uint64_t seed,
                                int64_t index, bool bf16_codebooks = false);

/**
 * Spatial shape of the serving input when the model starts with conv /
 * pool / norm layers: each request row is a flattened [C, height, width]
 * NCHW image (C comes from the first layer's geometry). Leave default
 * (0, 0) for flat MLP-class inputs.
 */
struct ServeInputShape
{
    int64_t height = 0;
    int64_t width = 0;

    /** True when a spatial input shape was provided. */
    bool spatial() const { return height > 0 && width > 0; }
};

/** Immutable, thread-safe inference snapshot of a deployed LUT network. */
class FrozenModel
{
  public:
    /**
     * Lower a converted nn model into the stage graph. Every LUT operator
     * must already be frozen (refreshInferenceLut); supported layers are
     * Sequential, LutLinear, LutConv2d, ReLU, GELU, Softmax, MaxPool2d,
     * GlobalAvgPool, BatchNorm2d, LayerNorm, Flatten,
     * MultiHeadSelfAttention, TransformerBlock, and identity-shortcut
     * ResidualBlock. Anything else yields InvalidArgument naming the
     * first unlowerable layer. Models whose first lowered layer is
     * spatial (conv/pool/norm) additionally require `input` to carry the
     * image height/width. `plan` selects the kernel backend and fusion
     * behavior (defaults are bit-exact).
     */
    static api::Result<FrozenModel>
    fromModel(const nn::LayerPtr &model, ServeInputShape input = {},
              PlanOptions plan = {});

    /**
     * Check that `model`'s topology is lowerable by fromModel WITHOUT
     * requiring (or triggering) any freeze — side-effect free. Callers
     * that freeze layers on the caller's behalf (api::makeEngine) run
     * this first so a rejected model is returned unmodified.
     */
    static api::Status validateServable(const nn::LayerPtr &model,
                                        ServeInputShape input = {});

    /**
     * Synthesize a load-testing model from a deployment GEMM trace: one
     * arena stage per GEMM, Gaussian random codebooks and weights
     * (deterministic in `seed`), no bias, no activations; WidthAdaptStage
     * between non-chaining widths. Validates `pq` like the conversion
     * pipeline does.
     */
    static api::Result<FrozenModel>
    fromTrace(const std::vector<sim::GemmShape> &gemms,
              const vq::PQConfig &pq, vq::LutPrecision precision = {},
              uint64_t seed = 91, PlanOptions plan = {});

    /**
     * Replan this model under different PlanOptions, returning a new
     * FrozenModel whose stages are rebuilt by the planning pass but
     * SHARE every arena with the original (shared_ptr copies). Because
     * quantized banks cache inside the arena, a replanned candidate
     * pays table quantization at most once per (arena, precision) no
     * matter how many plans bind it — the property the mixed-precision
     * auto-tuner's candidate sweep (serve/autotune.h) relies on. The
     * original model is untouched; planStages is idempotent on an
     * already-planned chain, so fusion decisions do not compound.
     */
    FrozenModel withPlan(const PlanOptions &plan) const;

    /** Input width the first stage expects. */
    int64_t inputWidth() const;

    /** Output width the last stage produces. */
    int64_t outputWidth() const;

    /** Number of stages in the graph (all kinds, not just LUT). */
    int64_t numStages() const
    {
        return static_cast<int64_t>(stages_.size());
    }

    /** Number of LUT-backed stages (arena GEMM + conv + attention). */
    int64_t numLutStages() const;

    /**
     * Row-group granularity requests must respect: 1 for row-independent
     * models; the sequence length T for models with attention stages
     * (rows are [B*T, D] and a batch must hold whole sequences). The
     * engine rejects requests whose row count is not a multiple of this.
     */
    int64_t rowGroup() const { return row_group_; }

    /** Total arena footprint in bytes across stages. */
    int64_t tableBytes() const;

    /** Total encode-phase sweep bytes across LUT stages (transposed
     * float codebooks, or the INT8 encode bank where the plan bound
     * Int8 encode). tableBytes() + encodeBytes() is the byte currency
     * the joint (table, encode) auto-tuner descends on. */
    int64_t encodeBytes() const;

    /** Total bytes RESIDENT for the planned tables across stages: the
     * gather streams plus any CPU-gated mirror layouts (interleaved
     * shuffle banks, VNNI quads) the bound backends keep. */
    int64_t residentBytes() const;

    /** Stage list (read-only). */
    const std::vector<StagePtr> &stages() const { return stages_; }

    /** Per-stage planning decisions, one entry per stage. */
    const std::vector<StagePlan> &plan() const { return plan_; }

    /** The row-tiled executor's segment partition and per-worker
     * scratch-plane accounting (see TileExecPlan). Empty segment list
     * when tiling is disabled or nothing is tileable. */
    const TileExecPlan &tilePlan() const { return tiles_; }

    /** Multi-line plan dump (code widths, table precision, fusions,
     * tile segments, scratch-plane accounting). */
    std::string planSummary() const;

    /** Human-readable planned chain, e.g. "conv+relu -> maxpool -> ...". */
    std::string describe() const;

    /**
     * Run a batch of rows through every stage using caller-owned scratch
     * (the engine passes per-worker scratch so steady-state batches do
     * not allocate). Thread-safe — distinct scratch per concurrent caller
     * — and bit-exact with the source model's eval forward (fromModel
     * case). Rows must be [batch, inputWidth()].
     *
     * Execution is segment-streamed (the row-tiled executor): barrier
     * stages run full-batch as before, but each planned TilePlan segment
     * streams one row tile at a time through ALL its stages — a stage's
     * gather + fused epilogue feeds the next stage's encode while the
     * tile is still L1/L2-hot — with the next tile's input software-
     * prefetched behind it. When the scratch carries an IntraBatchPool,
     * tiles are the work-stealing unit (one task per tile, replacing the
     * old two-barriers-per-stage sharding inside segments). Bit-exact
     * with the untiled path (PlanOptions::tile_rows == -1) at every tile
     * size and precision, because tileable stages are row-independent.
     */
    Tensor forwardBatch(const Tensor &x, StageScratch &scratch) const;

    /** Convenience overload with throwaway scratch. */
    Tensor forwardBatch(const Tensor &x) const;

  private:
    /** Stream one tiled segment: read [rows, seg-in-width] from `in`,
     * write [rows, seg-out-width] to `out` (never aliasing), one tile
     * per pool task. */
    void runTiledSegment(const TilePlan &seg, const float *in,
                         int64_t rows, float *out,
                         StageScratch &scratch) const;

    std::vector<StagePtr> stages_;
    std::vector<StagePlan> plan_;
    TileExecPlan tiles_;
    int64_t row_group_ = 1;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_FROZEN_MODEL_H
