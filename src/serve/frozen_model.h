#ifndef LUTDLA_SERVE_FROZEN_MODEL_H
#define LUTDLA_SERVE_FROZEN_MODEL_H

/**
 * @file
 * FrozenModel: the serving layer's immutable view of a deployed network —
 * an ordered list of flat LUT table arenas with pointwise post-ops between
 * them. Once built it shares the arenas by shared_ptr and never touches the
 * mutable nn:: training graph again, which is what makes concurrent
 * forwardBatch() calls safe and keeps a live engine unaffected by later
 * re-training or re-freezing of the source model.
 *
 * Two builders:
 *  - fromModel(): snapshot a LUTBoost-converted, frozen nn model
 *    (Sequential chains of LutLinear / ReLU / GELU / Flatten). Bit-exact
 *    with eval-mode model->forward().
 *  - fromTrace(): synthesize a load-testing model from a workload's GEMM
 *    trace (randomized codebooks/weights, one arena per traced layer), so
 *    throughput experiments can run the paper's full-scale networks —
 *    e.g. resnet18 — whose float weights this repo does not ship. Stage
 *    widths follow the trace, so consecutive stages need not chain; the
 *    forward pass adapts widths by cyclic column replication, preserving
 *    each layer's true gather workload.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "api/status.h"
#include "lutboost/table_arena.h"
#include "nn/layer.h"
#include "sim/config.h"
#include "vq/pq.h"

namespace lutdla::serve {

/** Synthesized quantizer + weights for one traced GEMM layer. */
struct TraceLayer
{
    vq::ProductQuantizer quantizer;
    Tensor weights;  ///< [k, n]
};

/**
 * Deterministically synthesize one trace layer (Gaussian codebooks and
 * 1/sqrt(k)-scaled weights from `seed` + `index`). Single source of truth
 * for FrozenModel::fromTrace AND reference-path baselines (e.g.
 * bench_serve_throughput), so both serving stacks are built from
 * identical numbers and stay comparable.
 */
TraceLayer synthesizeTraceLayer(const sim::GemmShape &gemm,
                                const vq::PQConfig &pq, uint64_t seed,
                                int64_t index, bool bf16_codebooks = false);

/** Pointwise op applied after a LUT stage (mirrors nn:: eval math). */
enum class PostOp
{
    None,
    Relu,
    Gelu
};

/** One serving stage: a frozen LUT layer plus its trailing activation. */
struct FrozenStage
{
    std::shared_ptr<const lutboost::LutTableArena> lut;
    PostOp post = PostOp::None;
};

/** Immutable, thread-safe inference snapshot of a deployed LUT network. */
class FrozenModel
{
  public:
    /**
     * Snapshot a converted nn model. Every LutLinear must already be
     * frozen (refreshInferenceLut); supported layers are Sequential,
     * LutLinear, ReLU, GELU, and rank-preserving Flatten. Anything else
     * (unconverted Linear, convolutions, norms) yields InvalidArgument —
     * serve conv/transformer graphs via fromTrace() for now.
     */
    static api::Result<FrozenModel> fromModel(const nn::LayerPtr &model);

    /**
     * Check that `model`'s topology is servable by fromModel WITHOUT
     * requiring (or triggering) any freeze — side-effect free. Callers
     * that freeze layers on the caller's behalf (api::makeEngine) run
     * this first so a rejected model is returned unmodified.
     */
    static api::Status validateServable(const nn::LayerPtr &model);

    /**
     * Synthesize a load-testing model from a deployment GEMM trace: one
     * arena per GEMM, Gaussian random codebooks and weights (deterministic
     * in `seed`), no bias, no activations. Validates `pq` like the
     * conversion pipeline does.
     */
    static api::Result<FrozenModel>
    fromTrace(const std::vector<sim::GemmShape> &gemms,
              const vq::PQConfig &pq, vq::LutPrecision precision = {},
              uint64_t seed = 91);

    /** Input width the first stage expects. */
    int64_t inputWidth() const;

    /** Output width the last stage produces. */
    int64_t outputWidth() const;

    /** Number of LUT stages. */
    int64_t numStages() const
    {
        return static_cast<int64_t>(stages_.size());
    }

    /** Total arena footprint in bytes across stages. */
    int64_t tableBytes() const;

    /** Stage list (read-only). */
    const std::vector<FrozenStage> &stages() const { return stages_; }

    /**
     * Run a batch of rows through every stage. Thread-safe and bit-exact
     * with the source model's eval forward (fromModel case). Rows must be
     * [batch, inputWidth()].
     */
    Tensor forwardBatch(const Tensor &x) const;

  private:
    std::vector<FrozenStage> stages_;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_FROZEN_MODEL_H
