#include "serve/plan.h"

#include <algorithm>
#include <cstdio>

#include "lutboost/kernels_simd.h"
#include "serve/stage_transformer.h"
#include "util/cpu_features.h"
#include "vq/code_buffer.h"

namespace lutdla::serve {

const char *
tablePrecisionName(TablePrecision precision)
{
    switch (precision) {
      case TablePrecision::Int8:
        return "int8";
      case TablePrecision::Int4:
        return "int4";
      default:
        return "float32";
    }
}

namespace {

/** Backend singleton implementing one table precision. */
const lutboost::KernelBackend *
backendFor(TablePrecision precision)
{
    switch (precision) {
      case TablePrecision::Int8:
        return &lutboost::quantizedBackend();
      case TablePrecision::Int4:
        return &lutboost::int4Backend();
      default:
        return &lutboost::referenceBackend();
    }
}

/** Precision of the `lut_index`-th LUT stage in chain order: explicit
 * per-stage binding when present, else the global default. */
TablePrecision
stagePrecisionAt(const PlanOptions &options, size_t lut_index)
{
    if (lut_index < options.stage_precision.size())
        return options.stage_precision[lut_index];
    return options.table_precision;
}

/** Encode precision REQUESTED for the `lut_index`-th LUT stage; the
 * stage itself resolves it against its arena's capability. */
EncodePrecision
stageEncodePrecisionAt(const PlanOptions &options, size_t lut_index)
{
    if (lut_index < options.stage_encode_precision.size())
        return options.stage_encode_precision[lut_index];
    return options.encode_precision;
}

/** Collect the run of PointwiseStages starting at `j`; returns one past
 * the last fused stage. */
size_t
collectEpilogue(const std::vector<StagePtr> &stages, size_t j,
                std::vector<PointwiseOp> &epilogue,
                std::vector<std::string> &fused)
{
    while (j < stages.size()) {
        const auto *pw =
            dynamic_cast<const PointwiseStage *>(stages[j].get());
        if (pw == nullptr)
            break;
        epilogue.push_back(pw->op());
        fused.push_back(pw->kind());
        ++j;
    }
    return j;
}

/**
 * Resolve the shard granularity: explicit wins; auto binds to one
 * shuffle-gather chunk so a shard never hands the vector kernels a
 * partial chunk (which would fall back to the scalar tail sweep).
 */
int64_t
resolveShardRows(const PlanOptions &options)
{
    if (options.shard_rows > 0)
        return options.shard_rows;
    const int64_t chunk =
        lutboost::simd::shuffleGatherChunkRows(util::simdLevel());
    return chunk > 0 ? chunk : 32;
}

StagePlan
lutPlan(const FrozenStage &stage, const lutboost::LutTableArena &arena,
        std::vector<std::string> fused, TablePrecision precision,
        EncodePrecision encode, int64_t shard_rows)
{
    StagePlan plan;
    plan.kind = stage.kind();
    plan.description = stage.description();
    plan.fused = std::move(fused);
    plan.code_bits = vq::codeBitsFor(arena.numCentroids());
    plan.precision = precision;
    plan.encode_precision = encode;
    plan.table_bytes = stage.tableBytes();
    plan.encode_bytes = stage.encodeBytes();
    plan.encode_kernel = encode == EncodePrecision::Int8
                             ? arena.int8EncodeKernelName()
                             : arena.encodeVariantName();
    switch (precision) {
      case TablePrecision::Int8:
        plan.gather_kernel = lutboost::LutTableArena::int8GatherVariantName(
            arena.int8AutoVariant());
        break;
      case TablePrecision::Int4:
        plan.gather_kernel = lutboost::LutTableArena::int4GatherVariantName(
            arena.int4AutoVariant());
        break;
      default:
        plan.gather_kernel = "grouped-sweep";
        break;
    }
    plan.shard_rows = shard_rows;
    return plan;
}

StagePlan
passthroughPlan(const FrozenStage &stage)
{
    StagePlan plan;
    plan.kind = stage.kind();
    plan.description = stage.description();
    plan.table_bytes = stage.tableBytes();
    return plan;
}

/** Auto tile-size target: ~half a contemporary L2, the other half left
 * for the table stream the gather pulls through the cache. */
constexpr int64_t kDefaultTileCacheBytes = 1 << 20;

/**
 * Partition the planned chain into row-tiled segments and pick each
 * segment's tile size (see TilePlan). A segment is a maximal run of
 * rowTileable() stages holding at least one LUT stage; its tile is the
 * largest multiple of the run's gather granule whose streamed working
 * set fits the cache budget, floored at one granule so the vector
 * gather kernels always see full chunks. Also fills the StagePlan
 * segment/tile fields and the scratch-plane accounting.
 */
void
planTiles(const std::vector<StagePtr> &stages, const PlanOptions &options,
          std::vector<StagePlan> &plan, TileExecPlan &tiles)
{
    tiles = {};
    const bool disabled = options.tile_rows < 0;
    const int64_t budget = options.tile_cache_bytes > 0
                               ? options.tile_cache_bytes
                               : kDefaultTileCacheBytes;

    int64_t chain_max_width = 0;   // widest plane the untiled chain holds
    int64_t barrier_max_width = 0; // widest plane still full-batch, tiled
    int64_t tile_interior_max = 0; // widest tile-local plane, in bytes/2

    size_t i = 0;
    while (i < stages.size()) {
        chain_max_width = std::max(
            {chain_max_width, stages[i]->inWidth(), stages[i]->outWidth()});
        if (disabled || !stages[i]->rowTileable()) {
            barrier_max_width =
                std::max({barrier_max_width, stages[i]->inWidth(),
                          stages[i]->outWidth()});
            ++i;
            continue;
        }
        // Maximal tileable run [i, j).
        size_t j = i;
        bool has_lut = false;
        int64_t granule = 1;
        int64_t row_bytes = 0;
        int64_t interior = 0;
        while (j < stages.size() && stages[j]->rowTileable()) {
            const FrozenStage &s = *stages[j];
            has_lut = has_lut || s.tableBytes() > 0;
            granule = std::max(granule, s.tileGranuleRows());
            row_bytes = std::max(
                row_bytes,
                (s.inWidth() + s.outWidth()) *
                        static_cast<int64_t>(sizeof(float)) +
                    s.tileScratchBytesPerRow());
            interior = std::max({interior, s.inWidth(), s.outWidth()});
            chain_max_width =
                std::max({chain_max_width, s.inWidth(), s.outWidth()});
            ++j;
        }
        // Glue-only runs (no table stream to overlap with) stay untiled:
        // their planes still ping-pong full-batch.
        if (!has_lut) {
            for (size_t k = i; k < j; ++k)
                barrier_max_width =
                    std::max({barrier_max_width, stages[k]->inWidth(),
                              stages[k]->outWidth()});
            i = j;
            continue;
        }

        TilePlan seg;
        seg.begin = static_cast<int64_t>(i);
        seg.end = static_cast<int64_t>(j);
        seg.granule = granule;
        seg.row_bytes = row_bytes;
        if (options.tile_rows > 0) {
            seg.tile_rows = options.tile_rows;
        } else {
            const int64_t fit = budget / std::max<int64_t>(1, row_bytes);
            seg.tile_rows = std::max(granule, (fit / granule) * granule);
        }
        // Only the segment's boundary planes stay full-batch.
        barrier_max_width =
            std::max({barrier_max_width, stages[i]->inWidth(),
                      stages[j - 1]->outWidth()});
        tile_interior_max = std::max(
            tile_interior_max,
            seg.tile_rows * interior *
                static_cast<int64_t>(sizeof(float)));

        for (size_t k = i; k < j; ++k) {
            plan[k].segment = static_cast<int64_t>(tiles.segments.size());
            plan[k].tile_rows = seg.tile_rows;
        }
        tiles.segments.push_back(seg);
        i = j;
    }

    tiles.untiled_plane_bytes_per_row =
        2 * chain_max_width * static_cast<int64_t>(sizeof(float));
    tiles.tiled_plane_bytes_per_row =
        2 * barrier_max_width * static_cast<int64_t>(sizeof(float));
    tiles.tile_plane_bytes = 2 * tile_interior_max;
}

} // namespace

void
planStages(std::vector<StagePtr> &stages, const PlanOptions &options,
           std::vector<StagePlan> &plan, TileExecPlan *tiles)
{
    const int64_t shard_rows = resolveShardRows(options);

    std::vector<StagePtr> out;
    out.reserve(stages.size());
    plan.clear();

    // LUT stages resolve their backend individually, counted in chain
    // order so PlanOptions::stage_precision lines up across replans
    // (fusion never changes the LUT stage count, so the index is stable
    // when an already-planned chain is planned again).
    size_t lut_index = 0;
    size_t i = 0;
    while (i < stages.size()) {
        const StagePtr &stage = stages[i];

        // width-adapt directly feeding an arena folds into its encode
        // prologue (trace models only emit this pair).
        if (options.fuse && i + 1 < stages.size()) {
            const auto *adapt =
                dynamic_cast<const WidthAdaptStage *>(stage.get());
            const auto *next =
                dynamic_cast<const ArenaStage *>(stages[i + 1].get());
            if (adapt != nullptr && next != nullptr &&
                next->adaptInWidth() == 0) {
                std::vector<PointwiseOp> epilogue;
                std::vector<std::string> fused{stage->kind()};
                const size_t j =
                    collectEpilogue(stages, i + 2, epilogue, fused);
                const size_t li = lut_index++;
                const TablePrecision prec = stagePrecisionAt(options, li);
                auto planned = std::make_shared<ArenaStage>(
                    next->arena(), backendFor(prec), std::move(epilogue),
                    stage->inWidth(), shard_rows,
                    stageEncodePrecisionAt(options, li));
                plan.push_back(lutPlan(*planned, *planned->arena(),
                                       std::move(fused), prec,
                                       planned->encodePrecision(),
                                       shard_rows));
                out.push_back(std::move(planned));
                i = j;
                continue;
            }
        }

        if (const auto *arena =
                dynamic_cast<const ArenaStage *>(stage.get())) {
            std::vector<PointwiseOp> epilogue = arena->epilogue();
            std::vector<std::string> fused;
            const size_t j = options.fuse
                                 ? collectEpilogue(stages, i + 1, epilogue,
                                                   fused)
                                 : i + 1;
            const size_t li = lut_index++;
            const TablePrecision prec = stagePrecisionAt(options, li);
            auto planned = std::make_shared<ArenaStage>(
                arena->arena(), backendFor(prec), std::move(epilogue),
                arena->adaptInWidth(), shard_rows,
                stageEncodePrecisionAt(options, li));
            plan.push_back(lutPlan(*planned, *planned->arena(),
                                   std::move(fused), prec,
                                   planned->encodePrecision(),
                                   shard_rows));
            out.push_back(std::move(planned));
            i = j;
            continue;
        }

        if (const auto *attn =
                dynamic_cast<const AttentionStage *>(stage.get())) {
            std::vector<PointwiseOp> epilogue = attn->epilogue();
            std::vector<std::string> fused;
            const size_t j = options.fuse
                                 ? collectEpilogue(stages, i + 1, epilogue,
                                                   fused)
                                 : i + 1;
            const size_t li = lut_index++;
            const TablePrecision prec = stagePrecisionAt(options, li);
            auto planned = std::make_shared<AttentionStage>(
                attn->arenas(), attn->seqLen(), attn->heads(),
                backendFor(prec), std::move(epilogue), shard_rows,
                stageEncodePrecisionAt(options, li));
            // Plan kernels/code width shown for the Q projection arena
            // (all four projections share shape and dispatch);
            // table_bytes covers all four.
            plan.push_back(lutPlan(*planned, *planned->arenas().q,
                                   std::move(fused), prec,
                                   planned->encodePrecision(),
                                   shard_rows));
            out.push_back(std::move(planned));
            i = j;
            continue;
        }

        if (const auto *conv =
                dynamic_cast<const ConvStage *>(stage.get())) {
            std::vector<PointwiseOp> epilogue = conv->epilogue();
            std::vector<std::string> fused;
            const size_t j = options.fuse
                                 ? collectEpilogue(stages, i + 1, epilogue,
                                                   fused)
                                 : i + 1;
            const size_t li = lut_index++;
            const TablePrecision prec = stagePrecisionAt(options, li);
            auto planned = std::make_shared<ConvStage>(
                conv->geometry(), conv->height(), conv->width(),
                conv->arena(), backendFor(prec), std::move(epilogue),
                stageEncodePrecisionAt(options, li));
            // Conv stages stay unsharded (the im2col plane is shared);
            // their shard_rows records 0 so the summary says so.
            plan.push_back(lutPlan(*planned, *planned->arena(),
                                   std::move(fused), prec,
                                   planned->encodePrecision(), 0));
            out.push_back(std::move(planned));
            i = j;
            continue;
        }

        plan.push_back(passthroughPlan(*stage));
        out.push_back(stage);
        ++i;
    }
    stages = std::move(out);

    if (tiles != nullptr)
        planTiles(stages, options, plan, *tiles);
}

std::string
planSummary(const std::vector<StagePlan> &plan, const TileExecPlan *tiles)
{
    std::string out = "isa: ";
    out += util::simdLevelName(util::simdLevel());
    out += " (runtime kernel dispatch)\n";
    char line[320];
    for (size_t i = 0; i < plan.size(); ++i) {
        const StagePlan &p = plan[i];
        if (p.code_bits > 0) {
            std::snprintf(line, sizeof(line),
                          "%2zu: %-24s codes %d-bit, tables %s, %.1f KB, "
                          "enc %s, gat %s, shard %lld",
                          i, p.description.c_str(), p.code_bits,
                          tablePrecisionName(p.precision),
                          static_cast<double>(p.table_bytes) / 1024.0,
                          p.encode_kernel.c_str(),
                          p.gather_kernel.c_str(),
                          static_cast<long long>(p.shard_rows));
        } else {
            std::snprintf(line, sizeof(line), "%2zu: %s", i,
                          p.description.c_str());
        }
        out += line;
        if (p.segment >= 0) {
            std::snprintf(line, sizeof(line), "  [seg %lld, tile %lld]",
                          static_cast<long long>(p.segment),
                          static_cast<long long>(p.tile_rows));
            out += line;
        }
        if (!p.fused.empty()) {
            out += "  (folded:";
            for (const std::string &kind : p.fused)
                out += " " + kind;
            out += ")";
        }
        out += "\n";
    }
    if (tiles != nullptr) {
        if (tiles->segments.empty()) {
            out += "tiled executor: off (no tileable LUT segment)\n";
            return out;
        }
        std::snprintf(line, sizeof(line), "tiled executor: %zu segment%s",
                      tiles->segments.size(),
                      tiles->segments.size() == 1 ? "" : "s");
        out += line;
        for (const TilePlan &seg : tiles->segments) {
            std::snprintf(line, sizeof(line),
                          "  [%lld,%lld) tile %lld (granule %lld, "
                          "%.1f KB/row)",
                          static_cast<long long>(seg.begin),
                          static_cast<long long>(seg.end),
                          static_cast<long long>(seg.tile_rows),
                          static_cast<long long>(seg.granule),
                          static_cast<double>(seg.row_bytes) / 1024.0);
            out += line;
        }
        out += "\n";
        // Per-worker steady-state plane accounting at a reference
        // 256-row batch: the per-row planes scale with the batch, the
        // tile planes do not.
        constexpr int64_t kRefRows = 256;
        std::snprintf(
            line, sizeof(line),
            "scratch planes/worker: %.1f KB/row full-batch -> %.1f KB/row"
            " + %.1f KB tile planes (at %lld rows: %.1f MB -> %.1f MB)\n",
            static_cast<double>(tiles->untiled_plane_bytes_per_row) /
                1024.0,
            static_cast<double>(tiles->tiled_plane_bytes_per_row) / 1024.0,
            static_cast<double>(tiles->tile_plane_bytes) / 1024.0,
            static_cast<long long>(kRefRows),
            static_cast<double>(
                tiles->scratchBytesPerWorker(kRefRows, false)) /
                (1024.0 * 1024.0),
            static_cast<double>(
                tiles->scratchBytesPerWorker(kRefRows, true)) /
                (1024.0 * 1024.0));
        out += line;
    }
    return out;
}

} // namespace lutdla::serve
