#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

namespace lutdla::serve {

using Clock = std::chrono::steady_clock;

api::Result<std::shared_ptr<InferenceEngine>>
InferenceEngine::create(FrozenModel model, const EngineOptions &options)
{
    if (options.threads < 0 || options.threads > 1024)
        return api::Status::invalidArgument(
            "threads must be in [0, 1024] (got " +
            std::to_string(options.threads) + ")");
    if (options.max_batch < 1 || options.max_batch > 65536)
        return api::Status::invalidArgument(
            "max_batch must be in [1, 65536] (got " +
            std::to_string(options.max_batch) + ")");
    if (options.max_wait_us < 0)
        return api::Status::invalidArgument(
            "max_wait_us must be >= 0 (got " +
            std::to_string(options.max_wait_us) + ")");
    if (options.queue_capacity < 1)
        return api::Status::invalidArgument(
            "queue_capacity must be >= 1 (got " +
            std::to_string(options.queue_capacity) + ")");
    if (model.numStages() == 0)
        return api::Status::failedPrecondition(
            "cannot serve an empty model");
    if (options.max_batch < model.rowGroup())
        return api::Status::invalidArgument(
            "max_batch " + std::to_string(options.max_batch) +
            " is smaller than the model's row group " +
            std::to_string(model.rowGroup()) +
            " (attention models batch whole sequences of seq_len rows)");
    return std::make_shared<InferenceEngine>(std::move(model), options);
}

InferenceEngine::InferenceEngine(FrozenModel model,
                                 const EngineOptions &options)
    : model_(std::move(model)), options_(options),
      queue_(static_cast<size_t>(options.queue_capacity)),
      batch_fill_(static_cast<size_t>(options.max_batch) + 1, 0)
{
    if (options_.threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        options_.threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    if (options_.autostart)
        start();
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

void
InferenceEngine::start()
{
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    if (started_ || shut_down_)
        return;
    started_ = true;
    {
        std::unique_lock<std::mutex> stats_lock(stats_mu_);
        worker_ran_batch_.assign(static_cast<size_t>(options_.threads), 0);
    }
    workers_.reserve(static_cast<size_t>(options_.threads));
    for (int i = 0; i < options_.threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
InferenceEngine::shutdown()
{
    {
        std::unique_lock<std::mutex> lock(lifecycle_mu_);
        if (shut_down_)
            return;
        shut_down_ = true;
    }
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    // Never-started engines still owe answers for whatever was queued.
    failRemaining();
}

void
InferenceEngine::failRemaining()
{
    while (auto request = queue_.tryPop())
        request->promise.set_value(api::Status::failedPrecondition(
            "engine shut down before this request was served"));
}

std::future<api::Result<Tensor>>
InferenceEngine::submitAsync(Tensor rows)
{
    return submitAsync(std::move(rows), AdmitOptions{});
}

std::future<api::Result<Tensor>>
InferenceEngine::submitAsync(Tensor rows, AdmitOptions admit)
{
    std::promise<api::Result<Tensor>> promise;
    std::future<api::Result<Tensor>> future = promise.get_future();

    api::Status status;
    if (rows.rank() != 2 ||
        rows.dim(1) != model_.inputWidth())
        status = api::Status::invalidArgument(
            "request must be [rows, " +
            std::to_string(model_.inputWidth()) + "], got " +
            shapeStr(rows.shape()));
    else if (rows.dim(0) < 1)
        status = api::Status::invalidArgument(
            "request must carry at least one row");
    else if (rows.dim(0) > options_.max_batch)
        status = api::Status::invalidArgument(
            "request of " + std::to_string(rows.dim(0)) +
            " rows exceeds max_batch " +
            std::to_string(options_.max_batch) + "; split it");
    else if (rows.dim(0) % model_.rowGroup() != 0)
        status = api::Status::invalidArgument(
            "request of " + std::to_string(rows.dim(0)) +
            " rows is not a multiple of the model's sequence length " +
            std::to_string(model_.rowGroup()) +
            "; attention models serve whole [B*seq_len, D] sequences");
    bool workers_running = false;
    {
        std::unique_lock<std::mutex> lock(lifecycle_mu_);
        if (status.ok() && shut_down_)
            status = api::Status::failedPrecondition(
                "engine is shut down; create a new one");
        workers_running = started_;
    }
    if (!status.ok()) {
        {
            std::unique_lock<std::mutex> lock(stats_mu_);
            rejected_++;
        }
        promise.set_value(status);
        return future;
    }

    Request request;
    request.rows = rows.dim(0);
    request.input = std::move(rows);
    request.promise = std::move(promise);
    request.enqueued = Clock::now();
    {
        std::unique_lock<std::mutex> lock(stats_mu_);
        if (!saw_first_submit_) {
            saw_first_submit_ = true;
            first_submit_ = request.enqueued;
        }
    }
    // With no workers running (autostart=false, before start()), a full
    // queue can never drain, so any wait for space would deadlock the
    // submitter — always fail fast in that state. Otherwise the admit
    // policy picks the wait: block forever (classic backpressure),
    // never (trySubmit), or a bounded wait.
    bool pushed;
    if (!workers_running || admit.max_wait_us == 0)
        pushed = queue_.tryPush(std::move(request));
    else if (admit.max_wait_us < 0)
        pushed = queue_.push(std::move(request));
    else
        pushed = queue_.pushFor(
            std::move(request),
            std::chrono::microseconds(admit.max_wait_us));
    if (!pushed) {
        // The request (and its promise) was dropped by the queue; answer
        // through a fresh pair.
        const bool overloaded = workers_running && !queue_.closed();
        std::promise<api::Result<Tensor>> failed_promise;
        future = failed_promise.get_future();
        failed_promise.set_value(
            overloaded
                ? api::Status::resourceExhausted(
                      admit.max_wait_us == 0
                          ? "request queue is full; retry, shed, or "
                            "raise queue_capacity"
                          : "request queue stayed full for " +
                                std::to_string(admit.max_wait_us) +
                                " us; overloaded — retry, shed, or "
                                "raise queue_capacity")
                : api::Status::failedPrecondition(
                      workers_running
                          ? "engine shut down while the request was "
                            "waiting for queue space"
                          : "request queue is full and no workers are "
                            "running; call start() or raise "
                            "queue_capacity"));
        std::unique_lock<std::mutex> lock(stats_mu_);
        rejected_++;
    }
    return future;
}

api::Result<Tensor>
InferenceEngine::trySubmit(const Tensor &rows)
{
    return submitAsync(rows, AdmitOptions::nonBlocking()).get();
}

api::Result<Tensor>
InferenceEngine::submit(const Tensor &rows)
{
    return submitAsync(rows).get();
}

void
InferenceEngine::workerLoop(int slot)
{
    // Worker-lifetime scratch: the stage chain's ping-pong activation
    // planes and conv im2col buffers grow to the largest batch seen and
    // are reused for every subsequent batch this worker executes. With
    // more than one worker the scratch carries the intra-batch pool, so
    // the LUT stages this worker initiates can shard across the pool.
    StageScratch scratch;
    if (options_.threads > 1)
        scratch.pool = this;
    while (true) {
        std::shared_ptr<ShardTask> task;
        auto first = queue_.popWork(task);
        if (task) {
            // Steal shard blocks from another worker's in-flight batch.
            // A worker that actually claimed work counts as active even
            // if it never initiates a batch of its own — otherwise
            // stats() under-counts active_workers whenever batch
            // coalescing funnels every request through one initiator.
            if (runShards(*task, scratch)) {
                std::unique_lock<std::mutex> lock(stats_mu_);
                if (slot >= 0 &&
                    static_cast<size_t>(slot) < worker_ran_batch_.size())
                    worker_ran_batch_[static_cast<size_t>(slot)] = 1;
            }
            continue;
        }
        if (!first)
            return;  // closed and drained (requests AND shard work)
        std::vector<Request> batch;
        int64_t rows = first->rows;
        batch.push_back(std::move(*first));
        const auto deadline =
            Clock::now() + std::chrono::microseconds(options_.max_wait_us);
        while (rows < options_.max_batch) {
            const auto remaining = deadline - Clock::now();
            if (remaining <= Clock::duration::zero())
                break;
            auto next = queue_.popIf(remaining, [&](const Request &r) {
                return rows + r.rows <= options_.max_batch;
            });
            if (!next)
                break;  // timeout, over-budget front, or drained
            rows += next->rows;
            batch.push_back(std::move(*next));
        }
        runBatch(batch, rows, scratch, slot);
    }
}

bool
InferenceEngine::runShards(ShardTask &task, StageScratch &scratch)
{
    bool ran = false;
    while (true) {
        const int64_t block =
            task.next.fetch_add(1, std::memory_order_relaxed);
        if (block >= task.blocks)
            return ran;
        task.fn(block, scratch);
        queue_.finishShard(task);
        ran = true;
    }
}

void
InferenceEngine::parallelFor(int64_t blocks, const ShardFn &fn,
                             StageScratch &caller)
{
    if (blocks <= 1) {
        for (int64_t b = 0; b < blocks; ++b)
            fn(b, caller);
        return;
    }
    // Publish, participate, then wait for stolen stragglers. The caller
    // always claims blocks itself, so the phase completes even when every
    // other worker is busy with its own batch.
    auto task = queue_.publishShards(blocks, fn);
    runShards(*task, caller);
    queue_.waitTaskDone(task);
}

void
InferenceEngine::runBatch(std::vector<Request> &batch, int64_t rows,
                          StageScratch &scratch, int slot)
{
    const int64_t in_width = model_.inputWidth();
    const auto exec_start = Clock::now();  // queue wait ends here
    Tensor packed(Shape{rows, in_width});
    int64_t offset = 0;
    for (const Request &request : batch) {
        std::memcpy(packed.data() + offset * in_width,
                    request.input.data(),
                    static_cast<size_t>(request.rows * in_width) *
                        sizeof(float));
        offset += request.rows;
    }

    // The stage chain accumulates its encode/gather phase times into the
    // worker's scratch; the deltas around this batch are what the batch
    // contributed.
    const uint64_t encode_before = scratch.encode_ns;
    const uint64_t gather_before = scratch.gather_ns;
    const Tensor output = model_.forwardBatch(packed, scratch);
    const int64_t out_width = output.dim(1);
    const auto done = Clock::now();

    // Record stats BEFORE fulfilling promises: a caller woken by its
    // future must already see this batch reflected in stats().
    {
        std::unique_lock<std::mutex> lock(stats_mu_);
        encode_ns_ += scratch.encode_ns - encode_before;
        gather_ns_ += scratch.gather_ns - gather_before;
        if (slot >= 0 &&
            static_cast<size_t>(slot) < worker_ran_batch_.size())
            worker_ran_batch_[static_cast<size_t>(slot)] = 1;
        requests_ += batch.size();
        rows_ += static_cast<uint64_t>(rows);
        batches_++;
        batch_fill_[static_cast<size_t>(
            std::min<int64_t>(rows, options_.max_batch))]++;
        // Queue wait (submit -> batch execution start) and service time
        // (execution start -> done) are recorded separately so overload
        // is visible: saturation blows up queue wait, not service time.
        const auto micros = [](std::chrono::steady_clock::duration d) {
            return static_cast<uint64_t>(std::max<int64_t>(
                0,
                std::chrono::duration_cast<std::chrono::microseconds>(d)
                    .count()));
        };
        const uint64_t service_us = micros(done - exec_start);
        for (const Request &request : batch) {
            latency_.record(micros(done - request.enqueued));
            queue_wait_.record(micros(exec_start - request.enqueued));
            service_.record(service_us);
        }
        last_done_ = done;
    }

    offset = 0;
    for (Request &request : batch) {
        Tensor slice(Shape{request.rows, out_width});
        std::memcpy(slice.data(), output.data() + offset * out_width,
                    static_cast<size_t>(request.rows * out_width) *
                        sizeof(float));
        offset += request.rows;
        request.promise.set_value(std::move(slice));
    }
}

EngineStats
InferenceEngine::stats() const
{
    std::unique_lock<std::mutex> lock(stats_mu_);
    EngineStats out;
    out.requests = requests_;
    out.rows = rows_;
    out.batches = batches_;
    out.rejected = rejected_;
    out.batch_fill = batch_fill_;
    for (uint8_t ran : worker_ran_batch_)
        out.active_workers += ran != 0 ? 1 : 0;
    // Per-phase times are per-ACTIVE-worker averages: each worker's
    // per-batch deltas are that batch's phase wall time (sharded phases
    // time only the initiator), so dividing the cross-worker sum by the
    // number of workers that did batch OR shard work yields numbers
    // comparable across thread counts instead of inflating with
    // concurrency.
    const double active =
        out.active_workers > 0 ? static_cast<double>(out.active_workers)
                               : 1.0;
    out.encode_cpu_seconds = static_cast<double>(encode_ns_) * 1e-9;
    out.gather_cpu_seconds = static_cast<double>(gather_ns_) * 1e-9;
    out.encode_seconds = out.encode_cpu_seconds / active;
    out.gather_seconds = out.gather_cpu_seconds / active;
    out.mean_latency_us = latency_.meanMicros();
    out.p50_latency_us = latency_.percentileMicros(50.0);
    out.p99_latency_us = latency_.percentileMicros(99.0);
    out.mean_queue_us = queue_wait_.meanMicros();
    out.p50_queue_us = queue_wait_.percentileMicros(50.0);
    out.p99_queue_us = queue_wait_.percentileMicros(99.0);
    out.mean_service_us = service_.meanMicros();
    out.p50_service_us = service_.percentileMicros(50.0);
    out.p99_service_us = service_.percentileMicros(99.0);
    if (saw_first_submit_ && batches_ > 0)
        out.wall_seconds =
            std::chrono::duration<double>(last_done_ - first_submit_)
                .count();
    return out;
}

} // namespace lutdla::serve
