#ifndef LUTDLA_SERVE_REGISTRY_H
#define LUTDLA_SERVE_REGISTRY_H

/**
 * @file
 * ModelRegistry: named, versioned FrozenModel snapshots behind the
 * multi-tenant front door (serve/frontdoor.h).
 *
 * The registry is the hot-swap mechanism, and it leans entirely on the
 * immutability the serving refactor bought: a published model is wrapped
 * in a `shared_ptr<const ModelSnapshot>` and NEVER mutated again.
 * publish() of the same name installs a fresh snapshot with a bumped
 * version under the registry lock — an atomic pointer swap as far as
 * readers are concerned — while every in-flight request keeps the
 * shared_ptr it resolved earlier and finishes on the OLD version. That is
 * the zero-drain contract: a hot-swap never pauses serving, never fails
 * an accepted request, and never mixes two versions inside one batch
 * (batches are pinned to the snapshot their requests resolved).
 * The old snapshot's arenas are freed by the last shared_ptr to drop,
 * whichever side (registry or in-flight batch) that happens to be.
 *
 * Versions are per-name and monotonically increasing, starting at 1; a
 * name removed and re-published continues its version sequence, so a
 * version number never refers to two different table sets. The ModelSlo
 * published alongside the model is what the front door's scheduler
 * reads: batching window, per-request row cap, default deadline, and the
 * priority stratum used for overload shedding.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/status.h"
#include "serve/frozen_model.h"

namespace lutdla::serve {

/**
 * Per-model serving policy, fixed at publish() time: how the front door
 * batches, prioritizes, and deadlines requests for this model. Riding on
 * the snapshot (instead of per-request knobs) keeps the scheduler's view
 * consistent across a batch and lets operators retune by republishing.
 */
struct ModelSlo
{
    /** Max rows per executed batch (also the per-request row cap). */
    int64_t max_batch = 64;
    /** Max microseconds a batch waits for more rows after it opens. */
    int64_t batch_window_us = 200;
    /**
     * Deadline applied to requests that do not carry their own, in
     * microseconds from submission; 0 means unbounded.
     */
    int64_t default_deadline_us = 0;
    /**
     * Priority stratum: the scheduler always serves the highest priority
     * with pending work first, and under overload a full queue sheds the
     * lowest-priority / latest-deadline request to admit a strictly
     * higher-priority one.
     */
    int priority = 0;
};

/**
 * One immutable published (model, version, SLO) triple. Holders pin it by
 * shared_ptr; the registry's publish() swaps the pointer, it never
 * mutates a snapshot in place.
 */
struct ModelSnapshot
{
    std::string name;
    uint64_t version = 0;
    FrozenModel model;
    ModelSlo slo;
};

/** Shared-ownership pin on a published snapshot. */
using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/**
 * Thread-safe registry of named, versioned model snapshots. All methods
 * may be called concurrently with each other and with serving.
 */
class ModelRegistry
{
  public:
    /**
     * Install `model` as the next version of `name` (1 for a new name)
     * and return that version. Readers that resolve() from now on see
     * the new snapshot; holders of the previous snapshot keep serving it
     * untouched. InvalidArgument for an empty name or nonsense SLO
     * knobs; FailedPrecondition for a model with no stages.
     */
    api::Result<uint64_t> publish(const std::string &name,
                                  FrozenModel model, ModelSlo slo = {});

    /** Current snapshot of `name`, or nullptr when not published. */
    SnapshotPtr resolve(const std::string &name) const;

    /**
     * Unpublish `name` (new submissions get NotFound; in-flight requests
     * still complete on their pinned snapshot). NotFound when absent.
     * The version sequence survives a remove + republish cycle.
     */
    api::Status remove(const std::string &name);

    /** Latest published version of `name`, 0 when never published. */
    uint64_t currentVersion(const std::string &name) const;

    /** Snapshot pins of every published model, ordered by name. */
    std::vector<SnapshotPtr> list() const;

    /** Number of currently published models. */
    size_t size() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, SnapshotPtr> models_;
    std::map<std::string, uint64_t> versions_;  ///< survives remove()
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_REGISTRY_H
