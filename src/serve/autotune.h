#ifndef LUTDLA_SERVE_AUTOTUNE_H
#define LUTDLA_SERVE_AUTOTUNE_H

/**
 * @file
 * Per-stage mixed-precision auto-tuner for the serving data plane: the
 * serving-side sibling of the co-design search engine (dse/search.h,
 * Algorithm 2). Where the DSE walks the (v, c) grid under an accuracy
 * probe, this walks the JOINT per-stage (table, encode) precision space
 * — assigning each LUT stage float32, INT8, or INT4 gather tables AND
 * float32 or INT8 encode arithmetic under a top-1 agreement budget
 * measured against the all-float32 plan.
 *
 * Algorithm (greedy bytes-saved-per-accuracy-lost descent):
 *  1. Replan the model all-float32 and record the reference top-1 labels
 *     over a deterministic Gaussian probe batch (the same top-1
 *     agreement harness the serving tests pin).
 *  2. Score every single-stage move (stage i -> INT8 tables, stage i ->
 *     INT4 tables, stage i -> INT8 encode) in isolation: bytes saved
 *     (gather stream + encode stream together — one currency, since
 *     both phases pull their tables through the same cache) and
 *     agreement lost vs the reference.
 *  3. Apply moves in descending bytes-saved-per-agreement-lost order,
 *     re-measuring the COMBINED plan after each application and
 *     reverting any move that drops agreement below the budget (stale
 *     single-move scores order the walk; the combined re-measure is
 *     what enforces the constraint, exactly like Algorithm 2's
 *     expand-then-check loop). Table and encode moves compete in one
 *     ranking, so a stage may quantize either phase, both, or neither.
 *
 * Encode moves on stages whose arena cannot carry the INT8 encode bank
 * (non-L2 metric) resolve to Float32 and save zero bytes, so the
 * descent skips them structurally — no special-casing.
 *
 * Cost: ~6L probe forwards for L LUT stages. Candidate replans share
 * every arena with the input model (FrozenModel::withPlan), so each
 * (arena, precision) bank is quantized at most once across the whole
 * search. The tuner is deterministic: seeded probe rows, stable sort
 * with index tie-breaks, no wall-clock or host dependence beyond the
 * kernel dispatch (which cannot change the measured top-1 labels
 * because every variant of a bank is bit-identical).
 *
 * Surfaced through api::ServeOptions::autoTunePrecision(budget); the
 * chosen assignment lands in PlanOptions::stage_precision +
 * stage_encode_precision and is therefore visible in planSummary() /
 * describe().
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/frozen_model.h"
#include "serve/plan.h"

namespace lutdla::serve {

/** Knobs for the precision auto-tuner; defaults match the serving
 * tests' 90% top-1 agreement bar. */
struct AutoTuneOptions
{
    /** Minimum top-1 agreement (fraction of probe rows whose argmax
     * matches the all-float32 plan) the tuned plan must keep. */
    double agreement_budget = 0.90;
    /** Probe rows to measure agreement over (rounded up to the model's
     * rowGroup so attention models see whole sequences). */
    int64_t probe_rows = 256;
    /** Seed for the deterministic Gaussian probe batch. */
    uint64_t seed = 17;
    /** Consider the INT4 bank (else the search is float32/INT8 only). */
    bool allow_int4 = true;
    /** Consider INT8 encode moves (else the search walks the table axis
     * only, reproducing the pre-joint tuner exactly). */
    bool allow_int8_encode = true;
};

/** One scored single-stage move, kept for reports and tests. */
struct AutoTuneMove
{
    int64_t lut_stage = 0;        ///< LUT stage index in chain order
    /** Table precision this move binds (table moves only). */
    TablePrecision precision = TablePrecision::Float32;
    /** True for an encode move (stage -> INT8 encode); `precision` is
     * then unused and the move leaves the stage's tables alone. */
    bool encode_move = false;
    int64_t bytes_saved = 0;      ///< vs the all-float32 plan
    double solo_agreement = 1.0;  ///< agreement with only this move
    bool applied = false;         ///< survived the combined re-measure
};

/** Auto-tuner output: the per-stage assignment plus how it was won. */
struct AutoTuneResult
{
    /** Per-LUT-stage precision in chain order — drop into
     * PlanOptions::stage_precision. */
    std::vector<TablePrecision> stage_precision;
    /** Per-LUT-stage encode precision in chain order — drop into
     * PlanOptions::stage_encode_precision. All-Float32 when
     * allow_int8_encode is off or no encode move survived. */
    std::vector<EncodePrecision> stage_encode_precision;
    /** Combined top-1 agreement of the final assignment. */
    double agreement = 1.0;
    /** Gather-stream table bytes of the final plan. */
    int64_t table_bytes = 0;
    /** Encode-stream bytes of the final plan (the other half of the
     * descent's byte currency). */
    int64_t encode_bytes = 0;
    /** Probe forwards spent (the search's cost meter). */
    int64_t evals = 0;
    /** Every move the search scored, in application order. */
    std::vector<AutoTuneMove> moves;

    /** Compact human-readable table assignment, e.g.
     * "int8/int4/float32" (table axis only — benches pin this). */
    std::string assignmentString() const;

    /** Compact encode assignment, e.g. "int8/float32/int8". */
    std::string encodeAssignmentString() const;
};

/**
 * Agreement probe: fraction in [0, 1] of probe rows whose top-1 output
 * matches the all-float32 reference under `plan`. Patterned on
 * dse::AccuracyProbe so tests can inject a synthetic landscape; the
 * default harness forwards the shared probe batch through
 * FrozenModel::withPlan(plan).
 */
using AgreementProbe = std::function<double(const PlanOptions &plan)>;

/**
 * Run the greedy descent over `model` starting from `base` (whose
 * fusion / sharding knobs are preserved; its precision fields are
 * overwritten per candidate). The returned stage_precision has exactly
 * model.numLutStages() entries. Models without LUT stages return an
 * empty assignment with agreement 1.
 *
 * `probe` overrides the built-in top-1 harness when provided (tests);
 * production callers omit it.
 */
AutoTuneResult autoTunePrecision(const FrozenModel &model,
                                 const PlanOptions &base,
                                 const AutoTuneOptions &options = {},
                                 AgreementProbe probe = nullptr);

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_AUTOTUNE_H
