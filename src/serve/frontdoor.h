#ifndef LUTDLA_SERVE_FRONTDOOR_H
#define LUTDLA_SERVE_FRONTDOOR_H

/**
 * @file
 * FrontDoor: the multi-tenant serving entry point — one shared worker
 * pool multiplexing every model published in its ModelRegistry
 * (serve/registry.h), with per-request deadlines, cancellation,
 * priority-aware scheduling, and typed load shedding instead of
 * unbounded blocking.
 *
 * Scheduling model: each published model carries a ModelSlo (priority
 * stratum, batch window, max batch, default deadline). Queued requests
 * live in per-model queues kept in EDF (earliest-deadline-first) order;
 * an idle worker always dispatches the model whose head request has the
 * highest priority, breaking ties by earliest deadline. Once a batch
 * opens it admits further requests for the SAME model snapshot in EDF
 * order until `slo.max_batch` rows or the `slo.batch_window_us` window
 * closes — and the window closes early when strictly higher-priority
 * work arrives for another model, so an interactive model never waits
 * out a bulk model's batch window.
 *
 * Overload contract: admission never blocks the submitter. When the
 * bounded queue is full, the scheduler sheds — an incoming request of
 * strictly higher priority evicts the lowest-priority, latest-deadline
 * queued request (which is answered with ResourceExhausted); otherwise
 * the incoming request itself is refused with ResourceExhausted. A
 * request whose deadline expires before its batch opens is answered
 * with DeadlineExceeded WITHOUT executing. Every shed is a typed
 * api::Status and a per-model/per-tenant overload counter — nothing is
 * silently dropped, and nothing blocks.
 *
 * Hot-swap contract: a request pins the registry snapshot it resolved
 * at submission, so ModelRegistry::publish() of a new version is
 * drain-free — queued and in-flight requests finish on the version they
 * were admitted against, new submissions ride the new version, and no
 * batch ever mixes versions. See registry.h for the version semantics.
 *
 * The worker pool implements IntraBatchPool exactly like
 * InferenceEngine: a large batch's encode/gather phases shard across
 * idle workers via work-stealing shard tasks, so one front door extracts
 * the same intra-batch parallelism the single-model engine does.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/status.h"
#include "serve/registry.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace lutdla::serve {

/** Front-door pool knobs; per-model policy lives in ModelSlo. */
struct FrontDoorOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    int threads = 0;
    /** Bounded pending-request capacity across ALL models (requests). */
    int64_t queue_capacity = 256;
    /**
     * Spawn workers in the constructor. Turn off to pre-fill queues and
     * then start() — deterministic scheduling order, used by tests and
     * the serving demo. Admission control (capacity shedding, priority
     * eviction) is active either way; nothing ever blocks.
     */
    bool autostart = true;
};

/**
 * Per-request overrides and attribution. Unset optionals inherit from
 * the model's published ModelSlo; `tenant` only buckets statistics.
 */
struct RequestOptions
{
    /**
     * Deadline in microseconds from submission; 0 = unbounded. Unset =
     * the model's slo.default_deadline_us. Expired requests are answered
     * with DeadlineExceeded and never execute.
     */
    std::optional<int64_t> deadline_us;
    /** Priority override; unset = the model's slo.priority. */
    std::optional<int> priority;
    /** Stats bucket this request is attributed to. */
    std::string tenant = "default";
};

/**
 * Cancellable submission: the future plus a cancel() that marks the
 * request so the scheduler answers it with Cancelled instead of
 * executing. Best-effort — a request already inside a batch completes
 * normally; cancel() after completion is a no-op.
 */
struct RequestTicket
{
    std::future<api::Result<Tensor>> future;

    /** Request the scheduler drop this request before execution. */
    void
    cancel()
    {
        if (cancelled)
            cancelled->store(true, std::memory_order_relaxed);
    }

    /** Shared flag polled by the scheduler at dispatch time. */
    std::shared_ptr<std::atomic<bool>> cancelled;
};

/** Declared below; Tenant handles forward their submissions to it. */
class FrontDoor;

/**
 * Tenant handle: binds a stats bucket plus default deadline/priority
 * overrides, so callers hold one object per traffic class instead of
 * re-stating RequestOptions per call. Must not outlive the FrontDoor
 * that minted it.
 */
class Tenant
{
  public:
    Tenant() = default;

    /** Serve one request under this tenant's defaults and block. */
    api::Result<Tensor> submit(const std::string &model,
                               const Tensor &rows) const;

    /** Fire-and-wait-later variant of submit(). */
    std::future<api::Result<Tensor>> submitAsync(const std::string &model,
                                                 Tensor rows) const;

    /** submitAsync() plus a cancellation handle. */
    RequestTicket submitCancellable(const std::string &model,
                                    Tensor rows) const;

    /** The stats bucket this handle submits under. */
    const std::string &name() const { return defaults_.tenant; }

    /** The defaults applied to every submission. */
    const RequestOptions &defaults() const { return defaults_; }

  private:
    friend class FrontDoor;
    Tenant(FrontDoor *door, RequestOptions defaults)
        : door_(door), defaults_(std::move(defaults))
    {
    }

    FrontDoor *door_ = nullptr;
    RequestOptions defaults_;
};

/**
 * Multi-tenant serving front door: a ModelRegistry plus one shared
 * worker pool with deadline-aware, priority-stratified scheduling.
 * Implements IntraBatchPool so LUT stages shard big batches across the
 * pool, same as the single-model engine.
 */
class FrontDoor : private IntraBatchPool
{
  public:
    /**
     * Validate options and build a front door with an EMPTY registry;
     * publish models through registry() (or the api:: facade helpers).
     * InvalidArgument on nonsense knobs.
     */
    static api::Result<std::shared_ptr<FrontDoor>>
    create(const FrontDoorOptions &options = {});

    /** Prefer create(); this constructor trusts `options` blindly. */
    explicit FrontDoor(const FrontDoorOptions &options);

    FrontDoor(const FrontDoor &) = delete;
    FrontDoor &operator=(const FrontDoor &) = delete;

    /** Graceful shutdown() — accepted requests are always answered. */
    ~FrontDoor() override;

    /** The registry of published models (thread-safe). */
    ModelRegistry &registry() { return registry_; }
    const ModelRegistry &registry() const { return registry_; }

    /** Convenience forward to registry().publish(). */
    api::Result<uint64_t> publish(const std::string &name,
                                  FrozenModel model, ModelSlo slo = {});

    /** Spawn the worker pool; idempotent; no-op after shutdown(). */
    void start();

    /**
     * Refuse new submissions, answer everything already queued (serving
     * what still fits its deadline, shedding what does not), join
     * workers. Idempotent. Never-started front doors fail queued
     * requests with FailedPrecondition instead of hanging.
     */
    void shutdown();

    /**
     * Serve one request of [rows, model's inputWidth()] against the
     * CURRENT version of `model` and block for the result. Typed
     * failures: NotFound (model not published), InvalidArgument (shape,
     * row cap), ResourceExhausted (shed under overload),
     * DeadlineExceeded (deadline passed before execution), Cancelled,
     * FailedPrecondition (after shutdown()).
     */
    api::Result<Tensor> submit(const std::string &model, const Tensor &rows,
                               const RequestOptions &options = {});

    /** Fire-and-wait-later variant of submit(). Never blocks. */
    std::future<api::Result<Tensor>>
    submitAsync(const std::string &model, Tensor rows,
                const RequestOptions &options = {});

    /** submitAsync() plus a cancellation handle. */
    RequestTicket submitCancellable(const std::string &model, Tensor rows,
                                    const RequestOptions &options = {});

    /** Mint a tenant handle carrying `defaults` (see Tenant). */
    Tenant tenant(std::string name, RequestOptions defaults = {});

    /** Consistent snapshot of the lifetime serving statistics. */
    FrontDoorStats stats() const;

    /** The options the front door runs with. */
    const FrontDoorOptions &options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Req
    {
        Tensor input;
        std::promise<api::Result<Tensor>> promise;
        SnapshotPtr snapshot;  ///< pinned at submit: the hot-swap contract
        Clock::time_point enqueued;
        Clock::time_point deadline = Clock::time_point::max();
        bool has_deadline = false;
        int priority = 0;
        int64_t rows = 0;
        uint64_t seq = 0;  ///< FIFO tiebreak within equal deadlines
        std::string tenant;
        std::shared_ptr<std::atomic<bool>> cancelled;  ///< may be null
    };

    std::future<api::Result<Tensor>>
    enqueue(const std::string &model, Tensor rows,
            const RequestOptions &options,
            std::shared_ptr<std::atomic<bool>> cancel_flag);

    void workerLoop(int slot);
    /** Pop the highest-priority earliest-deadline head. mu_ held. */
    Req popBestLocked();
    /** Any queued head strictly above `priority`? mu_ held. */
    bool higherPriorityPendingLocked(int priority) const;
    /** Claimable shard task, or nullptr. mu_ held. */
    std::shared_ptr<ShardTask> claimableTaskLocked() const;
    void runShards(ShardTask &task, StageScratch &scratch);
    void parallelFor(int64_t blocks, const ShardFn &fn,
                     StageScratch &caller) override;
    void executeBatch(std::vector<Req> &batch, int64_t rows,
                      const SnapshotPtr &snapshot, StageScratch &scratch);
    void failRemaining();

    /** Settle a request with a typed error and bump its shed counter. */
    enum class Shed { Capacity, Deadline, Cancel };
    void shed(Req &req, Shed kind, const std::string &message);

    FrontDoorOptions options_;
    ModelRegistry registry_;

    std::mutex mu_;  ///< queues + shard tasks + lifecycle flags
    std::condition_variable work_;       ///< requests OR shard work
    std::condition_variable task_done_;  ///< shard-task completion
    std::map<std::string, std::deque<Req>> queues_;  ///< EDF per model
    std::vector<std::shared_ptr<ShardTask>> tasks_;
    int64_t total_queued_ = 0;
    uint64_t next_seq_ = 0;
    bool started_ = false;
    bool closed_ = false;
    std::vector<std::thread> workers_;

    /** Internal accumulator behind one LaneStats bucket. */
    struct LaneAccum
    {
        uint64_t accepted = 0, served = 0, rows = 0, rejected = 0;
        uint64_t shed_capacity = 0, shed_deadline = 0, cancelled = 0;
        uint64_t with_deadline = 0, deadline_met = 0;
        LatencyHistogram latency, queue_wait, service;
    };
    void snapshotLane(const LaneAccum &accum, LaneStats &out) const;

    mutable std::mutex stats_mu_;
    uint64_t batches_ = 0;
    LaneAccum total_accum_;
    std::map<std::string, LaneAccum> model_accum_;
    std::map<std::string, LaneAccum> tenant_accum_;
    std::map<std::string, uint64_t> last_version_;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_FRONTDOOR_H
