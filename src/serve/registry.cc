#include "serve/registry.h"

#include <utility>

namespace lutdla::serve {

api::Result<uint64_t>
ModelRegistry::publish(const std::string &name, FrozenModel model,
                       ModelSlo slo)
{
    if (name.empty())
        return api::Status::invalidArgument(
            "model name must be non-empty");
    if (slo.max_batch < 1 || slo.max_batch > 65536)
        return api::Status::invalidArgument(
            "slo.max_batch must be in [1, 65536] (got " +
            std::to_string(slo.max_batch) + ")");
    if (slo.batch_window_us < 0)
        return api::Status::invalidArgument(
            "slo.batch_window_us must be >= 0 (got " +
            std::to_string(slo.batch_window_us) + ")");
    if (slo.default_deadline_us < 0)
        return api::Status::invalidArgument(
            "slo.default_deadline_us must be >= 0 (got " +
            std::to_string(slo.default_deadline_us) + ")");
    if (model.numStages() == 0)
        return api::Status::failedPrecondition(
            "cannot publish an empty model");

    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->name = name;
    snapshot->model = std::move(model);
    snapshot->slo = slo;

    std::unique_lock<std::mutex> lock(mu_);
    snapshot->version = ++versions_[name];
    models_[name] = std::move(snapshot);
    return models_[name]->version;
}

SnapshotPtr
ModelRegistry::resolve(const std::string &name) const
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second;
}

api::Status
ModelRegistry::remove(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = models_.find(name);
    if (it == models_.end())
        return api::Status::notFound("model '" + name +
                                     "' is not published");
    models_.erase(it);
    return {};
}

uint64_t
ModelRegistry::currentVersion(const std::string &name) const
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = versions_.find(name);
    return it == versions_.end() ? 0 : it->second;
}

std::vector<SnapshotPtr>
ModelRegistry::list() const
{
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<SnapshotPtr> out;
    out.reserve(models_.size());
    for (const auto &entry : models_)
        out.push_back(entry.second);
    return out;
}

size_t
ModelRegistry::size() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return models_.size();
}

} // namespace lutdla::serve
