#ifndef LUTDLA_SERVE_STAGE_H
#define LUTDLA_SERVE_STAGE_H

/**
 * @file
 * The serving stage-graph IR: a FrozenModel is an ordered chain of
 * immutable FrozenStage nodes, each transforming a batch of flat
 * activation rows. A single lowering pass (FrozenModel::fromModel) maps
 * every LUTBoost-converted layer kind onto one of the concrete stages
 * here — arena GEMM for LutLinear, im2col + arena GEMM for LutConv2d,
 * pooling / flatten / norm / pointwise for the glue layers — so the
 * engine's batch loop is topology-agnostic: MLPs, CNNs, and future
 * attention graphs all execute as "for stage in stages: stage.forward".
 *
 * Layout contract: a batch is always a [rows, width] row-major matrix of
 * floats. Spatial stages interpret each row as a flattened NCHW image
 * (the C*H*W geometry is baked into the stage at lowering time), which is
 * exactly the layout nn::Flatten produces — so flattening is a zero-cost
 * identity stage and conv/pool stages never reshape the batch dimension.
 *
 * Numerics contract: every stage reuses the nn:: eval-path math (shared
 * free functions, not copies) or the bit-exact LutTableArena kernel, so a
 * lowered chain is bit-exact with eval-mode model->forward(). Tests
 * enforce this across precisions.
 *
 * Thread safety: stages are immutable after construction; all mutable
 * state lives in the caller-owned StageScratch, so one FrozenModel can
 * run concurrent batches from many workers.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lutboost/lut_conv.h"
#include "lutboost/table_arena.h"
#include "tensor/im2col.h"

namespace lutdla::serve {

/**
 * Per-worker reusable buffers for one in-flight batch: the ping-pong
 * activation planes the stage chain alternates between, plus the conv
 * path's im2col/GEMM scratch. Engine workers each own one, so
 * steady-state serving performs no per-batch allocations once the
 * buffers have grown to the largest batch seen.
 */
struct StageScratch
{
    std::vector<float> ping;        ///< activation buffer A
    std::vector<float> pong;        ///< activation buffer B
    lutboost::ConvScratch conv;     ///< im2col + flat-GEMM scratch
};

/**
 * One node of the serving stage graph. Implementations are immutable and
 * thread-safe; `forward` maps [rows, inWidth()] to [rows, outWidth()].
 * Width-preserving elementwise stages advertise inPlace() and implement
 * forwardInPlace() instead — the executor then mutates the current buffer
 * directly and skips a copy.
 */
class FrozenStage
{
  public:
    virtual ~FrozenStage() = default;

    /** Stage kind tag for describe() and error messages, e.g. "conv". */
    virtual std::string kind() const = 0;

    /** Flat row width this stage consumes. */
    virtual int64_t inWidth() const = 0;

    /** Flat row width this stage produces. */
    virtual int64_t outWidth() const = 0;

    /** Arena bytes owned by this stage (0 for non-LUT stages). */
    virtual int64_t tableBytes() const { return 0; }

    /** True when the stage mutates rows in place (inWidth==outWidth). */
    virtual bool inPlace() const { return false; }

    /**
     * Out-of-place execution: read [rows, inWidth()] from `in`, write
     * [rows, outWidth()] to `out` (caller-sized; never aliases `in`).
     * In-place stages inherit this adapter, which copies then mutates.
     */
    virtual void forward(const float *in, int64_t rows, float *out,
                         StageScratch &scratch) const;

    /** In-place execution; only called when inPlace() is true. */
    virtual void forwardInPlace(float *data, int64_t rows) const;
};

/** Shared-ownership handle to an immutable stage. */
using StagePtr = std::shared_ptr<const FrozenStage>;

/** Arena-backed LUT GEMM stage (lowered LutLinear). */
class ArenaStage : public FrozenStage
{
  public:
    explicit ArenaStage(
        std::shared_ptr<const lutboost::LutTableArena> arena)
        : arena_(std::move(arena))
    {
    }

    std::string kind() const override { return "lut-gemm"; }
    int64_t inWidth() const override { return arena_->inFeatures(); }
    int64_t outWidth() const override { return arena_->outFeatures(); }
    int64_t tableBytes() const override { return arena_->sizeBytes(); }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    std::shared_ptr<const lutboost::LutTableArena> arena_;
};

/**
 * Im2col-lowered convolution stage (lowered LutConv2d): fixed input
 * geometry (C, H, W baked in at lowering time), batched im2col into
 * scratch, arena GEMM, NCHW reshape. Rows are flattened NCHW images.
 */
class ConvStage : public FrozenStage
{
  public:
    ConvStage(ConvGeometry geom, int64_t height, int64_t width,
              std::shared_ptr<const lutboost::LutTableArena> arena)
        : geom_(geom), h_(height), w_(width), arena_(std::move(arena))
    {
    }

    std::string kind() const override { return "conv"; }
    int64_t
    inWidth() const override
    {
        return geom_.in_channels * h_ * w_;
    }
    int64_t
    outWidth() const override
    {
        return geom_.out_channels * geom_.outSize(h_) * geom_.outSize(w_);
    }
    int64_t tableBytes() const override { return arena_->sizeBytes(); }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

    /** The conv geometry this stage was lowered with. */
    const ConvGeometry &geometry() const { return geom_; }

  private:
    ConvGeometry geom_;
    int64_t h_, w_;
    std::shared_ptr<const lutboost::LutTableArena> arena_;
};

/** Pointwise activation stage (lowered ReLU / GELU); in place. */
class PointwiseStage : public FrozenStage
{
  public:
    /** Which nn:: eval function the stage applies. */
    enum class Op
    {
        Relu,
        Gelu
    };

    PointwiseStage(Op op, int64_t width) : op_(op), width_(width) {}

    std::string
    kind() const override
    {
        return op_ == Op::Relu ? "relu" : "gelu";
    }
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    void forwardInPlace(float *data, int64_t rows) const override;

  private:
    Op op_;
    int64_t width_;
};

/**
 * Flatten marker stage: NCHW rows are already stored flat, so this is an
 * identity — it exists so describe() shows the spatial->flat transition
 * and widths keep chaining through the graph.
 */
class FlattenStage : public FrozenStage
{
  public:
    explicit FlattenStage(int64_t width) : width_(width) {}

    std::string kind() const override { return "flatten"; }
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    void
    forwardInPlace(float *, int64_t) const override
    {
    }

  private:
    int64_t width_;
};

/** Non-overlapping max-pool stage (lowered MaxPool2d). */
class MaxPoolStage : public FrozenStage
{
  public:
    MaxPoolStage(int64_t channels, int64_t height, int64_t width,
                 int64_t kernel)
        : c_(channels), h_(height), w_(width), k_(kernel)
    {
    }

    std::string kind() const override { return "maxpool"; }
    int64_t inWidth() const override { return c_ * h_ * w_; }
    int64_t
    outWidth() const override
    {
        return c_ * (h_ / k_) * (w_ / k_);
    }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    int64_t c_, h_, w_, k_;
};

/** Global-average-pool stage (lowered GlobalAvgPool): NCHW -> [C]. */
class GlobalAvgPoolStage : public FrozenStage
{
  public:
    GlobalAvgPoolStage(int64_t channels, int64_t height, int64_t width)
        : c_(channels), h_(height), w_(width)
    {
    }

    std::string kind() const override { return "gpool"; }
    int64_t inWidth() const override { return c_ * h_ * w_; }
    int64_t outWidth() const override { return c_; }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    int64_t c_, h_, w_;
};

/**
 * Frozen batch-norm stage (lowered BatchNorm2d): an immutable snapshot
 * of the layer's running statistics and affine parameters, applied with
 * the same nn::batchNorm2dEval kernel the live layer uses in eval mode.
 */
class BatchNormStage : public FrozenStage
{
  public:
    BatchNormStage(std::vector<float> mean, std::vector<float> var,
                   std::vector<float> gamma, std::vector<float> beta,
                   float eps, int64_t height, int64_t width)
        : mean_(std::move(mean)), var_(std::move(var)),
          gamma_(std::move(gamma)), beta_(std::move(beta)), eps_(eps),
          h_(height), w_(width)
    {
    }

    std::string kind() const override { return "batchnorm"; }
    int64_t
    inWidth() const override
    {
        return static_cast<int64_t>(mean_.size()) * h_ * w_;
    }
    int64_t outWidth() const override { return inWidth(); }
    bool inPlace() const override { return true; }
    void forwardInPlace(float *data, int64_t rows) const override;

  private:
    std::vector<float> mean_, var_, gamma_, beta_;
    float eps_;
    int64_t h_, w_;
};

/**
 * Frozen layer-norm stage (lowered LayerNorm): snapshot of gamma/beta,
 * applied with the shared nn::layerNormForward kernel.
 */
class LayerNormStage : public FrozenStage
{
  public:
    LayerNormStage(std::vector<float> gamma, std::vector<float> beta,
                   float eps)
        : gamma_(std::move(gamma)), beta_(std::move(beta)), eps_(eps)
    {
    }

    std::string kind() const override { return "layernorm"; }
    int64_t
    inWidth() const override
    {
        return static_cast<int64_t>(gamma_.size());
    }
    int64_t outWidth() const override { return inWidth(); }
    bool inPlace() const override { return true; }
    void forwardInPlace(float *data, int64_t rows) const override;

  private:
    std::vector<float> gamma_, beta_;
    float eps_;
};

/**
 * Cyclic width adapter used only by trace-synthesized models, whose
 * consecutive GEMM widths need not chain: each output column j copies
 * input column j % inWidth, preserving each traced layer's true gather
 * workload.
 */
class WidthAdaptStage : public FrozenStage
{
  public:
    WidthAdaptStage(int64_t in_width, int64_t out_width)
        : in_(in_width), out_(out_width)
    {
    }

    std::string kind() const override { return "width-adapt"; }
    int64_t inWidth() const override { return in_; }
    int64_t outWidth() const override { return out_; }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    int64_t in_, out_;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_STAGE_H
