#ifndef LUTDLA_SERVE_STAGE_H
#define LUTDLA_SERVE_STAGE_H

/**
 * @file
 * The serving stage-graph IR: a FrozenModel is an ordered chain of
 * immutable FrozenStage nodes, each transforming a batch of flat
 * activation rows. A single lowering pass (FrozenModel::fromModel) maps
 * every LUTBoost-converted layer kind onto one of the concrete stages
 * here — arena LUT-GEMM for LutLinear, im2col + arena LUT-GEMM for
 * LutConv2d, pooling / flatten / norm / pointwise for the glue layers —
 * then a planning pass (serve/plan.h) picks each LUT stage's kernel
 * backend and folds fusable neighbors into it, so the engine's batch loop
 * is topology-agnostic: MLPs, CNNs, and future attention graphs all
 * execute as "for stage in stages: stage.forward".
 *
 * Execution model: LUT stages do no inline math. They emit two kernel
 * calls — encodeBatch (rows -> bit-packed centroid indices) and
 * gatherAccumulate (indices -> accumulated table rows) — dispatched
 * through the lutboost::KernelBackend chosen at plan time (reference
 * float = bit-exact, quantized = packed codes + INT8 tables), and then
 * apply any epilogue ops the planner fused in (pointwise activations,
 * trace width adaptation) while the output is still cache-hot. The two
 * phase times are accumulated into StageScratch for EngineStats.
 *
 * Layout contract: a batch is always a [rows, width] row-major matrix of
 * floats. Spatial stages interpret each row as a flattened NCHW image
 * (the C*H*W geometry is baked into the stage at lowering time), which is
 * exactly the layout nn::Flatten produces — so flattening is a zero-cost
 * identity stage and conv/pool stages never reshape the batch dimension.
 *
 * Numerics contract: every stage reuses the nn:: eval-path math (shared
 * free functions, not copies) or the arena kernels behind the reference
 * backend, so a lowered chain under the default plan is bit-exact with
 * eval-mode model->forward() — epilogue fusion reorders nothing, it only
 * moves where the same float ops run. Tests enforce this across
 * precisions. Quantized-backend stages are deterministic but approximate.
 *
 * Thread safety: stages are immutable after construction; all mutable
 * state lives in the caller-owned StageScratch, so one FrozenModel can
 * run concurrent batches from many workers.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lutboost/kernels.h"
#include "lutboost/lut_conv.h"
#include "lutboost/table_arena.h"
#include "tensor/im2col.h"

namespace lutdla::serve {

/** Defined below; forward-declared for ShardFn / IntraBatchPool. */
struct StageScratch;

/** One shard of an intra-batch parallel phase: `block` indexes the shard,
 * `scratch` is the EXECUTING worker's scratch (each participant brings
 * its own buffers; shared state is captured by the closure). */
using ShardFn = std::function<void(int64_t block, StageScratch &scratch)>;

/**
 * Intra-batch parallelism seam: the engine hands each worker's
 * StageScratch a pool pointer, and LUT stages shard their encode / gather
 * phases over it instead of sweeping the whole batch on one thread.
 * parallelFor() blocks until every shard ran; the CALLER participates
 * (running shards with `caller` scratch) while idle workers steal the
 * rest from a shared block queue, so progress never depends on another
 * worker being free.
 */
class IntraBatchPool
{
  public:
    virtual ~IntraBatchPool() = default;

    /** Run fn(block, scratch) for block in [0, blocks); returns when all
     * blocks completed. Safe to call only from an engine worker. */
    virtual void parallelFor(int64_t blocks, const ShardFn &fn,
                             StageScratch &caller) = 0;
};

/** Elementwise op a PointwiseStage applies — and, after fusion, the op an
 * arena-sweep epilogue applies in place of that stage. */
enum class PointwiseOp
{
    Relu,
    Gelu
};

/**
 * Per-worker reusable buffers for one in-flight batch: the ping-pong
 * activation planes the stage chain alternates between, the conv path's
 * im2col/GEMM scratch, the kernel backend's packed-code buffers, and the
 * encode/gather phase-time accumulators the engine folds into its stats.
 * Engine workers each own one, so steady-state serving performs no
 * per-batch allocations once the buffers have grown to the largest batch
 * seen.
 */
struct StageScratch
{
    std::vector<float> ping;           ///< activation buffer A
    std::vector<float> pong;           ///< activation buffer B
    lutboost::ConvScratch conv;        ///< im2col + flat-GEMM scratch
    lutboost::KernelScratch kernel;    ///< packed codes + staging planes
    /**
     * Skip-edge planes, indexed by the slot a SkipSaveStage was lowered
     * with: saving copies the live activations ASIDE, out of the
     * ping-pong rotation, so any number of out-of-place stages may
     * alternate ping/pong before the matching ResidualAddStage reads the
     * plane back. Slots nest (transformer blocks reuse slot 0 and 1 in
     * sequence), and like ping/pong they grow once and are then reused.
     */
    std::vector<std::vector<float>> skip;
    /** Attention working planes (Q/K/V projections and the per-sequence
     * context accumulator), sized [rows, d_model] by AttentionStage. */
    std::vector<float> attn_q, attn_k, attn_v, attn_ctx;
    /** Attention probability rows [heads, T, T]; per-PARTICIPANT scratch
     * (each sharded sequence runs with its executing worker's plane). */
    std::vector<float> attn_probs;
    /**
     * Tile-local activation planes for the row-tiled segment executor
     * (FrozenModel::forwardBatch): while a segment streams one row tile
     * through its stages, the intermediate planes live here at
     * [tile_rows, width] instead of full-batch size — ping/pong only
     * carry segment boundaries. This is where the per-worker steady-state
     * scratch shrink planSummary() reports comes from.
     */
    std::vector<float> tile_a, tile_b;
    uint64_t encode_ns = 0;            ///< accumulated encode-phase time
    uint64_t gather_ns = 0;            ///< accumulated gather-phase time
    /** Intra-batch worker pool (engine-owned); null = single-threaded.
     * Phase times stay wall-clock: only the initiating worker's timers
     * run while shards execute in parallel. */
    IntraBatchPool *pool = nullptr;
};

/**
 * One node of the serving stage graph. Implementations are immutable and
 * thread-safe; `forward` maps [rows, inWidth()] to [rows, outWidth()].
 * Width-preserving elementwise stages advertise inPlace() and implement
 * forwardInPlace() instead — the executor then mutates the current buffer
 * directly and skips a copy.
 */
class FrozenStage
{
  public:
    virtual ~FrozenStage() = default;

    /** Stage kind tag for error messages and plans, e.g. "conv". */
    virtual std::string kind() const = 0;

    /**
     * Human-readable node label for describe(): the kind plus any planner
     * decorations (fused epilogues, table precision), e.g.
     * "lut-gemm[int8]+relu". Defaults to kind().
     */
    virtual std::string description() const { return kind(); }

    /** Flat row width this stage consumes. */
    virtual int64_t inWidth() const = 0;

    /** Flat row width this stage produces. */
    virtual int64_t outWidth() const = 0;

    /** Table bytes the stage's gather streams (0 for non-LUT stages). */
    virtual int64_t tableBytes() const { return 0; }

    /**
     * Bytes the stage's ENCODE phase streams per full sweep: the
     * transposed float codebooks under Float32 encode, the INT8 encode
     * bank (quantized codebooks + centroid norms + grid parameters)
     * under Int8. 0 for non-LUT stages. Together with tableBytes() this
     * is the byte currency the joint (table, encode) auto-tuner descends
     * on (serve/autotune.h).
     */
    virtual int64_t encodeBytes() const { return 0; }

    /** Bytes resident for the stage's tables, mirror layouts included
     * (== tableBytes() for the float bank; 0 for non-LUT stages). */
    virtual int64_t residentBytes() const { return 0; }

    /** True when the stage mutates rows in place (inWidth==outWidth). */
    virtual bool inPlace() const { return false; }

    /**
     * True when the row-tiled segment executor may stream this stage one
     * row tile at a time: forward() must be row-independent AND touch
     * nothing outside the rows handed to it — no skip-edge planes
     * (SkipSave/ResidualAdd), no whole-sequence coupling (attention), no
     * batch-shaped internal scratch (conv's im2col plane). Stages that
     * return false are structural barriers: they execute full-batch and
     * partition the chain into the fusible segments the planner tiles.
     * Defaults to false so future stages are barriers until proven
     * tileable.
     */
    virtual bool rowTileable() const { return false; }

    /**
     * Rows one gather sweep of this stage's tables covers (see
     * KernelBackend::gatherGranuleRows); tiling below this granule adds
     * whole extra table sweeps per batch. 1 for glue stages — any tile
     * size is free for them.
     */
    virtual int64_t tileGranuleRows() const { return 1; }

    /**
     * Per-row kernel-scratch bytes a tile of this stage streams beyond
     * its in/out planes (packed codes, width-adapt materialization);
     * input to the planner's tile-size model. 0 for glue stages.
     */
    virtual int64_t tileScratchBytesPerRow() const { return 0; }

    /**
     * Out-of-place execution: read [rows, inWidth()] from `in`, write
     * [rows, outWidth()] to `out` (caller-sized; never aliases `in`).
     * In-place stages inherit this adapter, which copies then mutates.
     */
    virtual void forward(const float *in, int64_t rows, float *out,
                         StageScratch &scratch) const;

    /** In-place execution; only called when inPlace() is true. Skip-edge
     * stages read/write scratch.skip; pure elementwise stages ignore it. */
    virtual void forwardInPlace(float *data, int64_t rows,
                                StageScratch &scratch) const;
};

/** Shared-ownership handle to an immutable stage. */
using StagePtr = std::shared_ptr<const FrozenStage>;

/** Apply fused pointwise epilogue ops to `total` contiguous floats. */
void applyPointwiseOps(const std::vector<PointwiseOp> &ops, float *data,
                       int64_t total);

/**
 * The arena LUT-GEMM execution body shared by ArenaStage and
 * AttentionStage's four projection GEMMs: encode `in` ([rows, arena K])
 * then gather into `out` ([rows, arena N]) through `backend`, applying
 * `epilogue` on the output while it is cache-hot, with phase times
 * accumulated into scratch.encode_ns / gather_ns. When `shard_rows` > 0
 * and `scratch.pool` is set, batches of at least two shards run each
 * phase as a parallel-for over row blocks (bit-exact with the
 * single-thread sweep; see ArenaStage). `encode` picks the encode-phase
 * arithmetic (see lutboost::EncodePrecision); sharded and unsharded
 * sweeps route it identically, so the choice never depends on batch
 * size.
 */
void arenaGemmForward(
    const lutboost::LutTableArena &arena,
    const lutboost::KernelBackend &backend, const float *in, int64_t rows,
    float *out, int64_t shard_rows,
    const std::vector<PointwiseOp> &epilogue, StageScratch &scratch,
    lutboost::EncodePrecision encode = lutboost::EncodePrecision::Float32);

/**
 * Arena-backed LUT-GEMM stage (lowered LutLinear): encode -> gather
 * through the planned kernel backend, then any fused epilogue. The
 * optional `adapt_in_width` prologue absorbs a preceding WidthAdaptStage
 * (trace models): the stage then consumes `adapt_in_width`-wide rows and
 * cyclically replicates them to the arena width in scratch before
 * encoding. When the planner set a shard granularity (`shard_rows`) and
 * the executing scratch carries an IntraBatchPool, batches of at least
 * two shards run each phase as a parallel-for over row blocks: encode
 * shards fill disjoint rows of one shared CodeBuffer, gather shards fill
 * disjoint output rows (epilogue included, still cache-hot) — bit-exact
 * with the single-thread sweep because rows are independent.
 *
 * `encode` picks the encode-phase arithmetic (lutboost::EncodePrecision):
 * Int8 is honored only when the arena supports the quantized encode bank
 * (L2 metric); otherwise the stage silently resolves to Float32, exactly
 * as the planner would. The bank is built eagerly at construction so
 * serving never pays the lazy-build cost.
 */
class ArenaStage : public FrozenStage
{
  public:
    explicit ArenaStage(
        std::shared_ptr<const lutboost::LutTableArena> arena,
        const lutboost::KernelBackend *backend = nullptr,
        std::vector<PointwiseOp> epilogue = {},
        int64_t adapt_in_width = 0, int64_t shard_rows = 0,
        lutboost::EncodePrecision encode =
            lutboost::EncodePrecision::Float32);

    std::string kind() const override { return "lut-gemm"; }
    std::string description() const override;
    int64_t
    inWidth() const override
    {
        return adapt_in_ > 0 ? adapt_in_ : arena_->inFeatures();
    }
    int64_t outWidth() const override { return arena_->outFeatures(); }
    int64_t
    tableBytes() const override
    {
        return backend_->tableBytes(*arena_);
    }
    int64_t encodeBytes() const override;
    int64_t residentBytes() const override;
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

    /** Rows are independent (encode and gather are both per-row), so the
     * streaming executor may tile the stage freely. */
    bool rowTileable() const override { return true; }
    int64_t tileGranuleRows() const override;
    int64_t tileScratchBytesPerRow() const override;

    /** The frozen arena this stage gathers from. */
    const std::shared_ptr<const lutboost::LutTableArena> &
    arena() const
    {
        return arena_;
    }

    /** The kernel backend the planner chose. */
    const lutboost::KernelBackend &backend() const { return *backend_; }

    /** Fused epilogue ops (empty before planning). */
    const std::vector<PointwiseOp> &epilogue() const { return epilogue_; }

    /** Fused width-adapt prologue input width (0 when absent). */
    int64_t adaptInWidth() const { return adapt_in_; }

    /** Intra-batch shard granularity in rows (0 = never shard). */
    int64_t shardRows() const { return shard_rows_; }

    /** The RESOLVED encode precision (Int8 only when the arena supports
     * the quantized encode bank; Float32 otherwise). */
    lutboost::EncodePrecision
    encodePrecision() const
    {
        return encode_;
    }

  private:
    std::shared_ptr<const lutboost::LutTableArena> arena_;
    const lutboost::KernelBackend *backend_;
    std::vector<PointwiseOp> epilogue_;
    int64_t adapt_in_;
    int64_t shard_rows_;
    lutboost::EncodePrecision encode_;
};

/**
 * Im2col-lowered convolution stage (lowered LutConv2d): fixed input
 * geometry (C, H, W baked in at lowering time), batched im2col into
 * scratch, encode -> gather through the planned backend, NCHW reshape,
 * then any fused epilogue (elementwise, so it commutes with the
 * reshape). Rows are flattened NCHW images.
 */
class ConvStage : public FrozenStage
{
  public:
    ConvStage(ConvGeometry geom, int64_t height, int64_t width,
              std::shared_ptr<const lutboost::LutTableArena> arena,
              const lutboost::KernelBackend *backend = nullptr,
              std::vector<PointwiseOp> epilogue = {},
              lutboost::EncodePrecision encode =
                  lutboost::EncodePrecision::Float32);

    std::string kind() const override { return "conv"; }
    std::string description() const override;
    int64_t
    inWidth() const override
    {
        return geom_.in_channels * h_ * w_;
    }
    int64_t
    outWidth() const override
    {
        return geom_.out_channels * geom_.outSize(h_) * geom_.outSize(w_);
    }
    int64_t
    tableBytes() const override
    {
        return backend_->tableBytes(*arena_);
    }
    int64_t encodeBytes() const override;
    int64_t residentBytes() const override;
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

    /** Conv stages are segment barriers for the row-tiled executor (the
     * inherited rowTileable() == false): the im2col expansion reshapes
     * the working set into a batch-shaped scratch plane whose patch rows
     * outnumber the batch rows, so the planner's row-tile size model does
     * not describe it. The conv path keeps its own internal blocking. */

    /** The conv geometry this stage was lowered with. */
    const ConvGeometry &geometry() const { return geom_; }

    /** The frozen arena this stage gathers from. */
    const std::shared_ptr<const lutboost::LutTableArena> &
    arena() const
    {
        return arena_;
    }

    /** The kernel backend the planner chose. */
    const lutboost::KernelBackend &backend() const { return *backend_; }

    /** Fused epilogue ops (empty before planning). */
    const std::vector<PointwiseOp> &epilogue() const { return epilogue_; }

    /** Input image height baked in at lowering time. */
    int64_t height() const { return h_; }

    /** Input image width baked in at lowering time. */
    int64_t width() const { return w_; }

    /** The RESOLVED encode precision (see ArenaStage). */
    lutboost::EncodePrecision
    encodePrecision() const
    {
        return encode_;
    }

  private:
    ConvGeometry geom_;
    int64_t h_, w_;
    std::shared_ptr<const lutboost::LutTableArena> arena_;
    const lutboost::KernelBackend *backend_;
    std::vector<PointwiseOp> epilogue_;
    lutboost::EncodePrecision encode_;
};

/** Pointwise activation stage (lowered ReLU / GELU); in place. */
class PointwiseStage : public FrozenStage
{
  public:
    /** Which nn:: eval function the stage applies. */
    using Op = PointwiseOp;

    PointwiseStage(Op op, int64_t width) : op_(op), width_(width) {}

    std::string
    kind() const override
    {
        return op_ == Op::Relu ? "relu" : "gelu";
    }
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    bool rowTileable() const override { return true; }
    void forwardInPlace(float *data, int64_t rows,
                        StageScratch &scratch) const override;

    /** The elementwise op this stage applies (read by the fusion pass). */
    Op op() const { return op_; }

  private:
    Op op_;
    int64_t width_;
};

/**
 * Flatten marker stage: NCHW rows are already stored flat, so this is an
 * identity — it exists so describe() shows the spatial->flat transition
 * and widths keep chaining through the graph.
 */
class FlattenStage : public FrozenStage
{
  public:
    explicit FlattenStage(int64_t width) : width_(width) {}

    std::string kind() const override { return "flatten"; }
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    bool rowTileable() const override { return true; }
    void
    forwardInPlace(float *, int64_t, StageScratch &) const override
    {
    }

  private:
    int64_t width_;
};

/** Non-overlapping max-pool stage (lowered MaxPool2d). */
class MaxPoolStage : public FrozenStage
{
  public:
    MaxPoolStage(int64_t channels, int64_t height, int64_t width,
                 int64_t kernel)
        : c_(channels), h_(height), w_(width), k_(kernel)
    {
    }

    std::string kind() const override { return "maxpool"; }
    int64_t inWidth() const override { return c_ * h_ * w_; }
    int64_t
    outWidth() const override
    {
        return c_ * (h_ / k_) * (w_ / k_);
    }
    bool rowTileable() const override { return true; }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    int64_t c_, h_, w_, k_;
};

/** Global-average-pool stage (lowered GlobalAvgPool): NCHW -> [C]. */
class GlobalAvgPoolStage : public FrozenStage
{
  public:
    GlobalAvgPoolStage(int64_t channels, int64_t height, int64_t width)
        : c_(channels), h_(height), w_(width)
    {
    }

    std::string kind() const override { return "gpool"; }
    int64_t inWidth() const override { return c_ * h_ * w_; }
    int64_t outWidth() const override { return c_; }
    bool rowTileable() const override { return true; }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    int64_t c_, h_, w_;
};

/**
 * Frozen batch-norm stage (lowered BatchNorm2d): an immutable snapshot
 * of the layer's running statistics and affine parameters, applied with
 * the same nn::batchNorm2dEval kernel the live layer uses in eval mode.
 */
class BatchNormStage : public FrozenStage
{
  public:
    BatchNormStage(std::vector<float> mean, std::vector<float> var,
                   std::vector<float> gamma, std::vector<float> beta,
                   float eps, int64_t height, int64_t width)
        : mean_(std::move(mean)), var_(std::move(var)),
          gamma_(std::move(gamma)), beta_(std::move(beta)), eps_(eps),
          h_(height), w_(width)
    {
    }

    std::string kind() const override { return "batchnorm"; }
    int64_t
    inWidth() const override
    {
        return static_cast<int64_t>(mean_.size()) * h_ * w_;
    }
    int64_t outWidth() const override { return inWidth(); }
    bool inPlace() const override { return true; }
    bool rowTileable() const override { return true; }
    void forwardInPlace(float *data, int64_t rows,
                        StageScratch &scratch) const override;

  private:
    std::vector<float> mean_, var_, gamma_, beta_;
    float eps_;
    int64_t h_, w_;
};

/**
 * Frozen layer-norm stage (lowered LayerNorm): snapshot of gamma/beta,
 * applied with the shared nn::layerNormForward kernel.
 */
class LayerNormStage : public FrozenStage
{
  public:
    LayerNormStage(std::vector<float> gamma, std::vector<float> beta,
                   float eps)
        : gamma_(std::move(gamma)), beta_(std::move(beta)), eps_(eps)
    {
    }

    std::string kind() const override { return "layernorm"; }
    int64_t
    inWidth() const override
    {
        return static_cast<int64_t>(gamma_.size());
    }
    int64_t outWidth() const override { return inWidth(); }
    bool inPlace() const override { return true; }
    bool rowTileable() const override { return true; }
    void forwardInPlace(float *data, int64_t rows,
                        StageScratch &scratch) const override;

  private:
    std::vector<float> gamma_, beta_;
    float eps_;
};

/**
 * Cyclic width adapter used only by trace-synthesized models, whose
 * consecutive GEMM widths need not chain: each output column j copies
 * input column j % inWidth, preserving each traced layer's true gather
 * workload. The planner fuses these into the following ArenaStage as an
 * encode prologue; an unfused node survives only when fusion is off or
 * no LUT stage follows.
 */
class WidthAdaptStage : public FrozenStage
{
  public:
    WidthAdaptStage(int64_t in_width, int64_t out_width)
        : in_(in_width), out_(out_width)
    {
    }

    std::string kind() const override { return "width-adapt"; }
    int64_t inWidth() const override { return in_; }
    int64_t outWidth() const override { return out_; }
    bool rowTileable() const override { return true; }
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

  private:
    int64_t in_, out_;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_STAGE_H
