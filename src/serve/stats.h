#ifndef LUTDLA_SERVE_STATS_H
#define LUTDLA_SERVE_STATS_H

/**
 * @file
 * Serving statistics: a bounded log-linear latency histogram plus the
 * EngineStats snapshot the engine hands back to callers.
 *
 * Percentile semantics: latencies are recorded into power-of-two buckets
 * with 64 linear sub-buckets each (HdrHistogram-style), so p50/p99 are
 * approximate with at most ~1.6% relative bucket width (~0.8% midpoint
 * error) — about three significant figures, so ms-scale percentiles no
 * longer snap to coarse power-of-two edges — with O(1) memory no matter
 * how many requests the engine serves. Counters (requests, rows,
 * batches) are exact.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lutdla::serve {

/** Fixed-size log-linear histogram of microsecond latencies. */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Record one latency sample (saturates at ~2^37 us ~ 38 hours). */
    void record(uint64_t micros);

    /** Total recorded samples. */
    uint64_t count() const { return count_; }

    /** Sum of recorded samples in microseconds (for exact means). */
    uint64_t totalMicros() const { return total_micros_; }

    /** Mean latency in microseconds (0 when empty). */
    double meanMicros() const;

    /**
     * Approximate percentile in microseconds; `p` in [0, 100].
     * Returns the midpoint of the bucket containing the rank.
     */
    double percentileMicros(double p) const;

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

  private:
    static int bucketIndex(uint64_t micros);
    static double bucketMidpoint(int index);

    // kSubBuckets linear buckets below kSubBuckets us (exact), then
    // kSubBuckets sub-buckets per power of two. Must be a power of two;
    // kSubShift = log2(kSubBuckets) drives the bucket math.
    static constexpr int kSubBuckets = 64;
    static constexpr int kSubShift = 6;
    static constexpr int kBuckets = kSubBuckets * 33;

    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t total_micros_ = 0;
};

/**
 * Snapshot of an engine's lifetime counters, taken under the stats lock so
 * all fields are mutually consistent. Returned by InferenceEngine::stats().
 */
struct EngineStats
{
    uint64_t requests = 0;   ///< successfully served requests
    uint64_t rows = 0;       ///< rows across served requests
    uint64_t batches = 0;    ///< executed batches
    uint64_t rejected = 0;   ///< submissions refused with an error status

    /**
     * Busy wall-clock window in seconds: first submission to most recent
     * completion. 0 until the first batch finishes.
     */
    double wall_seconds = 0.0;

    /** Mean request latency (submit -> result ready) in microseconds. */
    double mean_latency_us = 0.0;
    /** Approximate median request latency in microseconds. */
    double p50_latency_us = 0.0;
    /** Approximate 99th-percentile request latency in microseconds. */
    double p99_latency_us = 0.0;

    /**
     * Queue-wait time (submit -> the request's batch starts executing),
     * recorded separately from service time so overload is visible: a
     * saturated engine shows queue wait exploding while service time
     * stays flat. queue + service == latency per request (up to
     * microsecond rounding); the percentiles below are each taken over
     * their own histogram, so they do not add exactly.
     */
    double mean_queue_us = 0.0;
    double p50_queue_us = 0.0;   ///< approximate median queue wait
    double p99_queue_us = 0.0;   ///< approximate p99 queue wait
    /** Service time (batch execution start -> result ready). */
    double mean_service_us = 0.0;
    double p50_service_us = 0.0; ///< approximate median service time
    double p99_service_us = 0.0; ///< approximate p99 service time

    /** Workers that did real batch work: initiated at least one batch OR
     * stole at least one shard block from another worker's batch. (Shard
     * helpers used to go uncounted, so a 2-thread engine whose requests
     * all coalesced through one initiator reported active_workers 1 and
     * inflated the per-worker phase averages below.) */
    int active_workers = 0;

    /**
     * Encode-phase seconds (argmin encoding of batch rows into packed
     * codes, including im2col / BF16 staging), reported as the
     * PER-ACTIVE-WORKER AVERAGE of per-batch wall times: sharded phases
     * time only the initiating worker, and the cross-worker sum is
     * divided by active_workers — so the number is comparable across
     * thread counts (the old raw sum inflated ~Nx with N concurrent
     * workers on a contended host). Approximation caveat: the divisor
     * counts workers that EVER ran a batch, an upper bound on actual
     * concurrency, so under light load spread round-robin across the
     * pool this is a LOWER bound on per-worker phase wall time; at
     * saturation (the regime phase tuning cares about) it is tight.
     */
    double encode_seconds = 0.0;
    /** Gather-phase seconds (table accumulation, fused epilogues, NCHW
     * reshape), same per-active-worker-average semantics. */
    double gather_seconds = 0.0;

    /** Raw cross-worker sum of per-batch encode wall times (the old
     * semantics; exceeds wall_seconds under concurrency). */
    double encode_cpu_seconds = 0.0;
    /** Raw cross-worker sum of per-batch gather wall times. */
    double gather_cpu_seconds = 0.0;

    /**
     * batch_fill[r] = number of executed batches that carried exactly `r`
     * rows; index 0 is unused. Size is max_batch + 1.
     */
    std::vector<uint64_t> batch_fill;

    /** Served-row throughput over the busy window (0 when unknown). */
    double rowsPerSec() const;

    /** Mean rows per executed batch (0 before any batch). */
    double avgBatchFill() const;

    /** Encode share of LUT-stage time, in [0, 1] (0 when unmeasured). */
    double encodeFraction() const;

    /** Multi-line human-readable digest. */
    std::string summary() const;
};

/**
 * One stats bucket of the multi-tenant front door — the same shape is
 * kept per model, per tenant, and for the totals, so overload shows up
 * wherever it happens: `shed_capacity` counts requests dropped because
 * the bounded queue was full (either rejected at admission or evicted by
 * higher-priority traffic), `shed_deadline` counts requests whose
 * deadline expired before execution (failed with DeadlineExceeded
 * WITHOUT running), `cancelled` counts caller-cancelled requests. All
 * sheds are answered with a typed api::Status — nothing is silently
 * dropped. Latency percentiles follow EngineStats semantics
 * (log-linear histogram, ~0.8% midpoint error) and split queue wait
 * from service time.
 */
struct LaneStats
{
    uint64_t accepted = 0;       ///< admitted into the queue
    uint64_t served = 0;         ///< completed with an OK result
    uint64_t rows = 0;           ///< rows across served requests
    uint64_t rejected = 0;       ///< refused at submit (bad args, ...)
    uint64_t shed_capacity = 0;  ///< dropped: queue full / evicted
    uint64_t shed_deadline = 0;  ///< dropped: deadline expired unserved
    uint64_t cancelled = 0;      ///< dropped: cancelled before execution

    /** Served requests that carried a deadline. */
    uint64_t with_deadline = 0;
    /** Of those, how many completed before their deadline. */
    uint64_t deadline_met = 0;

    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double mean_queue_us = 0.0;
    double p50_queue_us = 0.0;
    double p99_queue_us = 0.0;
    double mean_service_us = 0.0;
    double p50_service_us = 0.0;
    double p99_service_us = 0.0;

    /** Fraction of deadline-carrying served requests that met it
     * (1.0 when none carried a deadline — vacuous SLO attainment). */
    double sloAttainment() const;

    /** Requests dropped for any reason (capacity, deadline, cancel). */
    uint64_t shed() const
    {
        return shed_capacity + shed_deadline + cancelled;
    }
};

/**
 * Snapshot of a FrontDoor's lifetime counters: totals plus one LaneStats
 * bucket per model and per tenant (std::map so iteration — and the
 * summary() dump — is deterministic). `last_version` records the model
 * version most recently served, making hot-swaps observable from stats.
 */
struct FrontDoorStats
{
    uint64_t batches = 0;  ///< executed batches across all models

    LaneStats total;                         ///< all traffic combined
    std::map<std::string, LaneStats> models; ///< per published model
    std::map<std::string, LaneStats> tenants;///< per tenant bucket

    /** Model version most recently served, per model. */
    std::map<std::string, uint64_t> last_version;

    /** Multi-line human-readable digest (deterministic ordering). */
    std::string summary() const;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_STATS_H
