#include "serve/stage.h"

#include <cstring>

#include "nn/activations.h"
#include "nn/norm.h"
#include "util/logging.h"

namespace lutdla::serve {

void
FrozenStage::forward(const float *in, int64_t rows, float *out,
                     StageScratch &) const
{
    // Adapter for in-place stages driven through the out-of-place entry
    // point (e.g. by callers without a reusable buffer chain).
    LUTDLA_CHECK(inPlace(), "stage '", kind(),
                 "' implements neither forward nor forwardInPlace");
    std::memcpy(out, in,
                static_cast<size_t>(rows * inWidth()) * sizeof(float));
    forwardInPlace(out, rows);
}

void
FrozenStage::forwardInPlace(float *, int64_t) const
{
    panic("stage '", kind(), "' is not an in-place stage");
}

void
ArenaStage::forward(const float *in, int64_t rows, float *out,
                    StageScratch &) const
{
    arena_->forwardBatch(in, rows, out);
}

void
ConvStage::forward(const float *in, int64_t rows, float *out,
                   StageScratch &scratch) const
{
    lutboost::convArenaForward(*arena_, geom_, in, rows, h_, w_, out,
                               scratch.conv);
}

void
PointwiseStage::forwardInPlace(float *data, int64_t rows) const
{
    const int64_t total = rows * width_;
    if (op_ == Op::Relu) {
        for (int64_t i = 0; i < total; ++i)
            data[i] = nn::reluForward(data[i]);
    } else {
        for (int64_t i = 0; i < total; ++i)
            data[i] = nn::geluForward(data[i]);
    }
}

void
MaxPoolStage::forward(const float *in, int64_t rows, float *out,
                      StageScratch &) const
{
    nn::maxPool2dForward(in, rows, c_, h_, w_, k_, out, nullptr);
}

void
GlobalAvgPoolStage::forward(const float *in, int64_t rows, float *out,
                            StageScratch &) const
{
    nn::globalAvgPoolForward(in, rows, c_, h_, w_, out);
}

void
BatchNormStage::forwardInPlace(float *data, int64_t rows) const
{
    nn::batchNorm2dEval(data, rows, static_cast<int64_t>(mean_.size()),
                        h_ * w_, mean_.data(), var_.data(), gamma_.data(),
                        beta_.data(), eps_, data);
}

void
LayerNormStage::forwardInPlace(float *data, int64_t rows) const
{
    nn::layerNormForward(data, rows, inWidth(), gamma_.data(), beta_.data(),
                         eps_, data, nullptr, nullptr);
}

void
WidthAdaptStage::forward(const float *in, int64_t rows, float *out,
                         StageScratch &) const
{
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = in + r * in_;
        float *dst = out + r * out_;
        for (int64_t j = 0; j < out_; ++j)
            dst[j] = src[j % in_];
    }
}

} // namespace lutdla::serve
