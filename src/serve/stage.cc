#include "serve/stage.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "nn/activations.h"
#include "nn/norm.h"
#include "util/logging.h"
#include "vq/code_buffer.h"

namespace lutdla::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t
nanosSince(Clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

/** "+relu+gelu"-style suffix for fused epilogues. */
std::string
epilogueSuffix(const std::vector<PointwiseOp> &ops)
{
    std::string out;
    for (PointwiseOp op : ops)
        out += op == PointwiseOp::Relu ? "+relu" : "+gelu";
    return out;
}

/** Resolve a requested encode precision against the arena's capability
 * (Int8 needs the L2-metric quantized encode bank), mirroring the
 * planner's per-stage resolution. Int8 eagerly builds the bank so the
 * first serving batch never pays the lazy cost. */
lutboost::EncodePrecision
resolveEncode(const lutboost::LutTableArena &arena,
              lutboost::EncodePrecision encode)
{
    if (encode != lutboost::EncodePrecision::Int8 ||
        !arena.int8EncodeSupported())
        return lutboost::EncodePrecision::Float32;
    arena.ensureInt8EncodeBank();
    return lutboost::EncodePrecision::Int8;
}

/** "[enc:int8]" decoration for describe(); empty under Float32 so the
 * default plan's strings stay exactly as tests pin them. */
std::string
encodeSuffix(lutboost::EncodePrecision encode)
{
    return encode == lutboost::EncodePrecision::Int8 ? "[enc:int8]" : "";
}

/** Bytes one full sweep of the stage's encode phase streams: the
 * transposed float codebooks, or the INT8 encode bank's table bytes. */
int64_t
encodeSweepBytes(const lutboost::LutTableArena &arena,
                 lutboost::EncodePrecision encode)
{
    if (encode == lutboost::EncodePrecision::Int8)
        return arena.int8EncodeTableBytes();
    return arena.inFeatures() * arena.numCentroids() *
           static_cast<int64_t>(sizeof(float));
}

} // namespace

void
applyPointwiseOps(const std::vector<PointwiseOp> &ops, float *data,
                  int64_t total)
{
    for (PointwiseOp op : ops) {
        if (op == PointwiseOp::Relu) {
            for (int64_t i = 0; i < total; ++i)
                data[i] = nn::reluForward(data[i]);
        } else {
            for (int64_t i = 0; i < total; ++i)
                data[i] = nn::geluForward(data[i]);
        }
    }
}

void
FrozenStage::forward(const float *in, int64_t rows, float *out,
                     StageScratch &scratch) const
{
    // Adapter for in-place stages driven through the out-of-place entry
    // point (e.g. by callers without a reusable buffer chain).
    LUTDLA_CHECK(inPlace(), "stage '", kind(),
                 "' implements neither forward nor forwardInPlace");
    std::memcpy(out, in,
                static_cast<size_t>(rows * inWidth()) * sizeof(float));
    forwardInPlace(out, rows, scratch);
}

void
FrozenStage::forwardInPlace(float *, int64_t, StageScratch &) const
{
    panic("stage '", kind(), "' is not an in-place stage");
}

ArenaStage::ArenaStage(std::shared_ptr<const lutboost::LutTableArena> arena,
                       const lutboost::KernelBackend *backend,
                       std::vector<PointwiseOp> epilogue,
                       int64_t adapt_in_width, int64_t shard_rows,
                       lutboost::EncodePrecision encode)
    : arena_(std::move(arena)),
      backend_(backend != nullptr ? backend
                                  : &lutboost::referenceBackend()),
      epilogue_(std::move(epilogue)),
      adapt_in_(adapt_in_width),
      shard_rows_(shard_rows),
      encode_(resolveEncode(*arena_, encode))
{
    backend_->prepare(*arena_);
}

std::string
ArenaStage::description() const
{
    std::string out = adapt_in_ > 0 ? "adapt+lut-gemm" : "lut-gemm";
    if (!backend_->bitExact())
        out += "[" + backend_->name() + "]";
    return out + encodeSuffix(encode_) + epilogueSuffix(epilogue_);
}

int64_t
ArenaStage::encodeBytes() const
{
    return encodeSweepBytes(*arena_, encode_);
}

int64_t
ArenaStage::residentBytes() const
{
    int64_t bytes = backend_->residentBytes(*arena_);
    if (encode_ == lutboost::EncodePrecision::Int8)
        bytes += arena_->int8EncodeResidentBytes();
    return bytes;
}

int64_t
ArenaStage::tileGranuleRows() const
{
    return backend_->gatherGranuleRows(*arena_);
}

int64_t
ArenaStage::tileScratchBytesPerRow() const
{
    // Packed centroid codes the tile carries between encode and gather,
    // plus the width-adapt materialization when a prologue was fused in.
    const int64_t code_bits = vq::codeBitsFor(arena_->numCentroids());
    int64_t bytes = (arena_->numSubspaces() * code_bits + 7) / 8;
    if (adapt_in_ > 0)
        bytes += arena_->inFeatures() *
                 static_cast<int64_t>(sizeof(float));
    return bytes;
}

void
arenaGemmForward(const lutboost::LutTableArena &arena,
                 const lutboost::KernelBackend &backend, const float *in,
                 int64_t rows, float *out, int64_t shard_rows,
                 const std::vector<PointwiseOp> &epilogue,
                 StageScratch &scratch, lutboost::EncodePrecision encode)
{
    // Shard both phases over the engine's worker pool when the batch is
    // big enough to split (rows are independent, so the sharded sweep is
    // bit-exact with the single-thread one). Phase timing stays on the
    // initiating worker only, so encode_ns / gather_ns deltas measure the
    // batch's per-phase WALL time regardless of how many workers helped.
    const auto t0 = Clock::now();
    const int64_t shard = shard_rows;
    const int64_t out_width = arena.outFeatures();
    const bool sharded =
        scratch.pool != nullptr && shard > 0 && rows >= 2 * shard;
    if (!sharded) {
        // The fused tile entry point: whole-batch execution is just the
        // one-tile case of the streaming executor's per-tile sweep.
        backend.forwardTile(arena, in, rows, out, scratch.kernel,
                            &scratch.encode_ns, &scratch.gather_ns,
                            encode);
        const auto t1 = Clock::now();
        applyPointwiseOps(epilogue, out, rows * out_width);
        scratch.gather_ns += nanosSince(t1);
        return;
    }

    const int64_t blocks = (rows + shard - 1) / shard;
    vq::CodeBuffer &codes = scratch.kernel.codes;
    backend.encodePrepare(arena, rows, codes);
    scratch.pool->parallelFor(
        blocks,
        [&](int64_t block, StageScratch &local) {
            const int64_t r0 = block * shard;
            const int64_t rn = std::min(shard, rows - r0);
            backend.encodeBlock(arena, in, r0, rn, codes, local.kernel,
                                encode);
        },
        scratch);
    scratch.encode_ns += nanosSince(t0);

    const auto t1 = Clock::now();
    scratch.pool->parallelFor(
        blocks,
        [&](int64_t block, StageScratch &local) {
            const int64_t r0 = block * shard;
            const int64_t rn = std::min(shard, rows - r0);
            backend.gatherBlock(arena, codes, r0, rn, out, local.kernel);
            // Epilogue per shard: elementwise, so shard boundaries cannot
            // change it, and the slab is still cache-hot.
            applyPointwiseOps(epilogue, out + r0 * out_width,
                              rn * out_width);
        },
        scratch);
    scratch.gather_ns += nanosSince(t1);
}

void
ArenaStage::forward(const float *in, int64_t rows, float *out,
                    StageScratch &scratch) const
{
    const float *src = in;
    if (adapt_in_ > 0) {
        // Fused width-adapt prologue: materialize the cyclically
        // replicated rows into kernel scratch instead of running a whole
        // extra stage (and ping-pong plane) for them. Charged to the
        // encode phase like the historical inline path.
        const auto t0 = Clock::now();
        const int64_t k = arena_->inFeatures();
        scratch.kernel.adapted.resize(static_cast<size_t>(rows * k));
        float *dst = scratch.kernel.adapted.data();
        for (int64_t r = 0; r < rows; ++r) {
            const float *row = in + r * adapt_in_;
            float *drow = dst + r * k;
            // Cyclic replication as whole-period copies (one ragged
            // tail), not a per-element modulo — the division unit is far
            // slower than the copy itself at trace widths.
            for (int64_t j = 0; j < k; j += adapt_in_)
                std::memcpy(drow + j, row,
                            static_cast<size_t>(
                                std::min(adapt_in_, k - j)) *
                                sizeof(float));
        }
        src = dst;
        scratch.encode_ns += nanosSince(t0);
    }
    arenaGemmForward(*arena_, *backend_, src, rows, out, shard_rows_,
                     epilogue_, scratch, encode_);
}

ConvStage::ConvStage(ConvGeometry geom, int64_t height, int64_t width,
                     std::shared_ptr<const lutboost::LutTableArena> arena,
                     const lutboost::KernelBackend *backend,
                     std::vector<PointwiseOp> epilogue,
                     lutboost::EncodePrecision encode)
    : geom_(geom), h_(height), w_(width), arena_(std::move(arena)),
      backend_(backend != nullptr ? backend
                                  : &lutboost::referenceBackend()),
      epilogue_(std::move(epilogue)),
      encode_(resolveEncode(*arena_, encode))
{
    backend_->prepare(*arena_);
}

std::string
ConvStage::description() const
{
    std::string out = "conv";
    if (!backend_->bitExact())
        out += "[" + backend_->name() + "]";
    return out + encodeSuffix(encode_) + epilogueSuffix(epilogue_);
}

int64_t
ConvStage::encodeBytes() const
{
    return encodeSweepBytes(*arena_, encode_);
}

int64_t
ConvStage::residentBytes() const
{
    int64_t bytes = backend_->residentBytes(*arena_);
    if (encode_ == lutboost::EncodePrecision::Int8)
        bytes += arena_->int8EncodeResidentBytes();
    return bytes;
}

void
ConvStage::forward(const float *in, int64_t rows, float *out,
                   StageScratch &scratch) const
{
    lutboost::convArenaForward(*arena_, geom_, in, rows, h_, w_, out,
                               scratch.conv, *backend_, scratch.kernel,
                               &scratch.encode_ns, &scratch.gather_ns,
                               encode_);
    if (!epilogue_.empty()) {
        // Elementwise, so it commutes with the NCHW reshape; applying it
        // on the final plane keeps it a single cache-hot sweep.
        const auto t1 = Clock::now();
        applyPointwiseOps(epilogue_, out, rows * outWidth());
        scratch.gather_ns += nanosSince(t1);
    }
}

void
PointwiseStage::forwardInPlace(float *data, int64_t rows,
                               StageScratch &) const
{
    applyPointwiseOps({op_}, data, rows * width_);
}

void
MaxPoolStage::forward(const float *in, int64_t rows, float *out,
                      StageScratch &) const
{
    nn::maxPool2dForward(in, rows, c_, h_, w_, k_, out, nullptr);
}

void
GlobalAvgPoolStage::forward(const float *in, int64_t rows, float *out,
                            StageScratch &) const
{
    nn::globalAvgPoolForward(in, rows, c_, h_, w_, out);
}

void
BatchNormStage::forwardInPlace(float *data, int64_t rows,
                               StageScratch &) const
{
    nn::batchNorm2dEval(data, rows, static_cast<int64_t>(mean_.size()),
                        h_ * w_, mean_.data(), var_.data(), gamma_.data(),
                        beta_.data(), eps_, data);
}

void
LayerNormStage::forwardInPlace(float *data, int64_t rows,
                               StageScratch &) const
{
    nn::layerNormForward(data, rows, inWidth(), gamma_.data(), beta_.data(),
                         eps_, data, nullptr, nullptr);
}

void
WidthAdaptStage::forward(const float *in, int64_t rows, float *out,
                         StageScratch &) const
{
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = in + r * in_;
        float *dst = out + r * out_;
        if (out_ > in_) {
            for (int64_t j = 0; j < out_; j += in_)
                std::memcpy(dst + j, src,
                            static_cast<size_t>(std::min(in_, out_ - j)) *
                                sizeof(float));
        } else {
            std::memcpy(dst, src, static_cast<size_t>(out_) *
                                      sizeof(float));
        }
    }
}

} // namespace lutdla::serve
