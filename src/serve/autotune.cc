#include "serve/autotune.h"

#include <algorithm>

#include "util/rng.h"

namespace lutdla::serve {

std::string
AutoTuneResult::assignmentString() const
{
    std::string out;
    for (size_t i = 0; i < stage_precision.size(); ++i) {
        if (i > 0)
            out += "/";
        out += tablePrecisionName(stage_precision[i]);
    }
    return out;
}

std::string
AutoTuneResult::encodeAssignmentString() const
{
    std::string out;
    for (size_t i = 0; i < stage_encode_precision.size(); ++i) {
        if (i > 0)
            out += "/";
        out += encodePrecisionName(stage_encode_precision[i]);
    }
    return out;
}

namespace {

/** Argmax per row of a [rows, n] tensor (first index wins ties, which
 * keeps the probe deterministic across kernels of a bit-identical
 * bank). */
std::vector<int64_t>
topOne(const Tensor &y)
{
    const int64_t rows = y.dim(0);
    const int64_t n = y.dim(1);
    std::vector<int64_t> labels(static_cast<size_t>(rows), 0);
    for (int64_t r = 0; r < rows; ++r) {
        int64_t best = 0;
        float best_v = y.at(r, 0);
        for (int64_t c = 1; c < n; ++c) {
            if (y.at(r, c) > best_v) {
                best_v = y.at(r, c);
                best = c;
            }
        }
        labels[static_cast<size_t>(r)] = best;
    }
    return labels;
}

} // namespace

AutoTuneResult
autoTunePrecision(const FrozenModel &model, const PlanOptions &base,
                  const AutoTuneOptions &options, AgreementProbe probe)
{
    const int64_t num_lut = model.numLutStages();
    AutoTuneResult result;
    result.stage_precision.assign(static_cast<size_t>(std::max<int64_t>(
                                      num_lut, 0)),
                                  TablePrecision::Float32);
    result.stage_encode_precision.assign(
        static_cast<size_t>(std::max<int64_t>(num_lut, 0)),
        EncodePrecision::Float32);

    // The plan template every candidate derives from: caller's fusion /
    // sharding knobs, (table, encode) precision fully owned by the
    // search.
    PlanOptions tmpl = base;
    tmpl.table_precision = TablePrecision::Float32;
    tmpl.stage_precision.clear();
    tmpl.encode_precision = EncodePrecision::Float32;
    tmpl.stage_encode_precision.clear();

    auto planFor = [&](const std::vector<TablePrecision> &assign,
                       const std::vector<EncodePrecision> &enc_assign) {
        PlanOptions p = tmpl;
        p.stage_precision = assign;
        p.stage_encode_precision = enc_assign;
        return p;
    };

    // Default agreement harness: deterministic Gaussian probe rows
    // (whole row groups so attention models see complete sequences),
    // top-1 labels pinned against the all-float32 replan.
    Tensor probe_rows({1, 1});
    std::vector<int64_t> ref_labels;
    if (probe == nullptr) {
        const int64_t group = std::max<int64_t>(model.rowGroup(), 1);
        int64_t rows = std::max<int64_t>(options.probe_rows, 1);
        rows = ((rows + group - 1) / group) * group;
        probe_rows = Tensor({rows, model.inputWidth()});
        Rng rng(options.seed);
        for (int64_t i = 0; i < probe_rows.numel(); ++i)
            probe_rows.at(i) = static_cast<float>(rng.gaussian(0.0, 1.0));

        const FrozenModel ref = model.withPlan(planFor({}, {}));
        ref_labels = topOne(ref.forwardBatch(probe_rows));
        ++result.evals;

        probe = [&model, &probe_rows, &ref_labels,
                 &planFor](const PlanOptions &plan) {
            const FrozenModel cand = model.withPlan(plan);
            const std::vector<int64_t> labels =
                topOne(cand.forwardBatch(probe_rows));
            int64_t hits = 0;
            for (size_t i = 0; i < labels.size(); ++i)
                hits += labels[i] == ref_labels[i] ? 1 : 0;
            return labels.empty()
                       ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(labels.size());
        };
    }

    const FrozenModel float_plan = model.withPlan(planFor({}, {}));
    // One byte currency for both precision axes: the gather stream plus
    // the encode stream — the two table pulls a batch makes per sweep.
    const int64_t float_bytes =
        float_plan.tableBytes() + float_plan.encodeBytes();

    if (num_lut <= 0) {
        result.agreement = 1.0;
        result.table_bytes = float_plan.tableBytes();
        result.encode_bytes = float_plan.encodeBytes();
        return result;
    }

    // Bytes a single-stage move saves: replan with only that stage
    // lowered and diff total (gather + encode) bytes (exact, accounts
    // for conv / attention stages owning one vs four arenas, and for
    // encode moves resolving to Float32 on unsupported arenas — those
    // save zero bytes and are skipped by the descent).
    auto bytesWith = [&](const std::vector<TablePrecision> &assign,
                         const std::vector<EncodePrecision> &enc_assign) {
        const FrozenModel cand = model.withPlan(planFor(assign, enc_assign));
        return cand.tableBytes() + cand.encodeBytes();
    };

    const std::vector<TablePrecision> all_float_t(
        static_cast<size_t>(num_lut), TablePrecision::Float32);
    const std::vector<EncodePrecision> all_float_e(
        static_cast<size_t>(num_lut), EncodePrecision::Float32);

    // Phase 1: score every single-stage move in isolation — table moves
    // and encode moves enter one shared ranking.
    std::vector<TablePrecision> candidates{TablePrecision::Int8};
    if (options.allow_int4)
        candidates.push_back(TablePrecision::Int4);

    std::vector<AutoTuneMove> moves;
    for (int64_t s = 0; s < num_lut; ++s) {
        for (TablePrecision prec : candidates) {
            std::vector<TablePrecision> assign = all_float_t;
            assign[static_cast<size_t>(s)] = prec;
            AutoTuneMove move;
            move.lut_stage = s;
            move.precision = prec;
            move.bytes_saved = float_bytes - bytesWith(assign, all_float_e);
            move.solo_agreement = probe(planFor(assign, all_float_e));
            ++result.evals;
            moves.push_back(move);
        }
        if (options.allow_int8_encode) {
            std::vector<EncodePrecision> enc = all_float_e;
            enc[static_cast<size_t>(s)] = EncodePrecision::Int8;
            AutoTuneMove move;
            move.lut_stage = s;
            move.encode_move = true;
            move.bytes_saved = float_bytes - bytesWith(all_float_t, enc);
            if (move.bytes_saved > 0) {
                // Only probe encode moves the arena can actually honor
                // (zero-byte moves mean the stage resolved to Float32).
                move.solo_agreement = probe(planFor(all_float_t, enc));
                ++result.evals;
            }
            moves.push_back(move);
        }
    }

    // Phase 2: greedy descent ordered by bytes saved per unit of solo
    // agreement lost (stable sort + (stage, precision) tie-break keeps
    // the walk deterministic). A move only upgrades a stage if it saves
    // bytes over whatever that stage already holds.
    constexpr double kEps = 1e-6;
    auto ratio = [&](const AutoTuneMove &m) {
        return static_cast<double>(m.bytes_saved) /
               std::max(kEps, 1.0 - m.solo_agreement);
    };
    std::stable_sort(moves.begin(), moves.end(),
                     [&](const AutoTuneMove &a, const AutoTuneMove &b) {
                         const double ra = ratio(a);
                         const double rb = ratio(b);
                         if (ra != rb)
                             return ra > rb;
                         if (a.lut_stage != b.lut_stage)
                             return a.lut_stage < b.lut_stage;
                         if (a.encode_move != b.encode_move)
                             return !a.encode_move; // table moves first
                         return static_cast<int>(a.precision) <
                                static_cast<int>(b.precision);
                     });

    std::vector<TablePrecision> current(static_cast<size_t>(num_lut),
                                        TablePrecision::Float32);
    std::vector<EncodePrecision> current_enc(static_cast<size_t>(num_lut),
                                             EncodePrecision::Float32);
    int64_t current_bytes = float_bytes;
    double current_agreement = 1.0;

    for (AutoTuneMove &move : moves) {
        if (move.bytes_saved <= 0)
            continue; // never trades accuracy for more bytes
        if (move.solo_agreement < options.agreement_budget)
            continue; // cannot survive the combined check either
        std::vector<TablePrecision> next = current;
        std::vector<EncodePrecision> next_enc = current_enc;
        const size_t s = static_cast<size_t>(move.lut_stage);
        if (move.encode_move)
            next_enc[s] = EncodePrecision::Int8;
        else
            next[s] = move.precision;
        const int64_t next_bytes = bytesWith(next, next_enc);
        if (next_bytes >= current_bytes)
            continue; // stage already holds a smaller bank
        const double agreement = probe(planFor(next, next_enc));
        ++result.evals;
        if (agreement < options.agreement_budget)
            continue; // revert: combined plan broke the budget
        current = std::move(next);
        current_enc = std::move(next_enc);
        current_bytes = next_bytes;
        current_agreement = agreement;
        move.applied = true;
    }

    // Record the final plan's two byte streams separately (the descent
    // tracked their sum); the replan is free — every bank is cached.
    const FrozenModel final_plan =
        model.withPlan(planFor(current, current_enc));
    result.stage_precision = std::move(current);
    result.stage_encode_precision = std::move(current_enc);
    result.agreement = current_agreement;
    result.table_bytes = final_plan.tableBytes();
    result.encode_bytes = final_plan.encodeBytes();
    result.moves = std::move(moves);
    return result;
}

} // namespace lutdla::serve
