#ifndef LUTDLA_SERVE_REQUEST_QUEUE_H
#define LUTDLA_SERVE_REQUEST_QUEUE_H

/**
 * @file
 * BoundedQueue: the MPMC request queue under the inference engine.
 *
 * A classic mutex + two-condition-variable bounded queue, chosen over a
 * lock-free ring because the engine's batches amortize every pop over
 * hundreds of microseconds of LUT gathering — queue overhead is noise, and
 * the blocking push doubles as admission control (backpressure) when
 * submitters outrun the workers.
 *
 * Close semantics: after close(), pushes are refused but pops keep draining
 * whatever is already queued, then report exhaustion. That is exactly the
 * graceful-shutdown contract InferenceEngine::shutdown() needs.
 */

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lutdla::serve {

/** Bounded blocking MPMC queue. T must be movable. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Block until space is available, then enqueue.
     * @return false when the queue was closed (item is dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /**
     * Enqueue only if space is available right now (never blocks).
     * @return false when full or closed (item is dropped).
     */
    bool
    tryPush(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available and dequeue it.
     * @return nullopt only when the queue is closed AND drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        return takeFrontLocked();
    }

    /**
     * Dequeue the front item only if `admit(front)` accepts it, waiting up
     * to `timeout` for one to arrive. Returns nullopt on timeout, on a
     * rejected front item (left in place), or when closed and drained —
     * all three mean "close the current batch" to the engine's batcher.
     */
    template <typename Pred>
    std::optional<T>
    popIf(std::chrono::steady_clock::duration timeout, const Pred &admit)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (!not_empty_.wait_for(lock, timeout, [&] {
                return closed_ || !items_.empty();
            }))
            return std::nullopt;
        if (!items_.empty() && !admit(items_.front()))
            return std::nullopt;
        return takeFrontLocked();
    }

    /** Dequeue without blocking; nullopt when empty. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        return takeFrontLocked();
    }

    /** Refuse new pushes and wake every waiter. Pops keep draining. */
    void
    close()
    {
        std::unique_lock<std::mutex> lock(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /** True after close(). */
    bool
    closed() const
    {
        std::unique_lock<std::mutex> lock(mu_);
        return closed_;
    }

    /** Instantaneous queue depth (racy by nature; for stats only). */
    size_t
    size() const
    {
        std::unique_lock<std::mutex> lock(mu_);
        return items_.size();
    }

  private:
    std::optional<T>
    takeFrontLocked()
    {
        if (items_.empty())
            return std::nullopt;
        std::optional<T> item(std::move(items_.front()));
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    size_t capacity_;
    bool closed_ = false;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_REQUEST_QUEUE_H
