#ifndef LUTDLA_SERVE_REQUEST_QUEUE_H
#define LUTDLA_SERVE_REQUEST_QUEUE_H

/**
 * @file
 * WorkQueue: the engine's combined work source — a bounded MPMC request
 * queue PLUS the shared shard-block queue behind intra-batch parallelism
 * — under ONE mutex/condition pair, so an idle worker sleeps on a single
 * wait and wakes for whichever kind of work arrives first.
 *
 * Why combined: with separate queues, a worker blocked waiting for
 * requests could never notice shard work (another worker splitting a big
 * batch), which is exactly the situation intra-batch sharding exists for.
 * One condition variable covering both is the simplest structure that
 * cannot miss a wakeup. The queue half keeps the classic two-condition
 * bounded design: blocking push doubles as admission control
 * (backpressure) when submitters outrun the workers.
 *
 * Shard tasks: an initiating worker publishes a ShardTask (a closure over
 * `blocks` independent row blocks), runs blocks itself, and waits for
 * stragglers; idle workers steal blocks by bumping the task's atomic
 * cursor — a wait-free claim, so the lock is only held to publish, sleep,
 * and signal completion. Every participant runs shards with its OWN
 * StageScratch (passed by the worker loop), which is what keeps the
 * kernels allocation-free and race-free.
 *
 * Close semantics: after close(), pushes are refused but request pops
 * keep draining, and workers still steal whatever shard blocks remain —
 * an in-flight batch always completes. That is the graceful-shutdown
 * contract InferenceEngine::shutdown() needs.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "serve/stage.h"

namespace lutdla::serve {

/**
 * One intra-batch parallel-for in flight: `blocks` shards claimed via the
 * atomic `next` cursor (work-stealing without a lock), `completed` counts
 * finished shards. Published on the WorkQueue by the initiating worker;
 * helpers hold shared_ptr copies, so the task outlives early removal.
 */
struct ShardTask
{
    ShardFn fn;                       ///< runs one block on any worker
    int64_t blocks = 0;               ///< total shard count
    std::atomic<int64_t> next{0};     ///< next unclaimed block
    std::atomic<int64_t> completed{0};///< finished blocks
};

/** Combined bounded MPMC request queue + shard-block queue. T movable. */
template <typename T>
class WorkQueue
{
  public:
    explicit WorkQueue(size_t capacity) : capacity_(capacity) {}

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /**
     * Block until space is available, then enqueue.
     * @return false when the queue was closed (item is dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        work_.notify_one();
        return true;
    }

    /**
     * Enqueue, waiting at most `timeout` for space — the bounded-wait
     * admission path between push() (block forever) and tryPush()
     * (never wait). @return false on timeout or close (item dropped).
     */
    bool
    pushFor(T item, std::chrono::steady_clock::duration timeout)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (!not_full_.wait_for(lock, timeout, [&] {
                return closed_ || items_.size() < capacity_;
            }))
            return false;
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        work_.notify_one();
        return true;
    }

    /**
     * Enqueue only if space is available right now (never blocks).
     * @return false when full or closed (item is dropped).
     */
    bool
    tryPush(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
        work_.notify_one();
        return true;
    }

    /**
     * Block until ANY work exists, preferring shard work: returns a
     * claimable ShardTask via `task`, or a dequeued request, or nullopt
     * with null `task` only when closed AND fully drained (requests and
     * shard blocks both exhausted) — the worker-exit signal.
     */
    std::optional<T>
    popWork(std::shared_ptr<ShardTask> &task)
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (true) {
            work_.wait(lock, [&] {
                return closed_ || !items_.empty() || claimableLocked();
            });
            task = claimableTaskLocked();
            if (task)
                return std::nullopt;
            if (!items_.empty())
                return takeFrontLocked();
            if (closed_)
                return std::nullopt;  // null task + nullopt = exit
            // Spurious satisfaction: the shard task that woke us was
            // drained (lock-free cursor) before we could claim it. Keep
            // waiting — returning here would make a live worker exit.
        }
    }

    /**
     * Dequeue the front request only if `admit(front)` accepts it,
     * waiting up to `timeout` for one to arrive. Returns nullopt on
     * timeout, on a rejected front item (left in place), or when closed
     * and drained — all three mean "close the current batch" to the
     * engine's batcher. Shard work never interrupts batch filling; the
     * worker helps again once its own batch is done.
     */
    template <typename Pred>
    std::optional<T>
    popIf(std::chrono::steady_clock::duration timeout, const Pred &admit)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (!work_.wait_for(lock, timeout, [&] {
                return closed_ || !items_.empty();
            }))
            return std::nullopt;
        if (!items_.empty() && !admit(items_.front()))
            return std::nullopt;
        return takeFrontLocked();
    }

    /** Dequeue a request without blocking; nullopt when empty. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        return takeFrontLocked();
    }

    /**
     * Publish a shard task and wake every idle worker. The CALLER must
     * then claim blocks itself (claim/finish) and finally
     * waitTaskDone() — publication never blocks.
     */
    std::shared_ptr<ShardTask>
    publishShards(int64_t blocks, ShardFn fn)
    {
        auto task = std::make_shared<ShardTask>();
        task->fn = std::move(fn);
        task->blocks = blocks;
        std::unique_lock<std::mutex> lock(mu_);
        tasks_.push_back(task);
        work_.notify_all();
        return task;
    }

    /** Mark one shard finished; signals waiters when the task completes. */
    void
    finishShard(ShardTask &task)
    {
        if (task.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            task.blocks) {
            std::unique_lock<std::mutex> lock(mu_);
            task_done_.notify_all();
        }
    }

    /** Block until every block of `task` completed, then retire it. */
    void
    waitTaskDone(const std::shared_ptr<ShardTask> &task)
    {
        std::unique_lock<std::mutex> lock(mu_);
        task_done_.wait(lock, [&] {
            return task->completed.load(std::memory_order_acquire) ==
                   task->blocks;
        });
        for (size_t i = 0; i < tasks_.size(); ++i) {
            if (tasks_[i] == task) {
                tasks_.erase(tasks_.begin() + static_cast<long>(i));
                break;
            }
        }
    }

    /** Refuse new pushes and wake every waiter. Pops keep draining. */
    void
    close()
    {
        std::unique_lock<std::mutex> lock(mu_);
        closed_ = true;
        work_.notify_all();
        not_full_.notify_all();
        task_done_.notify_all();
    }

    /** True after close(). */
    bool
    closed() const
    {
        std::unique_lock<std::mutex> lock(mu_);
        return closed_;
    }

    /** Instantaneous request depth (racy by nature; for stats only). */
    size_t
    size() const
    {
        std::unique_lock<std::mutex> lock(mu_);
        return items_.size();
    }

  private:
    bool
    claimableLocked() const
    {
        for (const auto &task : tasks_)
            if (task->next.load(std::memory_order_relaxed) < task->blocks)
                return true;
        return false;
    }

    std::shared_ptr<ShardTask>
    claimableTaskLocked() const
    {
        for (const auto &task : tasks_)
            if (task->next.load(std::memory_order_relaxed) < task->blocks)
                return task;
        return nullptr;
    }

    std::optional<T>
    takeFrontLocked()
    {
        if (items_.empty())
            return std::nullopt;
        std::optional<T> item(std::move(items_.front()));
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    mutable std::mutex mu_;
    std::condition_variable work_;       ///< requests OR shard work OR close
    std::condition_variable not_full_;   ///< backpressure
    std::condition_variable task_done_;  ///< shard-task completion
    std::deque<T> items_;
    std::vector<std::shared_ptr<ShardTask>> tasks_;
    size_t capacity_;
    bool closed_ = false;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_REQUEST_QUEUE_H
