#ifndef LUTDLA_SERVE_STAGE_TRANSFORMER_H
#define LUTDLA_SERVE_STAGE_TRANSFORMER_H

/**
 * @file
 * Transformer stages and the skip-edge IR extension of the serving stage
 * graph (serve/stage.h).
 *
 * Skip edges: the stage chain stays an ordered list, but a
 * SkipSaveStage / ResidualAddStage pair threads a DAG edge through it —
 * save copies the live activation plane ASIDE into a numbered slot of the
 * worker's StageScratch (out of the ping-pong rotation), any number of
 * stages transform the trunk, and the matching add folds the saved plane
 * back in elementwise. Slots are assigned by nesting depth at lowering
 * time, so transformer blocks (two sequential skip edges) and nested
 * residual graphs reuse the same two or three planes across the whole
 * chain, and steady-state batches still allocate nothing once the planes
 * have grown. Because the saved plane is row-disjoint scratch per worker,
 * intra-batch sharding needs no extra synchronization: shards of the add
 * touch disjoint rows of both the trunk and the slot.
 *
 * Fusion constraint: a skip edge is a barrier. The planner never folds a
 * pointwise stage across a SkipSaveStage or ResidualAddStage, because the
 * folded op would then run before the save (changing what the skip edge
 * carries) or before the add (changing the trunk the residual lands on).
 * This falls out structurally — epilogue collection stops at the first
 * non-PointwiseStage — and tests pin it.
 *
 * AttentionStage runs the paper's transformer workload on the LUT data
 * plane: the Q/K/V/output projections are four arena LUT-GEMMs (the same
 * encode -> gather kernels as ArenaStage, sharded over the engine's
 * worker pool), while the scaled-dot-product core reuses the exact
 * nn::attentionSequenceContext kernel — stable softmax included — that
 * eval-mode MultiHeadSelfAttention runs, so a lowered block is bit-exact
 * with the training graph under the reference backend. Sequences are
 * independent, so the sdpa core shards over sequences (disjoint context
 * rows) and stays bit-exact under any worker count.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/stage.h"

namespace lutdla::serve {

/**
 * Skip-edge source: copies the live [rows, width] plane into
 * scratch.skip[slot] and passes the trunk through unchanged. Lowered at
 * the entry of a residual connection; the matching ResidualAddStage
 * carries the same slot. In-place (identity on the trunk).
 */
class SkipSaveStage : public FrozenStage
{
  public:
    SkipSaveStage(int64_t width, int64_t slot)
        : width_(width), slot_(slot)
    {
    }

    std::string kind() const override { return "skip-save"; }
    std::string description() const override;
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    /** Segment barrier for the row-tiled executor: the save writes a
     * full-batch plane into scratch.skip that the matching add reads
     * back after arbitrarily many stages, so the edge's lifetime spans
     * stages — a tile cannot carry it through the segment. */
    bool rowTileable() const override { return false; }
    void forwardInPlace(float *data, int64_t rows,
                        StageScratch &scratch) const override;

    /** Scratch slot the saved plane lives in (matched by the add). */
    int64_t slot() const { return slot_; }

  private:
    int64_t width_;
    int64_t slot_;
};

/**
 * Skip-edge sink: adds scratch.skip[slot] (saved by the matching
 * SkipSaveStage) elementwise into the live [rows, width] plane — the
 * same trunk-plus-skip order the nn:: residual forwards run, so the
 * lowered edge is bit-exact. In-place.
 */
class ResidualAddStage : public FrozenStage
{
  public:
    ResidualAddStage(int64_t width, int64_t slot)
        : width_(width), slot_(slot)
    {
    }

    std::string kind() const override { return "residual-add"; }
    std::string description() const override;
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    /** Segment barrier: reads the skip plane its SkipSaveStage partner
     * saved (see that stage's note). */
    bool rowTileable() const override { return false; }
    void forwardInPlace(float *data, int64_t rows,
                        StageScratch &scratch) const override;

    /** Scratch slot the saved plane is read from. */
    int64_t slot() const { return slot_; }

  private:
    int64_t width_;
    int64_t slot_;
};

/**
 * Row-wise softmax stage (lowered nn::Softmax): the shared numerically
 * stable nn::softmaxForward kernel (row-max subtraction), applied in
 * place. Never fused into arena epilogues — softmax is row-coupled, not
 * pointwise.
 */
class SoftmaxStage : public FrozenStage
{
  public:
    explicit SoftmaxStage(int64_t width) : width_(width) {}

    std::string kind() const override { return "softmax"; }
    int64_t inWidth() const override { return width_; }
    int64_t outWidth() const override { return width_; }
    bool inPlace() const override { return true; }
    /** Softmax couples columns WITHIN a row, never across rows, so the
     * row-tiled executor may stream it (unlike arena epilogue fusion,
     * which it is excluded from for not being pointwise). */
    bool rowTileable() const override { return true; }
    void forwardInPlace(float *data, int64_t rows,
                        StageScratch &scratch) const override;

  private:
    int64_t width_;
};

/**
 * Multi-head self-attention stage (lowered MultiHeadSelfAttention): four
 * frozen projection arenas (Q, K, V, output) run as LUT-GEMMs through
 * the planned kernel backend, with the scaled-dot-product + stable
 * softmax core between them executed by the shared
 * nn::attentionSequenceContext kernel per sequence. Batches must be
 * whole sequences ([B * seq_len, d_model] rows); the engine enforces
 * this at admission via FrozenModel::rowGroup(). Projection GEMMs shard
 * over rows and the sdpa core shards over sequences when the executing
 * scratch carries an IntraBatchPool — all bit-exact with the
 * single-thread sweep. The planner may fuse a pointwise epilogue into
 * the output projection.
 */
class AttentionStage : public FrozenStage
{
  public:
    /** One frozen projection arena per Q/K/V/output. */
    struct Arenas
    {
        std::shared_ptr<const lutboost::LutTableArena> q, k, v, o;
    };

    AttentionStage(Arenas arenas, int64_t seq_len, int64_t heads,
                   const lutboost::KernelBackend *backend = nullptr,
                   std::vector<PointwiseOp> epilogue = {},
                   int64_t shard_rows = 0,
                   lutboost::EncodePrecision encode =
                       lutboost::EncodePrecision::Float32);

    std::string kind() const override { return "attention"; }
    std::string description() const override;
    int64_t inWidth() const override { return arenas_.q->inFeatures(); }
    int64_t outWidth() const override { return arenas_.o->outFeatures(); }
    /** Segment barrier: the sdpa core couples all rowGroup() == seq_len
     * rows of a sequence (every context row reads every K/V row), so the
     * stage needs whole sequences and full-batch projection planes — it
     * executes between tiled segments, never inside one. */
    bool rowTileable() const override { return false; }
    int64_t tableBytes() const override;
    int64_t encodeBytes() const override;
    int64_t residentBytes() const override;
    void forward(const float *in, int64_t rows, float *out,
                 StageScratch &scratch) const override;

    /** The four frozen projection arenas. */
    const Arenas &arenas() const { return arenas_; }

    /** The kernel backend the planner chose. */
    const lutboost::KernelBackend &backend() const { return *backend_; }

    /** Fused epilogue ops on the output projection (empty pre-plan). */
    const std::vector<PointwiseOp> &epilogue() const { return epilogue_; }

    /** Sequence length T; batches must be a multiple of it. */
    int64_t seqLen() const { return seq_len_; }

    /** Head count (columns split as d_model / heads slices). */
    int64_t heads() const { return heads_; }

    /** Embedding width D. */
    int64_t dModel() const { return d_model_; }

    /** Intra-batch shard granularity in rows (0 = never shard). */
    int64_t shardRows() const { return shard_rows_; }

    /** The RESOLVED encode precision, shared by all four projection
     * GEMMs (Int8 only when EVERY projection arena supports the
     * quantized encode bank; Float32 otherwise). */
    lutboost::EncodePrecision
    encodePrecision() const
    {
        return encode_;
    }

  private:
    Arenas arenas_;
    int64_t seq_len_;
    int64_t heads_;
    int64_t d_model_;
    const lutboost::KernelBackend *backend_;
    std::vector<PointwiseOp> epilogue_;
    int64_t shard_rows_;
    lutboost::EncodePrecision encode_;
};

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_STAGE_TRANSFORMER_H
