#ifndef LUTDLA_SERVE_PLAN_H
#define LUTDLA_SERVE_PLAN_H

/**
 * @file
 * The lowering-time planning pass: after FrozenModel's lowering walk has
 * produced a literal stage-per-layer chain, planStages() rewrites it into
 * the chain the data plane actually executes —
 *
 *  - precision selection: every LUT stage (ArenaStage / ConvStage /
 *    AttentionStage) is bound to a lutboost::KernelBackend (bit-exact
 *    float32 reference, packed-code + INT8-table, or nibble-packed
 *    INT4-table) — globally via PlanOptions::table_precision or
 *    heterogeneously via PlanOptions::stage_precision — and each bound
 *    quantized bank is built eagerly so serving never pays the cost;
 *  - epilogue fusion: pointwise activation stages directly following a
 *    LUT stage fold into that stage's arena-sweep epilogue (the same
 *    float ops run while the output slab is cache-hot, so the fused chain
 *    stays bit-exact under the reference backend). Skip edges are fusion
 *    barriers: SkipSaveStage / ResidualAddStage / SoftmaxStage are not
 *    PointwiseStages, so epilogue collection stops at them and no op is
 *    ever folded across a skip edge (which would change what the edge
 *    carries or what the residual lands on);
 *  - prologue fusion: a WidthAdaptStage directly preceding an ArenaStage
 *    (trace models) folds into that stage's encode prologue, dropping a
 *    whole ping-pong plane pass.
 *
 * Each planned node is recorded as a StagePlan — final label, what got
 * folded in, the packed code width, the table precision — surfaced
 * through FrozenModel::plan()/planSummary() so examples and reports can
 * show exactly what the data plane will run. See docs/SERVING.md for the
 * fusion rule table.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/stage.h"

namespace lutdla::serve {

/** Gather-phase table precision the planner binds LUT stages to. */
enum class TablePrecision
{
    Float32,  ///< bit-exact float bank (reference backend)
    Int8,     ///< INT8 bank with per-(subspace, block) scales
    Int4      ///< nibble-packed INT4 bank, two columns per byte
};

/** Stable name for a table precision ("float32" / "int8" / "int4"). */
const char *tablePrecisionName(TablePrecision precision);

/**
 * Encode-phase argmin precision, re-exported from lutboost: Float32 is
 * the exact scan, Int8 the integer argmin over the quantized encode
 * bank. Orthogonal to TablePrecision — the planner binds (table, encode)
 * per LUT stage and the joint auto-tuner (serve/autotune.h) searches the
 * product space.
 */
using EncodePrecision = lutboost::EncodePrecision;

/** Stable name for an encode precision ("float32" / "int8"). */
using lutboost::encodePrecisionName;

/** Knobs for the planning pass; defaults preserve bit-exact semantics. */
struct PlanOptions
{
    /** Table bank every LUT stage gathers from (unless overridden per
     * stage below). */
    TablePrecision table_precision = TablePrecision::Float32;
    /**
     * Heterogeneous per-stage precision: entry i binds the i-th LUT
     * stage IN CHAIN ORDER (ArenaStage / AttentionStage / ConvStage,
     * counted after fusion, which never changes the LUT stage count).
     * Empty = every LUT stage uses `table_precision`; shorter than the
     * chain = remaining stages fall back to `table_precision`. This is
     * the knob the mixed-precision auto-tuner (serve/autotune.h) emits.
     */
    std::vector<TablePrecision> stage_precision;
    /**
     * Encode-phase precision every LUT stage argmin-encodes with (unless
     * overridden per stage below). Int8 is honored only on stages whose
     * arena supports the quantized encode bank (L2 metric); others
     * silently resolve to Float32 — the StagePlan records the RESOLVED
     * choice.
     */
    EncodePrecision encode_precision = EncodePrecision::Float32;
    /**
     * Heterogeneous per-stage encode precision, indexed exactly like
     * `stage_precision` (i-th LUT stage in chain order; shorter than the
     * chain = fall back to `encode_precision`). The joint auto-tuner
     * emits this alongside `stage_precision`.
     */
    std::vector<EncodePrecision> stage_encode_precision;
    /** Fold pointwise / width-adapt neighbors into LUT stages. */
    bool fuse = true;
    /**
     * Intra-batch shard granularity in rows for lut-gemm stages (the
     * engine's worker pool splits batches of >= 2 shards). 0 = auto: one
     * shuffle-gather chunk (64 rows on AVX-512, 32 on AVX2, else 32) so
     * sharding never starves the vector kernels of full chunks.
     */
    int64_t shard_rows = 0;
    /**
     * Row-tile size for the streaming segment executor (see
     * FrozenModel::forwardBatch): 0 = auto — the largest multiple of the
     * segment's gather granule whose streamed working set (tile in-plane
     * + packed codes + tile out-plane, at the segment's widest stage)
     * fits tile_cache_bytes; -1 = disable tiling entirely (full-batch
     * phase barriers, the pre-tiling executor — what the bench A/B
     * measures against); > 0 = force this many rows per tile. Any value
     * is bit-exact with any other — the tile size only moves throughput,
     * because tileable stages are row-independent and every gather
     * variant of a bank is bit-identical across row groupings.
     */
    int64_t tile_rows = 0;
    /**
     * Cache budget in bytes the auto tile-size model targets. 0 =
     * default 1 MiB — about half a contemporary L2, leaving the other
     * half for the table stream the gather pulls through it.
     */
    int64_t tile_cache_bytes = 0;
};

/** One planned stage: what the node runs and what was folded into it. */
struct StagePlan
{
    std::string kind;         ///< base stage kind, e.g. "lut-gemm"
    std::string description;  ///< planned label, e.g. "lut-gemm[int8]+relu"
    std::vector<std::string> fused;  ///< kinds of stages folded in
    int code_bits = 0;        ///< packed code width; 0 for non-LUT stages
    TablePrecision precision = TablePrecision::Float32;  ///< LUT stages
    /** RESOLVED encode-phase precision (Float32 when the stage's arena
     * cannot honor an Int8 request). */
    EncodePrecision encode_precision = EncodePrecision::Float32;
    int64_t table_bytes = 0;  ///< bytes the stage's gather streams
    /** Bytes the stage's encode phase streams per sweep (transposed
     * float codebooks, or the INT8 encode bank); 0 for non-LUT stages. */
    int64_t encode_bytes = 0;
    /** Encode kernel the runtime dispatch resolved ("avx512-c16",
     * "avx2-c16", "avx512-genc", "generic" for the float scan;
     * "int8-dot-vnni" / "int8-madd-avx2" / "int8-scalar" under Int8
     * encode); empty for non-LUT stages. */
    std::string encode_kernel;
    /** Gather kernel ("grouped-sweep" float bank; "shuffle-avx512" /
     * "shuffle-avx2" / "scalar" for the INT8 and INT4 banks); empty for
     * non-LUT stages. */
    std::string gather_kernel;
    /** Intra-batch shard granularity bound at plan time (0 = unsharded,
     * e.g. conv stages). */
    int64_t shard_rows = 0;
    /** Tiled-executor segment this stage belongs to; -1 for barrier
     * stages and untiled glue runs (see TilePlan). */
    int64_t segment = -1;
    /** Row-tile size the executor streams this stage's segment with
     * (0 = full-batch execution). */
    int64_t tile_rows = 0;
};

/**
 * One fusible segment of the planned chain: a maximal run of
 * row-tileable stages (FrozenStage::rowTileable) containing at least one
 * LUT stage, which the executor streams one row tile at a time instead
 * of full-batch stage-at-a-time. Structural barriers — skip edges,
 * attention's whole-sequence coupling, conv's im2col reshape — bound
 * the runs; glue-only runs between barriers stay untiled (nothing to
 * keep cache-hot).
 */
struct TilePlan
{
    int64_t begin = 0;      ///< first stage index of the segment
    int64_t end = 0;        ///< one past the last stage index
    int64_t tile_rows = 0;  ///< rows the executor streams per tile
    /** Gather sweep granule the tile size is a multiple of: the max of
     * the segment's per-stage tileGranuleRows(), so no stage pays extra
     * table sweeps for the tiling. */
    int64_t granule = 1;
    /** Streamed working-set bytes per tile row at the segment's widest
     * stage (in-plane + out-plane + codes + adapt staging) — what the
     * auto tile-size model fits into PlanOptions::tile_cache_bytes. */
    int64_t row_bytes = 0;
};

/**
 * The tiled executor's whole-chain plan: the segments plus the scratch
 * accounting planSummary() reports. Plane figures are per engine worker;
 * the per-row figures scale with the batch size while tile_plane_bytes
 * is fixed (that asymmetry IS the steady-state scratch reduction — the
 * full-batch executor's intermediate planes all scaled with the batch).
 */
struct TileExecPlan
{
    std::vector<TilePlan> segments;  ///< tiled segments, in chain order
    /** Ping-pong plane bytes per batch row WITHOUT tiling (both planes
     * grown to the chain's widest stage). */
    int64_t untiled_plane_bytes_per_row = 0;
    /** Ping-pong plane bytes per batch row WITH tiling: only barrier
     * stages and segment-boundary planes still hold full-batch rows. */
    int64_t tiled_plane_bytes_per_row = 0;
    /** Fixed tile-local plane bytes (StageScratch::tile_a/tile_b grown
     * to the widest tiled segment's interior). */
    int64_t tile_plane_bytes = 0;

    /** Steady-state activation-plane bytes one worker holds for a
     * `rows`-row batch, with or without the tiled executor. */
    int64_t
    scratchBytesPerWorker(int64_t rows, bool tiled) const
    {
        return tiled ? tiled_plane_bytes_per_row * rows + tile_plane_bytes
                     : untiled_plane_bytes_per_row * rows;
    }
};

/**
 * Rewrite `stages` per `options` and record one StagePlan per surviving
 * node. Idempotent on an already-planned chain; with fusion off it still
 * rebinds every LUT stage's backend (so precision and fusion compose
 * independently). When `tiles` is non-null it also receives the row-tiled
 * executor's segment partition (empty when options.tile_rows == -1).
 */
void planStages(std::vector<StagePtr> &stages, const PlanOptions &options,
                std::vector<StagePlan> &plan,
                TileExecPlan *tiles = nullptr);

/** Multi-line human-readable plan dump: a header naming the runtime-
 * detected ISA level, then one line per planned stage (code width, table
 * precision, resolved encode/gather kernels, shard granularity, tile
 * segment), and — when `tiles` is non-null — a tiled-executor footer
 * with the segment list and the per-worker scratch-plane accounting. */
std::string planSummary(const std::vector<StagePlan> &plan,
                        const TileExecPlan *tiles = nullptr);

} // namespace lutdla::serve

#endif // LUTDLA_SERVE_PLAN_H
