#include "serve/frontdoor.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace lutdla::serve {

api::Result<std::shared_ptr<FrontDoor>>
FrontDoor::create(const FrontDoorOptions &options)
{
    if (options.threads < 0 || options.threads > 1024)
        return api::Status::invalidArgument(
            "threads must be in [0, 1024] (got " +
            std::to_string(options.threads) + ")");
    if (options.queue_capacity < 1)
        return api::Status::invalidArgument(
            "queue_capacity must be >= 1 (got " +
            std::to_string(options.queue_capacity) + ")");
    return std::make_shared<FrontDoor>(options);
}

FrontDoor::FrontDoor(const FrontDoorOptions &options) : options_(options)
{
    if (options_.threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        options_.threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    if (options_.autostart)
        start();
}

FrontDoor::~FrontDoor()
{
    shutdown();
}

api::Result<uint64_t>
FrontDoor::publish(const std::string &name, FrozenModel model, ModelSlo slo)
{
    return registry_.publish(name, std::move(model), slo);
}

void
FrontDoor::start()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (started_ || closed_)
        return;
    started_ = true;
    workers_.reserve(static_cast<size_t>(options_.threads));
    for (int i = 0; i < options_.threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
FrontDoor::shutdown()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (closed_)
            return;
        closed_ = true;
        work_.notify_all();
        task_done_.notify_all();
    }
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    // Never-started front doors still owe answers for queued requests.
    failRemaining();
}

void
FrontDoor::failRemaining()
{
    std::map<std::string, std::deque<Req>> orphans;
    {
        std::unique_lock<std::mutex> lock(mu_);
        orphans.swap(queues_);
        total_queued_ = 0;
    }
    for (auto &entry : orphans)
        for (Req &req : entry.second)
            req.promise.set_value(api::Status::failedPrecondition(
                "front door shut down before this request was served"));
}

Tenant
FrontDoor::tenant(std::string name, RequestOptions defaults)
{
    defaults.tenant = std::move(name);
    return Tenant(this, std::move(defaults));
}

api::Result<Tensor>
FrontDoor::submit(const std::string &model, const Tensor &rows,
                  const RequestOptions &options)
{
    return submitAsync(model, rows, options).get();
}

std::future<api::Result<Tensor>>
FrontDoor::submitAsync(const std::string &model, Tensor rows,
                       const RequestOptions &options)
{
    return enqueue(model, std::move(rows), options, nullptr);
}

RequestTicket
FrontDoor::submitCancellable(const std::string &model, Tensor rows,
                             const RequestOptions &options)
{
    RequestTicket ticket;
    ticket.cancelled = std::make_shared<std::atomic<bool>>(false);
    ticket.future =
        enqueue(model, std::move(rows), options, ticket.cancelled);
    return ticket;
}

std::future<api::Result<Tensor>>
FrontDoor::enqueue(const std::string &model, Tensor rows,
                   const RequestOptions &options,
                   std::shared_ptr<std::atomic<bool>> cancel_flag)
{
    std::promise<api::Result<Tensor>> promise;
    std::future<api::Result<Tensor>> future = promise.get_future();
    const std::string tenant =
        options.tenant.empty() ? "default" : options.tenant;

    // Validation failures are `rejected`, not `shed`: the request was
    // never admissible, as opposed to admissible traffic dropped under
    // overload.
    auto reject = [&](api::Status status) {
        {
            std::unique_lock<std::mutex> stats_lock(stats_mu_);
            total_accum_.rejected++;
            model_accum_[model].rejected++;
            tenant_accum_[tenant].rejected++;
        }
        promise.set_value(std::move(status));
        return std::move(future);
    };

    const SnapshotPtr snapshot = registry_.resolve(model);
    if (!snapshot)
        return reject(api::Status::notFound(
            "model '" + model + "' is not published; publish() it first"));
    const ModelSlo &slo = snapshot->slo;
    if (rows.rank() != 2 ||
        rows.dim(1) != snapshot->model.inputWidth())
        return reject(api::Status::invalidArgument(
            "request for '" + model + "' must be [rows, " +
            std::to_string(snapshot->model.inputWidth()) + "], got " +
            shapeStr(rows.shape())));
    if (rows.dim(0) < 1)
        return reject(api::Status::invalidArgument(
            "request must carry at least one row"));
    if (rows.dim(0) > slo.max_batch)
        return reject(api::Status::invalidArgument(
            "request of " + std::to_string(rows.dim(0)) +
            " rows exceeds '" + model + "' slo.max_batch " +
            std::to_string(slo.max_batch) + "; split it"));

    Req req;
    req.rows = rows.dim(0);
    req.input = std::move(rows);
    req.snapshot = snapshot;
    req.enqueued = Clock::now();
    req.priority = options.priority ? *options.priority : slo.priority;
    req.tenant = tenant;
    req.cancelled = std::move(cancel_flag);
    const int64_t deadline_us = options.deadline_us
                                    ? *options.deadline_us
                                    : slo.default_deadline_us;
    if (deadline_us < 0)
        return reject(api::Status::invalidArgument(
            "deadline_us must be >= 0 (got " +
            std::to_string(deadline_us) + ")"));
    if (deadline_us > 0) {
        req.has_deadline = true;
        req.deadline =
            req.enqueued + std::chrono::microseconds(deadline_us);
    }
    req.promise = std::move(promise);

    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
        Req refused = std::move(req);
        lock.unlock();
        std::unique_lock<std::mutex> stats_lock(stats_mu_);
        total_accum_.rejected++;
        model_accum_[model].rejected++;
        tenant_accum_[tenant].rejected++;
        stats_lock.unlock();
        refused.promise.set_value(api::Status::failedPrecondition(
            "front door is shut down; create a new one"));
        return future;
    }

    if (total_queued_ >= options_.queue_capacity) {
        // Overload: never block the submitter. Evict the worst queued
        // request (lowest priority, then latest deadline, then newest)
        // iff the incoming one strictly outranks it; otherwise refuse
        // the incoming request. Either way the loser gets a typed
        // ResourceExhausted and an overload counter tick.
        auto victim_queue = queues_.end();
        std::deque<Req>::iterator victim_it;
        for (auto qit = queues_.begin(); qit != queues_.end(); ++qit) {
            for (auto rit = qit->second.begin(); rit != qit->second.end();
                 ++rit) {
                if (victim_queue == queues_.end()) {
                    victim_queue = qit;
                    victim_it = rit;
                    continue;
                }
                const Req &cur = *victim_it;
                if (rit->priority < cur.priority ||
                    (rit->priority == cur.priority &&
                     (rit->deadline > cur.deadline ||
                      (rit->deadline == cur.deadline &&
                       rit->seq > cur.seq)))) {
                    victim_queue = qit;
                    victim_it = rit;
                }
            }
        }
        if (victim_queue != queues_.end() &&
            victim_it->priority < req.priority) {
            Req victim = std::move(*victim_it);
            victim_queue->second.erase(victim_it);
            if (victim_queue->second.empty())
                queues_.erase(victim_queue);
            --total_queued_;
            shed(victim, Shed::Capacity,
                 "shed under overload: evicted by higher-priority "
                 "traffic while the queue was full");
        } else {
            Req refused = std::move(req);
            lock.unlock();
            shed(refused, Shed::Capacity,
                 "shed under overload: queue is full and no "
                 "lower-priority request can be evicted");
            return future;
        }
    }

    // EDF insertion: before the first queued request with a later
    // deadline (equal deadlines stay FIFO via seq).
    req.seq = next_seq_++;
    std::deque<Req> &queue = queues_[model];
    auto pos = queue.begin();
    while (pos != queue.end() && pos->deadline <= req.deadline)
        ++pos;
    queue.insert(pos, std::move(req));
    ++total_queued_;
    {
        std::unique_lock<std::mutex> stats_lock(stats_mu_);
        total_accum_.accepted++;
        model_accum_[model].accepted++;
        tenant_accum_[tenant].accepted++;
    }
    work_.notify_one();
    return future;
}

void
FrontDoor::shed(Req &req, Shed kind, const std::string &message)
{
    api::Status status;
    switch (kind) {
      case Shed::Capacity:
        status = api::Status::resourceExhausted(message);
        break;
      case Shed::Deadline:
        status = api::Status::deadlineExceeded(message);
        break;
      case Shed::Cancel:
        status = api::Status::cancelled(message);
        break;
    }
    {
        std::unique_lock<std::mutex> stats_lock(stats_mu_);
        auto bump = [&](LaneAccum &lane) {
            switch (kind) {
              case Shed::Capacity: lane.shed_capacity++; break;
              case Shed::Deadline: lane.shed_deadline++; break;
              case Shed::Cancel:   lane.cancelled++;     break;
            }
        };
        bump(total_accum_);
        bump(model_accum_[req.snapshot->name]);
        bump(tenant_accum_[req.tenant]);
    }
    req.promise.set_value(std::move(status));
}

FrontDoor::Req
FrontDoor::popBestLocked()
{
    auto best = queues_.end();
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
        const Req &head = it->second.front();
        if (best == queues_.end()) {
            best = it;
            continue;
        }
        const Req &cur = best->second.front();
        if (head.priority > cur.priority ||
            (head.priority == cur.priority &&
             (head.deadline < cur.deadline ||
              (head.deadline == cur.deadline && head.seq < cur.seq))))
            best = it;
    }
    Req out = std::move(best->second.front());
    best->second.pop_front();
    if (best->second.empty())
        queues_.erase(best);
    --total_queued_;
    return out;
}

bool
FrontDoor::higherPriorityPendingLocked(int priority) const
{
    for (const auto &entry : queues_)
        if (entry.second.front().priority > priority)
            return true;
    return false;
}

std::shared_ptr<ShardTask>
FrontDoor::claimableTaskLocked() const
{
    for (const auto &task : tasks_)
        if (task->next.load(std::memory_order_relaxed) < task->blocks)
            return task;
    return nullptr;
}

void
FrontDoor::runShards(ShardTask &task, StageScratch &scratch)
{
    while (true) {
        const int64_t block =
            task.next.fetch_add(1, std::memory_order_relaxed);
        if (block >= task.blocks)
            return;
        task.fn(block, scratch);
        if (task.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            task.blocks) {
            std::unique_lock<std::mutex> lock(mu_);
            task_done_.notify_all();
        }
    }
}

void
FrontDoor::parallelFor(int64_t blocks, const ShardFn &fn,
                       StageScratch &caller)
{
    if (blocks <= 1) {
        for (int64_t b = 0; b < blocks; ++b)
            fn(b, caller);
        return;
    }
    auto task = std::make_shared<ShardTask>();
    task->fn = fn;
    task->blocks = blocks;
    {
        std::unique_lock<std::mutex> lock(mu_);
        tasks_.push_back(task);
        work_.notify_all();
    }
    runShards(*task, caller);
    std::unique_lock<std::mutex> lock(mu_);
    task_done_.wait(lock, [&] {
        return task->completed.load(std::memory_order_acquire) ==
               task->blocks;
    });
    for (size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i] == task) {
            tasks_.erase(tasks_.begin() + static_cast<long>(i));
            break;
        }
    }
}

void
FrontDoor::workerLoop(int slot)
{
    (void)slot;
    // Worker-lifetime scratch, same contract as the engine: buffers grow
    // to the largest batch seen and are reused; with more than one
    // worker the scratch carries the intra-batch pool so LUT stages this
    // worker initiates can shard across the front door's pool.
    StageScratch scratch;
    if (options_.threads > 1)
        scratch.pool = this;

    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        work_.wait(lock, [&] {
            return closed_ || total_queued_ > 0 ||
                   claimableTaskLocked() != nullptr;
        });
        if (auto task = claimableTaskLocked()) {
            lock.unlock();
            runShards(*task, scratch);
            lock.lock();
            continue;
        }
        if (total_queued_ == 0) {
            if (closed_)
                return;  // drained: requests AND shard work
            continue;    // spurious wake (shard task drained under us)
        }

        Req first = popBestLocked();
        const auto opened = Clock::now();
        if (first.cancelled &&
            first.cancelled->load(std::memory_order_relaxed)) {
            shed(first, Shed::Cancel,
                 "request cancelled before execution");
            continue;
        }
        if (opened > first.deadline) {
            shed(first, Shed::Deadline,
                 "deadline expired before the request was scheduled");
            continue;
        }

        // Open a batch pinned to this request's snapshot — never to the
        // registry's CURRENT version, which may change mid-batch.
        const SnapshotPtr snapshot = first.snapshot;
        const ModelSlo &slo = snapshot->slo;
        const std::string model_name = snapshot->name;
        std::vector<Req> batch;
        int64_t rows = first.rows;
        batch.push_back(std::move(first));
        const auto window_end =
            opened + std::chrono::microseconds(slo.batch_window_us);

        while (rows < slo.max_batch) {
            // Admit every same-snapshot request queued right now, in EDF
            // order, settling dead (cancelled / expired) ones on the way
            // without executing them.
            bool admitted = false;
            auto queue_it = queues_.find(model_name);
            if (queue_it != queues_.end()) {
                auto &queue = queue_it->second;
                for (auto pos = queue.begin();
                     pos != queue.end() && rows < slo.max_batch;) {
                    if (pos->snapshot != snapshot) {
                        ++pos;  // other version: next batch's problem
                        continue;
                    }
                    if (pos->cancelled &&
                        pos->cancelled->load(std::memory_order_relaxed)) {
                        Req dead = std::move(*pos);
                        pos = queue.erase(pos);
                        --total_queued_;
                        shed(dead, Shed::Cancel,
                             "request cancelled before execution");
                        continue;
                    }
                    if (Clock::now() > pos->deadline) {
                        Req dead = std::move(*pos);
                        pos = queue.erase(pos);
                        --total_queued_;
                        shed(dead, Shed::Deadline,
                             "deadline expired while waiting for a "
                             "batch slot");
                        continue;
                    }
                    if (rows + pos->rows > slo.max_batch) {
                        ++pos;
                        continue;
                    }
                    rows += pos->rows;
                    batch.push_back(std::move(*pos));
                    pos = queue.erase(pos);
                    --total_queued_;
                    admitted = true;
                }
                if (queue.empty())
                    queues_.erase(queue_it);
            }
            if (rows >= slo.max_batch || closed_)
                break;
            if (admitted)
                continue;  // drained the backlog; re-check the window
            const auto remaining = window_end - Clock::now();
            if (remaining <= Clock::duration::zero())
                break;
            // Strictly higher-priority pending work closes the window
            // early: an interactive model never waits out a bulk
            // model's batch window.
            if (higherPriorityPendingLocked(slo.priority))
                break;
            work_.wait_for(lock, remaining);
        }

        lock.unlock();
        executeBatch(batch, rows, snapshot, scratch);
        lock.lock();
    }
}

void
FrontDoor::executeBatch(std::vector<Req> &batch, int64_t rows,
                        const SnapshotPtr &snapshot, StageScratch &scratch)
{
    const FrozenModel &model = snapshot->model;
    const int64_t in_width = model.inputWidth();
    const auto exec_start = Clock::now();
    Tensor packed(Shape{rows, in_width});
    int64_t offset = 0;
    for (const Req &req : batch) {
        std::memcpy(packed.data() + offset * in_width, req.input.data(),
                    static_cast<size_t>(req.rows * in_width) *
                        sizeof(float));
        offset += req.rows;
    }

    const Tensor output = model.forwardBatch(packed, scratch);
    const int64_t out_width = output.dim(1);
    const auto done = Clock::now();

    // Record stats BEFORE fulfilling promises: a caller woken by its
    // future must already see this batch reflected in stats().
    {
        std::unique_lock<std::mutex> stats_lock(stats_mu_);
        batches_++;
        last_version_[snapshot->name] = snapshot->version;
        LaneAccum &model_lane = model_accum_[snapshot->name];
        for (const Req &req : batch) {
            const auto micros = [](Clock::duration d) {
                return static_cast<uint64_t>(std::max<int64_t>(
                    0, std::chrono::duration_cast<std::chrono::microseconds>(
                           d)
                           .count()));
            };
            const uint64_t queue_us = micros(exec_start - req.enqueued);
            const uint64_t service_us = micros(done - exec_start);
            const uint64_t latency_us = micros(done - req.enqueued);
            auto record = [&](LaneAccum &lane) {
                lane.served++;
                lane.rows += static_cast<uint64_t>(req.rows);
                lane.latency.record(latency_us);
                lane.queue_wait.record(queue_us);
                lane.service.record(service_us);
                if (req.has_deadline) {
                    lane.with_deadline++;
                    if (done <= req.deadline)
                        lane.deadline_met++;
                }
            };
            record(total_accum_);
            record(model_lane);
            record(tenant_accum_[req.tenant]);
        }
    }

    offset = 0;
    for (Req &req : batch) {
        Tensor slice(Shape{req.rows, out_width});
        std::memcpy(slice.data(), output.data() + offset * out_width,
                    static_cast<size_t>(req.rows * out_width) *
                        sizeof(float));
        offset += req.rows;
        req.promise.set_value(std::move(slice));
    }
}

void
FrontDoor::snapshotLane(const LaneAccum &accum, LaneStats &out) const
{
    out.accepted = accum.accepted;
    out.served = accum.served;
    out.rows = accum.rows;
    out.rejected = accum.rejected;
    out.shed_capacity = accum.shed_capacity;
    out.shed_deadline = accum.shed_deadline;
    out.cancelled = accum.cancelled;
    out.with_deadline = accum.with_deadline;
    out.deadline_met = accum.deadline_met;
    out.mean_latency_us = accum.latency.meanMicros();
    out.p50_latency_us = accum.latency.percentileMicros(50.0);
    out.p99_latency_us = accum.latency.percentileMicros(99.0);
    out.mean_queue_us = accum.queue_wait.meanMicros();
    out.p50_queue_us = accum.queue_wait.percentileMicros(50.0);
    out.p99_queue_us = accum.queue_wait.percentileMicros(99.0);
    out.mean_service_us = accum.service.meanMicros();
    out.p50_service_us = accum.service.percentileMicros(50.0);
    out.p99_service_us = accum.service.percentileMicros(99.0);
}

FrontDoorStats
FrontDoor::stats() const
{
    std::unique_lock<std::mutex> lock(stats_mu_);
    FrontDoorStats out;
    out.batches = batches_;
    snapshotLane(total_accum_, out.total);
    for (const auto &entry : model_accum_)
        snapshotLane(entry.second, out.models[entry.first]);
    for (const auto &entry : tenant_accum_)
        snapshotLane(entry.second, out.tenants[entry.first]);
    out.last_version = last_version_;
    return out;
}

api::Result<Tensor>
Tenant::submit(const std::string &model, const Tensor &rows) const
{
    return submitAsync(model, rows).get();
}

std::future<api::Result<Tensor>>
Tenant::submitAsync(const std::string &model, Tensor rows) const
{
    if (!door_) {
        std::promise<api::Result<Tensor>> promise;
        promise.set_value(api::Status::failedPrecondition(
            "tenant handle is not bound to a front door"));
        return promise.get_future();
    }
    return door_->submitAsync(model, std::move(rows), defaults_);
}

RequestTicket
Tenant::submitCancellable(const std::string &model, Tensor rows) const
{
    if (!door_) {
        RequestTicket ticket;
        std::promise<api::Result<Tensor>> promise;
        promise.set_value(api::Status::failedPrecondition(
            "tenant handle is not bound to a front door"));
        ticket.future = promise.get_future();
        return ticket;
    }
    return door_->submitCancellable(model, std::move(rows), defaults_);
}

} // namespace lutdla::serve
