#include "serve/frozen_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "lutboost/lut_conv.h"
#include "lutboost/lut_linear.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/norm.h"
#include "nn/sequential.h"
#include "serve/stage_transformer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "vq/quant.h"

namespace lutdla::serve {

namespace {

/** Depth-first, in-order flattening of Sequential containers. */
void
flattenLayers(const nn::LayerPtr &layer, std::vector<nn::Layer *> &out)
{
    if (auto *seq = dynamic_cast<nn::Sequential *>(layer.get())) {
        for (int64_t i = 0; i < seq->size(); ++i)
            flattenLayers(seq->child(i), out);
        return;
    }
    out.push_back(layer.get());
}

bool
isPowerOfTwo(int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/**
 * Activation-shape state threaded through the lowering walk: either a
 * spatial [c, h, w] image per row, a known flat width, or unknown (before
 * the first width-fixing layer).
 */
struct LowerState
{
    bool spatial = false;
    int64_t c = 0, h = 0, w = 0;  ///< valid when spatial
    int64_t flat = -1;            ///< valid when >= 0 and not spatial

    bool known() const { return spatial || flat >= 0; }

    std::string
    str() const
    {
        if (spatial)
            return "[C=" + std::to_string(c) + ", H=" + std::to_string(h) +
                   ", W=" + std::to_string(w) + "]";
        if (flat >= 0)
            return "[" + std::to_string(flat) + "]";
        return "(unknown)";
    }
};

/**
 * Lowering context threaded through the (recursive) walk: the activation
 * shape state, whether any LUT operator was seen, the skip-edge nesting
 * depth (which assigns scratch slots — sequential edges at one depth
 * reuse a slot, nested edges stack), and the row group attention stages
 * pin to their sequence length.
 */
struct LowerCtx
{
    LowerState st;
    ServeInputShape input;
    std::vector<StagePtr> *emit = nullptr;
    bool any_lut = false;
    int64_t skip_depth = 0;
    int64_t row_group = 1;
};

/** Shape-state equality, used to validate residual-branch widths. */
bool
sameState(const LowerState &a, const LowerState &b)
{
    if (a.spatial != b.spatial)
        return false;
    return a.spatial ? (a.c == b.c && a.h == b.h && a.w == b.w)
                     : a.flat == b.flat;
}

api::Status lowerLayer(nn::Layer *layer, LowerCtx &ctx);

api::Status
lowerLayers(const std::vector<nn::Layer *> &layers, LowerCtx &ctx)
{
    for (nn::Layer *layer : layers)
        if (api::Status status = lowerLayer(layer, ctx); !status.ok())
            return status;
    return {};
}

/** Flatten-and-lower a sub-graph rooted at `child` (skip-edge trunks). */
api::Status
lowerChild(const nn::LayerPtr &child, LowerCtx &ctx)
{
    std::vector<nn::Layer *> layers;
    flattenLayers(child, layers);
    return lowerLayers(layers, ctx);
}

/**
 * The per-layer dispatch behind fromModel and validateServable: track the
 * activation shape and either emit stages (ctx.emit != nullptr; requires
 * frozen LUT operators) or only validate the topology (ctx.emit ==
 * nullptr; side-effect free, works pre-freeze). Every rejection names the
 * first unlowerable layer. Skip-edge layers (TransformerBlock,
 * identity-shortcut ResidualBlock) recurse into their trunk with a
 * SkipSave/ResidualAdd pair around it.
 */
api::Status
lowerLayer(nn::Layer *layer, LowerCtx &ctx)
{
    LowerState &st = ctx.st;
    std::vector<StagePtr> *emit = ctx.emit;
    const ServeInputShape input = ctx.input;
    bool &any_lut = ctx.any_lut;

    {
        if (auto *conv = dynamic_cast<lutboost::LutConv2d *>(layer)) {
            const ConvGeometry &geom = conv->geometry();
            if (!st.known()) {
                if (!input.spatial())
                    return api::Status::invalidArgument(
                        "LutConv2d at the model input needs the serving "
                        "image shape; pass ServeInputShape{height, width} "
                        "(each request row is a flattened NCHW image)");
                st.spatial = true;
                st.c = geom.in_channels;
                st.h = input.height;
                st.w = input.width;
            }
            if (!st.spatial)
                return api::Status::invalidArgument(
                    "LutConv2d cannot follow a flat " + st.str() +
                    " output; conv stages need spatial (NCHW) rows");
            if (st.c != geom.in_channels)
                return api::Status::invalidArgument(
                    "LutConv2d expects " +
                    std::to_string(geom.in_channels) +
                    " input channels but the previous stage emits " +
                    st.str());
            const int64_t ho = geom.outSize(st.h), wo = geom.outSize(st.w);
            if (ho < 1 || wo < 1)
                return api::Status::invalidArgument(
                    "LutConv2d collapses the spatial extent " + st.str() +
                    " to zero; the serving input shape is too small");
            if (emit) {
                if (!conv->inferenceLutReady())
                    return api::Status::failedPrecondition(
                        "LutConv2d is not frozen; call "
                        "refreshInferenceLut() (or Pipeline "
                        "deployPrecision()) before serving");
                emit->push_back(std::make_shared<ConvStage>(
                    geom, st.h, st.w, conv->inferenceArena()));
            }
            st.c = geom.out_channels;
            st.h = ho;
            st.w = wo;
            any_lut = true;
            return {};
        }
        if (auto *lut = dynamic_cast<lutboost::LutLinear *>(layer)) {
            if (st.spatial)
                return api::Status::invalidArgument(
                    "LutLinear follows a spatial " + st.str() +
                    " output; insert Flatten (or GlobalAvgPool) before "
                    "the classifier head");
            if (st.flat >= 0 && st.flat != lut->inFeatures())
                return api::Status::invalidArgument(
                    "stage widths do not chain at LutLinear: previous "
                    "layer emits " + std::to_string(st.flat) +
                    ", next expects " + std::to_string(lut->inFeatures()));
            if (emit) {
                if (!lut->inferenceLutReady())
                    return api::Status::failedPrecondition(
                        "LutLinear is not frozen; call "
                        "refreshInferenceLut() (or Pipeline "
                        "deployPrecision()) before serving");
                emit->push_back(
                    std::make_shared<ArenaStage>(lut->inferenceArena()));
            }
            st.spatial = false;
            st.flat = lut->outFeatures();
            any_lut = true;
            return {};
        }
        if (dynamic_cast<nn::ReLU *>(layer) != nullptr ||
            dynamic_cast<nn::GELU *>(layer) != nullptr) {
            if (!st.known())
                return api::Status::invalidArgument(
                    "activation '" + layer->name() +
                    "' at the model input has no inferable width; put a "
                    "LUT operator first");
            if (emit) {
                const auto op = dynamic_cast<nn::ReLU *>(layer) != nullptr
                                    ? PointwiseStage::Op::Relu
                                    : PointwiseStage::Op::Gelu;
                const int64_t width =
                    st.spatial ? st.c * st.h * st.w : st.flat;
                emit->push_back(
                    std::make_shared<PointwiseStage>(op, width));
            }
            return {};
        }
        if (dynamic_cast<nn::Flatten *>(layer) != nullptr) {
            if (st.spatial) {
                const int64_t width = st.c * st.h * st.w;
                if (emit)
                    emit->push_back(
                        std::make_shared<FlattenStage>(width));
                st.spatial = false;
                st.flat = width;
            }
            // Already-flat rows: rank-preserving identity, nothing to emit.
            return {};
        }
        if (auto *pool = dynamic_cast<nn::MaxPool2d *>(layer)) {
            if (!st.spatial)
                return api::Status::invalidArgument(
                    "MaxPool2d requires spatial (NCHW) rows but the "
                    "previous stage emits " + st.str() +
                    "; serving lowers pools only inside conv chains");
            const int64_t k = pool->kernel();
            if (st.h / k < 1 || st.w / k < 1)
                return api::Status::invalidArgument(
                    "MaxPool2d kernel " + std::to_string(k) +
                    " collapses the spatial extent " + st.str() +
                    " to zero");
            if (emit)
                emit->push_back(std::make_shared<MaxPoolStage>(
                    st.c, st.h, st.w, k));
            st.h /= k;
            st.w /= k;
            return {};
        }
        if (dynamic_cast<nn::GlobalAvgPool *>(layer) != nullptr) {
            if (!st.spatial)
                return api::Status::invalidArgument(
                    "GlobalAvgPool requires spatial (NCHW) rows but the "
                    "previous stage emits " + st.str());
            if (emit)
                emit->push_back(std::make_shared<GlobalAvgPoolStage>(
                    st.c, st.h, st.w));
            st.spatial = false;
            st.flat = st.c;
            return {};
        }
        if (auto *bn = dynamic_cast<nn::BatchNorm2d *>(layer)) {
            if (!st.known()) {
                if (!input.spatial())
                    return api::Status::invalidArgument(
                        "BatchNorm2d at the model input needs the serving "
                        "image shape; pass ServeInputShape{height, width}");
                st.spatial = true;
                st.c = bn->channels();
                st.h = input.height;
                st.w = input.width;
            }
            if (!st.spatial || st.c != bn->channels())
                return api::Status::invalidArgument(
                    "BatchNorm2d over " + std::to_string(bn->channels()) +
                    " channels cannot follow a stage emitting " + st.str());
            if (emit) {
                auto vec = [](const Tensor &t) {
                    return std::vector<float>(t.data(),
                                              t.data() + t.numel());
                };
                emit->push_back(std::make_shared<BatchNormStage>(
                    vec(bn->runningMean()), vec(bn->runningVar()),
                    vec(bn->gamma()), vec(bn->beta()), bn->epsilon(),
                    st.h, st.w));
            }
            return {};
        }
        if (auto *ln = dynamic_cast<nn::LayerNorm *>(layer)) {
            if (st.spatial || st.flat != ln->features())
                return api::Status::invalidArgument(
                    "LayerNorm over " + std::to_string(ln->features()) +
                    " features cannot follow a stage emitting " + st.str());
            if (emit) {
                auto vec = [](const Tensor &t) {
                    return std::vector<float>(t.data(),
                                              t.data() + t.numel());
                };
                emit->push_back(std::make_shared<LayerNormStage>(
                    vec(ln->gamma()), vec(ln->beta()), ln->epsilon()));
            }
            return {};
        }
        if (dynamic_cast<nn::Softmax *>(layer) != nullptr) {
            if (!st.known())
                return api::Status::invalidArgument(
                    "Softmax at the model input has no inferable width; "
                    "put a LUT operator first");
            if (st.spatial)
                return api::Status::invalidArgument(
                    "Softmax requires flat rows but the previous stage "
                    "emits " + st.str() +
                    "; insert Flatten (or GlobalAvgPool) first");
            if (emit)
                emit->push_back(std::make_shared<SoftmaxStage>(st.flat));
            return {};
        }
        if (auto *attn =
                dynamic_cast<nn::MultiHeadSelfAttention *>(layer)) {
            if (!st.known())
                return api::Status::invalidArgument(
                    "MultiHeadSelfAttention at the model input has no "
                    "inferable width before the serving input shape is "
                    "known; front it with a LUT operator (e.g. the "
                    "embedding LutLinear) — ServeInputShape only "
                    "describes spatial NCHW inputs");
            if (st.spatial)
                return api::Status::invalidArgument(
                    "MultiHeadSelfAttention follows a spatial " +
                    st.str() +
                    " output; attention needs flat [B*T, D] rows "
                    "(insert Flatten first)");
            if (st.flat != attn->dModel())
                return api::Status::invalidArgument(
                    "stage widths do not chain at MultiHeadSelfAttention: "
                    "previous layer emits " + std::to_string(st.flat) +
                    ", attention expects d_model " +
                    std::to_string(attn->dModel()));
            if (ctx.row_group != 1 && ctx.row_group != attn->seqLen())
                return api::Status::invalidArgument(
                    "mismatched sequence lengths at "
                    "MultiHeadSelfAttention: an earlier attention stage "
                    "fixed the serving row group to " +
                    std::to_string(ctx.row_group) +
                    " rows per sequence, but this layer expects " +
                    std::to_string(attn->seqLen()));
            auto *wq = dynamic_cast<lutboost::LutLinear *>(attn->wq().get());
            auto *wk = dynamic_cast<lutboost::LutLinear *>(attn->wk().get());
            auto *wv = dynamic_cast<lutboost::LutLinear *>(attn->wv().get());
            auto *wo = dynamic_cast<lutboost::LutLinear *>(attn->wo().get());
            if (wq == nullptr || wk == nullptr || wv == nullptr ||
                wo == nullptr)
                return api::Status::invalidArgument(
                    "MultiHeadSelfAttention projections are not "
                    "LUT-converted; run the LUTBoost conversion over the "
                    "Q/K/V/output Linear layers before serving");
            if (emit) {
                for (lutboost::LutLinear *proj : {wq, wk, wv, wo})
                    if (!proj->inferenceLutReady())
                        return api::Status::failedPrecondition(
                            "MultiHeadSelfAttention projection is not "
                            "frozen; call refreshInferenceLut() (or "
                            "Pipeline deployPrecision()) before serving");
                emit->push_back(std::make_shared<AttentionStage>(
                    AttentionStage::Arenas{wq->inferenceArena(),
                                           wk->inferenceArena(),
                                           wv->inferenceArena(),
                                           wo->inferenceArena()},
                    attn->seqLen(), attn->heads()));
            }
            ctx.row_group = attn->seqLen();
            st.flat = attn->dModel();
            any_lut = true;
            return {};
        }
        if (auto *block = dynamic_cast<nn::TransformerBlock *>(layer)) {
            if (!st.known())
                return api::Status::invalidArgument(
                    "TransformerBlock at the model input has no inferable "
                    "width; front it with a LUT operator (e.g. the "
                    "embedding LutLinear)");
            if (st.spatial)
                return api::Status::invalidArgument(
                    "TransformerBlock follows a spatial " + st.str() +
                    " output; transformer blocks need flat [B*T, D] rows "
                    "(insert Flatten first)");
            const LowerState entry = st;
            const int64_t width = st.flat;
            // Skip edge 1: x + attn(ln1(x)).
            int64_t slot = ctx.skip_depth++;
            if (emit)
                emit->push_back(
                    std::make_shared<SkipSaveStage>(width, slot));
            if (api::Status status = lowerChild(block->ln1(), ctx);
                !status.ok())
                return status;
            if (api::Status status = lowerChild(block->attn(), ctx);
                !status.ok())
                return status;
            if (!sameState(entry, st))
                return api::Status::invalidArgument(
                    "mismatched residual widths at TransformerBlock: the "
                    "attention path emits " + st.str() +
                    " but the skip edge carries " + entry.str());
            if (emit)
                emit->push_back(
                    std::make_shared<ResidualAddStage>(width, slot));
            --ctx.skip_depth;
            // Skip edge 2: r1 + ffn(ln2(r1)).
            slot = ctx.skip_depth++;
            if (emit)
                emit->push_back(
                    std::make_shared<SkipSaveStage>(width, slot));
            if (api::Status status = lowerChild(block->ln2(), ctx);
                !status.ok())
                return status;
            if (api::Status status = lowerChild(block->ffn(), ctx);
                !status.ok())
                return status;
            if (!sameState(entry, st))
                return api::Status::invalidArgument(
                    "mismatched residual widths at TransformerBlock: the "
                    "feed-forward path emits " + st.str() +
                    " but the skip edge carries " + entry.str());
            if (emit)
                emit->push_back(
                    std::make_shared<ResidualAddStage>(width, slot));
            --ctx.skip_depth;
            return {};
        }
        if (auto *res = dynamic_cast<nn::ResidualBlock *>(layer)) {
            if (res->shortcut() != nullptr)
                return api::Status::invalidArgument(
                    "unsupported layer 'ResidualBlock' for serving: only "
                    "identity-shortcut residual blocks lower onto skip "
                    "edges; a projection shortcut branch has no stage "
                    "lowering (use fromTrace for other topologies)");
            if (!st.known())
                return api::Status::invalidArgument(
                    "ResidualBlock at the model input has no inferable "
                    "width; put a LUT operator first");
            const LowerState entry = st;
            const int64_t width =
                st.spatial ? st.c * st.h * st.w : st.flat;
            const int64_t slot = ctx.skip_depth++;
            if (emit)
                emit->push_back(
                    std::make_shared<SkipSaveStage>(width, slot));
            if (api::Status status = lowerChild(res->main(), ctx);
                !status.ok())
                return status;
            if (!sameState(entry, st))
                return api::Status::invalidArgument(
                    "mismatched residual widths at ResidualBlock: the "
                    "main path emits " + st.str() +
                    " but the identity skip edge carries " + entry.str());
            if (emit) {
                emit->push_back(
                    std::make_shared<ResidualAddStage>(width, slot));
                // ResidualBlock applies ReLU after the add.
                emit->push_back(std::make_shared<PointwiseStage>(
                    PointwiseStage::Op::Relu, width));
            }
            --ctx.skip_depth;
            return {};
        }
        return api::Status::invalidArgument(
            "unsupported layer '" + layer->name() +
            "' for serving; FrozenModel lowers Sequential chains of "
            "LutLinear/LutConv2d/ReLU/GELU/Softmax/MaxPool2d/"
            "GlobalAvgPool/BatchNorm2d/LayerNorm/Flatten plus "
            "MultiHeadSelfAttention/TransformerBlock/identity-skip "
            "ResidualBlock (use fromTrace for other topologies)");
    }
}

/**
 * The single lowering pass behind fromModel and validateServable: walk a
 * flattened layer chain through lowerLayer, then enforce the whole-model
 * invariants (at least one LUT operator) and surface the row group the
 * chain pinned (sequence length for attention models, 1 otherwise).
 */
api::Status
lowerChain(const std::vector<nn::Layer *> &layers, ServeInputShape input,
           std::vector<StagePtr> *emit, int64_t *row_group = nullptr)
{
    LowerCtx ctx;
    ctx.input = input;
    ctx.emit = emit;
    if (api::Status status = lowerLayers(layers, ctx); !status.ok())
        return status;
    if (!ctx.any_lut)
        return api::Status::failedPrecondition(
            "model has no LUT operators; convert it before serving");
    if (row_group != nullptr)
        *row_group = ctx.row_group;
    return {};
}

} // namespace

TraceLayer
synthesizeTraceLayer(const sim::GemmShape &gemm, const vq::PQConfig &pq,
                     uint64_t seed, int64_t index, bool bf16_codebooks)
{
    Rng rng(seed + 7919ull * static_cast<uint64_t>(index));
    vq::ProductQuantizer quantizer(gemm.k, pq);
    for (int64_t s = 0; s < quantizer.numSubspaces(); ++s) {
        Tensor cb(Shape{pq.c, pq.v});
        for (int64_t i = 0; i < cb.numel(); ++i)
            cb.at(i) = static_cast<float>(rng.gaussian(0.0, 0.5));
        if (bf16_codebooks)
            vq::tensorToBf16(cb);
        quantizer.setCodebook(s, std::move(cb));
    }
    Tensor weights(Shape{gemm.k, gemm.n});
    const double scale = 1.0 / std::sqrt(static_cast<double>(gemm.k));
    for (int64_t i = 0; i < weights.numel(); ++i)
        weights.at(i) = static_cast<float>(rng.gaussian(0.0, scale));
    return {std::move(quantizer), std::move(weights)};
}

api::Status
FrozenModel::validateServable(const nn::LayerPtr &model,
                              ServeInputShape input)
{
    if (!model)
        return api::Status::invalidArgument(
            "FrozenModel requires a model");
    std::vector<nn::Layer *> layers;
    flattenLayers(model, layers);
    return lowerChain(layers, input, nullptr);
}

api::Result<FrozenModel>
FrozenModel::fromModel(const nn::LayerPtr &model, ServeInputShape input,
                       PlanOptions plan)
{
    if (!model)
        return api::Status::invalidArgument(
            "FrozenModel requires a model");
    std::vector<nn::Layer *> layers;
    flattenLayers(model, layers);
    FrozenModel frozen;
    if (api::Status status = lowerChain(layers, input, &frozen.stages_,
                                        &frozen.row_group_);
        !status.ok())
        return status;
    planStages(frozen.stages_, plan, frozen.plan_, &frozen.tiles_);
    return frozen;
}

api::Result<FrozenModel>
FrozenModel::fromTrace(const std::vector<sim::GemmShape> &gemms,
                       const vq::PQConfig &pq, vq::LutPrecision precision,
                       uint64_t seed, PlanOptions plan)
{
    if (gemms.empty())
        return api::Status::invalidArgument(
            "fromTrace requires a non-empty GEMM trace");
    if (pq.v < 1)
        return api::Status::invalidArgument("v must be >= 1");
    if (pq.c < 2 || !isPowerOfTwo(pq.c))
        return api::Status::invalidArgument(
            "c must be a power of two >= 2 (got " + std::to_string(pq.c) +
            ")");

    FrozenModel frozen;
    int64_t index = 0;
    int64_t prev_out = -1;
    for (const sim::GemmShape &gemm : gemms) {
        if (gemm.k < 1 || gemm.n < 1)
            return api::Status::invalidArgument(
                "trace gemm '" + gemm.tag + "' has invalid dims [k=" +
                std::to_string(gemm.k) + ", n=" + std::to_string(gemm.n) +
                "]");
        TraceLayer layer = synthesizeTraceLayer(
            gemm, pq, seed, index++, precision.bf16_similarity);
        const vq::LookupTable lut(layer.quantizer, layer.weights,
                                  precision);
        if (prev_out >= 0 && prev_out != gemm.k)
            frozen.stages_.push_back(
                std::make_shared<WidthAdaptStage>(prev_out, gemm.k));
        frozen.stages_.push_back(std::make_shared<ArenaStage>(
            std::make_shared<const lutboost::LutTableArena>(
                layer.quantizer, lut, nullptr,
                precision.bf16_similarity)));
        prev_out = gemm.n;
    }
    planStages(frozen.stages_, plan, frozen.plan_, &frozen.tiles_);
    return frozen;
}

FrozenModel
FrozenModel::withPlan(const PlanOptions &plan) const
{
    FrozenModel out;
    out.stages_ = stages_;  // shared_ptr copies: arenas (and their cached
                            // quantized banks) are shared, never rebuilt
    out.row_group_ = row_group_;
    planStages(out.stages_, plan, out.plan_, &out.tiles_);
    return out;
}

int64_t
FrozenModel::inputWidth() const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    return stages_.front()->inWidth();
}

int64_t
FrozenModel::outputWidth() const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    return stages_.back()->outWidth();
}

int64_t
FrozenModel::numLutStages() const
{
    int64_t count = 0;
    for (const StagePtr &stage : stages_)
        if (stage->tableBytes() > 0)
            ++count;
    return count;
}

int64_t
FrozenModel::tableBytes() const
{
    int64_t total = 0;
    for (const StagePtr &stage : stages_)
        total += stage->tableBytes();
    return total;
}

int64_t
FrozenModel::encodeBytes() const
{
    int64_t total = 0;
    for (const StagePtr &stage : stages_)
        total += stage->encodeBytes();
    return total;
}

int64_t
FrozenModel::residentBytes() const
{
    int64_t total = 0;
    for (const StagePtr &stage : stages_)
        total += stage->residentBytes();
    return total;
}

std::string
FrozenModel::describe() const
{
    std::string out;
    for (const StagePtr &stage : stages_) {
        if (!out.empty())
            out += " -> ";
        out += stage->description();
    }
    return out;
}

std::string
FrozenModel::planSummary() const
{
    return serve::planSummary(plan_, &tiles_);
}

Tensor
FrozenModel::forwardBatch(const Tensor &x, StageScratch &scratch) const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == inputWidth(),
                 "FrozenModel expects [rows, ", inputWidth(), "], got ",
                 shapeStr(x.shape()));
    const int64_t rows = x.dim(0);

    // Ping-pong execution: `cur` tracks the live activations, which start
    // in the request tensor itself (read-only), move into a scratch plane
    // at the first stage, and alternate planes at every out-of-place
    // stage. In-place stages mutate the live plane directly. Planned tile
    // segments leave this loop wholesale: the segment streams row tiles
    // through all its stages (runTiledSegment) and lands its output in
    // the opposite plane in one step, so only barrier stages and segment
    // boundaries ever hold full-batch planes.
    const float *cur = x.data();
    float *cur_mut = nullptr;  // non-null once cur points into scratch
    bool in_ping = false;
    size_t seg_idx = 0;
    size_t i = 0;
    while (i < stages_.size()) {
        while (seg_idx < tiles_.segments.size() &&
               tiles_.segments[seg_idx].end <= static_cast<int64_t>(i))
            ++seg_idx;
        const TilePlan *seg =
            (seg_idx < tiles_.segments.size() &&
             tiles_.segments[seg_idx].begin == static_cast<int64_t>(i))
                ? &tiles_.segments[seg_idx]
                : nullptr;
        if (seg != nullptr && rows > seg->tile_rows) {
            // Batches of at most one tile fall through to the per-stage
            // path below — identical work, no tiling overhead.
            const int64_t out_w =
                stages_[static_cast<size_t>(seg->end) - 1]->outWidth();
            std::vector<float> &dst =
                (cur_mut != nullptr && in_ping) ? scratch.pong
                                                : scratch.ping;
            dst.resize(static_cast<size_t>(rows * out_w));
            runTiledSegment(*seg, cur, rows, dst.data(), scratch);
            cur_mut = dst.data();
            cur = cur_mut;
            in_ping = (&dst == &scratch.ping);
            i = static_cast<size_t>(seg->end);
            continue;
        }
        const StagePtr &stage = stages_[i];
        if (stage->inPlace()) {
            if (cur_mut == nullptr) {
                scratch.ping.resize(
                    static_cast<size_t>(rows * stage->inWidth()));
                std::memcpy(scratch.ping.data(), cur,
                            static_cast<size_t>(rows * stage->inWidth()) *
                                sizeof(float));
                cur_mut = scratch.ping.data();
                cur = cur_mut;
                in_ping = true;
            }
            stage->forwardInPlace(cur_mut, rows, scratch);
        } else {
            std::vector<float> &dst =
                (cur_mut != nullptr && in_ping) ? scratch.pong
                                                : scratch.ping;
            dst.resize(static_cast<size_t>(rows * stage->outWidth()));
            stage->forward(cur, rows, dst.data(), scratch);
            cur_mut = dst.data();
            cur = cur_mut;
            in_ping = (&dst == &scratch.ping);
        }
        ++i;
    }

    Tensor y(Shape{rows, outputWidth()});
    std::memcpy(y.data(), cur,
                static_cast<size_t>(y.numel()) * sizeof(float));
    return y;
}

Tensor
FrozenModel::forwardBatch(const Tensor &x) const
{
    StageScratch scratch;
    return forwardBatch(x, scratch);
}

void
FrozenModel::runTiledSegment(const TilePlan &seg, const float *in,
                             int64_t rows, float *out,
                             StageScratch &scratch) const
{
    const size_t begin = static_cast<size_t>(seg.begin);
    const size_t end = static_cast<size_t>(seg.end);
    const int64_t tile = seg.tile_rows;
    const int64_t tiles = (rows + tile - 1) / tile;
    const int64_t in_w = stages_[begin]->inWidth();
    const int64_t out_w = stages_[end - 1]->outWidth();

    // From the LAST out-of-place stage on, a tile writes straight into
    // its disjoint span of the segment output (trailing in-place stages
    // mutate it there), so the streamed result never needs a final copy.
    // Stages before it alternate the tile-local planes.
    size_t last_oop = begin;
    for (size_t s = begin; s < end; ++s)
        if (!stages_[s]->inPlace())
            last_oop = s;

    const ShardFn run_tile = [&](int64_t t, StageScratch &local) {
        // A tile IS the work-stealing unit — null the pool so no stage
        // tries to shard WITHIN the tile (nested parallelFor would also
        // deadlock the caller-participates pool).
        IntraBatchPool *const saved_pool = local.pool;
        local.pool = nullptr;
        // Helpers' phase counters are restored on exit: only the
        // initiator's tile deltas feed the engine's per-batch phase
        // stats, the same wall-clock convention the sharded phases use.
        const uint64_t saved_encode = local.encode_ns;
        const uint64_t saved_gather = local.gather_ns;

        const int64_t r0 = t * tile;
        const int64_t rn = std::min(tile, rows - r0);
        if (r0 + rn < rows) {
            // Pull the next tile's input behind this tile's sweep. Capped
            // well under the tile budget so the prefetch cannot evict the
            // planes this tile is actively streaming.
            const int64_t ahead =
                std::min(std::min(tile, rows - r0 - rn) * in_w *
                             static_cast<int64_t>(sizeof(float)),
                         static_cast<int64_t>(16) << 10);
            lutboost::prefetchSpan(in + (r0 + rn) * in_w, ahead);
        }

        const float *cur = in + r0 * in_w;
        float *cur_mut = nullptr;
        bool in_a = false;  // live plane is tile_a (when cur_mut set)
        for (size_t s = begin; s < end; ++s) {
            const FrozenStage &stage = *stages_[s];
            const bool to_out = s >= last_oop;
            if (stage.inPlace()) {
                if (cur_mut == nullptr) {
                    float *dst;
                    if (to_out) {
                        dst = out + r0 * out_w;
                    } else {
                        local.tile_a.resize(static_cast<size_t>(
                            tile * stage.inWidth()));
                        dst = local.tile_a.data();
                        in_a = true;
                    }
                    std::memcpy(dst, cur,
                                static_cast<size_t>(rn * stage.inWidth()) *
                                    sizeof(float));
                    cur_mut = dst;
                    cur = cur_mut;
                }
                stage.forwardInPlace(cur_mut, rn, local);
            } else {
                float *dst;
                if (to_out) {
                    dst = out + r0 * out_w;
                } else {
                    std::vector<float> &plane =
                        (cur_mut != nullptr && in_a) ? local.tile_b
                                                     : local.tile_a;
                    plane.resize(
                        static_cast<size_t>(tile * stage.outWidth()));
                    dst = plane.data();
                    in_a = (&plane == &local.tile_a);
                }
                stage.forward(cur, rn, dst, local);
                cur_mut = dst;
                cur = cur_mut;
            }
        }

        if (&local != &scratch) {
            local.encode_ns = saved_encode;
            local.gather_ns = saved_gather;
        }
        local.pool = saved_pool;
    };

    if (scratch.pool != nullptr && tiles >= 2)
        scratch.pool->parallelFor(tiles, run_tile, scratch);
    else
        for (int64_t t = 0; t < tiles; ++t)
            run_tile(t, scratch);
}

} // namespace lutdla::serve
