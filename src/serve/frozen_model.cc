#include "serve/frozen_model.h"

#include <cmath>
#include <string>

#include "lutboost/lut_linear.h"
#include "nn/activations.h"
#include "nn/sequential.h"
#include "util/logging.h"
#include "util/rng.h"
#include "vq/quant.h"

namespace lutdla::serve {

namespace {

/** Depth-first, in-order flattening of Sequential containers. */
void
flattenLayers(const nn::LayerPtr &layer, std::vector<nn::Layer *> &out)
{
    if (auto *seq = dynamic_cast<nn::Sequential *>(layer.get())) {
        for (int64_t i = 0; i < seq->size(); ++i)
            flattenLayers(seq->child(i), out);
        return;
    }
    out.push_back(layer.get());
}

void
applyPost(Tensor &t, PostOp op)
{
    switch (op) {
      case PostOp::None:
        return;
      case PostOp::Relu:
        for (int64_t i = 0; i < t.numel(); ++i)
            if (!(t.at(i) > 0.0f))
                t.at(i) = 0.0f;
        return;
      case PostOp::Gelu:
        // nn::geluForward IS the eval-path function — sharing the
        // definition is what keeps the bit-exactness contract honest.
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = nn::geluForward(t.at(i));
        return;
    }
}

/** Cyclic column replication used only by trace-synthesized models. */
Tensor
adaptWidth(const Tensor &x, int64_t want)
{
    const int64_t rows = x.dim(0), have = x.dim(1);
    Tensor out(Shape{rows, want});
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = x.data() + r * have;
        float *dst = out.data() + r * want;
        for (int64_t j = 0; j < want; ++j)
            dst[j] = src[j % have];
    }
    return out;
}

bool
isPowerOfTwo(int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

} // namespace

TraceLayer
synthesizeTraceLayer(const sim::GemmShape &gemm, const vq::PQConfig &pq,
                     uint64_t seed, int64_t index, bool bf16_codebooks)
{
    Rng rng(seed + 7919ull * static_cast<uint64_t>(index));
    vq::ProductQuantizer quantizer(gemm.k, pq);
    for (int64_t s = 0; s < quantizer.numSubspaces(); ++s) {
        Tensor cb(Shape{pq.c, pq.v});
        for (int64_t i = 0; i < cb.numel(); ++i)
            cb.at(i) = static_cast<float>(rng.gaussian(0.0, 0.5));
        if (bf16_codebooks)
            vq::tensorToBf16(cb);
        quantizer.setCodebook(s, std::move(cb));
    }
    Tensor weights(Shape{gemm.k, gemm.n});
    const double scale = 1.0 / std::sqrt(static_cast<double>(gemm.k));
    for (int64_t i = 0; i < weights.numel(); ++i)
        weights.at(i) = static_cast<float>(rng.gaussian(0.0, scale));
    return {std::move(quantizer), std::move(weights)};
}

api::Status
FrozenModel::validateServable(const nn::LayerPtr &model)
{
    if (!model)
        return api::Status::invalidArgument(
            "FrozenModel requires a model");
    std::vector<nn::Layer *> layers;
    flattenLayers(model, layers);

    int64_t prev_out = -1;
    bool prev_stage_open = false;  // a LUT stage with no post-op yet
    bool any_lut = false;
    for (nn::Layer *layer : layers) {
        if (auto *lut = dynamic_cast<lutboost::LutLinear *>(layer)) {
            if (prev_out >= 0 && prev_out != lut->inFeatures())
                return api::Status::invalidArgument(
                    "stage widths do not chain: previous layer emits " +
                    std::to_string(prev_out) + ", next expects " +
                    std::to_string(lut->inFeatures()));
            prev_out = lut->outFeatures();
            prev_stage_open = true;
            any_lut = true;
            continue;
        }
        if (dynamic_cast<nn::Flatten *>(layer) != nullptr)
            continue;  // identity on the rank-2 rows serving handles
        if (dynamic_cast<nn::ReLU *>(layer) != nullptr ||
            dynamic_cast<nn::GELU *>(layer) != nullptr) {
            if (!prev_stage_open)
                return api::Status::invalidArgument(
                    "unsupported activation placement for serving (must "
                    "directly follow a LUT stage)");
            prev_stage_open = false;
            continue;
        }
        return api::Status::invalidArgument(
            "unsupported layer '" + layer->name() +
            "' for serving; FrozenModel handles Sequential chains of "
            "LutLinear/ReLU/GELU/Flatten (use fromTrace for other "
            "topologies)");
    }
    if (!any_lut)
        return api::Status::failedPrecondition(
            "model has no LUT operators; convert it before serving");
    return {};
}

api::Result<FrozenModel>
FrozenModel::fromModel(const nn::LayerPtr &model)
{
    if (api::Status status = validateServable(model); !status.ok())
        return status;
    std::vector<nn::Layer *> layers;
    flattenLayers(model, layers);

    // Topology is validated above; this pass only snapshots arenas and
    // attaches post-ops.
    FrozenModel frozen;
    for (nn::Layer *layer : layers) {
        if (auto *lut = dynamic_cast<lutboost::LutLinear *>(layer)) {
            if (!lut->inferenceLutReady())
                return api::Status::failedPrecondition(
                    "LutLinear is not frozen; call refreshInferenceLut() "
                    "(or Pipeline deployPrecision()) before serving");
            frozen.stages_.push_back({lut->inferenceArena(), PostOp::None});
        } else if (dynamic_cast<nn::ReLU *>(layer) != nullptr) {
            frozen.stages_.back().post = PostOp::Relu;
        } else if (dynamic_cast<nn::GELU *>(layer) != nullptr) {
            frozen.stages_.back().post = PostOp::Gelu;
        }
    }
    return frozen;
}

api::Result<FrozenModel>
FrozenModel::fromTrace(const std::vector<sim::GemmShape> &gemms,
                       const vq::PQConfig &pq, vq::LutPrecision precision,
                       uint64_t seed)
{
    if (gemms.empty())
        return api::Status::invalidArgument(
            "fromTrace requires a non-empty GEMM trace");
    if (pq.v < 1)
        return api::Status::invalidArgument("v must be >= 1");
    if (pq.c < 2 || !isPowerOfTwo(pq.c))
        return api::Status::invalidArgument(
            "c must be a power of two >= 2 (got " + std::to_string(pq.c) +
            ")");

    FrozenModel frozen;
    int64_t index = 0;
    for (const sim::GemmShape &gemm : gemms) {
        if (gemm.k < 1 || gemm.n < 1)
            return api::Status::invalidArgument(
                "trace gemm '" + gemm.tag + "' has invalid dims [k=" +
                std::to_string(gemm.k) + ", n=" + std::to_string(gemm.n) +
                "]");
        TraceLayer layer = synthesizeTraceLayer(
            gemm, pq, seed, index++, precision.bf16_similarity);
        const vq::LookupTable lut(layer.quantizer, layer.weights,
                                  precision);
        frozen.stages_.push_back(
            {std::make_shared<const lutboost::LutTableArena>(
                 layer.quantizer, lut, nullptr,
                 precision.bf16_similarity),
             PostOp::None});
    }
    return frozen;
}

int64_t
FrozenModel::inputWidth() const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    return stages_.front().lut->inFeatures();
}

int64_t
FrozenModel::outputWidth() const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    return stages_.back().lut->outFeatures();
}

int64_t
FrozenModel::tableBytes() const
{
    int64_t total = 0;
    for (const FrozenStage &stage : stages_)
        total += stage.lut->sizeBytes();
    return total;
}

Tensor
FrozenModel::forwardBatch(const Tensor &x) const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == inputWidth(),
                 "FrozenModel expects [rows, ", inputWidth(), "], got ",
                 shapeStr(x.shape()));
    Tensor cur = x;
    for (const FrozenStage &stage : stages_) {
        if (cur.dim(1) != stage.lut->inFeatures())
            cur = adaptWidth(cur, stage.lut->inFeatures());
        cur = stage.lut->forwardBatch(cur);
        applyPost(cur, stage.post);
    }
    return cur;
}

} // namespace lutdla::serve
