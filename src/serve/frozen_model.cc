#include "serve/frozen_model.h"

#include <cmath>
#include <cstring>
#include <string>

#include "lutboost/lut_conv.h"
#include "lutboost/lut_linear.h"
#include "nn/activations.h"
#include "nn/norm.h"
#include "nn/sequential.h"
#include "util/logging.h"
#include "util/rng.h"
#include "vq/quant.h"

namespace lutdla::serve {

namespace {

/** Depth-first, in-order flattening of Sequential containers. */
void
flattenLayers(const nn::LayerPtr &layer, std::vector<nn::Layer *> &out)
{
    if (auto *seq = dynamic_cast<nn::Sequential *>(layer.get())) {
        for (int64_t i = 0; i < seq->size(); ++i)
            flattenLayers(seq->child(i), out);
        return;
    }
    out.push_back(layer.get());
}

bool
isPowerOfTwo(int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/**
 * Activation-shape state threaded through the lowering walk: either a
 * spatial [c, h, w] image per row, a known flat width, or unknown (before
 * the first width-fixing layer).
 */
struct LowerState
{
    bool spatial = false;
    int64_t c = 0, h = 0, w = 0;  ///< valid when spatial
    int64_t flat = -1;            ///< valid when >= 0 and not spatial

    bool known() const { return spatial || flat >= 0; }

    std::string
    str() const
    {
        if (spatial)
            return "[C=" + std::to_string(c) + ", H=" + std::to_string(h) +
                   ", W=" + std::to_string(w) + "]";
        if (flat >= 0)
            return "[" + std::to_string(flat) + "]";
        return "(unknown)";
    }
};

/**
 * The single lowering pass behind fromModel and validateServable: walk a
 * flattened layer chain tracking the activation shape and either emit a
 * stage per layer (emit != nullptr; requires frozen LUT operators) or
 * only validate the topology (emit == nullptr; side-effect free, works
 * pre-freeze). Every rejection names the first unlowerable layer.
 */
api::Status
lowerChain(const std::vector<nn::Layer *> &layers, ServeInputShape input,
           std::vector<StagePtr> *emit)
{
    LowerState st;
    bool any_lut = false;

    for (nn::Layer *layer : layers) {
        if (auto *conv = dynamic_cast<lutboost::LutConv2d *>(layer)) {
            const ConvGeometry &geom = conv->geometry();
            if (!st.known()) {
                if (!input.spatial())
                    return api::Status::invalidArgument(
                        "LutConv2d at the model input needs the serving "
                        "image shape; pass ServeInputShape{height, width} "
                        "(each request row is a flattened NCHW image)");
                st.spatial = true;
                st.c = geom.in_channels;
                st.h = input.height;
                st.w = input.width;
            }
            if (!st.spatial)
                return api::Status::invalidArgument(
                    "LutConv2d cannot follow a flat " + st.str() +
                    " output; conv stages need spatial (NCHW) rows");
            if (st.c != geom.in_channels)
                return api::Status::invalidArgument(
                    "LutConv2d expects " +
                    std::to_string(geom.in_channels) +
                    " input channels but the previous stage emits " +
                    st.str());
            const int64_t ho = geom.outSize(st.h), wo = geom.outSize(st.w);
            if (ho < 1 || wo < 1)
                return api::Status::invalidArgument(
                    "LutConv2d collapses the spatial extent " + st.str() +
                    " to zero; the serving input shape is too small");
            if (emit) {
                if (!conv->inferenceLutReady())
                    return api::Status::failedPrecondition(
                        "LutConv2d is not frozen; call "
                        "refreshInferenceLut() (or Pipeline "
                        "deployPrecision()) before serving");
                emit->push_back(std::make_shared<ConvStage>(
                    geom, st.h, st.w, conv->inferenceArena()));
            }
            st.c = geom.out_channels;
            st.h = ho;
            st.w = wo;
            any_lut = true;
            continue;
        }
        if (auto *lut = dynamic_cast<lutboost::LutLinear *>(layer)) {
            if (st.spatial)
                return api::Status::invalidArgument(
                    "LutLinear follows a spatial " + st.str() +
                    " output; insert Flatten (or GlobalAvgPool) before "
                    "the classifier head");
            if (st.flat >= 0 && st.flat != lut->inFeatures())
                return api::Status::invalidArgument(
                    "stage widths do not chain at LutLinear: previous "
                    "layer emits " + std::to_string(st.flat) +
                    ", next expects " + std::to_string(lut->inFeatures()));
            if (emit) {
                if (!lut->inferenceLutReady())
                    return api::Status::failedPrecondition(
                        "LutLinear is not frozen; call "
                        "refreshInferenceLut() (or Pipeline "
                        "deployPrecision()) before serving");
                emit->push_back(
                    std::make_shared<ArenaStage>(lut->inferenceArena()));
            }
            st.spatial = false;
            st.flat = lut->outFeatures();
            any_lut = true;
            continue;
        }
        if (dynamic_cast<nn::ReLU *>(layer) != nullptr ||
            dynamic_cast<nn::GELU *>(layer) != nullptr) {
            if (!st.known())
                return api::Status::invalidArgument(
                    "activation '" + layer->name() +
                    "' at the model input has no inferable width; put a "
                    "LUT operator first");
            if (emit) {
                const auto op = dynamic_cast<nn::ReLU *>(layer) != nullptr
                                    ? PointwiseStage::Op::Relu
                                    : PointwiseStage::Op::Gelu;
                const int64_t width =
                    st.spatial ? st.c * st.h * st.w : st.flat;
                emit->push_back(
                    std::make_shared<PointwiseStage>(op, width));
            }
            continue;
        }
        if (dynamic_cast<nn::Flatten *>(layer) != nullptr) {
            if (st.spatial) {
                const int64_t width = st.c * st.h * st.w;
                if (emit)
                    emit->push_back(
                        std::make_shared<FlattenStage>(width));
                st.spatial = false;
                st.flat = width;
            }
            // Already-flat rows: rank-preserving identity, nothing to emit.
            continue;
        }
        if (auto *pool = dynamic_cast<nn::MaxPool2d *>(layer)) {
            if (!st.spatial)
                return api::Status::invalidArgument(
                    "MaxPool2d requires spatial (NCHW) rows but the "
                    "previous stage emits " + st.str() +
                    "; serving lowers pools only inside conv chains");
            const int64_t k = pool->kernel();
            if (st.h / k < 1 || st.w / k < 1)
                return api::Status::invalidArgument(
                    "MaxPool2d kernel " + std::to_string(k) +
                    " collapses the spatial extent " + st.str() +
                    " to zero");
            if (emit)
                emit->push_back(std::make_shared<MaxPoolStage>(
                    st.c, st.h, st.w, k));
            st.h /= k;
            st.w /= k;
            continue;
        }
        if (dynamic_cast<nn::GlobalAvgPool *>(layer) != nullptr) {
            if (!st.spatial)
                return api::Status::invalidArgument(
                    "GlobalAvgPool requires spatial (NCHW) rows but the "
                    "previous stage emits " + st.str());
            if (emit)
                emit->push_back(std::make_shared<GlobalAvgPoolStage>(
                    st.c, st.h, st.w));
            st.spatial = false;
            st.flat = st.c;
            continue;
        }
        if (auto *bn = dynamic_cast<nn::BatchNorm2d *>(layer)) {
            if (!st.known()) {
                if (!input.spatial())
                    return api::Status::invalidArgument(
                        "BatchNorm2d at the model input needs the serving "
                        "image shape; pass ServeInputShape{height, width}");
                st.spatial = true;
                st.c = bn->channels();
                st.h = input.height;
                st.w = input.width;
            }
            if (!st.spatial || st.c != bn->channels())
                return api::Status::invalidArgument(
                    "BatchNorm2d over " + std::to_string(bn->channels()) +
                    " channels cannot follow a stage emitting " + st.str());
            if (emit) {
                auto vec = [](const Tensor &t) {
                    return std::vector<float>(t.data(),
                                              t.data() + t.numel());
                };
                emit->push_back(std::make_shared<BatchNormStage>(
                    vec(bn->runningMean()), vec(bn->runningVar()),
                    vec(bn->gamma()), vec(bn->beta()), bn->epsilon(),
                    st.h, st.w));
            }
            continue;
        }
        if (auto *ln = dynamic_cast<nn::LayerNorm *>(layer)) {
            if (st.spatial || st.flat != ln->features())
                return api::Status::invalidArgument(
                    "LayerNorm over " + std::to_string(ln->features()) +
                    " features cannot follow a stage emitting " + st.str());
            if (emit) {
                auto vec = [](const Tensor &t) {
                    return std::vector<float>(t.data(),
                                              t.data() + t.numel());
                };
                emit->push_back(std::make_shared<LayerNormStage>(
                    vec(ln->gamma()), vec(ln->beta()), ln->epsilon()));
            }
            continue;
        }
        return api::Status::invalidArgument(
            "unsupported layer '" + layer->name() +
            "' for serving; FrozenModel lowers Sequential chains of "
            "LutLinear/LutConv2d/ReLU/GELU/MaxPool2d/GlobalAvgPool/"
            "BatchNorm2d/LayerNorm/Flatten (use fromTrace for other "
            "topologies)");
    }
    if (!any_lut)
        return api::Status::failedPrecondition(
            "model has no LUT operators; convert it before serving");
    return {};
}

} // namespace

TraceLayer
synthesizeTraceLayer(const sim::GemmShape &gemm, const vq::PQConfig &pq,
                     uint64_t seed, int64_t index, bool bf16_codebooks)
{
    Rng rng(seed + 7919ull * static_cast<uint64_t>(index));
    vq::ProductQuantizer quantizer(gemm.k, pq);
    for (int64_t s = 0; s < quantizer.numSubspaces(); ++s) {
        Tensor cb(Shape{pq.c, pq.v});
        for (int64_t i = 0; i < cb.numel(); ++i)
            cb.at(i) = static_cast<float>(rng.gaussian(0.0, 0.5));
        if (bf16_codebooks)
            vq::tensorToBf16(cb);
        quantizer.setCodebook(s, std::move(cb));
    }
    Tensor weights(Shape{gemm.k, gemm.n});
    const double scale = 1.0 / std::sqrt(static_cast<double>(gemm.k));
    for (int64_t i = 0; i < weights.numel(); ++i)
        weights.at(i) = static_cast<float>(rng.gaussian(0.0, scale));
    return {std::move(quantizer), std::move(weights)};
}

api::Status
FrozenModel::validateServable(const nn::LayerPtr &model,
                              ServeInputShape input)
{
    if (!model)
        return api::Status::invalidArgument(
            "FrozenModel requires a model");
    std::vector<nn::Layer *> layers;
    flattenLayers(model, layers);
    return lowerChain(layers, input, nullptr);
}

api::Result<FrozenModel>
FrozenModel::fromModel(const nn::LayerPtr &model, ServeInputShape input,
                       PlanOptions plan)
{
    if (!model)
        return api::Status::invalidArgument(
            "FrozenModel requires a model");
    std::vector<nn::Layer *> layers;
    flattenLayers(model, layers);
    FrozenModel frozen;
    if (api::Status status = lowerChain(layers, input, &frozen.stages_);
        !status.ok())
        return status;
    planStages(frozen.stages_, plan, frozen.plan_);
    return frozen;
}

api::Result<FrozenModel>
FrozenModel::fromTrace(const std::vector<sim::GemmShape> &gemms,
                       const vq::PQConfig &pq, vq::LutPrecision precision,
                       uint64_t seed, PlanOptions plan)
{
    if (gemms.empty())
        return api::Status::invalidArgument(
            "fromTrace requires a non-empty GEMM trace");
    if (pq.v < 1)
        return api::Status::invalidArgument("v must be >= 1");
    if (pq.c < 2 || !isPowerOfTwo(pq.c))
        return api::Status::invalidArgument(
            "c must be a power of two >= 2 (got " + std::to_string(pq.c) +
            ")");

    FrozenModel frozen;
    int64_t index = 0;
    int64_t prev_out = -1;
    for (const sim::GemmShape &gemm : gemms) {
        if (gemm.k < 1 || gemm.n < 1)
            return api::Status::invalidArgument(
                "trace gemm '" + gemm.tag + "' has invalid dims [k=" +
                std::to_string(gemm.k) + ", n=" + std::to_string(gemm.n) +
                "]");
        TraceLayer layer = synthesizeTraceLayer(
            gemm, pq, seed, index++, precision.bf16_similarity);
        const vq::LookupTable lut(layer.quantizer, layer.weights,
                                  precision);
        if (prev_out >= 0 && prev_out != gemm.k)
            frozen.stages_.push_back(
                std::make_shared<WidthAdaptStage>(prev_out, gemm.k));
        frozen.stages_.push_back(std::make_shared<ArenaStage>(
            std::make_shared<const lutboost::LutTableArena>(
                layer.quantizer, lut, nullptr,
                precision.bf16_similarity)));
        prev_out = gemm.n;
    }
    planStages(frozen.stages_, plan, frozen.plan_);
    return frozen;
}

int64_t
FrozenModel::inputWidth() const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    return stages_.front()->inWidth();
}

int64_t
FrozenModel::outputWidth() const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    return stages_.back()->outWidth();
}

int64_t
FrozenModel::numLutStages() const
{
    int64_t count = 0;
    for (const StagePtr &stage : stages_)
        if (stage->tableBytes() > 0)
            ++count;
    return count;
}

int64_t
FrozenModel::tableBytes() const
{
    int64_t total = 0;
    for (const StagePtr &stage : stages_)
        total += stage->tableBytes();
    return total;
}

std::string
FrozenModel::describe() const
{
    std::string out;
    for (const StagePtr &stage : stages_) {
        if (!out.empty())
            out += " -> ";
        out += stage->description();
    }
    return out;
}

std::string
FrozenModel::planSummary() const
{
    return serve::planSummary(plan_);
}

Tensor
FrozenModel::forwardBatch(const Tensor &x, StageScratch &scratch) const
{
    LUTDLA_CHECK(!stages_.empty(), "empty FrozenModel");
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == inputWidth(),
                 "FrozenModel expects [rows, ", inputWidth(), "], got ",
                 shapeStr(x.shape()));
    const int64_t rows = x.dim(0);

    // Ping-pong execution: `cur` tracks the live activations, which start
    // in the request tensor itself (read-only), move into a scratch plane
    // at the first stage, and alternate planes at every out-of-place
    // stage. In-place stages mutate the live plane directly.
    const float *cur = x.data();
    float *cur_mut = nullptr;  // non-null once cur points into scratch
    bool in_ping = false;
    for (const StagePtr &stage : stages_) {
        if (stage->inPlace()) {
            if (cur_mut == nullptr) {
                scratch.ping.resize(
                    static_cast<size_t>(rows * stage->inWidth()));
                std::memcpy(scratch.ping.data(), cur,
                            static_cast<size_t>(rows * stage->inWidth()) *
                                sizeof(float));
                cur_mut = scratch.ping.data();
                cur = cur_mut;
                in_ping = true;
            }
            stage->forwardInPlace(cur_mut, rows);
        } else {
            std::vector<float> &dst =
                (cur_mut != nullptr && in_ping) ? scratch.pong
                                                : scratch.ping;
            dst.resize(static_cast<size_t>(rows * stage->outWidth()));
            stage->forward(cur, rows, dst.data(), scratch);
            cur_mut = dst.data();
            cur = cur_mut;
            in_ping = (&dst == &scratch.ping);
        }
    }

    Tensor y(Shape{rows, outputWidth()});
    std::memcpy(y.data(), cur,
                static_cast<size_t>(y.numel()) * sizeof(float));
    return y;
}

Tensor
FrozenModel::forwardBatch(const Tensor &x) const
{
    StageScratch scratch;
    return forwardBatch(x, scratch);
}

} // namespace lutdla::serve
