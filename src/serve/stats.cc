#include "serve/stats.h"

#include <algorithm>
#include <cstdio>

namespace lutdla::serve {

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int
LatencyHistogram::bucketIndex(uint64_t micros)
{
    if (micros < kSubBuckets)
        return static_cast<int>(micros);
    int log = 63;
    while (((micros >> log) & 1) == 0)
        --log;
    // log >= kSubShift here; kSubBuckets linear sub-buckets spanning
    // [2^log, 2^(log+1)).
    const int sub = static_cast<int>((micros >> (log - kSubShift)) &
                                     (kSubBuckets - 1));
    const int index = (log - kSubShift + 1) * kSubBuckets + sub;
    return std::min(index, kBuckets - 1);
}

double
LatencyHistogram::bucketMidpoint(int index)
{
    if (index < kSubBuckets)
        return static_cast<double>(index);
    const int log = index / kSubBuckets + kSubShift - 1;
    const int sub = index % kSubBuckets;
    const double low = static_cast<double>(
        (static_cast<uint64_t>(kSubBuckets) + static_cast<uint64_t>(sub))
        << (log - kSubShift));
    const double width = static_cast<double>(1ull << (log - kSubShift));
    return low + width / 2.0;
}

void
LatencyHistogram::record(uint64_t micros)
{
    buckets_[static_cast<size_t>(bucketIndex(micros))]++;
    count_++;
    total_micros_ += micros;
}

double
LatencyHistogram::meanMicros() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(total_micros_) /
           static_cast<double>(count_);
}

double
LatencyHistogram::percentileMicros(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    const uint64_t rank = static_cast<uint64_t>(
        p / 100.0 * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[static_cast<size_t>(i)];
        if (seen > rank)
            return bucketMidpoint(i);
    }
    return bucketMidpoint(kBuckets - 1);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[static_cast<size_t>(i)] +=
            other.buckets_[static_cast<size_t>(i)];
    count_ += other.count_;
    total_micros_ += other.total_micros_;
}

double
EngineStats::rowsPerSec() const
{
    if (wall_seconds <= 0.0)
        return 0.0;
    return static_cast<double>(rows) / wall_seconds;
}

double
EngineStats::avgBatchFill() const
{
    if (batches == 0)
        return 0.0;
    return static_cast<double>(rows) / static_cast<double>(batches);
}

double
EngineStats::encodeFraction() const
{
    const double total = encode_seconds + gather_seconds;
    if (total <= 0.0)
        return 0.0;
    return encode_seconds / total;
}

std::string
EngineStats::summary() const
{
    char line[256];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "requests: %llu (%llu rejected), rows: %llu, batches: "
                  "%llu (avg fill %.2f)\n",
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(batches), avgBatchFill());
    out += line;
    std::snprintf(line, sizeof(line),
                  "throughput: %.1f rows/s over %.3f s busy window\n",
                  rowsPerSec(), wall_seconds);
    out += line;
    std::snprintf(line, sizeof(line),
                  "latency us: mean %.1f, p50 ~%.1f, p99 ~%.1f\n",
                  mean_latency_us, p50_latency_us, p99_latency_us);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  queue us: mean %.1f, p50 ~%.1f, p99 ~%.1f | "
                  "service us: mean %.1f, p50 ~%.1f, p99 ~%.1f\n",
                  mean_queue_us, p50_queue_us, p99_queue_us,
                  mean_service_us, p50_service_us, p99_service_us);
    out += line;
    std::snprintf(line, sizeof(line),
                  "lut phases: encode %.4f s, gather %.4f s (%.0f%% "
                  "encode; per-worker avg over %d active)\n",
                  encode_seconds, gather_seconds,
                  encodeFraction() * 100.0, active_workers);
    out += line;
    return out;
}

double
LaneStats::sloAttainment() const
{
    if (with_deadline == 0)
        return 1.0;
    return static_cast<double>(deadline_met) /
           static_cast<double>(with_deadline);
}

namespace {

std::string
laneLine(const std::string &label, const LaneStats &lane)
{
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "%-16s accepted %llu, served %llu (%llu rows), shed %llu "
        "(cap %llu / ddl %llu / cancel %llu), rejected %llu, "
        "p50 ~%.0f us, p99 ~%.0f us (queue ~%.0f, service ~%.0f), "
        "slo %.3f\n",
        label.c_str(), static_cast<unsigned long long>(lane.accepted),
        static_cast<unsigned long long>(lane.served),
        static_cast<unsigned long long>(lane.rows),
        static_cast<unsigned long long>(lane.shed()),
        static_cast<unsigned long long>(lane.shed_capacity),
        static_cast<unsigned long long>(lane.shed_deadline),
        static_cast<unsigned long long>(lane.cancelled),
        static_cast<unsigned long long>(lane.rejected),
        lane.p50_latency_us, lane.p99_latency_us, lane.p99_queue_us,
        lane.p99_service_us, lane.sloAttainment());
    return line;
}

} // namespace

std::string
FrontDoorStats::summary() const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "front door: %llu batches across %zu models, "
                  "%zu tenants\n",
                  static_cast<unsigned long long>(batches), models.size(),
                  tenants.size());
    out += line;
    out += laneLine("total", total);
    for (const auto &entry : models) {
        std::string label = "model " + entry.first;
        auto version = last_version.find(entry.first);
        if (version != last_version.end())
            label += " @v" + std::to_string(version->second);
        out += laneLine(label, entry.second);
    }
    for (const auto &entry : tenants)
        out += laneLine("tenant " + entry.first, entry.second);
    return out;
}

} // namespace lutdla::serve
