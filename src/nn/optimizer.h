#ifndef LUTDLA_NN_OPTIMIZER_H
#define LUTDLA_NN_OPTIMIZER_H

/**
 * @file
 * First-order optimizers over collected Parameter sets. LUTBoost's stages
 * swap the parameter set between calls (centroids only, then centroids +
 * weights), so optimizers support rebinding.
 */

#include <vector>

#include "nn/layer.h"

namespace lutdla::nn {

/** SGD with classical momentum and decoupled weight decay. */
class Sgd
{
  public:
    /**
     * @param params       Parameters to update (rebindable via bind()).
     * @param lr           Learning rate.
     * @param momentum     Momentum coefficient (0 disables).
     * @param weight_decay L2 decay applied to values (not to grads).
     */
    Sgd(std::vector<Parameter *> params, double lr, double momentum = 0.9,
        double weight_decay = 0.0);

    /** Replace the parameter set (velocity buffers reset). */
    void bind(std::vector<Parameter *> params);

    /** Apply one update step from accumulated grads. */
    void step();

    /** Zero all bound gradients. */
    void zeroGrad();

    /** Change the learning rate (for schedules). */
    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

  private:
    std::vector<Parameter *> params_;
    std::vector<Tensor> velocity_;
    double lr_;
    double momentum_;
    double weight_decay_;
};

/** Adam with bias correction. */
class Adam
{
  public:
    Adam(std::vector<Parameter *> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void bind(std::vector<Parameter *> params);
    void step();
    void zeroGrad();
    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

  private:
    std::vector<Parameter *> params_;
    std::vector<Tensor> m_, v_;
    double lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_OPTIMIZER_H
