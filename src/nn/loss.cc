#include "nn/loss.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::nn {

double
SoftmaxCrossEntropy::forward(const Tensor &logits,
                             const std::vector<int> &labels)
{
    LUTDLA_CHECK(logits.rank() == 2 &&
                 logits.dim(0) == static_cast<int64_t>(labels.size()),
                 "loss expects [B, C] logits with B labels");
    const int64_t B = logits.dim(0), C = logits.dim(1);
    probs_ = logits;
    labels_ = labels;
    double total = 0.0;
    for (int64_t b = 0; b < B; ++b) {
        float row_max = -1e30f;
        for (int64_t c = 0; c < C; ++c)
            row_max = std::max(row_max, probs_.at(b, c));
        double denom = 0.0;
        for (int64_t c = 0; c < C; ++c) {
            probs_.at(b, c) = std::exp(probs_.at(b, c) - row_max);
            denom += probs_.at(b, c);
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t c = 0; c < C; ++c)
            probs_.at(b, c) *= inv;
        const int y = labels[static_cast<size_t>(b)];
        LUTDLA_CHECK(y >= 0 && y < C, "label out of range");
        total -= std::log(std::max(probs_.at(b, y), 1e-12f));
    }
    return total / static_cast<double>(B);
}

Tensor
SoftmaxCrossEntropy::backward() const
{
    const int64_t B = probs_.dim(0), C = probs_.dim(1);
    Tensor g = probs_;
    const float inv_b = 1.0f / static_cast<float>(B);
    for (int64_t b = 0; b < B; ++b) {
        g.at(b, labels_[static_cast<size_t>(b)]) -= 1.0f;
        for (int64_t c = 0; c < C; ++c)
            g.at(b, c) *= inv_b;
    }
    return g;
}

double
accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    const int64_t B = logits.dim(0), C = logits.dim(1);
    int64_t hits = 0;
    for (int64_t b = 0; b < B; ++b) {
        int64_t best = 0;
        for (int64_t c = 1; c < C; ++c)
            if (logits.at(b, c) > logits.at(b, best))
                best = c;
        if (best == labels[static_cast<size_t>(b)])
            ++hits;
    }
    return B ? static_cast<double>(hits) / static_cast<double>(B) : 0.0;
}

} // namespace lutdla::nn
