#include "nn/models.h"

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/sequential.h"

namespace lutdla::nn {

LayerPtr
makeMlp(int64_t in_dim, const std::vector<int64_t> &hidden, int64_t classes,
        uint64_t seed)
{
    auto net = std::make_shared<Sequential>();
    int64_t prev = in_dim;
    uint64_t s = seed;
    for (int64_t h : hidden) {
        net->add(std::make_shared<Linear>(prev, h, true, s++));
        net->add(std::make_shared<ReLU>());
        prev = h;
    }
    net->add(std::make_shared<Linear>(prev, classes, true, s));
    return net;
}

namespace {

/** conv3x3 + BN (+ optional ReLU) helper for residual mains. */
LayerPtr
convBn(int64_t cin, int64_t cout, int64_t stride, bool relu, uint64_t seed)
{
    ConvGeometry g;
    g.in_channels = cin;
    g.out_channels = cout;
    g.kernel = 3;
    g.stride = stride;
    g.padding = 1;
    auto seq = std::make_shared<Sequential>();
    seq->add(std::make_shared<Conv2d>(g, false, seed));
    seq->add(std::make_shared<BatchNorm2d>(cout));
    if (relu)
        seq->add(std::make_shared<ReLU>());
    return seq;
}

/** 1x1 strided projection for dimension-changing skips. */
LayerPtr
projection(int64_t cin, int64_t cout, int64_t stride, uint64_t seed)
{
    ConvGeometry g;
    g.in_channels = cin;
    g.out_channels = cout;
    g.kernel = 1;
    g.stride = stride;
    g.padding = 0;
    auto seq = std::make_shared<Sequential>();
    seq->add(std::make_shared<Conv2d>(g, false, seed));
    seq->add(std::make_shared<BatchNorm2d>(cout));
    return seq;
}

/** Basic residual block: [conv-bn-relu, conv-bn] + skip. */
LayerPtr
basicBlock(int64_t cin, int64_t cout, int64_t stride, uint64_t seed)
{
    auto main = std::make_shared<Sequential>();
    main->add(convBn(cin, cout, stride, true, seed));
    main->add(convBn(cout, cout, 1, false, seed + 1));
    LayerPtr shortcut;
    if (cin != cout || stride != 1)
        shortcut = projection(cin, cout, stride, seed + 2);
    return std::make_shared<ResidualBlock>(main, shortcut);
}

} // namespace

LayerPtr
makeMiniResNet(int64_t blocks_per_stage, int64_t base_channels,
               int64_t classes, uint64_t seed)
{
    auto net = std::make_shared<Sequential>();
    uint64_t s = seed;
    // Stem.
    net->add(convBn(1, base_channels, 1, true, s));
    s += 3;
    // Stage 1 at full resolution.
    for (int64_t b = 0; b < blocks_per_stage; ++b) {
        net->add(basicBlock(base_channels, base_channels, 1, s));
        s += 3;
    }
    // Stage 2 at half resolution, doubled channels.
    const int64_t c2 = base_channels * 2;
    net->add(basicBlock(base_channels, c2, 2, s));
    s += 3;
    for (int64_t b = 1; b < blocks_per_stage; ++b) {
        net->add(basicBlock(c2, c2, 1, s));
        s += 3;
    }
    net->add(std::make_shared<GlobalAvgPool>());
    net->add(std::make_shared<Linear>(c2, classes, true, s));
    return net;
}

LayerPtr
makeLeNetStyle(int64_t classes, uint64_t seed)
{
    auto net = std::make_shared<Sequential>();
    ConvGeometry g1;
    g1.in_channels = 1;
    g1.out_channels = 6;
    g1.kernel = 3;
    g1.stride = 1;
    g1.padding = 0;
    net->add(std::make_shared<Conv2d>(g1, true, seed));
    net->add(std::make_shared<ReLU>());
    net->add(std::make_shared<MaxPool2d>(2));  // 12 -> 10 -> 5
    ConvGeometry g2;
    g2.in_channels = 6;
    g2.out_channels = 12;
    g2.kernel = 3;
    g2.stride = 1;
    g2.padding = 0;
    net->add(std::make_shared<Conv2d>(g2, true, seed + 1));  // 5 -> 3
    net->add(std::make_shared<ReLU>());
    net->add(std::make_shared<Flatten>());
    net->add(std::make_shared<Linear>(12 * 3 * 3, 32, true, seed + 2));
    net->add(std::make_shared<ReLU>());
    net->add(std::make_shared<Linear>(32, classes, true, seed + 3));
    return net;
}

LayerPtr
makeVggStyle(int64_t classes, uint64_t seed)
{
    auto net = std::make_shared<Sequential>();
    auto conv = [&](int64_t cin, int64_t cout, uint64_t s) {
        ConvGeometry g;
        g.in_channels = cin;
        g.out_channels = cout;
        g.kernel = 3;
        g.stride = 1;
        g.padding = 1;
        net->add(std::make_shared<Conv2d>(g, true, s));
        net->add(std::make_shared<ReLU>());
    };
    conv(1, 8, seed);
    conv(8, 8, seed + 1);
    net->add(std::make_shared<MaxPool2d>(2));  // 12 -> 6
    conv(8, 16, seed + 2);
    conv(16, 16, seed + 3);
    net->add(std::make_shared<MaxPool2d>(2));  // 6 -> 3
    net->add(std::make_shared<Flatten>());
    net->add(std::make_shared<Linear>(16 * 3 * 3, 48, true, seed + 4));
    net->add(std::make_shared<ReLU>());
    net->add(std::make_shared<Linear>(48, classes, true, seed + 5));
    return net;
}

LayerPtr
makeTinyTransformer(const TinyTransformerConfig &config)
{
    auto net = std::make_shared<Sequential>();
    net->add(std::make_shared<SequenceUnpack>(config.seq_len,
                                              config.in_dim));
    net->add(std::make_shared<Linear>(config.in_dim, config.d_model, true,
                                      config.seed));
    for (int64_t l = 0; l < config.layers; ++l) {
        net->add(std::make_shared<TransformerBlock>(
            config.seq_len, config.d_model, config.heads, config.d_ff,
            config.seed + 20 * (static_cast<uint64_t>(l) + 1)));
    }
    net->add(std::make_shared<LayerNorm>(config.d_model));
    net->add(std::make_shared<SequencePool>(config.seq_len));
    net->add(std::make_shared<Linear>(config.d_model, config.classes, true,
                                      config.seed + 99));
    return net;
}

} // namespace lutdla::nn
