#include "nn/conv2d.h"

#include <cmath>

#include "tensor/gemm.h"
#include "util/logging.h"
#include "util/rng.h"

namespace lutdla::nn {

Conv2d::Conv2d(ConvGeometry geom, bool bias, uint64_t seed)
    : geom_(geom), has_bias_(bias)
{
    Tensor w(Shape{geom_.patchSize(), geom_.out_channels});
    Rng rng(seed);
    const float bound =
        std::sqrt(6.0f / static_cast<float>(geom_.patchSize()));
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = static_cast<float>(rng.uniform(-bound, bound));
    weight_ = Parameter("weight", std::move(w));
    if (has_bias_)
        bias_ = Parameter("bias", Tensor(Shape{geom_.out_channels}));
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 4, "Conv2d expects NCHW input");
    const int64_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
    const int64_t Ho = geom_.outSize(H), Wo = geom_.outSize(W);

    Tensor cols = im2col(x, geom_);
    if (train) {
        cached_cols_ = cols;
        cached_n_ = N;
        cached_h_ = H;
        cached_w_ = W;
    }

    // [N*Ho*Wo, C_out] -> NCHW
    Tensor flat = matmul(cols, weight_.value);
    Tensor y(Shape{N, geom_.out_channels, Ho, Wo});
    int64_t row = 0;
    for (int64_t n = 0; n < N; ++n) {
        for (int64_t ho = 0; ho < Ho; ++ho) {
            for (int64_t wo = 0; wo < Wo; ++wo, ++row) {
                for (int64_t co = 0; co < geom_.out_channels; ++co) {
                    float v = flat.at(row, co);
                    if (has_bias_)
                        v += bias_.value.at(co);
                    y.at4(n, co, ho, wo) = v;
                }
            }
        }
    }
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(cached_cols_.numel() > 0,
                 "backward without forward(train=true)");
    const int64_t N = grad_out.dim(0), Ho = grad_out.dim(2);
    const int64_t Wo = grad_out.dim(3);

    // NCHW grad -> [N*Ho*Wo, C_out]
    Tensor flat(Shape{N * Ho * Wo, geom_.out_channels});
    int64_t row = 0;
    for (int64_t n = 0; n < N; ++n)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < geom_.out_channels; ++co)
                    flat.at(row, co) = grad_out.at4(n, co, ho, wo);

    weight_.grad += matmulTransposedA(cached_cols_, flat);
    if (has_bias_) {
        for (int64_t r = 0; r < flat.dim(0); ++r)
            for (int64_t co = 0; co < geom_.out_channels; ++co)
                bias_.grad.at(co) += flat.at(r, co);
    }

    Tensor grad_cols = matmulTransposedB(flat, weight_.value);
    return col2im(grad_cols, geom_, cached_n_, cached_h_, cached_w_);
}

std::vector<Parameter *>
Conv2d::parameters()
{
    std::vector<Parameter *> out{&weight_};
    if (has_bias_)
        out.push_back(&bias_);
    return out;
}

} // namespace lutdla::nn
