#include "nn/layer.h"

namespace lutdla::nn {

namespace {

/** Depth-first traversal applying `fn` to every layer in the subtree. */
void
forEachLayer(const LayerPtr &root, const std::function<void(Layer &)> &fn)
{
    if (!root)
        return;
    fn(*root);
    root->visitSlots([&](LayerPtr &child) { forEachLayer(child, fn); });
}

} // namespace

std::vector<Parameter *>
collectParameters(const LayerPtr &layer)
{
    std::vector<Parameter *> params;
    forEachLayer(layer, [&](Layer &l) {
        for (Parameter *p : l.parameters())
            params.push_back(p);
    });
    return params;
}

void
visitAllSlots(const LayerPtr &root, const SlotVisitor &visitor)
{
    if (!root)
        return;
    root->visitSlots([&](LayerPtr &child) {
        visitor(child);
        visitAllSlots(child, visitor);
    });
}

double
collectAuxLoss(const LayerPtr &root)
{
    double total = 0.0;
    forEachLayer(root, [&](Layer &l) { total += l.auxLoss(); });
    return total;
}

int64_t
countParameters(const LayerPtr &root)
{
    int64_t n = 0;
    for (Parameter *p : collectParameters(root))
        n += p->value.numel();
    return n;
}

} // namespace lutdla::nn
