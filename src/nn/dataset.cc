#include "nn/dataset.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace lutdla::nn {

namespace {

/** Interleave per-class sample generation into a shuffled split. */
template <typename GenFn>
void
generateSplit(int classes, int64_t per_class, int64_t feat, Rng &rng,
              GenFn &&gen, Tensor &x, std::vector<int> &y)
{
    const int64_t n = static_cast<int64_t>(classes) * per_class;
    x = Tensor(Shape{n, feat});
    y.resize(static_cast<size_t>(n));
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        order[static_cast<size_t>(i)] = i;
    rng.shuffle(order);
    int64_t idx = 0;
    for (int cls = 0; cls < classes; ++cls) {
        for (int64_t s = 0; s < per_class; ++s, ++idx) {
            const int64_t slot = order[static_cast<size_t>(idx)];
            gen(cls, x.data() + slot * feat);
            y[static_cast<size_t>(slot)] = cls;
        }
    }
}

} // namespace

Dataset
makeGaussianMixture(const GaussianMixtureConfig &config)
{
    Rng rng(config.seed);
    // Class centers drawn once, shared by both splits.
    std::vector<std::vector<float>> centers(
        static_cast<size_t>(config.classes));
    for (auto &ctr : centers) {
        ctr.resize(static_cast<size_t>(config.dim));
        for (auto &v : ctr)
            v = static_cast<float>(rng.gaussian(0.0, config.center_scale));
    }
    auto gen = [&](int cls, float *out) {
        const auto &ctr = centers[static_cast<size_t>(cls)];
        for (int64_t j = 0; j < config.dim; ++j)
            out[j] = ctr[static_cast<size_t>(j)] +
                     static_cast<float>(rng.gaussian(0.0, config.noise));
    };

    Dataset ds;
    ds.name = "gaussian-mixture-" + std::to_string(config.classes);
    ds.num_classes = config.classes;
    generateSplit(config.classes, config.train_per_class, config.dim, rng,
                  gen, ds.train_x, ds.train_y);
    generateSplit(config.classes, config.test_per_class, config.dim, rng,
                  gen, ds.test_x, ds.test_y);
    return ds;
}

namespace {

/** Paint shape pattern `cls` onto a size x size canvas (values in [0,1]). */
void
paintShape(int cls, int64_t size, int64_t dx, int64_t dy, float *img)
{
    auto put = [&](int64_t r, int64_t c, float v) {
        r += dy;
        c += dx;
        if (r >= 0 && r < size && c >= 0 && c < size)
            img[r * size + c] = v;
    };
    const int64_t mid = size / 2;
    const int64_t q = size / 4;
    switch (cls % 10) {
      case 0:  // horizontal bar
        for (int64_t c = 1; c < size - 1; ++c)
            for (int64_t r = mid - 1; r <= mid; ++r)
                put(r, c, 1.0f);
        break;
      case 1:  // vertical bar
        for (int64_t r = 1; r < size - 1; ++r)
            for (int64_t c = mid - 1; c <= mid; ++c)
                put(r, c, 1.0f);
        break;
      case 2:  // main diagonal
        for (int64_t r = 0; r < size; ++r) {
            put(r, r, 1.0f);
            put(r, std::min(r + 1, size - 1), 1.0f);
        }
        break;
      case 3:  // anti-diagonal
        for (int64_t r = 0; r < size; ++r) {
            put(r, size - 1 - r, 1.0f);
            put(r, std::max<int64_t>(size - 2 - r, 0), 1.0f);
        }
        break;
      case 4:  // cross
        for (int64_t r = 1; r < size - 1; ++r) {
            put(r, mid, 1.0f);
            put(mid, r, 1.0f);
        }
        break;
      case 5:  // hollow square
        for (int64_t i = q; i < size - q; ++i) {
            put(q, i, 1.0f);
            put(size - 1 - q, i, 1.0f);
            put(i, q, 1.0f);
            put(i, size - 1 - q, 1.0f);
        }
        break;
      case 6:  // filled blob (disc)
        for (int64_t r = 0; r < size; ++r)
            for (int64_t c = 0; c < size; ++c)
                if ((r - mid) * (r - mid) + (c - mid) * (c - mid) <= q * q)
                    put(r, c, 1.0f);
        break;
      case 7:  // checkerboard
        for (int64_t r = 0; r < size; ++r)
            for (int64_t c = 0; c < size; ++c)
                if (((r / 2) + (c / 2)) % 2 == 0)
                    put(r, c, 1.0f);
        break;
      case 8:  // horizontal gradient
        for (int64_t r = 0; r < size; ++r)
            for (int64_t c = 0; c < size; ++c)
                put(r, c, static_cast<float>(c) /
                              static_cast<float>(size - 1));
        break;
      case 9:  // two corner dots
        for (int64_t r = 0; r < q; ++r) {
            for (int64_t c = 0; c < q; ++c) {
                put(r, c, 1.0f);
                put(size - 1 - r, size - 1 - c, 1.0f);
            }
        }
        break;
    }
}

} // namespace

Dataset
makeShapeImages(const ShapeImageConfig &config)
{
    LUTDLA_CHECK(config.classes <= 10, "at most 10 shape classes");
    Rng rng(config.seed);
    const int64_t feat = config.size * config.size;
    auto gen = [&](int cls, float *out) {
        std::fill(out, out + feat, 0.0f);
        const int64_t dx = rng.uniformInt(-config.max_shift,
                                          config.max_shift);
        const int64_t dy = rng.uniformInt(-config.max_shift,
                                          config.max_shift);
        paintShape(cls, config.size, dx, dy, out);
        for (int64_t j = 0; j < feat; ++j)
            out[j] += static_cast<float>(rng.gaussian(0.0, config.noise));
    };

    Dataset ds;
    ds.name = "shape-images-" + std::to_string(config.classes);
    ds.num_classes = config.classes;
    generateSplit(config.classes, config.train_per_class, feat, rng, gen,
                  ds.train_x, ds.train_y);
    generateSplit(config.classes, config.test_per_class, feat, rng, gen,
                  ds.test_x, ds.test_y);
    const int64_t n_train = ds.train_x.dim(0);
    const int64_t n_test = ds.test_x.dim(0);
    ds.train_x = ds.train_x.reshaped(
        Shape{n_train, 1, config.size, config.size});
    ds.test_x = ds.test_x.reshaped(
        Shape{n_test, 1, config.size, config.size});
    return ds;
}

Dataset
makeSequenceTask(const SequenceTaskConfig &config)
{
    Rng rng(config.seed);
    // Class-specific mixing weights over a bank of temporal basis signals.
    const int64_t feat = config.seq_len * config.dim;
    std::vector<std::vector<float>> mix(static_cast<size_t>(config.classes));
    for (auto &m : mix) {
        m.resize(static_cast<size_t>(config.dim));
        for (auto &v : m)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    auto gen = [&](int cls, float *out) {
        const double freq = 1.0 + cls;
        const double phase = rng.uniform(0.0, 0.4);
        for (int64_t t = 0; t < config.seq_len; ++t) {
            const double base = std::sin(
                2.0 * M_PI * freq * (static_cast<double>(t) /
                                     config.seq_len) + phase);
            for (int64_t j = 0; j < config.dim; ++j) {
                out[t * config.dim + j] = static_cast<float>(
                    base * mix[static_cast<size_t>(cls)]
                              [static_cast<size_t>(j)] +
                    rng.gaussian(0.0, config.noise));
            }
        }
    };

    Dataset ds;
    ds.name = "sequence-task-" + std::to_string(config.classes);
    ds.num_classes = config.classes;
    generateSplit(config.classes, config.train_per_class, feat, rng, gen,
                  ds.train_x, ds.train_y);
    generateSplit(config.classes, config.test_per_class, feat, rng, gen,
                  ds.test_x, ds.test_y);
    return ds;
}

} // namespace lutdla::nn
