#include "nn/norm.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::nn {

void
batchNorm2dEval(const float *x, int64_t n, int64_t c, int64_t hw,
                const float *mean, const float *var, const float *gamma,
                const float *beta, float eps, float *y)
{
    for (int64_t ch = 0; ch < c; ++ch) {
        const float invstd = 1.0f / std::sqrt(var[ch] + eps);
        const float m = mean[ch];
        const float g = gamma[ch], b = beta[ch];
        for (int64_t bn = 0; bn < n; ++bn) {
            const float *src = x + (bn * c + ch) * hw;
            float *dst = y + (bn * c + ch) * hw;
            for (int64_t i = 0; i < hw; ++i)
                dst[i] = g * (src[i] - m) * invstd + b;
        }
    }
}

void
layerNormForward(const float *x, int64_t rows, int64_t features,
                 const float *gamma, const float *beta, float eps, float *y,
                 float *xhat, float *invstd)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float *src = x + r * features;
        float *dst = y + r * features;
        double mean = 0.0;
        for (int64_t j = 0; j < features; ++j)
            mean += src[j];
        mean /= static_cast<double>(features);
        double var = 0.0;
        for (int64_t j = 0; j < features; ++j) {
            const double d = src[j] - mean;
            var += d * d;
        }
        var /= static_cast<double>(features);
        const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
        for (int64_t j = 0; j < features; ++j) {
            const float xh = (src[j] - static_cast<float>(mean)) * inv;
            if (xhat)
                xhat[r * features + j] = xh;
            dst[j] = gamma[j] * xh + beta[j];
        }
        if (invstd)
            invstd[r] = inv;
    }
}

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps),
      gamma_("gamma", Tensor(Shape{channels}, 1.0f)),
      beta_("beta", Tensor(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}, 1.0f)
{
}

Tensor
BatchNorm2d::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 4 && x.dim(1) == channels_,
                 "BatchNorm2d expects NCHW with C=", channels_);
    const int64_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
    const int64_t count = N * H * W;
    Tensor y(x.shape());

    if (train) {
        batch_mean_.assign(static_cast<size_t>(channels_), 0.0f);
        batch_invstd_.assign(static_cast<size_t>(channels_), 0.0f);
        xhat_ = Tensor(x.shape());
        for (int64_t c = 0; c < channels_; ++c) {
            double mean = 0.0;
            for (int64_t n = 0; n < N; ++n)
                for (int64_t h = 0; h < H; ++h)
                    for (int64_t w = 0; w < W; ++w)
                        mean += x.at4(n, c, h, w);
            mean /= static_cast<double>(count);
            double var = 0.0;
            for (int64_t n = 0; n < N; ++n) {
                for (int64_t h = 0; h < H; ++h) {
                    for (int64_t w = 0; w < W; ++w) {
                        const double d = x.at4(n, c, h, w) - mean;
                        var += d * d;
                    }
                }
            }
            var /= static_cast<double>(count);
            const float invstd =
                1.0f / std::sqrt(static_cast<float>(var) + eps_);
            batch_mean_[static_cast<size_t>(c)] = static_cast<float>(mean);
            batch_invstd_[static_cast<size_t>(c)] = invstd;
            running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) +
                                  momentum_ * static_cast<float>(mean);
            running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) +
                                 momentum_ * static_cast<float>(var);
            for (int64_t n = 0; n < N; ++n) {
                for (int64_t h = 0; h < H; ++h) {
                    for (int64_t w = 0; w < W; ++w) {
                        const float xh = (x.at4(n, c, h, w) -
                                          static_cast<float>(mean)) * invstd;
                        xhat_.at4(n, c, h, w) = xh;
                        y.at4(n, c, h, w) =
                            gamma_.value.at(c) * xh + beta_.value.at(c);
                    }
                }
            }
        }
    } else {
        batchNorm2dEval(x.data(), N, channels_, H * W,
                        running_mean_.data(), running_var_.data(),
                        gamma_.value.data(), beta_.value.data(), eps_,
                        y.data());
    }
    return y;
}

Tensor
BatchNorm2d::backward(const Tensor &grad_out)
{
    const int64_t N = grad_out.dim(0), H = grad_out.dim(2);
    const int64_t W = grad_out.dim(3);
    const int64_t count = N * H * W;
    Tensor gx(grad_out.shape());

    for (int64_t c = 0; c < channels_; ++c) {
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int64_t n = 0; n < N; ++n) {
            for (int64_t h = 0; h < H; ++h) {
                for (int64_t w = 0; w < W; ++w) {
                    const float dy = grad_out.at4(n, c, h, w);
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhat_.at4(n, c, h, w);
                }
            }
        }
        gamma_.grad.at(c) += static_cast<float>(sum_dy_xhat);
        beta_.grad.at(c) += static_cast<float>(sum_dy);

        const float g = gamma_.value.at(c);
        const float invstd = batch_invstd_[static_cast<size_t>(c)];
        const float inv_count = 1.0f / static_cast<float>(count);
        for (int64_t n = 0; n < N; ++n) {
            for (int64_t h = 0; h < H; ++h) {
                for (int64_t w = 0; w < W; ++w) {
                    const float dy = grad_out.at4(n, c, h, w);
                    const float xh = xhat_.at4(n, c, h, w);
                    gx.at4(n, c, h, w) =
                        g * invstd *
                        (dy - inv_count * (static_cast<float>(sum_dy) +
                                           xh * static_cast<float>(
                                                    sum_dy_xhat)));
                }
            }
        }
    }
    return gx;
}

std::vector<Parameter *>
BatchNorm2d::parameters()
{
    return {&gamma_, &beta_};
}

void
BatchNorm2d::foldedAffine(std::vector<float> &scale,
                          std::vector<float> &shift) const
{
    scale.resize(static_cast<size_t>(channels_));
    shift.resize(static_cast<size_t>(channels_));
    for (int64_t c = 0; c < channels_; ++c) {
        const float invstd = 1.0f / std::sqrt(running_var_.at(c) + eps_);
        scale[static_cast<size_t>(c)] = gamma_.value.at(c) * invstd;
        shift[static_cast<size_t>(c)] =
            beta_.value.at(c) - gamma_.value.at(c) * running_mean_.at(c) *
                                    invstd;
    }
}

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps),
      gamma_("gamma", Tensor(Shape{features}, 1.0f)),
      beta_("beta", Tensor(Shape{features}))
{
}

Tensor
LayerNorm::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == features_,
                 "LayerNorm expects [rows, ", features_, "]");
    const int64_t R = x.dim(0);
    Tensor y(x.shape());
    if (train) {
        xhat_ = Tensor(x.shape());
        invstd_.assign(static_cast<size_t>(R), 0.0f);
    }
    layerNormForward(x.data(), R, features_, gamma_.value.data(),
                     beta_.value.data(), eps_, y.data(),
                     train ? xhat_.data() : nullptr,
                     train ? invstd_.data() : nullptr);
    return y;
}

Tensor
LayerNorm::backward(const Tensor &grad_out)
{
    const int64_t R = grad_out.dim(0);
    Tensor gx(grad_out.shape());
    const float inv_f = 1.0f / static_cast<float>(features_);
    for (int64_t r = 0; r < R; ++r) {
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int64_t j = 0; j < features_; ++j) {
            const float dyg = grad_out.at(r, j) * gamma_.value.at(j);
            sum_dy += dyg;
            sum_dy_xhat += dyg * xhat_.at(r, j);
            gamma_.grad.at(j) += grad_out.at(r, j) * xhat_.at(r, j);
            beta_.grad.at(j) += grad_out.at(r, j);
        }
        const float inv = invstd_[static_cast<size_t>(r)];
        for (int64_t j = 0; j < features_; ++j) {
            const float dyg = grad_out.at(r, j) * gamma_.value.at(j);
            gx.at(r, j) =
                inv * (dyg - inv_f * (static_cast<float>(sum_dy) +
                                      xhat_.at(r, j) *
                                          static_cast<float>(sum_dy_xhat)));
        }
    }
    return gx;
}

std::vector<Parameter *>
LayerNorm::parameters()
{
    return {&gamma_, &beta_};
}

} // namespace lutdla::nn
