#ifndef LUTDLA_NN_MODELS_H
#define LUTDLA_NN_MODELS_H

/**
 * @file
 * Model builders standing in for the paper's evaluation zoo (DESIGN.md
 * substitution table): MiniResNet-{20,32,56} for ResNet-20/32/56,
 * LeNet-style and VGG-style CNNs, an MLP, and TinyTransformer for the
 * BERT/DistilBERT/OPT family.
 */

#include "nn/layer.h"

namespace lutdla::nn {

/** Reshape [B, T*D] sample rows to the [B*T, D] layout transformers use. */
class SequenceUnpack : public Layer
{
  public:
    SequenceUnpack(int64_t seq_len, int64_t dim)
        : seq_len_(seq_len), dim_(dim)
    {
    }

    std::string name() const override { return "SequenceUnpack"; }
    Tensor
    forward(const Tensor &x, bool) override
    {
        return x.reshaped(Shape{x.dim(0) * seq_len_, dim_});
    }
    Tensor
    backward(const Tensor &g) override
    {
        return g.reshaped(Shape{g.dim(0) / seq_len_, seq_len_ * dim_});
    }

  private:
    int64_t seq_len_;
    int64_t dim_;
};

/** Plain MLP: in -> hidden... -> classes with ReLU between. */
LayerPtr makeMlp(int64_t in_dim, const std::vector<int64_t> &hidden,
                 int64_t classes, uint64_t seed = 101);

/**
 * Residual CNN on 1-channel square images, the MiniResNet family.
 *
 * @param blocks_per_stage Residual blocks in each of the two stages; the
 *        paper-analogue depths are 2 ("MiniResNet20"), 3 ("32"), 5 ("56").
 * @param base_channels    Stage-1 channel count (stage 2 doubles it).
 * @param classes          Output classes.
 */
LayerPtr makeMiniResNet(int64_t blocks_per_stage, int64_t base_channels,
                        int64_t classes, uint64_t seed = 103);

/** LeNet-style CNN for the MNIST-analogue shape task (12x12 inputs). */
LayerPtr makeLeNetStyle(int64_t classes, uint64_t seed = 105);

/** VGG-style plain CNN (conv-conv-pool x2) for 12x12 inputs. */
LayerPtr makeVggStyle(int64_t classes, uint64_t seed = 107);

/** Transformer encoder classifier settings. */
struct TinyTransformerConfig
{
    int64_t seq_len = 8;
    int64_t in_dim = 16;    ///< raw token feature width
    int64_t d_model = 32;
    int64_t heads = 4;
    int64_t layers = 2;
    int64_t d_ff = 64;
    int64_t classes = 4;
    uint64_t seed = 109;
};

/** Build the TinyTransformer: unpack -> embed -> blocks -> pool -> head. */
LayerPtr makeTinyTransformer(const TinyTransformerConfig &config);

} // namespace lutdla::nn

#endif // LUTDLA_NN_MODELS_H
