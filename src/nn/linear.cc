#include "nn/linear.h"

#include <cmath>

#include "tensor/gemm.h"
#include "util/logging.h"
#include "util/rng.h"

namespace lutdla::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias,
               uint64_t seed)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias)
{
    Tensor w(Shape{in_features_, out_features_});
    Rng rng(seed);
    const float bound = std::sqrt(6.0f / static_cast<float>(in_features_));
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = static_cast<float>(rng.uniform(-bound, bound));
    weight_ = Parameter("weight", std::move(w));
    if (has_bias_)
        bias_ = Parameter("bias", Tensor(Shape{out_features_}));
}

Tensor
Linear::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
                 "Linear expects [rows, ", in_features_, "], got ",
                 shapeStr(x.shape()));
    if (train)
        cached_input_ = x;
    Tensor y = matmul(x, weight_.value);
    if (has_bias_) {
        const int64_t rows = y.dim(0);
        for (int64_t r = 0; r < rows; ++r)
            for (int64_t n = 0; n < out_features_; ++n)
                y.at(r, n) += bias_.value.at(n);
    }
    return y;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(cached_input_.numel() > 0,
                 "backward without forward(train=true)");
    // dW = x^T * dY
    weight_.grad += matmulTransposedA(cached_input_, grad_out);
    if (has_bias_) {
        const int64_t rows = grad_out.dim(0);
        for (int64_t r = 0; r < rows; ++r)
            for (int64_t n = 0; n < out_features_; ++n)
                bias_.grad.at(n) += grad_out.at(r, n);
    }
    // dX = dY * W^T; matmulTransposedB takes W as [in, out] directly.
    return matmulTransposedB(grad_out, weight_.value);
}

std::vector<Parameter *>
Linear::parameters()
{
    std::vector<Parameter *> out{&weight_};
    if (has_bias_)
        out.push_back(&bias_);
    return out;
}

} // namespace lutdla::nn
