#include "nn/sequential.h"

#include "util/logging.h"

namespace lutdla::nn {

Sequential &
Sequential::add(LayerPtr layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

Tensor
Sequential::forward(const Tensor &x, bool train)
{
    Tensor h = x;
    for (auto &layer : layers_)
        h = layer->forward(h, train);
    return h;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

void
Sequential::visitSlots(const SlotVisitor &visitor)
{
    for (auto &layer : layers_)
        visitor(layer);
}

const LayerPtr &
Sequential::child(int64_t i) const
{
    LUTDLA_CHECK(i >= 0 && i < size(), "child index out of range");
    return layers_[static_cast<size_t>(i)];
}

Tensor
ResidualBlock::forward(const Tensor &x, bool train)
{
    Tensor main_out = main_->forward(x, train);
    Tensor skip = shortcut_ ? shortcut_->forward(x, train) : x;
    LUTDLA_CHECK(main_out.numel() == skip.numel(),
                 "residual branch shape mismatch: ",
                 shapeStr(main_out.shape()), " vs ", shapeStr(skip.shape()));
    Tensor y = main_out;
    y += skip;
    if (train)
        relu_mask_ = Tensor(y.shape());
    for (int64_t i = 0; i < y.numel(); ++i) {
        const bool pos = y.at(i) > 0.0f;
        if (!pos)
            y.at(i) = 0.0f;
        if (train)
            relu_mask_.at(i) = pos ? 1.0f : 0.0f;
    }
    return y;
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (int64_t i = 0; i < g.numel(); ++i)
        g.at(i) *= relu_mask_.at(i);
    Tensor g_main = main_->backward(g);
    Tensor g_skip = shortcut_ ? shortcut_->backward(g) : g;
    g_main += g_skip;
    return g_main;
}

void
ResidualBlock::visitSlots(const SlotVisitor &visitor)
{
    visitor(main_);
    if (shortcut_)
        visitor(shortcut_);
}

} // namespace lutdla::nn
