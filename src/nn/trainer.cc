#include "nn/trainer.h"

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace lutdla::nn {

Tensor
gatherRows(const Tensor &x, const std::vector<int64_t> &indices)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t row_elems = x.numel() / x.dim(0);
    Shape out_shape = x.shape();
    out_shape[0] = n;
    Tensor out(out_shape);
    for (int64_t i = 0; i < n; ++i) {
        const float *src = x.data() + indices[static_cast<size_t>(i)] *
                                          row_elems;
        std::copy(src, src + row_elems, out.data() + i * row_elems);
    }
    return out;
}

Trainer::Trainer(LayerPtr model, const Dataset &dataset, TrainConfig config)
    : model_(std::move(model)), dataset_(dataset), config_(config)
{
}

void
Trainer::setTrainableParams(std::vector<Parameter *> params)
{
    trainable_ = std::move(params);
}

TrainResult
Trainer::train()
{
    TrainResult result;
    std::vector<Parameter *> params =
        trainable_.empty() ? collectParameters(model_) : trainable_;
    std::vector<Parameter *> all_params = collectParameters(model_);

    Sgd sgd(params, config_.lr, config_.momentum, config_.weight_decay);
    Adam adam(params, config_.lr);
    Rng rng(config_.seed);

    const int64_t n = dataset_.trainSize();
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        order[static_cast<size_t>(i)] = i;

    SoftmaxCrossEntropy loss;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        int64_t batches = 0;
        for (int64_t start = 0; start < n; start += config_.batch_size) {
            const int64_t end = std::min(start + config_.batch_size, n);
            std::vector<int64_t> batch_idx(
                order.begin() + start, order.begin() + end);
            Tensor x = gatherRows(dataset_.train_x, batch_idx);
            std::vector<int> y(batch_idx.size());
            for (size_t i = 0; i < batch_idx.size(); ++i)
                y[i] = dataset_.train_y[static_cast<size_t>(batch_idx[i])];

            // Gradients of *all* parameters must be cleared: frozen layers
            // still accumulate grads that would otherwise leak across
            // LUTBoost stages.
            for (Parameter *p : all_params)
                p->zeroGrad();

            Tensor logits = model_->forward(x, true);
            const double batch_loss =
                loss.forward(logits, y) + collectAuxLoss(model_);
            model_->backward(loss.backward());

            if (config_.use_adam)
                adam.step();
            else
                sgd.step();

            result.iter_losses.push_back(batch_loss);
            epoch_loss += batch_loss;
            ++batches;
        }
        epoch_loss /= std::max<int64_t>(batches, 1);
        result.epoch_losses.push_back(epoch_loss);
        if (config_.lr_decay != 1.0) {
            sgd.setLr(sgd.lr() * config_.lr_decay);
            adam.setLr(adam.lr() * config_.lr_decay);
        }
        if (config_.verbose)
            inform("epoch ", epoch, " loss ", epoch_loss);
    }

    result.train_accuracy =
        evaluate(dataset_.train_x, dataset_.train_y);
    result.test_accuracy = evaluate(dataset_.test_x, dataset_.test_y);
    return result;
}

double
Trainer::evaluate(const Tensor &x, const std::vector<int> &labels,
                  int64_t batch_size)
{
    const int64_t n = x.dim(0);
    int64_t hits = 0;
    for (int64_t start = 0; start < n; start += batch_size) {
        const int64_t end = std::min(start + batch_size, n);
        std::vector<int64_t> idx;
        for (int64_t i = start; i < end; ++i)
            idx.push_back(i);
        Tensor bx = gatherRows(x, idx);
        std::vector<int> by(labels.begin() + start, labels.begin() + end);
        Tensor logits = model_->forward(bx, false);
        hits += static_cast<int64_t>(
            accuracy(logits, by) * static_cast<double>(end - start) + 0.5);
    }
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
}

} // namespace lutdla::nn
