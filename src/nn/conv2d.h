#ifndef LUTDLA_NN_CONV2D_H
#define LUTDLA_NN_CONV2D_H

/**
 * @file
 * 2-D convolution lowered onto GEMM via im2col — the exact lowering the
 * LUT-DLA hardware assumes for CNN workloads. LUTBoost swaps this layer for
 * a LUT convolution that quantizes the im2col rows.
 */

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace lutdla::nn {

/** NCHW convolution: weight [C_in*k*k, C_out], bias [C_out]. */
class Conv2d : public Layer
{
  public:
    /**
     * Construct with Kaiming init.
     *
     * @param geom Convolution geometry (channels/kernel/stride/padding).
     * @param bias Whether to learn a per-output-channel bias.
     * @param seed Init seed.
     */
    explicit Conv2d(ConvGeometry geom, bool bias = true, uint64_t seed = 13);

    std::string name() const override { return "Conv2d"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;

    const ConvGeometry &geometry() const { return geom_; }
    bool hasBias() const { return has_bias_; }

    /** Lowered weight matrix [C_in*k*k, C_out]. */
    Parameter &weight() { return weight_; }
    const Parameter &weight() const { return weight_; }
    Parameter &bias() { return bias_; }

  private:
    ConvGeometry geom_;
    bool has_bias_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_cols_;   ///< im2col matrix from the last training forward
    int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_CONV2D_H
