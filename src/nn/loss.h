#ifndef LUTDLA_NN_LOSS_H
#define LUTDLA_NN_LOSS_H

/**
 * @file
 * Classification loss and accuracy metrics.
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lutdla::nn {

/** Softmax cross-entropy over logits [B, classes] with int labels. */
class SoftmaxCrossEntropy
{
  public:
    /**
     * Compute mean loss and cache softmax probabilities for backward().
     *
     * @param logits [B, C] unnormalized scores.
     * @param labels B class indices.
     * @return Mean negative log-likelihood.
     */
    double forward(const Tensor &logits, const std::vector<int> &labels);

    /** Gradient of the mean loss w.r.t. the logits. */
    Tensor backward() const;

  private:
    Tensor probs_;
    std::vector<int> labels_;
};

/** Fraction of rows whose argmax matches the label. */
double accuracy(const Tensor &logits, const std::vector<int> &labels);

} // namespace lutdla::nn

#endif // LUTDLA_NN_LOSS_H
