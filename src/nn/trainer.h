#ifndef LUTDLA_NN_TRAINER_H
#define LUTDLA_NN_TRAINER_H

/**
 * @file
 * Mini-batch training loop shared by the float baselines and every
 * LUTBoost stage. Supports restricting the optimized parameter set, which
 * is how LUTBoost freezes weights during centroid calibration (Fig. 6,
 * step 2).
 */

#include <cstdint>
#include <vector>

#include "nn/dataset.h"
#include "nn/layer.h"

namespace lutdla::nn {

/** Training hyperparameters. */
struct TrainConfig
{
    int epochs = 10;
    int64_t batch_size = 32;
    double lr = 0.05;
    double momentum = 0.9;
    double weight_decay = 1e-4;
    double lr_decay = 1.0;        ///< multiplicative per-epoch decay
    bool use_adam = false;
    uint64_t seed = 7;            ///< batch shuffling seed
    bool verbose = false;

    /** Adam recipe (the LUTBoost stages and transformer runs use this). */
    static TrainConfig
    adam(int epochs, double lr, double weight_decay = 0.0)
    {
        TrainConfig cfg;
        cfg.epochs = epochs;
        cfg.lr = lr;
        cfg.weight_decay = weight_decay;
        cfg.use_adam = true;
        return cfg;
    }

    /** SGD-with-momentum recipe (the CNN float baselines use this). */
    static TrainConfig
    sgd(int epochs, double lr, double momentum = 0.9,
        double weight_decay = 1e-4)
    {
        TrainConfig cfg;
        cfg.epochs = epochs;
        cfg.lr = lr;
        cfg.momentum = momentum;
        cfg.weight_decay = weight_decay;
        return cfg;
    }
};

/** Loss/accuracy trace of one training run. */
struct TrainResult
{
    std::vector<double> iter_losses;   ///< per-batch total loss
    std::vector<double> epoch_losses;  ///< mean loss per epoch
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
};

/** Gather rows of a rank-2/rank-4 tensor along dim 0. */
Tensor gatherRows(const Tensor &x, const std::vector<int64_t> &indices);

/**
 * Trains a model on a dataset.
 *
 * The forward loss is softmax cross-entropy plus the model's auxLoss()
 * (LUT layers report their reconstruction losses there; their gradients
 * are applied inside the layers' backward passes).
 */
class Trainer
{
  public:
    Trainer(LayerPtr model, const Dataset &dataset, TrainConfig config);

    /** Optimize only these parameters (empty = all model parameters). */
    void setTrainableParams(std::vector<Parameter *> params);

    /** Run the configured number of epochs. */
    TrainResult train();

    /** Mean accuracy over a split evaluated in inference mode. */
    double evaluate(const Tensor &x, const std::vector<int> &labels,
                    int64_t batch_size = 64);

    LayerPtr model() const { return model_; }

  private:
    LayerPtr model_;
    const Dataset &dataset_;
    TrainConfig config_;
    std::vector<Parameter *> trainable_;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_TRAINER_H
