#include "nn/activations.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace lutdla::nn {

Tensor
ReLU::forward(const Tensor &x, bool train)
{
    Tensor y = x;
    if (train)
        mask_ = Tensor(x.shape());
    for (int64_t i = 0; i < y.numel(); ++i) {
        const bool pos = y.at(i) > 0.0f;
        y.at(i) = reluForward(y.at(i));
        if (train)
            mask_.at(i) = pos ? 1.0f : 0.0f;
    }
    return y;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(mask_.numel() == grad_out.numel(), "ReLU backward shape");
    Tensor g = grad_out;
    for (int64_t i = 0; i < g.numel(); ++i)
        g.at(i) *= mask_.at(i);
    return g;
}

namespace {

constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)

} // namespace

float
geluForward(float x)
{
    const float inner = kGeluC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

namespace {

float
geluGrad(float x)
{
    const float x3 = x * x * x;
    const float inner = kGeluC * (x + 0.044715f * x3);
    const float t = std::tanh(inner);
    const float sech2 = 1.0f - t * t;
    return 0.5f * (1.0f + t) +
           0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

} // namespace

Tensor
GELU::forward(const Tensor &x, bool train)
{
    if (train)
        cached_input_ = x;
    Tensor y = x;
    for (int64_t i = 0; i < y.numel(); ++i)
        y.at(i) = geluForward(y.at(i));
    return y;
}

Tensor
GELU::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(cached_input_.numel() == grad_out.numel(),
                 "GELU backward shape");
    Tensor g = grad_out;
    for (int64_t i = 0; i < g.numel(); ++i)
        g.at(i) *= geluGrad(cached_input_.at(i));
    return g;
}

void
softmaxForward(const float *x, int64_t rows, int64_t features, float *y)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float *xr = x + r * features;
        float *yr = y + r * features;
        float row_max = -1e30f;
        for (int64_t j = 0; j < features; ++j)
            row_max = std::max(row_max, xr[j]);
        float denom = 0.0f;
        for (int64_t j = 0; j < features; ++j) {
            yr[j] = std::exp(xr[j] - row_max);
            denom += yr[j];
        }
        const float inv = 1.0f / denom;
        for (int64_t j = 0; j < features; ++j)
            yr[j] *= inv;
    }
}

Tensor
Softmax::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 2, "Softmax expects [N, C]");
    Tensor y(x.shape());
    softmaxForward(x.data(), x.dim(0), x.dim(1), y.data());
    if (train)
        probs_ = y;
    return y;
}

Tensor
Softmax::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(probs_.numel() == grad_out.numel(),
                 "Softmax backward shape");
    const int64_t N = probs_.dim(0), C = probs_.dim(1);
    Tensor g(probs_.shape());
    for (int64_t n = 0; n < N; ++n) {
        float dot = 0.0f;
        for (int64_t c = 0; c < C; ++c)
            dot += grad_out.at(n, c) * probs_.at(n, c);
        for (int64_t c = 0; c < C; ++c)
            g.at(n, c) = probs_.at(n, c) * (grad_out.at(n, c) - dot);
    }
    return g;
}

Tensor
Flatten::forward(const Tensor &x, bool train)
{
    if (train)
        input_shape_ = x.shape();
    return x.reshaped(Shape{x.dim(0), x.numel() / x.dim(0)});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    return grad_out.reshaped(input_shape_);
}

void
maxPool2dForward(const float *x, int64_t n, int64_t c, int64_t h, int64_t w,
                 int64_t kernel, float *y, int64_t *argmax)
{
    const int64_t ho_dim = h / kernel, wo_dim = w / kernel;
    int64_t out_idx = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t ch = 0; ch < c; ++ch) {
            const float *plane = x + (b * c + ch) * h * w;
            for (int64_t ho = 0; ho < ho_dim; ++ho) {
                for (int64_t wo = 0; wo < wo_dim; ++wo, ++out_idx) {
                    float best = -1e30f;
                    int64_t best_flat = 0;
                    for (int64_t kh = 0; kh < kernel; ++kh) {
                        for (int64_t kw = 0; kw < kernel; ++kw) {
                            const int64_t hi = ho * kernel + kh;
                            const int64_t wi = wo * kernel + kw;
                            const float v = plane[hi * w + wi];
                            if (v > best) {
                                best = v;
                                best_flat = ((b * c + ch) * h + hi) * w + wi;
                            }
                        }
                    }
                    y[out_idx] = best;
                    if (argmax)
                        argmax[out_idx] = best_flat;
                }
            }
        }
    }
}

Tensor
MaxPool2d::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 4, "MaxPool2d expects NCHW");
    const int64_t N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
    const int64_t Ho = H / kernel_, Wo = W / kernel_;
    LUTDLA_CHECK(Ho > 0 && Wo > 0, "pool collapsed output");

    Tensor y(Shape{N, C, Ho, Wo});
    if (train) {
        input_shape_ = x.shape();
        argmax_.assign(static_cast<size_t>(y.numel()), 0);
    }
    maxPool2dForward(x.data(), N, C, H, W, kernel_, y.data(),
                     train ? argmax_.data() : nullptr);
    return y;
}

Tensor
MaxPool2d::backward(const Tensor &grad_out)
{
    Tensor g(input_shape_);
    for (int64_t i = 0; i < grad_out.numel(); ++i)
        g.at(argmax_[static_cast<size_t>(i)]) += grad_out.at(i);
    return g;
}

void
globalAvgPoolForward(const float *x, int64_t n, int64_t c, int64_t h,
                     int64_t w, float *y)
{
    const float inv = 1.0f / static_cast<float>(h * w);
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t ch = 0; ch < c; ++ch) {
            const float *plane = x + (b * c + ch) * h * w;
            float s = 0.0f;
            for (int64_t i = 0; i < h * w; ++i)
                s += plane[i];
            y[b * c + ch] = s * inv;
        }
    }
}

Tensor
GlobalAvgPool::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 4, "GlobalAvgPool expects NCHW");
    if (train)
        input_shape_ = x.shape();
    const int64_t N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
    Tensor y(Shape{N, C});
    globalAvgPoolForward(x.data(), N, C, H, W, y.data());
    return y;
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    const int64_t N = input_shape_[0], C = input_shape_[1];
    const int64_t H = input_shape_[2], W = input_shape_[3];
    Tensor g(input_shape_);
    const float inv = 1.0f / static_cast<float>(H * W);
    for (int64_t n = 0; n < N; ++n)
        for (int64_t c = 0; c < C; ++c)
            for (int64_t h = 0; h < H; ++h)
                for (int64_t w = 0; w < W; ++w)
                    g.at4(n, c, h, w) = grad_out.at(n, c) * inv;
    return g;
}

} // namespace lutdla::nn
