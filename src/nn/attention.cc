#include "nn/attention.h"

#include <cmath>

#include "nn/activations.h"
#include "util/logging.h"

namespace lutdla::nn {

void
attentionSequenceContext(const float *q, const float *k, const float *v,
                         int64_t seq_len, int64_t heads, int64_t d_model,
                         float *ctx, float *probs)
{
    const int64_t T = seq_len;
    const int64_t d_head = d_model / heads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
    for (int64_t h = 0; h < heads; ++h) {
        float *p = probs + h * T * T;
        const int64_t col = h * d_head;
        for (int64_t t = 0; t < T; ++t) {
            const float *qrow = q + t * d_model + col;
            for (int64_t s = 0; s < T; ++s) {
                const float *krow = k + s * d_model + col;
                float dot = 0.0f;
                for (int64_t j = 0; j < d_head; ++j)
                    dot += qrow[j] * krow[j];
                p[t * T + s] = dot * scale;
            }
        }
        // Stable shared softmax over the T probability rows: identical
        // float ops in identical order to the historical inline loops.
        softmaxForward(p, T, T, p);
        for (int64_t t = 0; t < T; ++t) {
            float *crow = ctx + t * d_model + col;
            for (int64_t s = 0; s < T; ++s) {
                const float w = p[t * T + s];
                const float *vrow = v + s * d_model + col;
                for (int64_t j = 0; j < d_head; ++j)
                    crow[j] += w * vrow[j];
            }
        }
    }
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t seq_len,
                                               int64_t d_model,
                                               int64_t heads, uint64_t seed)
    : seq_len_(seq_len), d_model_(d_model), heads_(heads),
      d_head_(d_model / heads)
{
    LUTDLA_CHECK(d_model_ % heads_ == 0, "heads must divide d_model");
    wq_ = std::make_shared<Linear>(d_model_, d_model_, true, seed + 1);
    wk_ = std::make_shared<Linear>(d_model_, d_model_, true, seed + 2);
    wv_ = std::make_shared<Linear>(d_model_, d_model_, true, seed + 3);
    wo_ = std::make_shared<Linear>(d_model_, d_model_, true, seed + 4);
}

Tensor
MultiHeadSelfAttention::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == d_model_ &&
                 x.dim(0) % seq_len_ == 0,
                 "attention expects [B*T, D]");
    const int64_t B = x.dim(0) / seq_len_;
    const int64_t T = seq_len_;
    Tensor q = wq_->forward(x, train);
    Tensor k = wk_->forward(x, train);
    Tensor v = wv_->forward(x, train);

    Tensor probs(Shape{B * heads_, T, T});
    Tensor ctx(Shape{B * T, d_model_});

    for (int64_t b = 0; b < B; ++b)
        attentionSequenceContext(q.data() + b * T * d_model_,
                                 k.data() + b * T * d_model_,
                                 v.data() + b * T * d_model_, T, heads_,
                                 d_model_,
                                 ctx.data() + b * T * d_model_,
                                 probs.data() + b * heads_ * T * T);

    if (train) {
        q_ = q;
        k_ = k;
        v_ = v;
        probs_ = probs;
        batch_ = B;
    }
    return wo_->forward(ctx, train);
}

Tensor
MultiHeadSelfAttention::backward(const Tensor &grad_out)
{
    const int64_t B = batch_, T = seq_len_;
    Tensor g_ctx = wo_->backward(grad_out);
    Tensor dq(q_.shape()), dk(k_.shape()), dv(v_.shape());
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));

    for (int64_t b = 0; b < B; ++b) {
        for (int64_t h = 0; h < heads_; ++h) {
            const float *p = probs_.data() + (b * heads_ + h) * T * T;
            const int64_t col = h * d_head_;
            // dP and dV.
            std::vector<float> dp(static_cast<size_t>(T * T), 0.0f);
            for (int64_t t = 0; t < T; ++t) {
                const float *grow =
                    g_ctx.data() + (b * T + t) * d_model_ + col;
                for (int64_t s = 0; s < T; ++s) {
                    const float *vrow =
                        v_.data() + (b * T + s) * d_model_ + col;
                    float dot = 0.0f;
                    for (int64_t j = 0; j < d_head_; ++j)
                        dot += grow[j] * vrow[j];
                    dp[static_cast<size_t>(t * T + s)] = dot;
                    float *dvrow = dv.data() + (b * T + s) * d_model_ + col;
                    const float w = p[t * T + s];
                    for (int64_t j = 0; j < d_head_; ++j)
                        dvrow[j] += w * grow[j];
                }
            }
            // Softmax backward: dS = P * (dP - sum_s dP*P).
            for (int64_t t = 0; t < T; ++t) {
                float dot = 0.0f;
                for (int64_t s = 0; s < T; ++s)
                    dot += dp[static_cast<size_t>(t * T + s)] * p[t * T + s];
                for (int64_t s = 0; s < T; ++s) {
                    const float ds =
                        p[t * T + s] *
                        (dp[static_cast<size_t>(t * T + s)] - dot) * scale;
                    // dQ[t] += ds * K[s]; dK[s] += ds * Q[t].
                    float *dqrow = dq.data() + (b * T + t) * d_model_ + col;
                    float *dkrow = dk.data() + (b * T + s) * d_model_ + col;
                    const float *krow =
                        k_.data() + (b * T + s) * d_model_ + col;
                    const float *qrow =
                        q_.data() + (b * T + t) * d_model_ + col;
                    for (int64_t j = 0; j < d_head_; ++j) {
                        dqrow[j] += ds * krow[j];
                        dkrow[j] += ds * qrow[j];
                    }
                }
            }
        }
    }

    Tensor gx = wq_->backward(dq);
    gx += wk_->backward(dk);
    gx += wv_->backward(dv);
    return gx;
}

void
MultiHeadSelfAttention::visitSlots(const SlotVisitor &visitor)
{
    visitor(wq_);
    visitor(wk_);
    visitor(wv_);
    visitor(wo_);
}

TransformerBlock::TransformerBlock(int64_t seq_len, int64_t d_model,
                                   int64_t heads, int64_t d_ff, uint64_t seed)
{
    ln1_ = std::make_shared<LayerNorm>(d_model);
    attn_ = std::make_shared<MultiHeadSelfAttention>(seq_len, d_model, heads,
                                                     seed);
    ln2_ = std::make_shared<LayerNorm>(d_model);
    auto ffn = std::make_shared<Sequential>();
    ffn->add(std::make_shared<Linear>(d_model, d_ff, true, seed + 10));
    ffn->add(std::make_shared<GELU>());
    ffn->add(std::make_shared<Linear>(d_ff, d_model, true, seed + 11));
    ffn_ = ffn;
}

Tensor
TransformerBlock::forward(const Tensor &x, bool train)
{
    Tensor h1 = attn_->forward(ln1_->forward(x, train), train);
    Tensor r1 = x + h1;
    Tensor h2 = ffn_->forward(ln2_->forward(r1, train), train);
    return r1 + h2;
}

Tensor
TransformerBlock::backward(const Tensor &grad_out)
{
    Tensor d_r1 = grad_out;
    d_r1 += ln2_->backward(ffn_->backward(grad_out));
    Tensor d_x = d_r1;
    d_x += ln1_->backward(attn_->backward(d_r1));
    return d_x;
}

void
TransformerBlock::visitSlots(const SlotVisitor &visitor)
{
    visitor(ln1_);
    visitor(attn_);
    visitor(ln2_);
    visitor(ffn_);
}

Tensor
SequencePool::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(0) % seq_len_ == 0,
                 "SequencePool expects [B*T, D]");
    const int64_t B = x.dim(0) / seq_len_, D = x.dim(1);
    if (train) {
        batch_ = B;
        d_ = D;
    }
    Tensor y(Shape{B, D});
    const float inv = 1.0f / static_cast<float>(seq_len_);
    for (int64_t b = 0; b < B; ++b)
        for (int64_t t = 0; t < seq_len_; ++t)
            for (int64_t j = 0; j < D; ++j)
                y.at(b, j) += x.at(b * seq_len_ + t, j) * inv;
    return y;
}

Tensor
SequencePool::backward(const Tensor &grad_out)
{
    Tensor g(Shape{batch_ * seq_len_, d_});
    const float inv = 1.0f / static_cast<float>(seq_len_);
    for (int64_t b = 0; b < batch_; ++b)
        for (int64_t t = 0; t < seq_len_; ++t)
            for (int64_t j = 0; j < d_; ++j)
                g.at(b * seq_len_ + t, j) = grad_out.at(b, j) * inv;
    return g;
}

} // namespace lutdla::nn
