#ifndef LUTDLA_NN_DATASET_H
#define LUTDLA_NN_DATASET_H

/**
 * @file
 * Seeded synthetic datasets standing in for the paper's CIFAR/ImageNet/GLUE
 * workloads (see DESIGN.md substitution table). Each generator is fully
 * deterministic given its config, so every accuracy experiment reproduces
 * bit-for-bit.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace lutdla::nn {

/** An in-memory supervised dataset split into train/test halves. */
struct Dataset
{
    std::string name;
    Tensor train_x;               ///< [N, ...] features
    std::vector<int> train_y;
    Tensor test_x;
    std::vector<int> test_y;
    int num_classes = 0;

    int64_t trainSize() const { return train_x.dim(0); }
    int64_t testSize() const { return test_x.dim(0); }
};

/** Gaussian-mixture vector classification ("synth10"/"synth100" style). */
struct GaussianMixtureConfig
{
    int classes = 10;
    int64_t dim = 32;
    int64_t train_per_class = 64;
    int64_t test_per_class = 16;
    double center_scale = 2.0;    ///< class-center magnitude
    double noise = 0.9;           ///< within-class spread
    uint64_t seed = 42;
};

/** Build the mixture dataset; rank-2 features [N, dim]. */
Dataset makeGaussianMixture(const GaussianMixtureConfig &config);

/** Procedural shape images for CNN experiments (NCHW, 1 channel). */
struct ShapeImageConfig
{
    int classes = 10;             ///< up to 10 distinct shape patterns
    int64_t size = 12;            ///< square image side
    int64_t train_per_class = 48;
    int64_t test_per_class = 16;
    double noise = 0.25;
    int64_t max_shift = 2;        ///< random translation in pixels
    uint64_t seed = 43;
};

/** Build the shape-image dataset; features [N, 1, size, size]. */
Dataset makeShapeImages(const ShapeImageConfig &config);

/** Synthetic sequence classification for transformer experiments. */
struct SequenceTaskConfig
{
    int classes = 4;
    int64_t seq_len = 8;
    int64_t dim = 16;             ///< per-token feature width
    int64_t train_per_class = 48;
    int64_t test_per_class = 16;
    double noise = 0.35;
    uint64_t seed = 44;
};

/**
 * Build the sequence dataset. Each class has a characteristic temporal
 * pattern (class-specific sinusoid frequency/phase mixed across feature
 * channels). Features are [N * seq_len, dim] row-blocks per sample, the
 * layout the transformer layers consume.
 */
Dataset makeSequenceTask(const SequenceTaskConfig &config);

} // namespace lutdla::nn

#endif // LUTDLA_NN_DATASET_H
