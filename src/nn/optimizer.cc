#include "nn/optimizer.h"

#include <cmath>

namespace lutdla::nn {

Sgd::Sgd(std::vector<Parameter *> params, double lr, double momentum,
         double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay)
{
    bind(std::move(params));
}

void
Sgd::bind(std::vector<Parameter *> params)
{
    params_ = std::move(params);
    velocity_.clear();
    velocity_.reserve(params_.size());
    for (Parameter *p : params_)
        velocity_.emplace_back(p->value.shape());
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Parameter *p = params_[i];
        Tensor &vel = velocity_[i];
        float *val = p->value.data();
        float *grd = p->grad.data();
        float *v = vel.data();
        const float lr = static_cast<float>(lr_);
        const float mom = static_cast<float>(momentum_);
        const float wd = static_cast<float>(weight_decay_);
        for (int64_t j = 0; j < p->value.numel(); ++j) {
            const float g = grd[j] + wd * val[j];
            v[j] = mom * v[j] + g;
            val[j] -= lr * v[j];
        }
    }
}

void
Sgd::zeroGrad()
{
    for (Parameter *p : params_)
        p->zeroGrad();
}

Adam::Adam(std::vector<Parameter *> params, double lr, double beta1,
           double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
    bind(std::move(params));
}

void
Adam::bind(std::vector<Parameter *> params)
{
    params_ = std::move(params);
    m_.clear();
    v_.clear();
    t_ = 0;
    for (Parameter *p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void
Adam::step()
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        Parameter *p = params_[i];
        float *val = p->value.data();
        float *grd = p->grad.data();
        float *m = m_[i].data();
        float *v = v_[i].data();
        for (int64_t j = 0; j < p->value.numel(); ++j) {
            const float g = grd[j];
            m[j] = static_cast<float>(beta1_) * m[j] +
                   static_cast<float>(1.0 - beta1_) * g;
            v[j] = static_cast<float>(beta2_) * v[j] +
                   static_cast<float>(1.0 - beta2_) * g * g;
            const double mhat = m[j] / bc1;
            const double vhat = v[j] / bc2;
            val[j] -= static_cast<float>(lr_ * mhat /
                                         (std::sqrt(vhat) + eps_));
        }
    }
}

void
Adam::zeroGrad()
{
    for (Parameter *p : params_)
        p->zeroGrad();
}

} // namespace lutdla::nn
