#ifndef LUTDLA_NN_LINEAR_H
#define LUTDLA_NN_LINEAR_H

/**
 * @file
 * Fully-connected layer. This is the operator LUTBoost's step 1 replaces
 * with a LUT operator; both share the [rows, features] matrix convention so
 * the swap is transparent to the surrounding graph.
 */

#include "nn/layer.h"

namespace lutdla::nn {

/** y = x * W + b with W stored [in, out]. */
class Linear : public Layer
{
  public:
    /**
     * Construct with Kaiming-uniform weight init.
     *
     * @param in_features  Input width K.
     * @param out_features Output width N.
     * @param bias         Whether to learn a bias.
     * @param seed         Init seed (deterministic builds).
     */
    Linear(int64_t in_features, int64_t out_features, bool bias = true,
           uint64_t seed = 11);

    std::string name() const override { return "Linear"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;

    int64_t inFeatures() const { return in_features_; }
    int64_t outFeatures() const { return out_features_; }
    bool hasBias() const { return has_bias_; }

    /** Weight matrix [in, out]. */
    Parameter &weight() { return weight_; }
    const Parameter &weight() const { return weight_; }

    /** Bias vector [out] (undefined when hasBias() is false). */
    Parameter &bias() { return bias_; }
    const Parameter &bias() const { return bias_; }

  private:
    int64_t in_features_;
    int64_t out_features_;
    bool has_bias_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_LINEAR_H
