#ifndef LUTDLA_NN_ATTENTION_H
#define LUTDLA_NN_ATTENTION_H

/**
 * @file
 * Multi-head self-attention and a pre-LN transformer encoder block.
 *
 * The QKV/output projections and the FFN linears are ordinary Linear
 * layers exposed as slots, which is exactly the set of operators the paper
 * converts to LUTs for its BERT/DistilBERT/OPT evaluation (QKV projection
 * and FFN layers, Sec. VII-C). Softmax/LayerNorm stay exact, mirroring the
 * hardware's decision to offload them.
 */

#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/sequential.h"

namespace lutdla::nn {

/**
 * Scaled-dot-product attention kernel for ONE sequence, shared by
 * MultiHeadSelfAttention::forward and the serving layer's AttentionStage
 * (single definition, bit-exact). `q`/`k`/`v` are that sequence's
 * [seq_len, d_model] projection planes; heads are column slices of width
 * d_model/heads (no materialized transpose). Per head and query row it
 * computes the scaled dots, runs the stable shared softmax
 * (softmaxForward: row-max subtraction, so huge logits never overflow
 * exp), and accumulates the probability-weighted value rows into `ctx`,
 * which the CALLER must zero-initialize. `probs` is [heads, seq_len,
 * seq_len] caller scratch (training wants it cached; serving reuses a
 * per-worker plane).
 */
void attentionSequenceContext(const float *q, const float *k,
                              const float *v, int64_t seq_len,
                              int64_t heads, int64_t d_model, float *ctx,
                              float *probs);

/** Self-attention over [B*T, D] rows with a fixed sequence length. */
class MultiHeadSelfAttention : public Layer
{
  public:
    /**
     * @param seq_len Sequence length T (rows must be a multiple of it).
     * @param d_model Embedding width D.
     * @param heads   Head count (must divide D).
     * @param seed    Projection init seed.
     */
    MultiHeadSelfAttention(int64_t seq_len, int64_t d_model, int64_t heads,
                           uint64_t seed = 17);

    std::string name() const override { return "MultiHeadSelfAttention"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    void visitSlots(const SlotVisitor &visitor) override;

    /** @name Serving-lowering accessors (read-only)
     * @{
     */
    int64_t seqLen() const { return seq_len_; }
    int64_t dModel() const { return d_model_; }
    int64_t heads() const { return heads_; }
    const LayerPtr &wq() const { return wq_; }
    const LayerPtr &wk() const { return wk_; }
    const LayerPtr &wv() const { return wv_; }
    const LayerPtr &wo() const { return wo_; }
    /** @} */

  private:
    int64_t seq_len_;
    int64_t d_model_;
    int64_t heads_;
    int64_t d_head_;
    LayerPtr wq_, wk_, wv_, wo_;
    // Training caches.
    Tensor q_, k_, v_;
    Tensor probs_;  ///< [B*heads, T, T]
    int64_t batch_ = 0;
};

/** Pre-LN encoder block: x + MHSA(LN(x)), then x + FFN(LN(x)). */
class TransformerBlock : public Layer
{
  public:
    TransformerBlock(int64_t seq_len, int64_t d_model, int64_t heads,
                     int64_t d_ff, uint64_t seed = 19);

    std::string name() const override { return "TransformerBlock"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    void visitSlots(const SlotVisitor &visitor) override;

    /** @name Serving-lowering accessors (read-only)
     * @{
     */
    const LayerPtr &ln1() const { return ln1_; }
    const LayerPtr &attn() const { return attn_; }
    const LayerPtr &ln2() const { return ln2_; }
    const LayerPtr &ffn() const { return ffn_; }
    /** @} */

  private:
    LayerPtr ln1_, attn_, ln2_, ffn_;
};

/** Mean-pool rows of each sequence: [B*T, D] -> [B, D]. */
class SequencePool : public Layer
{
  public:
    explicit SequencePool(int64_t seq_len) : seq_len_(seq_len) {}

    std::string name() const override { return "SequencePool"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    int64_t seq_len_;
    int64_t batch_ = 0, d_ = 0;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_ATTENTION_H
