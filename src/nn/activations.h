#ifndef LUTDLA_NN_ACTIVATIONS_H
#define LUTDLA_NN_ACTIVATIONS_H

/**
 * @file
 * Pointwise activations and shape plumbing layers. In the accelerator these
 * map onto the IMM's element-wise/dequant path (Sec. IV-A); in software they
 * are exact.
 */

#include "nn/layer.h"

namespace lutdla::nn {

/**
 * Scalar tanh-approximation GELU (as in BERT). Exposed so the serving
 * layer's frozen stages reuse the exact same math as GELU::forward —
 * the engine's bit-exactness contract depends on a single definition.
 */
float geluForward(float x);

/** Scalar ReLU; the single definition ReLU::forward and serving share. */
inline float
reluForward(float x)
{
    return x > 0.0f ? x : 0.0f;
}

/**
 * Raw NCHW max-pool kernel (stride == kernel, floor division), shared by
 * MaxPool2d::forward and the serving layer's pooling stage so both paths
 * are one definition and therefore bit-exact.
 *
 * @param x      Input [n, c, h, w], row-major contiguous.
 * @param y      Output [n, c, h/kernel, w/kernel], caller-allocated.
 * @param argmax When non-null, receives the flat input index of each
 *               output's winning element (training needs it for backward;
 *               serving passes nullptr).
 */
void maxPool2dForward(const float *x, int64_t n, int64_t c, int64_t h,
                      int64_t w, int64_t kernel, float *y, int64_t *argmax);

/**
 * Raw NCHW global-average-pool kernel, shared by GlobalAvgPool::forward
 * and the serving layer's pooling stage (single definition, bit-exact).
 * `y` is the caller-allocated [n, c] output.
 */
void globalAvgPoolForward(const float *x, int64_t n, int64_t c, int64_t h,
                          int64_t w, float *y);

/**
 * Numerically stable row-wise softmax: y[r, :] = softmax(x[r, :]), with
 * the row max subtracted before exponentiation so logits anywhere in
 * float range (|x| ~ 1e4 and beyond) never overflow exp. Single
 * definition shared by Softmax::forward, MultiHeadSelfAttention's
 * probability rows, and the serving layer's SoftmaxStage — the engine's
 * bit-exactness contract depends on all three running these exact float
 * ops in this exact order. In-place operation (y == x) is allowed.
 */
void softmaxForward(const float *x, int64_t rows, int64_t features,
                    float *y);

/** max(0, x). */
class ReLU : public Layer
{
  public:
    std::string name() const override { return "ReLU"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor mask_;
};

/** Gaussian error linear unit (tanh approximation, as in BERT). */
class GELU : public Layer
{
  public:
    std::string name() const override { return "GELU"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor cached_input_;
};

/** Row-wise softmax over [N, C] (stable; see softmaxForward). */
class Softmax : public Layer
{
  public:
    std::string name() const override { return "Softmax"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor probs_;
};

/** Collapse NCHW to [N, C*H*W] for classifier heads. */
class Flatten : public Layer
{
  public:
    std::string name() const override { return "Flatten"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Shape input_shape_;
};

/** Non-overlapping max pooling with stride == kernel. */
class MaxPool2d : public Layer
{
  public:
    explicit MaxPool2d(int64_t kernel) : kernel_(kernel) {}

    std::string name() const override { return "MaxPool2d"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    /** Pooling window (== stride); the serving lowering pass reads it. */
    int64_t kernel() const { return kernel_; }

  private:
    int64_t kernel_;
    Shape input_shape_;
    std::vector<int64_t> argmax_;
};

/** Global average pooling: NCHW -> [N, C]. */
class GlobalAvgPool : public Layer
{
  public:
    std::string name() const override { return "GlobalAvgPool"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Shape input_shape_;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_ACTIVATIONS_H
