#ifndef LUTDLA_NN_NORM_H
#define LUTDLA_NN_NORM_H

/**
 * @file
 * Normalization layers. The paper folds batch-norm into weights at deploy
 * time and offloads layernorm to a vector path; for training fidelity we
 * implement both exactly.
 */

#include "nn/layer.h"

namespace lutdla::nn {

/**
 * Raw eval-mode batch-norm kernel over NCHW data: per channel,
 * y = gamma * (x - mean) / sqrt(var + eps) + beta. Shared by
 * BatchNorm2d::forward (eval branch) and the serving layer's norm stage
 * so the frozen snapshot stays bit-exact with the live layer.
 *
 * @param x  Input [n, c, hw] flattened spatial planes, contiguous.
 * @param y  Caller-allocated output of the same extent.
 */
void batchNorm2dEval(const float *x, int64_t n, int64_t c, int64_t hw,
                     const float *mean, const float *var, const float *gamma,
                     const float *beta, float eps, float *y);

/**
 * Raw layer-norm kernel over [rows, features]: per row, normalize to zero
 * mean / unit variance then apply gamma/beta. Shared by LayerNorm::forward
 * and the serving layer's norm stage (single definition, bit-exact).
 *
 * @param xhat   When non-null, receives the normalized activations
 *               (training caches them for backward; serving passes null).
 * @param invstd When non-null, receives each row's 1/std.
 */
void layerNormForward(const float *x, int64_t rows, int64_t features,
                      const float *gamma, const float *beta, float eps,
                      float *y, float *xhat, float *invstd);

/** Per-channel batch normalization over NCHW with running statistics. */
class BatchNorm2d : public Layer
{
  public:
    explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                         float eps = 1e-5f);

    std::string name() const override { return "BatchNorm2d"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;

    /** Fold (gamma, beta, running stats) into an equivalent scale/shift. */
    void foldedAffine(std::vector<float> &scale,
                      std::vector<float> &shift) const;

    /** @name Frozen-deployment snapshot accessors (read-only)
     * The serving lowering pass copies these into an immutable norm stage.
     * @{
     */
    int64_t channels() const { return channels_; }
    float epsilon() const { return eps_; }
    const Tensor &runningMean() const { return running_mean_; }
    const Tensor &runningVar() const { return running_var_; }
    const Tensor &gamma() const { return gamma_.value; }
    const Tensor &beta() const { return beta_.value; }
    /** @} */

  private:
    int64_t channels_;
    float momentum_;
    float eps_;
    Parameter gamma_;
    Parameter beta_;
    Tensor running_mean_;
    Tensor running_var_;
    // Training-pass caches.
    Tensor xhat_;
    std::vector<float> batch_mean_, batch_invstd_;
};

/** Layer normalization over the last dimension of [rows, features]. */
class LayerNorm : public Layer
{
  public:
    explicit LayerNorm(int64_t features, float eps = 1e-5f);

    std::string name() const override { return "LayerNorm"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;

    /** @name Frozen-deployment snapshot accessors (read-only)
     * @{
     */
    int64_t features() const { return features_; }
    float epsilon() const { return eps_; }
    const Tensor &gamma() const { return gamma_.value; }
    const Tensor &beta() const { return beta_.value; }
    /** @} */

  private:
    int64_t features_;
    float eps_;
    Parameter gamma_;
    Parameter beta_;
    Tensor xhat_;
    std::vector<float> invstd_;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_NORM_H
