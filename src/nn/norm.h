#ifndef LUTDLA_NN_NORM_H
#define LUTDLA_NN_NORM_H

/**
 * @file
 * Normalization layers. The paper folds batch-norm into weights at deploy
 * time and offloads layernorm to a vector path; for training fidelity we
 * implement both exactly.
 */

#include "nn/layer.h"

namespace lutdla::nn {

/** Per-channel batch normalization over NCHW with running statistics. */
class BatchNorm2d : public Layer
{
  public:
    explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                         float eps = 1e-5f);

    std::string name() const override { return "BatchNorm2d"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;

    /** Fold (gamma, beta, running stats) into an equivalent scale/shift. */
    void foldedAffine(std::vector<float> &scale,
                      std::vector<float> &shift) const;

  private:
    int64_t channels_;
    float momentum_;
    float eps_;
    Parameter gamma_;
    Parameter beta_;
    Tensor running_mean_;
    Tensor running_var_;
    // Training-pass caches.
    Tensor xhat_;
    std::vector<float> batch_mean_, batch_invstd_;
};

/** Layer normalization over the last dimension of [rows, features]. */
class LayerNorm : public Layer
{
  public:
    explicit LayerNorm(int64_t features, float eps = 1e-5f);

    std::string name() const override { return "LayerNorm"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;

  private:
    int64_t features_;
    float eps_;
    Parameter gamma_;
    Parameter beta_;
    Tensor xhat_;
    std::vector<float> invstd_;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_NORM_H
