#ifndef LUTDLA_NN_LAYER_H
#define LUTDLA_NN_LAYER_H

/**
 * @file
 * Layer abstraction for the NN training substrate.
 *
 * LUTBoost converts *trained* models, so the library needs its own training
 * stack (no external ML framework). The design is deliberately simple:
 * layers cache whatever the backward pass needs, forward/backward are
 * explicit, and containers expose child slots so the LUTBoost converter can
 * splice LUT operators in place of Linear/Conv2d (Fig. 6, step 1).
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace lutdla::nn {

/** A trainable tensor with its gradient accumulator. */
struct Parameter
{
    std::string name;
    Tensor value;
    Tensor grad;

    Parameter() = default;
    Parameter(std::string n, Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape())
    {
    }

    /** Zero the gradient accumulator. */
    void zeroGrad() { grad.zero(); }
};

class Layer;

/** Shared ownership handle used throughout the model graph. */
using LayerPtr = std::shared_ptr<Layer>;

/** Callback receiving a mutable child slot (for operator replacement). */
using SlotVisitor = std::function<void(LayerPtr &)>;

/**
 * Base class for all layers.
 *
 * Contract: backward() must be called with the gradient of the most recent
 * forward(train=true) output and returns the gradient w.r.t. that input,
 * accumulating parameter gradients on the way.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Layer type name for printing and conversion reports. */
    virtual std::string name() const = 0;

    /**
     * Run the layer.
     * @param x     Input tensor.
     * @param train True during training (enables caching, batch stats).
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /** Backpropagate; see class contract. */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Directly owned parameters (not children's). */
    virtual std::vector<Parameter *> parameters() { return {}; }

    /** Visit mutable child slots; containers override and recurse. */
    virtual void visitSlots(const SlotVisitor &visitor) { (void)visitor; }

    /**
     * Auxiliary loss contributed by the layer for the current forward pass
     * (LUT layers return their reconstruction loss here). Cleared by the
     * next forward.
     */
    virtual double auxLoss() const { return 0.0; }
};

/** Collect all parameters in a subtree rooted at `layer` (inclusive). */
std::vector<Parameter *> collectParameters(const LayerPtr &layer);

/** Apply `visitor` to every slot in the subtree, depth-first. */
void visitAllSlots(const LayerPtr &root, const SlotVisitor &visitor);

/** Sum of auxLoss() over the subtree. */
double collectAuxLoss(const LayerPtr &root);

/** Count parameters in a subtree. */
int64_t countParameters(const LayerPtr &root);

} // namespace lutdla::nn

#endif // LUTDLA_NN_LAYER_H
