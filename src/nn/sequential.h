#ifndef LUTDLA_NN_SEQUENTIAL_H
#define LUTDLA_NN_SEQUENTIAL_H

/**
 * @file
 * Container layers: Sequential chains and residual blocks. Containers expose
 * mutable child slots so the LUTBoost converter can replace Linear/Conv2d
 * children anywhere in the graph.
 */

#include "nn/layer.h"

namespace lutdla::nn {

/** Runs children in order. */
class Sequential : public Layer
{
  public:
    Sequential() = default;
    explicit Sequential(std::vector<LayerPtr> layers)
        : layers_(std::move(layers))
    {
    }

    /** Append a child layer and return *this for chaining. */
    Sequential &add(LayerPtr layer);

    std::string name() const override { return "Sequential"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    void visitSlots(const SlotVisitor &visitor) override;

    int64_t size() const { return static_cast<int64_t>(layers_.size()); }
    const LayerPtr &child(int64_t i) const;

  private:
    std::vector<LayerPtr> layers_;
};

/**
 * Pre-activation-free basic residual block: y = relu(main(x) + shortcut(x)).
 * `shortcut` may be null for the identity skip.
 */
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(LayerPtr main, LayerPtr shortcut = nullptr)
        : main_(std::move(main)), shortcut_(std::move(shortcut))
    {
    }

    std::string name() const override { return "ResidualBlock"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    void visitSlots(const SlotVisitor &visitor) override;

    /** @name Serving-lowering accessors (read-only)
     * @{
     */
    const LayerPtr &main() const { return main_; }
    const LayerPtr &shortcut() const { return shortcut_; }
    /** @} */

  private:
    LayerPtr main_;
    LayerPtr shortcut_;
    Tensor relu_mask_;
};

} // namespace lutdla::nn

#endif // LUTDLA_NN_SEQUENTIAL_H
