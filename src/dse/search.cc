#include "dse/search.h"

#include <algorithm>

#include "util/logging.h"

namespace lutdla::dse {

std::string
pruneStageName(PruneStage stage)
{
    switch (stage) {
      case PruneStage::Survived: return "survived";
      case PruneStage::Compute:  return "compute-pruned";
      case PruneStage::Memory:   return "memory-pruned";
      case PruneStage::Hardware: return "hardware-pruned";
      case PruneStage::Accuracy: return "accuracy-pruned";
    }
    return "?";
}

CoDesignSearchEngine::CoDesignSearchEngine(SearchSpace space,
                                           SearchConstraints constraints,
                                           AccuracyProbe probe)
    : space_(std::move(space)), constraints_(std::move(constraints)),
      probe_(std::move(probe)), lib_(hw::tech28()), sram_(hw::tech28())
{
}

hw::LutDlaDesign
CoDesignSearchEngine::designFor(const Candidate &cand) const
{
    hw::LutDlaDesign d;
    d.v = cand.v;
    d.c = cand.c;
    d.metric = constraints_.metric;
    d.sim_format = hw::NumFormat::Bf16;
    d.lut_entry_bytes = (constraints_.lut_bits + 7) / 8;
    // Tile geometry scaled to the workload: Tn covers the N dimension in
    // n_imm slices (capped), M rows buffered up to 512.
    d.tn = std::clamp<int64_t>(constraints_.workload.n / 6, 64, 768);
    d.m_rows = std::min<int64_t>(constraints_.workload.m, 512);
    d.n_imm = cand.n_imm;
    d.n_ccu = cand.n_ccu;
    return d;
}

Candidate
CoDesignSearchEngine::expandParallelism(Candidate cand) const
{
    const auto &cs = constraints_;
    cand.n_imm = 1;
    cand.n_ccu = 1;

    auto fits = [&](const Candidate &c) {
        const hw::AccelPpa ppa = evaluateDesign(lib_, sram_, designFor(c));
        return ppa.area_mm2 <= cs.max_area_mm2 &&
               ppa.power_mw <= cs.max_power_mw;
    };

    // LUT-first greedy growth (Algorithm 2 steps 3-4): while constraints
    // hold, add an IMM when lookup-bound, else add a CCU.
    while (true) {
        Candidate next = cand;
        const OmegaTerms terms =
            omega(cs.workload, cand.v, cand.c, cs.beta_bits_per_cycle,
                  cand.n_imm, cand.n_ccu, cs.lut_bits);
        const bool imm_bound =
            std::string(terms.bottleneckName()) == "lut" &&
            cand.n_imm < space_.max_imm;
        if (imm_bound) {
            next.n_imm = cand.n_imm + 1;
        } else if (cand.n_ccu < space_.max_ccu &&
                   std::string(terms.bottleneckName()) == "sim") {
            next.n_ccu = cand.n_ccu + 1;
        } else {
            break;  // load-bound: more units cannot help
        }
        if (!fits(next))
            break;
        cand = next;
    }

    cand.omega = omega(cs.workload, cand.v, cand.c,
                       cs.beta_bits_per_cycle, cand.n_imm, cand.n_ccu,
                       cs.lut_bits);
    cand.ppa = evaluateDesign(lib_, sram_, designFor(cand));
    return cand;
}

SearchResult
CoDesignSearchEngine::run() const
{
    const auto &cs = constraints_;
    SearchResult result;
    const double exact_ops = exactGemmOps(cs.workload);

    for (int64_t v : space_.vs) {
        for (int64_t c : space_.cs) {
            Candidate cand;
            cand.v = v;
            cand.c = c;
            cand.tau = tauOps(cs.workload, v, c, cs.metric);
            cand.phi_bits = phiBits(cs.workload, v, c, cs.lut_bits);

            // Step 1a: computation pruning (Eq. 1).
            if (cand.tau > cs.compute_ratio * exact_ops) {
                cand.stage = PruneStage::Compute;
                result.grid.push_back(cand);
                continue;
            }
            // Step 1b: memory pruning (Eq. 2).
            if (cand.phi_bits > cs.memory_budget_bits) {
                cand.stage = PruneStage::Memory;
                result.grid.push_back(cand);
                continue;
            }
            // Step 2: hardware pruning on the minimal instance.
            {
                Candidate minimal = cand;
                minimal.n_imm = 1;
                minimal.n_ccu = 1;
                const hw::AccelPpa ppa =
                    evaluateDesign(lib_, sram_, designFor(minimal));
                if (ppa.area_mm2 > cs.max_area_mm2 ||
                    ppa.power_mw > cs.max_power_mw) {
                    cand.stage = PruneStage::Hardware;
                    result.grid.push_back(cand);
                    continue;
                }
            }
            // Step 3: coarse accuracy search.
            cand.accuracy = probe_ ? probe_(v, c) : 1.0;
            if (cand.accuracy < cs.min_accuracy) {
                cand.stage = PruneStage::Accuracy;
                result.grid.push_back(cand);
                continue;
            }
            // Step 4: parallelism expansion for survivors.
            cand = expandParallelism(cand);
            cand.stage = PruneStage::Survived;
            result.grid.push_back(cand);

            if (!result.found ||
                cand.omega.bottleneck() < result.best.omega.bottleneck()) {
                result.best = cand;
                result.found = true;
            }
        }
    }
    return result;
}

} // namespace lutdla::dse
