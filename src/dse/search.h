#ifndef LUTDLA_DSE_SEARCH_H
#define LUTDLA_DSE_SEARCH_H

/**
 * @file
 * Co-Design Space Search Engine (Sec. VI-C, Algorithm 2, Fig. 11).
 *
 * The engine walks the (v, c) grid, pruning by:
 *   (a) computational utility  tau  <= exact-GEMM budget,
 *   (b) memory footprint       phi  <= memory budget,
 *   (c) minimal-instance area/power <= hardware constraints,
 *   (d) coarse accuracy probe       >= accuracy constraint,
 * then greedily expands parallelism (n_imm first while lookup-bound, per
 * the LUT-first strategy) inside the area/power envelope, and returns the
 * candidate minimizing omega.
 */

#include <functional>
#include <string>
#include <vector>

#include "dse/cost_models.h"
#include "hw/accel.h"

namespace lutdla::dse {

/** Why a grid point survived or died (drives the Fig. 11 heatmaps). */
enum class PruneStage
{
    Survived,
    Compute,    ///< failed (a): tau exceeds the exact-GEMM ops budget
    Memory,     ///< failed (b): phi exceeds the memory budget
    Hardware,   ///< failed (c): minimal instance violates area/power
    Accuracy    ///< failed (d): probe below the accuracy floor
};

/** Printable stage name. */
std::string pruneStageName(PruneStage stage);

/** Search constraints (right-hand sides of Algorithm 2). */
struct SearchConstraints
{
    sim::GemmShape workload;        ///< representative GEMM
    double compute_ratio = 1.0;     ///< tau <= ratio * exact ops
    double memory_budget_bits = 64.0 * 8192 * 1024;  ///< phi budget
    double max_area_mm2 = 4.0;
    double max_power_mw = 600.0;
    double min_accuracy = 0.0;      ///< probe floor (fraction)
    double beta_bits_per_cycle = 683.0;  ///< 25.6 GB/s at 300 MHz
    vq::Metric metric = vq::Metric::L2;
    int64_t lut_bits = 8;
};

/** Grid and expansion limits. */
struct SearchSpace
{
    std::vector<int64_t> vs = {2, 3, 4, 6, 8, 9, 16};
    std::vector<int64_t> cs = {8, 16, 32, 64, 128};
    int64_t max_imm = 64;
    int64_t max_ccu = 16;
};

/** Fast accuracy estimate for a (v, c) pair; return fraction in [0,1]. */
using AccuracyProbe = std::function<double(int64_t v, int64_t c)>;

/** One explored grid point. */
struct Candidate
{
    int64_t v = 0;
    int64_t c = 0;
    PruneStage stage = PruneStage::Survived;
    double tau = 0.0;
    double phi_bits = 0.0;
    double accuracy = 0.0;
    // Filled after parallelism expansion for survivors.
    int64_t n_imm = 1;
    int64_t n_ccu = 1;
    OmegaTerms omega;
    hw::AccelPpa ppa;
};

/** Full search output. */
struct SearchResult
{
    std::vector<Candidate> grid;   ///< every (v, c) with its fate
    Candidate best;                ///< omega-minimal survivor
    bool found = false;
};

/** The search engine. */
class CoDesignSearchEngine
{
  public:
    /**
     * @param space       Grid to explore.
     * @param constraints Budget right-hand sides.
     * @param probe       Accuracy estimator (may be a cached table).
     */
    CoDesignSearchEngine(SearchSpace space, SearchConstraints constraints,
                         AccuracyProbe probe);

    /** Run Algorithm 2 end to end. */
    SearchResult run() const;

    /**
     * Parallelism expansion for one surviving (v, c): grow n_imm while the
     * design is lookup-bound, else grow n_ccu, stopping at the area/power
     * envelope (Algorithm 2 steps 3-4).
     */
    Candidate expandParallelism(Candidate cand) const;

  private:
    /** Build the hardware design for a candidate's parameters. */
    hw::LutDlaDesign designFor(const Candidate &cand) const;

    SearchSpace space_;
    SearchConstraints constraints_;
    AccuracyProbe probe_;
    hw::ArithLibrary lib_;
    hw::SramModel sram_;
};

} // namespace lutdla::dse

#endif // LUTDLA_DSE_SEARCH_H
