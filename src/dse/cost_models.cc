#include "dse/cost_models.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::dse {

double
alphaSim(vq::Metric metric)
{
    switch (metric) {
      case vq::Metric::L2:        return 2.0;  // multiplier + adder
      case vq::Metric::L1:        return 1.5;  // subtract/abs + adder
      case vq::Metric::Chebyshev: return 1.0;  // subtract/abs + max
    }
    return 2.0;
}

double
tauOps(const sim::GemmShape &g, int64_t v, int64_t c, vq::Metric metric)
{
    // OP_sim = alpha * c * M * v * ceil(K / v): every row compares each of
    // its ceil(K/v) subvectors against c centroids of length v.
    const double nc = std::ceil(static_cast<double>(g.k) /
                                static_cast<double>(v));
    const double op_sim = alphaSim(metric) * static_cast<double>(c) *
                          static_cast<double>(g.m) *
                          static_cast<double>(v) * nc;
    // OP_add = M * N * ceil(K / v): one accumulate per (row, col, subspace).
    const double op_add = static_cast<double>(g.m) *
                          static_cast<double>(g.n) * nc;
    return op_sim + op_add;
}

double
exactGemmOps(const sim::GemmShape &g)
{
    return 2.0 * g.macs();
}

double
phiBits(const sim::GemmShape &g, int64_t v, int64_t c, int64_t lut_bits,
        int64_t out_bits)
{
    const double nc = std::ceil(static_cast<double>(g.k) /
                                static_cast<double>(v));
    double idx_bits = 0.0;
    for (int64_t x = 1; x < c; x *= 2)
        idx_bits += 1.0;
    idx_bits = std::max(idx_bits, 1.0);
    // mem_lut + mem_out + mem_index (Eq. 2).
    const double mem_lut = static_cast<double>(g.n) *
                           static_cast<double>(c) * nc *
                           static_cast<double>(lut_bits);
    const double mem_out = static_cast<double>(g.m) *
                           static_cast<double>(g.n) *
                           static_cast<double>(out_bits);
    const double mem_idx = nc * static_cast<double>(g.m) * idx_bits;
    return mem_lut + mem_out + mem_idx;
}

const char *
OmegaTerms::bottleneckName() const
{
    if (load >= sim && load >= lut)
        return "load";
    if (sim >= load && sim >= lut)
        return "sim";
    return "lut";
}

OmegaTerms
omega(const sim::GemmShape &g, int64_t v, int64_t c, double beta_bits,
      int64_t n_imm, int64_t n_ccu, int64_t lut_bits)
{
    LUTDLA_CHECK(beta_bits > 0 && n_imm >= 1 && n_ccu >= 1, "omega params");
    OmegaTerms t;
    // Eq. 5's load term totalled over the GEMM: every one of the
    // Nc * N LUT columns (c entries of lut_bits each) crosses the shared
    // channel once; adding IMMs does not add bandwidth, so this is the
    // memory-bound floor of the pipeline.
    t.load = static_cast<double>(c) * static_cast<double>(lut_bits) *
             std::ceil(static_cast<double>(g.k) / static_cast<double>(v)) *
             static_cast<double>(g.n) / beta_bits;
    t.sim = static_cast<double>(g.m) * static_cast<double>(g.k) /
            (static_cast<double>(v) * static_cast<double>(n_ccu));
    t.lut = static_cast<double>(g.m) * static_cast<double>(g.n) *
            static_cast<double>(g.k) /
            (static_cast<double>(v) * static_cast<double>(n_imm));
    return t;
}

} // namespace lutdla::dse
