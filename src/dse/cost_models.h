#ifndef LUTDLA_DSE_COST_MODELS_H
#define LUTDLA_DSE_COST_MODELS_H

/**
 * @file
 * The analytical models of Sec. VI-B that drive the co-design search:
 *
 *   tau (Eq. 1)   - computational cost of the LUT approximation,
 *   phi (Eq. 2)   - memory footprint,
 *   omega (Eq. 5) - pipeline-balanced cycles as max(load, sim, lut).
 *
 * Symbols follow Table III of the paper.
 */

#include <cstdint>

#include "sim/config.h"
#include "vq/distance.h"

namespace lutdla::dse {

/** Per-element op cost of a similarity metric (alpha_sim in Eq. 1). */
double alphaSim(vq::Metric metric);

/**
 * Eq. 1: computational cost-utility tau(v, c) in scalar ops for a GEMM.
 * Similarity comparisons plus lookup accumulations.
 */
double tauOps(const sim::GemmShape &g, int64_t v, int64_t c,
              vq::Metric metric);

/** Scalar ops of the exact GEMM (2*M*K*N), the pruning reference. */
double exactGemmOps(const sim::GemmShape &g);

/**
 * Eq. 2: memory footprint phi(v, c) in bits: LUT storage + outputs +
 * index stream.
 */
double phiBits(const sim::GemmShape &g, int64_t v, int64_t c,
               int64_t lut_bits = 8, int64_t out_bits = 8);

/** Eq. 5 inputs/outputs: the three pipeline phase lengths in cycles. */
struct OmegaTerms
{
    double load = 0.0;  ///< LUT loading:  c * bit_lut / beta * n_imm
    double sim = 0.0;   ///< similarity:   M * K / (v * n_ccu)
    double lut = 0.0;   ///< table lookup: M * N * K / (v * n_imm)

    double bottleneck() const
    {
        return load > sim ? (load > lut ? load : lut)
                          : (sim > lut ? sim : lut);
    }

    /** Which phase dominates ("load" / "sim" / "lut"). */
    const char *bottleneckName() const;
};

/**
 * Eq. 5: omega, the balanced pipeline cycle count.
 *
 * @param g          Workload GEMM.
 * @param v,c        Algorithm parameters.
 * @param beta_bits  Memory bandwidth in bits/cycle.
 * @param n_imm      IMM count.
 * @param n_ccu      CCU count.
 * @param lut_bits   LUT entry width.
 */
OmegaTerms omega(const sim::GemmShape &g, int64_t v, int64_t c,
                 double beta_bits, int64_t n_imm, int64_t n_ccu,
                 int64_t lut_bits = 8);

} // namespace lutdla::dse

#endif // LUTDLA_DSE_COST_MODELS_H
