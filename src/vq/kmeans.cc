#include "vq/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace lutdla::vq {

namespace {

/**
 * Seed centroids with k-means++: each new centroid is drawn with
 * probability proportional to its distance from the nearest chosen one.
 */
Tensor
kmeansPlusPlusInit(const Tensor &data, const KMeansConfig &config, Rng &rng)
{
    const int64_t n = data.dim(0), v = data.dim(1);
    const int64_t c = config.clusters;
    Tensor centroids(Shape{c, v});

    std::vector<double> min_dist(static_cast<size_t>(n),
                                 std::numeric_limits<double>::infinity());
    int64_t first = rng.uniformInt(0, n - 1);
    for (int64_t j = 0; j < v; ++j)
        centroids.at(0, j) = data.at(first, j);

    for (int64_t k = 1; k < c; ++k) {
        double total = 0.0;
        const float *prev = centroids.data() + (k - 1) * v;
        for (int64_t i = 0; i < n; ++i) {
            const double d = distance(config.metric, data.data() + i * v,
                                      prev, v);
            min_dist[static_cast<size_t>(i)] =
                std::min(min_dist[static_cast<size_t>(i)], d);
            total += min_dist[static_cast<size_t>(i)];
        }
        int64_t pick = 0;
        if (total > 0.0) {
            double target = rng.uniform(0.0, total);
            double acc = 0.0;
            for (int64_t i = 0; i < n; ++i) {
                acc += min_dist[static_cast<size_t>(i)];
                if (acc >= target) {
                    pick = i;
                    break;
                }
            }
        } else {
            pick = rng.uniformInt(0, n - 1);
        }
        for (int64_t j = 0; j < v; ++j)
            centroids.at(k, j) = data.at(pick, j);
    }
    return centroids;
}

/** Metric-specific M-step over the members of one cluster. */
void
updateCentroid(Metric metric, const Tensor &data,
               const std::vector<int64_t> &members, float *out, int64_t v)
{
    const int64_t m = static_cast<int64_t>(members.size());
    if (m == 0)
        return;
    switch (metric) {
      case Metric::L2: {
        for (int64_t j = 0; j < v; ++j) {
            double s = 0.0;
            for (int64_t i : members)
                s += data.at(i * v + j);
            out[j] = static_cast<float>(s / static_cast<double>(m));
        }
        break;
      }
      case Metric::L1: {
        std::vector<float> col(static_cast<size_t>(m));
        for (int64_t j = 0; j < v; ++j) {
            for (int64_t i = 0; i < m; ++i)
                col[static_cast<size_t>(i)] = data.at(members[i] * v + j);
            auto mid = col.begin() + m / 2;
            std::nth_element(col.begin(), mid, col.end());
            float median = *mid;
            if (m % 2 == 0) {
                // Lower median averaged with the upper neighbour keeps the
                // L1 objective minimal and deterministic.
                auto lo = std::max_element(col.begin(), mid);
                median = 0.5f * (median + *lo);
            }
            out[j] = median;
        }
        break;
      }
      case Metric::Chebyshev: {
        for (int64_t j = 0; j < v; ++j) {
            float lo = std::numeric_limits<float>::infinity();
            float hi = -std::numeric_limits<float>::infinity();
            for (int64_t i : members) {
                const float x = data.at(i * v + j);
                lo = std::min(lo, x);
                hi = std::max(hi, x);
            }
            out[j] = 0.5f * (lo + hi);
        }
        break;
      }
    }
}

} // namespace

double
assignToCentroids(const Tensor &data, const Tensor &centroids, Metric metric,
                  std::vector<int32_t> &assignments)
{
    const int64_t n = data.dim(0), v = data.dim(1);
    const int64_t c = centroids.dim(0);
    assignments.resize(static_cast<size_t>(n));
    double inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        const float *x = data.data() + i * v;
        const int32_t idx = argminCentroid(metric, x, centroids.data(), c, v);
        assignments[static_cast<size_t>(i)] = idx;
        inertia += distance(metric, x, centroids.data() + idx * v, v);
    }
    return inertia;
}

KMeansResult
kmeans(const Tensor &data, const KMeansConfig &config)
{
    LUTDLA_CHECK(data.rank() == 2, "kmeans expects [n, v] data");
    LUTDLA_CHECK(config.clusters >= 1, "need at least one cluster");
    const int64_t n = data.dim(0), v = data.dim(1);
    Rng rng(config.seed);

    KMeansResult result;
    if (n < config.clusters) {
        // Degenerate small-layer case: copy samples, tile the remainder.
        result.centroids = Tensor(Shape{config.clusters, v});
        for (int64_t k = 0; k < config.clusters; ++k)
            for (int64_t j = 0; j < v; ++j)
                result.centroids.at(k, j) = data.at((k % n) * v + j);
        result.inertia = assignToCentroids(data, result.centroids,
                                           config.metric, result.assignments);
        return result;
    }

    result.centroids = kmeansPlusPlusInit(data, config, rng);
    double prev_inertia = std::numeric_limits<double>::infinity();

    for (int64_t iter = 0; iter < config.max_iters; ++iter) {
        result.iterations = iter + 1;
        result.inertia = assignToCentroids(data, result.centroids,
                                           config.metric, result.assignments);

        std::vector<std::vector<int64_t>> members(
            static_cast<size_t>(config.clusters));
        for (int64_t i = 0; i < n; ++i)
            members[static_cast<size_t>(result.assignments[i])].push_back(i);

        for (int64_t k = 0; k < config.clusters; ++k) {
            auto &cluster = members[static_cast<size_t>(k)];
            if (cluster.empty()) {
                // Reseed dead centroids on the farthest sample.
                int64_t far = 0;
                double far_d = -1.0;
                for (int64_t i = 0; i < n; ++i) {
                    const int32_t a = result.assignments[i];
                    const double d = distance(
                        config.metric, data.data() + i * v,
                        result.centroids.data() + a * v, v);
                    if (d > far_d) {
                        far_d = d;
                        far = i;
                    }
                }
                for (int64_t j = 0; j < v; ++j)
                    result.centroids.at(k, j) = data.at(far, j);
                continue;
            }
            updateCentroid(config.metric, data, cluster,
                           result.centroids.data() + k * v, v);
        }

        if (prev_inertia - result.inertia <=
            config.tol * std::max(prev_inertia, 1e-12)) {
            break;
        }
        prev_inertia = result.inertia;
    }

    result.inertia = assignToCentroids(data, result.centroids, config.metric,
                                       result.assignments);
    return result;
}

} // namespace lutdla::vq
