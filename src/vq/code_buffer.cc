#include "vq/code_buffer.h"

#include <algorithm>

#include "util/logging.h"

namespace lutdla::vq {

int
codeBitsFor(int64_t num_centroids)
{
    if (num_centroids <= 16)
        return 4;
    if (num_centroids <= 256)
        return 8;
    return 16;
}

void
CodeBuffer::reset(int64_t rows, int64_t subspaces, int64_t num_centroids)
{
    LUTDLA_CHECK(rows >= 0 && subspaces >= 1,
                 "CodeBuffer needs rows >= 0 and subspaces >= 1");
    LUTDLA_CHECK(num_centroids >= 1 && num_centroids <= 65536,
                 "CodeBuffer supports up to 65536 centroids, got ",
                 num_centroids);
    rows_ = rows;
    subspaces_ = subspaces;
    bits_ = codeBitsFor(num_centroids);
    stride_ = (subspaces * bits_ + 7) / 8;
    data_.assign(static_cast<size_t>(rows_ * stride_), 0);
}

void
CodeBuffer::unpackRow(int64_t row, int32_t *out) const
{
    const uint8_t *base = data_.data() + row * stride_;
    switch (bits_) {
      case 4: {
        const int64_t pairs = subspaces_ / 2;
        for (int64_t p = 0; p < pairs; ++p) {
            const uint8_t byte = base[p];
            out[2 * p] = byte & 0xF;
            out[2 * p + 1] = byte >> 4;
        }
        if (subspaces_ & 1)
            out[subspaces_ - 1] = base[pairs] & 0xF;
        return;
      }
      case 8:
        for (int64_t s = 0; s < subspaces_; ++s)
            out[s] = base[s];
        return;
      default:
        for (int64_t s = 0; s < subspaces_; ++s)
            out[s] = static_cast<int32_t>(base[2 * s]) |
                     (static_cast<int32_t>(base[2 * s + 1]) << 8);
        return;
    }
}

void
CodeBuffer::unpackRows(int64_t row0, int64_t n, int32_t *out) const
{
    LUTDLA_CHECK(row0 >= 0 && row0 + n <= rows_,
                 "CodeBuffer::unpackRows range [", row0, ", ", row0 + n,
                 ") exceeds ", rows_, " rows");
    for (int64_t i = 0; i < n; ++i)
        unpackRow(row0 + i, out + i * subspaces_);
}

void
CodeBuffer::unpackPlanar(int64_t row0, int64_t n, uint8_t *out,
                         int64_t stride) const
{
    LUTDLA_CHECK(row0 >= 0 && row0 + n <= rows_,
                 "CodeBuffer::unpackPlanar range [", row0, ", ", row0 + n,
                 ") exceeds ", rows_, " rows");
    LUTDLA_CHECK(bits_ <= 8,
                 "planar unpack carries one byte per code; bits() is ",
                 bits_);
    if (stride == 0)
        stride = n;
    LUTDLA_CHECK(stride >= n, "planar stride ", stride, " < ", n, " rows");
    if (bits_ == 4) {
        for (int64_t i = 0; i < n; ++i) {
            const uint8_t *base = data_.data() + (row0 + i) * stride_;
            const int64_t pairs = subspaces_ / 2;
            for (int64_t p = 0; p < pairs; ++p) {
                const uint8_t byte = base[p];
                out[(2 * p) * stride + i] = byte & 0xF;
                out[(2 * p + 1) * stride + i] = byte >> 4;
            }
            if (subspaces_ & 1)
                out[(subspaces_ - 1) * stride + i] = base[pairs] & 0xF;
        }
        return;
    }
    for (int64_t i = 0; i < n; ++i) {
        const uint8_t *base = data_.data() + (row0 + i) * stride_;
        for (int64_t s = 0; s < subspaces_; ++s)
            out[s * stride + i] = base[s];
    }
}

} // namespace lutdla::vq
