#ifndef LUTDLA_VQ_DISTANCE_H
#define LUTDLA_VQ_DISTANCE_H

/**
 * @file
 * Similarity metrics used by the CCM's distance PEs.
 *
 * LUT-DLA supports three metrics with decreasing hardware cost (Sec. V-2):
 *   - Euclidean (L2): multiplier + adder per element,
 *   - Manhattan (L1): subtract/abs/add only (multiplication-free),
 *   - Chebyshev:      subtract/abs/max only (cheapest).
 */

#include <cstdint>
#include <string>

namespace lutdla::vq {

/** Similarity metric selector shared by software training and HW models. */
enum class Metric { L2, L1, Chebyshev };

/** Human-readable metric name ("L2" / "L1" / "Chebyshev"). */
std::string metricName(Metric metric);

/** Parse a metric name; fatal on unknown input. */
Metric metricFromName(const std::string &name);

/** Squared Euclidean distance between length-n vectors. */
float l2Squared(const float *a, const float *b, int64_t n);

/** Manhattan distance between length-n vectors. */
float l1(const float *a, const float *b, int64_t n);

/** Chebyshev (max-abs-diff) distance between length-n vectors. */
float chebyshev(const float *a, const float *b, int64_t n);

/** Dispatch on `metric`; L2 returns the squared distance (argmin-safe). */
float distance(Metric metric, const float *a, const float *b, int64_t n);

/**
 * Index of the centroid nearest to `x` under `metric`.
 *
 * @param metric     Similarity metric.
 * @param x          Query vector of length `v`.
 * @param centroids  Row-major [c, v] centroid matrix.
 * @param c          Number of centroids.
 * @param v          Vector length.
 * @return Winning centroid index in [0, c); ties break toward the lower
 *         index, matching the dPE chain's MSB comparison order.
 */
int32_t argminCentroid(Metric metric, const float *x, const float *centroids,
                       int64_t c, int64_t v);

} // namespace lutdla::vq

#endif // LUTDLA_VQ_DISTANCE_H
