#include "vq/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace lutdla::vq {

float
toBf16(float x)
{
    uint32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    // Round-to-nearest-even on the truncated 16 mantissa bits.
    const uint32_t lsb = (bits >> 16) & 1u;
    bits += 0x7fffu + lsb;
    bits &= 0xffff0000u;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

void
tensorToBf16(Tensor &t)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = toBf16(p[i]);
}

int8_t
Int8Scale::quantize(float x) const
{
    if (scale <= 0.0f)
        return 0;
    const float q = std::round(x / scale);
    return static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
}

Int8Scale
fitInt8Scale(const Tensor &t)
{
    Int8Scale s;
    const float m = t.absMax();
    s.scale = m > 0.0f ? m / 127.0f : 1.0f;
    return s;
}

void
tensorThroughInt8(Tensor &t, const Int8Scale &scale)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = scale.dequantize(scale.quantize(p[i]));
}

} // namespace lutdla::vq
