#include "vq/distance.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::vq {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::L2:        return "L2";
      case Metric::L1:        return "L1";
      case Metric::Chebyshev: return "Chebyshev";
    }
    return "?";
}

Metric
metricFromName(const std::string &name)
{
    if (name == "L2" || name == "l2")
        return Metric::L2;
    if (name == "L1" || name == "l1")
        return Metric::L1;
    if (name == "Chebyshev" || name == "chebyshev" || name == "che")
        return Metric::Chebyshev;
    fatal("unknown metric '", name, "'");
}

float
l2Squared(const float *a, const float *b, int64_t n)
{
    float acc = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
l1(const float *a, const float *b, int64_t n)
{
    float acc = 0.0f;
    for (int64_t i = 0; i < n; ++i)
        acc += std::fabs(a[i] - b[i]);
    return acc;
}

float
chebyshev(const float *a, const float *b, int64_t n)
{
    float acc = 0.0f;
    for (int64_t i = 0; i < n; ++i)
        acc = std::max(acc, std::fabs(a[i] - b[i]));
    return acc;
}

float
distance(Metric metric, const float *a, const float *b, int64_t n)
{
    switch (metric) {
      case Metric::L2:        return l2Squared(a, b, n);
      case Metric::L1:        return l1(a, b, n);
      case Metric::Chebyshev: return chebyshev(a, b, n);
    }
    return 0.0f;
}

int32_t
argminCentroid(Metric metric, const float *x, const float *centroids,
               int64_t c, int64_t v)
{
    int32_t best = 0;
    float best_dist = distance(metric, x, centroids, v);
    for (int64_t j = 1; j < c; ++j) {
        const float d = distance(metric, x, centroids + j * v, v);
        if (d < best_dist) {
            best_dist = d;
            best = static_cast<int32_t>(j);
        }
    }
    return best;
}

} // namespace lutdla::vq
