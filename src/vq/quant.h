#ifndef LUTDLA_VQ_QUANT_H
#define LUTDLA_VQ_QUANT_H

/**
 * @file
 * Scalar quantization helpers for the paper's orthogonal "BF16 + INT8"
 * experiments (Table IV): similarity comparison in BF16 and LUT entries in
 * symmetric INT8. We model precision effects on float storage via
 * round-trips rather than separate storage types.
 */

#include <cstdint>

#include "tensor/tensor.h"

namespace lutdla::vq {

/** Round a float to the nearest BF16 value (round-to-nearest-even). */
float toBf16(float x);

/** Apply toBf16 to every element in place. */
void tensorToBf16(Tensor &t);

/** Symmetric linear INT8 quantization parameters. */
struct Int8Scale
{
    float scale = 1.0f;  ///< dequant multiplier: real = q * scale

    /** Quantize a real value to int8 with saturation. */
    int8_t quantize(float x) const;

    /** Dequantize. */
    float dequantize(int8_t q) const { return scale * static_cast<float>(q); }
};

/** Pick the symmetric scale that covers max|t| with 127 steps. */
Int8Scale fitInt8Scale(const Tensor &t);

/** Round-trip a tensor through int8 with the given scale, in place. */
void tensorThroughInt8(Tensor &t, const Int8Scale &scale);

} // namespace lutdla::vq

#endif // LUTDLA_VQ_QUANT_H
