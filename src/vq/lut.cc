#include "vq/lut.h"

#include "tensor/gemm.h"
#include "util/logging.h"

namespace lutdla::vq {

namespace {

/** Round a quantizer's view of the CCM inputs through BF16 when asked. */
ProductQuantizer
maybeBf16Quantizer(const ProductQuantizer &pq, bool bf16)
{
    if (!bf16)
        return pq;
    ProductQuantizer out = pq;
    for (int64_t s = 0; s < out.numSubspaces(); ++s) {
        Tensor cb = out.codebook(s);
        tensorToBf16(cb);
        out.setCodebook(s, std::move(cb));
    }
    return out;
}

} // namespace

LookupTable::LookupTable(const ProductQuantizer &pq, const Tensor &weights,
                         LutPrecision precision)
    : out_dim_(weights.dim(1)),
      num_subspaces_(pq.numSubspaces()),
      num_centroids_(pq.config().c),
      precision_(precision)
{
    LUTDLA_CHECK(pq.trained(), "quantizer must be trained to build a LUT");
    LUTDLA_CHECK(weights.rank() == 2 && weights.dim(0) == pq.featureDim(),
                 "weights must be [K, N] with K=", pq.featureDim());
    const int64_t v = pq.config().v;
    const int64_t K = pq.featureDim();
    const int64_t N = out_dim_;

    table_ = Tensor(Shape{num_subspaces_, num_centroids_, N});
    float *t = table_.data();
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        const Tensor &cb = pq.codebook(s);
        const int64_t base = s * v;
        for (int64_t j = 0; j < num_centroids_; ++j) {
            float *dst = t + (s * num_centroids_ + j) * N;
            for (int64_t tdim = 0; tdim < v && base + tdim < K; ++tdim) {
                const float cv = cb.at(j, tdim);
                if (cv == 0.0f)
                    continue;
                const float *wrow = weights.data() + (base + tdim) * N;
                for (int64_t n = 0; n < N; ++n)
                    dst[n] += cv * wrow[n];
            }
        }
    }

    if (precision_.int8_entries) {
        // One symmetric scale per subspace table, like a per-bank scale
        // register next to the PSum LUT.
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            Tensor view(Shape{num_centroids_, N});
            float *src = t + s * num_centroids_ * N;
            std::copy(src, src + num_centroids_ * N, view.data());
            const Int8Scale scale = fitInt8Scale(view);
            tensorThroughInt8(view, scale);
            std::copy(view.data(), view.data() + num_centroids_ * N, src);
        }
    }
}

const float *
LookupTable::entry(int64_t s, int64_t j) const
{
    return table_.data() + (s * num_centroids_ + j) * out_dim_;
}

int64_t
LookupTable::sizeBytes() const
{
    return num_subspaces_ * num_centroids_ * out_dim_ *
           precision_.entryBytes();
}

Tensor
LookupTable::lookupGemm(const std::vector<int32_t> &codes, int64_t m) const
{
    LUTDLA_CHECK(static_cast<int64_t>(codes.size()) == m * num_subspaces_,
                 "codes size mismatch in lookupGemm");
    Tensor c(Shape{m, out_dim_});
    float *out = c.data();
    for (int64_t i = 0; i < m; ++i) {
        float *crow = out + i * out_dim_;
        const int32_t *row_codes = codes.data() + i * num_subspaces_;
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const float *psum = entry(s, row_codes[s]);
            for (int64_t n = 0; n < out_dim_; ++n)
                crow[n] += psum[n];
        }
    }
    return c;
}

LutGemmEngine::LutGemmEngine(PQConfig config, const Tensor &weights,
                             const Tensor &samples, LutPrecision precision)
    : pq_([&] {
          ProductQuantizer q(weights.dim(0), config);
          q.train(samples);
          return maybeBf16Quantizer(q, precision.bf16_similarity);
      }()),
      weights_(weights),
      precision_(precision),
      lut_(pq_, weights_, precision)
{
}

Tensor
LutGemmEngine::matmul(const Tensor &a) const
{
    if (!precision_.bf16_similarity)
        return lut_.lookupGemm(pq_.encode(a), a.dim(0));
    Tensor a16 = a;
    tensorToBf16(a16);
    return lut_.lookupGemm(pq_.encode(a16), a16.dim(0));
}

Tensor
LutGemmEngine::exactMatmul(const Tensor &a) const
{
    return lutdla::matmul(a, weights_);
}

double
LutGemmEngine::approximationError(const Tensor &a) const
{
    return Tensor::relError(matmul(a), exactMatmul(a));
}

} // namespace lutdla::vq
