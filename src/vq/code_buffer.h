#ifndef LUTDLA_VQ_CODE_BUFFER_H
#define LUTDLA_VQ_CODE_BUFFER_H

/**
 * @file
 * CodeBuffer: bit-packed storage for the per-subspace centroid indices the
 * encode phase produces and the gather phase consumes.
 *
 * LUT-DLA's whole premise is that a frozen activation is an *extreme
 * low-bit* object: one ceil(log2 c)-bit index per subspace. Storing those
 * indices as int32 (as the original fused kernel did) wastes 2-8x the
 * bytes the hardware would move between the CCM (encode) and IMM (gather)
 * units. CodeBuffer commits to the packed layout: the code width is chosen
 * from the centroid count (4, 8, or 16 bits), rows are byte-aligned so
 * concurrent writers never share a row, and packing is lossless — tests
 * sweep awkward shapes (c not a power of two, single rows, ragged
 * subspace counts) and require exact round-trips.
 *
 * Layout: row-major; within a row, code `s` occupies bits
 * [s*bits, (s+1)*bits) little-endian (4-bit codes pack low nibble first).
 * Each row starts on a byte boundary (`rowStrideBytes`).
 */

#include <cstdint>
#include <vector>

namespace lutdla::vq {

/** Packed bits per code for a codebook of `num_centroids` entries: 4 when
 * the index fits a nibble, 8 when it fits a byte, 16 otherwise. */
int codeBitsFor(int64_t num_centroids);

/** Bit-packed [rows, subspaces] matrix of centroid indices. */
class CodeBuffer
{
  public:
    CodeBuffer() = default;

    /**
     * Size the buffer for `rows` x `subspaces` codes addressing
     * `num_centroids` centroids (chooses the packed width) and zero it.
     * Reuses capacity across calls, so per-batch resets do not allocate
     * once the buffer has grown to the largest batch seen.
     */
    void reset(int64_t rows, int64_t subspaces, int64_t num_centroids);

    /** Rows currently stored. */
    int64_t rows() const { return rows_; }

    /** Codes per row. */
    int64_t subspaces() const { return subspaces_; }

    /** Packed bits per code (4, 8, or 16). */
    int bits() const { return bits_; }

    /** Bytes one packed row occupies (rows are byte-aligned). */
    int64_t rowStrideBytes() const { return stride_; }

    /** Total packed payload bytes (rows * rowStrideBytes). */
    int64_t sizeBytes() const { return rows_ * stride_; }

    /** Store code `value` for (row, s); value must fit bits(). */
    void
    set(int64_t row, int64_t s, int32_t value)
    {
        uint8_t *base = data_.data() + row * stride_;
        switch (bits_) {
          case 4: {
            uint8_t &byte = base[s >> 1];
            const int shift = (s & 1) ? 4 : 0;
            byte = static_cast<uint8_t>(
                (byte & ~(0xF << shift)) | ((value & 0xF) << shift));
            return;
          }
          case 8:
            base[s] = static_cast<uint8_t>(value);
            return;
          default:
            base[2 * s] = static_cast<uint8_t>(value & 0xFF);
            base[2 * s + 1] = static_cast<uint8_t>((value >> 8) & 0xFF);
            return;
        }
    }

    /** Read back the code for (row, s). */
    int32_t
    get(int64_t row, int64_t s) const
    {
        const uint8_t *base = data_.data() + row * stride_;
        switch (bits_) {
          case 4:
            return (base[s >> 1] >> ((s & 1) ? 4 : 0)) & 0xF;
          case 8:
            return base[s];
          default:
            return static_cast<int32_t>(base[2 * s]) |
                   (static_cast<int32_t>(base[2 * s + 1]) << 8);
        }
    }

    /** Unpack one row's codes into `out` (subspaces() entries). */
    void unpackRow(int64_t row, int32_t *out) const;

    /**
     * Unpack rows [row0, row0 + n) into `out` ([n, subspaces] row-major
     * int32) — the gather sweeps run on unpacked blocks so their inner
     * loops stay branch-free.
     */
    void unpackRows(int64_t row0, int64_t n, int32_t *out) const;

    /**
     * Unpack rows [row0, row0 + n) PLANAR: out[s * stride + i] is the
     * code of (row0 + i, subspace s), one byte each (stride 0 means n).
     * This is the lane layout the shuffle-gather kernels consume — all
     * rows' codes for one subspace land contiguously, so a vector
     * register loads one subspace's lane block directly; a stride wider
     * than n leaves the pad lanes untouched (callers zero them to run a
     * ragged tail through a full-width chunk). Requires bits() <= 8 (the
     * shuffle path only exists for c <= 256, and in practice c <= 16).
     */
    void unpackPlanar(int64_t row0, int64_t n, uint8_t *out,
                      int64_t stride = 0) const;

  private:
    int64_t rows_ = 0;
    int64_t subspaces_ = 0;
    int bits_ = 8;
    int64_t stride_ = 0;
    std::vector<uint8_t> data_;
};

} // namespace lutdla::vq

#endif // LUTDLA_VQ_CODE_BUFFER_H
