#ifndef LUTDLA_VQ_PQ_H
#define LUTDLA_VQ_PQ_H

/**
 * @file
 * Product quantizer: the input matrix A[M, K] is split column-wise into
 * Nc = ceil(K / v) subspaces of length v; each subspace owns an independent
 * codebook of c centroids (Fig. 2, step 1). Encoding a row yields Nc
 * indices, the "extreme low-bit" representation with an equivalent bitwidth
 * of ceil(log2 c) / v bits per scalar.
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "vq/distance.h"
#include "vq/kmeans.h"

namespace lutdla::vq {

/** Hyperparameters shared by the quantizer, LUT layers, and HW models. */
struct PQConfig
{
    int64_t v = 4;               ///< subvector length
    int64_t c = 16;              ///< centroids per codebook
    Metric metric = Metric::L2;  ///< similarity metric
    int64_t kmeans_iters = 25;   ///< training budget per subspace
    uint64_t seed = 7;           ///< clustering seed

    /** Equivalent bits per scalar: ceil(log2 c) / v. */
    double equivalentBits() const;

    /** Bits needed to store one index. */
    int64_t indexBits() const;
};

/**
 * Per-subspace codebooks over a K-wide feature dimension.
 *
 * K need not be divisible by v; the tail subspace is zero-padded, which is
 * exactly how the hardware pads ragged subvectors.
 */
class ProductQuantizer
{
  public:
    /** Create an untrained quantizer for a K-wide feature dimension. */
    ProductQuantizer(int64_t feature_dim, PQConfig config);

    /** Feature dimension K this quantizer encodes. */
    int64_t featureDim() const { return feature_dim_; }

    /** Number of subspaces Nc = ceil(K / v). */
    int64_t numSubspaces() const { return num_subspaces_; }

    /** Configuration in force. */
    const PQConfig &config() const { return config_; }

    /** Codebook for subspace `s`, shaped [c, v]. */
    const Tensor &codebook(int64_t s) const;
    Tensor &mutableCodebook(int64_t s);

    /**
     * Train all codebooks on sample rows.
     *
     * @param samples [n, K] activation rows (typically a calibration batch).
     */
    void train(const Tensor &samples);

    /** True once train() or setCodebook() has populated every subspace. */
    bool trained() const { return trained_; }

    /** Install an external codebook (used by LUTBoost's trainable path). */
    void setCodebook(int64_t s, Tensor centroids);

    /**
     * Encode rows of `a` ([M, K]) to indices.
     * @return [M, Nc] indices flattened row-major into the vector.
     */
    std::vector<int32_t> encode(const Tensor &a) const;

    /** Encode a single row (K floats) into `out` (Nc entries). */
    void encodeRow(const float *row, int32_t *out) const;

    /** Reconstruct an approximation of `a` from its codes. */
    Tensor decode(const std::vector<int32_t> &codes, int64_t m) const;

    /**
     * Copy the subvector of `row` for subspace `s` into `out` (length v),
     * zero-padding past K.
     */
    void extractSubvector(const float *row, int64_t s, float *out) const;

    /** Total number of trainable centroid parameters: Nc * c * v. */
    int64_t parameterCount() const;

  private:
    int64_t feature_dim_;
    PQConfig config_;
    int64_t num_subspaces_;
    std::vector<Tensor> codebooks_;
    bool trained_ = false;
};

} // namespace lutdla::vq

#endif // LUTDLA_VQ_PQ_H
