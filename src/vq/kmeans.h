#ifndef LUTDLA_VQ_KMEANS_H
#define LUTDLA_VQ_KMEANS_H

/**
 * @file
 * Metric-aware k-means clustering (step 1 of Fig. 2 in the paper).
 *
 * Centroid updates minimize the chosen metric per cluster:
 *   - L2        -> coordinate mean (classic Lloyd step),
 *   - L1        -> coordinate median (k-medians),
 *   - Chebyshev -> coordinate midrange ((min+max)/2).
 * Initialization is k-means++ under the same metric.
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "vq/distance.h"

namespace lutdla::vq {

/** Clustering hyperparameters. */
struct KMeansConfig
{
    int64_t clusters = 16;        ///< c, number of centroids
    Metric metric = Metric::L2;   ///< distance used for assign + update
    int64_t max_iters = 25;       ///< Lloyd iteration budget
    double tol = 1e-5;            ///< relative inertia improvement to stop
    uint64_t seed = 7;            ///< k-means++ seed
};

/** Clustering output. */
struct KMeansResult
{
    Tensor centroids;                  ///< [c, v]
    std::vector<int32_t> assignments;  ///< per-sample winning centroid
    double inertia = 0.0;              ///< sum of metric distances
    int64_t iterations = 0;            ///< Lloyd iterations executed
};

/**
 * Cluster `data` ([n, v] rows) into `config.clusters` centroids.
 *
 * Empty clusters are reseeded from the farthest sample so the codebook
 * always contains `c` live centroids. If n < c the extra centroids
 * duplicate samples (the paper's small-layer case).
 */
KMeansResult kmeans(const Tensor &data, const KMeansConfig &config);

/** Recompute assignments + inertia for fixed centroids (one E-step). */
double assignToCentroids(const Tensor &data, const Tensor &centroids,
                         Metric metric, std::vector<int32_t> &assignments);

} // namespace lutdla::vq

#endif // LUTDLA_VQ_KMEANS_H
