#include "vq/pq.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::vq {

double
PQConfig::equivalentBits() const
{
    return static_cast<double>(indexBits()) / static_cast<double>(v);
}

int64_t
PQConfig::indexBits() const
{
    int64_t bits = 0;
    while ((int64_t{1} << bits) < c)
        ++bits;
    return std::max<int64_t>(bits, 1);
}

ProductQuantizer::ProductQuantizer(int64_t feature_dim, PQConfig config)
    : feature_dim_(feature_dim), config_(config)
{
    LUTDLA_CHECK(feature_dim_ >= 1, "feature dim must be positive");
    LUTDLA_CHECK(config_.v >= 1 && config_.c >= 1, "bad PQ config");
    num_subspaces_ = (feature_dim_ + config_.v - 1) / config_.v;
    codebooks_.resize(static_cast<size_t>(num_subspaces_));
}

const Tensor &
ProductQuantizer::codebook(int64_t s) const
{
    LUTDLA_CHECK(s >= 0 && s < num_subspaces_, "subspace out of range");
    return codebooks_[static_cast<size_t>(s)];
}

Tensor &
ProductQuantizer::mutableCodebook(int64_t s)
{
    LUTDLA_CHECK(s >= 0 && s < num_subspaces_, "subspace out of range");
    return codebooks_[static_cast<size_t>(s)];
}

void
ProductQuantizer::extractSubvector(const float *row, int64_t s,
                                   float *out) const
{
    const int64_t base = s * config_.v;
    for (int64_t j = 0; j < config_.v; ++j) {
        const int64_t k = base + j;
        out[j] = k < feature_dim_ ? row[k] : 0.0f;
    }
}

void
ProductQuantizer::train(const Tensor &samples)
{
    LUTDLA_CHECK(samples.rank() == 2 && samples.dim(1) == feature_dim_,
                 "train expects [n, K] with K=", feature_dim_);
    const int64_t n = samples.dim(0);
    Tensor sub(Shape{n, config_.v});

    for (int64_t s = 0; s < num_subspaces_; ++s) {
        for (int64_t i = 0; i < n; ++i) {
            extractSubvector(samples.data() + i * feature_dim_, s,
                             sub.data() + i * config_.v);
        }
        KMeansConfig kc;
        kc.clusters = config_.c;
        kc.metric = config_.metric;
        kc.max_iters = config_.kmeans_iters;
        kc.seed = config_.seed + static_cast<uint64_t>(s) * 7919;
        codebooks_[static_cast<size_t>(s)] = kmeans(sub, kc).centroids;
    }
    trained_ = true;
}

void
ProductQuantizer::setCodebook(int64_t s, Tensor centroids)
{
    LUTDLA_CHECK(centroids.rank() == 2 && centroids.dim(0) == config_.c &&
                 centroids.dim(1) == config_.v,
                 "codebook must be [c, v]");
    mutableCodebook(s) = std::move(centroids);
    trained_ = true;
    for (const auto &cb : codebooks_)
        if (cb.numel() == 0)
            trained_ = false;
}

void
ProductQuantizer::encodeRow(const float *row, int32_t *out) const
{
    std::vector<float> sub(static_cast<size_t>(config_.v));
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        extractSubvector(row, s, sub.data());
        out[s] = argminCentroid(config_.metric, sub.data(),
                                codebooks_[static_cast<size_t>(s)].data(),
                                config_.c, config_.v);
    }
}

std::vector<int32_t>
ProductQuantizer::encode(const Tensor &a) const
{
    LUTDLA_CHECK(trained_, "quantizer must be trained before encode");
    LUTDLA_CHECK(a.rank() == 2 && a.dim(1) == feature_dim_,
                 "encode expects [M, K]");
    const int64_t m = a.dim(0);
    std::vector<int32_t> codes(static_cast<size_t>(m * num_subspaces_));
    for (int64_t i = 0; i < m; ++i)
        encodeRow(a.data() + i * feature_dim_,
                  codes.data() + i * num_subspaces_);
    return codes;
}

Tensor
ProductQuantizer::decode(const std::vector<int32_t> &codes, int64_t m) const
{
    LUTDLA_CHECK(static_cast<int64_t>(codes.size()) == m * num_subspaces_,
                 "codes size mismatch");
    Tensor out(Shape{m, feature_dim_});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const int32_t idx = codes[static_cast<size_t>(
                i * num_subspaces_ + s)];
            const Tensor &cb = codebooks_[static_cast<size_t>(s)];
            const int64_t base = s * config_.v;
            for (int64_t j = 0; j < config_.v && base + j < feature_dim_;
                 ++j) {
                out.at(i, base + j) = cb.at(idx, j);
            }
        }
    }
    return out;
}

int64_t
ProductQuantizer::parameterCount() const
{
    return num_subspaces_ * config_.c * config_.v;
}

} // namespace lutdla::vq
