#ifndef LUTDLA_VQ_LUT_H
#define LUTDLA_VQ_LUT_H

/**
 * @file
 * Precomputed lookup tables and LUT-based approximate GEMM
 * (Fig. 2 steps 2-4: precompute, compare similarity, lookup & accumulate).
 *
 * This is the bit-exact software-functional model of what the IMM hardware
 * executes; the cycle simulator in src/sim reuses it for result checking.
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "vq/pq.h"
#include "vq/quant.h"

namespace lutdla::vq {

/** Precision options mirroring the paper's BF16 + INT8 study (Table IV). */
struct LutPrecision
{
    bool bf16_similarity = false;  ///< round inputs/centroids to BF16 in CCM
    bool int8_entries = false;     ///< store LUT psums as symmetric INT8

    /** Bytes per stored LUT entry under these options. */
    int64_t entryBytes() const { return int8_entries ? 1 : 4; }
};

/**
 * The PSum LUT: for subspace s, centroid j, output column n it stores
 *   lut[s][j][n] = sum_t centroids[s][j][t] * W[s*v + t][n].
 */
class LookupTable
{
  public:
    /**
     * Precompute the table from a trained quantizer and weight matrix.
     *
     * @param pq        Trained product quantizer over K.
     * @param weights   [K, N] weight matrix.
     * @param precision Storage precision options.
     */
    LookupTable(const ProductQuantizer &pq, const Tensor &weights,
                LutPrecision precision = {});

    /** Output width N. */
    int64_t outDim() const { return out_dim_; }

    /** Number of subspaces Nc. */
    int64_t numSubspaces() const { return num_subspaces_; }

    /** Centroids per codebook c. */
    int64_t numCentroids() const { return num_centroids_; }

    /** Raw table [Nc, c, N] (already dequantized if int8_entries). */
    const Tensor &table() const { return table_; }

    /** One table row: psums for (subspace s, centroid j), length N. */
    const float *entry(int64_t s, int64_t j) const;

    /** Total stored size in bytes under the precision options. */
    int64_t sizeBytes() const;

    /**
     * Lookup-accumulate a full output matrix.
     *
     * @param codes Row-major [M, Nc] indices from ProductQuantizer::encode.
     * @param m     Number of rows M.
     * @return [M, N] approximate product.
     */
    Tensor lookupGemm(const std::vector<int32_t> &codes, int64_t m) const;

  private:
    int64_t out_dim_;
    int64_t num_subspaces_;
    int64_t num_centroids_;
    LutPrecision precision_;
    Tensor table_;
};

/**
 * End-to-end approximate matmul engine: owns a quantizer + table and
 * replaces C = A * W with encode + lookup.
 */
class LutGemmEngine
{
  public:
    /**
     * Build the engine.
     *
     * @param config    VQ hyperparameters (v, c, metric).
     * @param weights   [K, N] weights, captured by copy.
     * @param samples   [n, K] calibration rows used to train codebooks.
     * @param precision Precision options.
     */
    LutGemmEngine(PQConfig config, const Tensor &weights,
                  const Tensor &samples, LutPrecision precision = {});

    /** Approximate A([M, K]) * W. */
    Tensor matmul(const Tensor &a) const;

    /** Exact product for error measurement. */
    Tensor exactMatmul(const Tensor &a) const;

    /** Relative Frobenius error of the approximation on `a`. */
    double approximationError(const Tensor &a) const;

    const ProductQuantizer &quantizer() const { return pq_; }
    const LookupTable &lut() const { return lut_; }

  private:
    ProductQuantizer pq_;
    Tensor weights_;
    LutPrecision precision_;
    LookupTable lut_;
};

} // namespace lutdla::vq

#endif // LUTDLA_VQ_LUT_H
