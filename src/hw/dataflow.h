#ifndef LUTDLA_HW_DATAFLOW_H
#define LUTDLA_HW_DATAFLOW_H

/**
 * @file
 * Analytical on-chip memory model for the six GEMM dataflows of Table I.
 *
 * Each entry is the *minimum* buffering that avoids loading the same LUT
 * content from DRAM more than once (the paper's comparison criterion).
 * Letters give the loop nest from outermost to innermost over the
 * (M x K) x (K x N) GEMM; "LUT-Stationary" is the paper's N-K-M order with
 * an n-tile of width Tn.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace lutdla::hw {

/** The candidate loop orders of Sec. IV-B. */
enum class Dataflow { MNK, NMK, MKN, KMN, KNM, LutStationary };

/** Printable dataflow name. */
std::string dataflowName(Dataflow df);

/** All six candidates in the paper's table order. */
std::vector<Dataflow> allDataflows();

/** Workload + hardware parameters of the analysis. */
struct DataflowParams
{
    int64_t m = 512;
    int64_t k = 768;
    int64_t n = 768;
    int64_t v = 9;    ///< matches the published Table I numbers (Nc = 86)
    int64_t c = 32;
    int64_t tn = 32;             ///< output-tile width
    int64_t psum_bytes = 1;      ///< scratchpad entry size
    int64_t lut_entry_bytes = 1; ///< PSum LUT entry size

    int64_t numSubspaces() const { return (k + v - 1) / v; }
    int64_t indexBits() const;
};

/** On-chip memory requirement of one dataflow (bytes). */
struct DataflowMemory
{
    Dataflow dataflow;
    double scratchpad_bytes = 0.0;
    double indices_bytes = 0.0;
    double psum_lut_bytes = 0.0;

    double
    totalBytes() const
    {
        return scratchpad_bytes + indices_bytes + psum_lut_bytes;
    }
};

/** Evaluate the minimum-buffering model for one dataflow. */
DataflowMemory dataflowMemory(Dataflow df, const DataflowParams &params);

/**
 * Number of LUT tile loads from DRAM each dataflow performs under its
 * minimum buffering (the "multiple transmissions" trade-off of LS).
 */
int64_t dataflowLutLoads(Dataflow df, const DataflowParams &params);

} // namespace lutdla::hw

#endif // LUTDLA_HW_DATAFLOW_H
