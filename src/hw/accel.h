#ifndef LUTDLA_HW_ACCEL_H
#define LUTDLA_HW_ACCEL_H

/**
 * @file
 * Whole-accelerator PPA model (Eqs. 3-4 of the paper): aggregates CCM and
 * IMM costs for a parameterized LUT-DLA instance and reports area, power,
 * and peak throughput. The three evaluation designs (Tiny/Large/Fit,
 * Tables VII-VIII) are provided as presets.
 */

#include <string>

#include "hw/dpe.h"
#include "hw/sram.h"

namespace lutdla::hw {

/** Full hardware configuration of one LUT-DLA instance. */
struct LutDlaDesign
{
    std::string name = "custom";
    // Algorithm-coupled parameters.
    int64_t v = 4;                        ///< subvector length
    int64_t c = 16;                       ///< centroids per codebook
    vq::Metric metric = vq::Metric::L2;   ///< similarity metric
    NumFormat sim_format = NumFormat::Bf16;   ///< CCM datapath precision
    int64_t lut_entry_bytes = 1;          ///< PSum LUT entry size (INT8)
    int64_t psum_bytes = 1;               ///< scratchpad entry size
    // Tiling / parallelism.
    int64_t tn = 128;     ///< output-tile width per IMM (lookup lanes)
    int64_t m_rows = 256; ///< max input-tile rows buffered on chip
    int64_t n_imm = 2;    ///< number of IMMs
    int64_t n_ccu = 2;    ///< number of CCUs
    // Clocks.
    double freq_imm_hz = 300e6;
    double freq_ccm_hz = 300e6;

    /** Subspace count for a K-wide operand. */
    int64_t
    numSubspaces(int64_t k) const
    {
        return (k + v - 1) / v;
    }

    /** Index width in bits. */
    int64_t indexBits() const;

    /** Peak throughput in ops/s: each lookup lane retires 2v ops/cycle. */
    double peakOps() const;
};

/** One IMM's memory inventory (Table VII columns). */
struct ImmMemory
{
    int64_t scratchpad_bytes = 0;    ///< m_rows * tn * psum_bytes
    int64_t psum_lut_bytes = 0;      ///< 2 * c * tn * lut_entry_bytes
    int64_t indices_bytes = 0;       ///< m_rows * indexBits / 8
    int64_t totalBytes() const
    {
        return scratchpad_bytes + psum_lut_bytes + indices_bytes;
    }
};

/** Compute the per-IMM memory inventory. */
ImmMemory immMemory(const LutDlaDesign &design);

/**
 * Minimum DRAM bandwidth (B/s) for stall-free operation: the LUT tile for
 * the next (n, k) iteration must arrive within the m_rows lookups of the
 * current one, plus streaming the input subvectors into the CCM.
 */
double minBandwidthBytesPerSec(const LutDlaDesign &design);

/** Aggregated PPA of a design. */
struct AccelPpa
{
    double area_mm2 = 0.0;
    double power_mw = 0.0;
    double peak_gops = 0.0;
    // Breakdown.
    double ccm_area_mm2 = 0.0;
    double imm_area_mm2 = 0.0;
    double sram_area_mm2 = 0.0;
    double other_area_mm2 = 0.0;

    double areaEfficiency() const { return peak_gops / area_mm2; }
    double powerEfficiency() const { return peak_gops / power_mw; }
};

/** Evaluate a design's PPA (Eqs. 3-4) at the library's node. */
AccelPpa evaluateDesign(const ArithLibrary &lib, const SramModel &sram,
                        const LutDlaDesign &design);

/** @name The paper's three searched designs (Tables VII-VIII). @{ */
LutDlaDesign design1Tiny();
LutDlaDesign design2Large();
LutDlaDesign design3Fit();
/** @} */

} // namespace lutdla::hw

#endif // LUTDLA_HW_ACCEL_H
