#ifndef LUTDLA_HW_SRAM_H
#define LUTDLA_HW_SRAM_H

/**
 * @file
 * SRAM macro model standing in for the ARM memory compiler the paper uses
 * (Sec. VII-B settings). Area is linear in capacity with a fixed periphery
 * overhead; dynamic access energy grows with the square root of capacity
 * (bitline length), the standard first-order model.
 */

#include <cstdint>

#include "hw/tech.h"

namespace lutdla::hw {

/** PPA summary of one SRAM macro. */
struct SramMacro
{
    int64_t bytes = 0;
    double area_mm2 = 0.0;
    double read_energy_pj = 0.0;   ///< per byte read
    double write_energy_pj = 0.0;  ///< per byte written
    double leakage_mw = 0.0;
};

/** SRAM generator for one process node. */
class SramModel
{
  public:
    explicit SramModel(TechNode node = tech28());

    /**
     * Compile a macro of `bytes` capacity.
     * Small macros (<1 KB) are costed as register files (denser access,
     * bigger per-bit area), matching how the designs implement the indices
     * buffer.
     */
    SramMacro compile(int64_t bytes) const;

    /** Dynamic power (mW) of a macro at `accesses_per_cycle` bytes/cycle. */
    double dynamicPowerMw(const SramMacro &macro, double bytes_per_cycle,
                          double freq_hz) const;

  private:
    TechNode node_;
    double area_scale_;
    double energy_scale_;
};

} // namespace lutdla::hw

#endif // LUTDLA_HW_SRAM_H
