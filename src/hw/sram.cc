#include "hw/sram.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::hw {

namespace {

// 45 nm anchors (Horowitz ISSCC'14: 8 KB cache read ~10 pJ per 64-bit
// word -> ~1.25 pJ/B; bit-cell + periphery ~0.6 um^2/bit).
constexpr double kAreaPerBitUm2At45 = 0.60;
constexpr double kRegfileAreaPerBitUm2At45 = 2.2;
constexpr double kReadEnergyPerByteAt45Pj = 1.25;  // at 8 KB
constexpr double kLeakPerKbAt45Mw = 0.012;

} // namespace

SramModel::SramModel(TechNode node)
    : node_(node),
      area_scale_(tech45().areaScaleTo(node)),
      energy_scale_(tech45().energyScaleTo(node))
{
}

SramMacro
SramModel::compile(int64_t bytes) const
{
    LUTDLA_CHECK(bytes >= 0, "negative SRAM capacity");
    SramMacro m;
    m.bytes = bytes;
    if (bytes == 0)
        return m;

    const double bits = static_cast<double>(bytes) * 8.0;
    const bool regfile = bytes < 1024;
    const double per_bit =
        (regfile ? kRegfileAreaPerBitUm2At45 : kAreaPerBitUm2At45) *
        area_scale_;
    // Fixed periphery floor so tiny macros do not look free.
    const double periphery_um2 = (regfile ? 150.0 : 900.0) * area_scale_;
    m.area_mm2 = (bits * per_bit + periphery_um2) * 1e-6;

    // Bitline energy grows ~sqrt(capacity) relative to the 8 KB anchor.
    const double size_factor =
        std::sqrt(std::max(static_cast<double>(bytes), 64.0) / 8192.0);
    m.read_energy_pj =
        kReadEnergyPerByteAt45Pj * size_factor * energy_scale_ *
        (regfile ? 0.55 : 1.0);
    m.write_energy_pj = m.read_energy_pj * 1.15;
    m.leakage_mw = kLeakPerKbAt45Mw * (static_cast<double>(bytes) / 1024.0) *
                   energy_scale_;
    return m;
}

double
SramModel::dynamicPowerMw(const SramMacro &macro, double bytes_per_cycle,
                          double freq_hz) const
{
    // pJ/B * B/cycle * cycles/s = pJ/s = 1e-9 mW.
    return macro.read_energy_pj * bytes_per_cycle * freq_hz * 1e-9;
}

} // namespace lutdla::hw
