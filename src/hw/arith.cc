#include "hw/arith.h"

#include <cmath>

#include "util/logging.h"

namespace lutdla::hw {

int
formatBits(NumFormat fmt)
{
    switch (fmt) {
      case NumFormat::Int8:  return 8;
      case NumFormat::Int16: return 16;
      case NumFormat::Int32: return 32;
      case NumFormat::Fp16:  return 16;
      case NumFormat::Bf16:  return 16;
      case NumFormat::Fp32:  return 32;
    }
    return 32;
}

const char *
formatName(NumFormat fmt)
{
    switch (fmt) {
      case NumFormat::Int8:  return "INT8";
      case NumFormat::Int16: return "INT16";
      case NumFormat::Int32: return "INT32";
      case NumFormat::Fp16:  return "FP16";
      case NumFormat::Bf16:  return "BF16";
      case NumFormat::Fp32:  return "FP32";
    }
    return "?";
}

ArithLibrary::ArithLibrary(TechNode node)
    : node_(node),
      area_scale_(tech45().areaScaleTo(node)),
      energy_scale_(tech45().energyScaleTo(node))
{
}

UnitCost
ArithLibrary::intAdd(int bits) const
{
    LUTDLA_CHECK(bits >= 1, "adder width");
    // Linear in width; anchors: 8b 36um^2/0.03pJ, 32b 137um^2/0.1pJ.
    const double area = 36.0 * (static_cast<double>(bits) / 8.0);
    // Slightly sub-linear energy (0.03 pJ @8b -> 0.1 pJ @32b).
    const double energy =
        0.03 * std::pow(static_cast<double>(bits) / 8.0, 0.87);
    return {area * area_scale_, energy * energy_scale_};
}

UnitCost
ArithLibrary::intMult(int bits) const
{
    LUTDLA_CHECK(bits >= 1, "multiplier width");
    // Anchors give exponent ~1.81 for area and ~1.98 for energy.
    const double r = static_cast<double>(bits) / 8.0;
    const double area = 282.0 * std::pow(r, 1.81);
    const double energy = 0.2 * std::pow(r, 1.98);
    return {area * area_scale_, energy * energy_scale_};
}

UnitCost
ArithLibrary::fpAdd(int bits) const
{
    LUTDLA_CHECK(bits >= 8, "fp adder width");
    // Anchors: fp16 1360um^2/0.4pJ, fp32 4184um^2/0.9pJ.
    const double r = static_cast<double>(bits) / 16.0;
    const double area = 1360.0 * std::pow(r, 1.62);
    const double energy = 0.4 * std::pow(r, 1.17);
    return {area * area_scale_, energy * energy_scale_};
}

UnitCost
ArithLibrary::fpMult(int bits) const
{
    LUTDLA_CHECK(bits >= 8, "fp multiplier width");
    // Anchors: fp16 1640um^2/1.1pJ, fp32 7700um^2/3.7pJ.
    const double r = static_cast<double>(bits) / 16.0;
    const double area = 1640.0 * std::pow(r, 2.23);
    const double energy = 1.1 * std::pow(r, 1.75);
    return {area * area_scale_, energy * energy_scale_};
}

UnitCost
ArithLibrary::add(NumFormat fmt) const
{
    switch (fmt) {
      case NumFormat::Int8:
      case NumFormat::Int16:
      case NumFormat::Int32:
        return intAdd(formatBits(fmt));
      case NumFormat::Fp16:
        return fpAdd(16);
      case NumFormat::Bf16:
        // Same width as fp16; the wider exponent/narrower mantissa nets
        // out to a slightly cheaper significand adder.
        return fpAdd(16) * 0.9;
      case NumFormat::Fp32:
        return fpAdd(32);
    }
    return {};
}

UnitCost
ArithLibrary::mult(NumFormat fmt) const
{
    switch (fmt) {
      case NumFormat::Int8:
      case NumFormat::Int16:
      case NumFormat::Int32:
        return intMult(formatBits(fmt));
      case NumFormat::Fp16:
        return fpMult(16);
      case NumFormat::Bf16:
        // 8-bit mantissa multiplier vs fp16's 11-bit.
        return fpMult(16) * 0.72;
      case NumFormat::Fp32:
        return fpMult(32);
    }
    return {};
}

UnitCost
ArithLibrary::absUnit(NumFormat fmt) const
{
    // Conditional negate: xor row + increment (int) / sign clear (fp).
    switch (fmt) {
      case NumFormat::Fp16:
      case NumFormat::Bf16:
      case NumFormat::Fp32: {
        // Clearing the sign bit is nearly free; budget a few gates.
        const UnitCost a = intAdd(8);
        return a * 0.1;
      }
      default:
        return intAdd(formatBits(fmt)) * 0.5;
    }
}

UnitCost
ArithLibrary::maxUnit(NumFormat fmt) const
{
    // Comparator (subtract) + 2:1 mux.
    const int bits = formatBits(fmt);
    UnitCost cmp = intAdd(bits);
    UnitCost mux = intAdd(bits) * 0.35;
    return cmp + mux;
}

UnitCost
ArithLibrary::comparator(NumFormat fmt) const
{
    return intAdd(formatBits(fmt));
}

UnitCost
ArithLibrary::registerBit() const
{
    // Standard-cell flip-flop: ~5 um^2 and ~2 fJ per toggle at 45 nm.
    return {5.0 * area_scale_, 0.002 * energy_scale_};
}

} // namespace lutdla::hw
