#include "hw/tech.h"

#include <cmath>

namespace lutdla::hw {

namespace {

/**
 * Effective scaling length: below 22 nm the nominal "node name" no longer
 * tracks feature size, so we damp the exponent (FinFET correction).
 */
double
effectiveLength(double nm)
{
    if (nm >= 22.0)
        return nm;
    // Map marketing nodes to effective density-equivalent lengths.
    return 22.0 * std::pow(nm / 22.0, 0.72);
}

} // namespace

double
TechNode::areaScaleTo(const TechNode &to) const
{
    const double a = effectiveLength(nm);
    const double b = effectiveLength(to.nm);
    return (b * b) / (a * a);
}

double
TechNode::energyScaleTo(const TechNode &to) const
{
    const double a = effectiveLength(nm);
    const double b = effectiveLength(to.nm);
    return std::pow(b / a, 1.56);
}

double
TechNode::delayScaleTo(const TechNode &to) const
{
    const double a = effectiveLength(nm);
    const double b = effectiveLength(to.nm);
    return std::pow(b / a, 0.7);
}

} // namespace lutdla::hw
