#ifndef LUTDLA_HW_ARITH_H
#define LUTDLA_HW_ARITH_H

/**
 * @file
 * Arithmetic-unit area/energy library.
 *
 * Anchored on the widely used Horowitz ISSCC'14 45 nm numbers (INT8 add
 * 0.03 pJ / 36 um^2, INT32 add 0.1 pJ / 137 um^2, INT8 mult 0.2 pJ /
 * 282 um^2, INT32 mult 3.1 pJ / 3495 um^2, FP16 add 0.4 pJ / 1360 um^2,
 * FP32 add 0.9 pJ / 4184 um^2, FP16 mult 1.1 pJ / 1640 um^2, FP32 mult
 * 3.7 pJ / 7700 um^2) and extended to arbitrary bitwidths with fitted
 * power laws. Everything is reported at a caller-chosen node via
 * TechNode scaling — the paper evaluates at 28 nm FD-SOI.
 */

#include "hw/tech.h"

namespace lutdla::hw {

/** Numeric formats the CCM/IMM datapaths can be built in. */
enum class NumFormat { Int8, Int16, Int32, Fp16, Bf16, Fp32 };

/** Bit width of a format. */
int formatBits(NumFormat fmt);

/** Printable format name. */
const char *formatName(NumFormat fmt);

/** Area (um^2) and energy-per-op (pJ) of one functional unit. */
struct UnitCost
{
    double area_um2 = 0.0;
    double energy_pj = 0.0;

    UnitCost
    operator+(const UnitCost &rhs) const
    {
        return {area_um2 + rhs.area_um2, energy_pj + rhs.energy_pj};
    }
    UnitCost
    operator*(double k) const
    {
        return {area_um2 * k, energy_pj * k};
    }
    UnitCost &
    operator+=(const UnitCost &rhs)
    {
        area_um2 += rhs.area_um2;
        energy_pj += rhs.energy_pj;
        return *this;
    }
};

/**
 * Arithmetic library for one target node.
 *
 * All methods return costs already scaled from the 45 nm anchors to the
 * node passed at construction.
 */
class ArithLibrary
{
  public:
    explicit ArithLibrary(TechNode node = tech28());

    /** Integer adder of `bits` width. */
    UnitCost intAdd(int bits) const;

    /** Integer multiplier of `bits` width. */
    UnitCost intMult(int bits) const;

    /** Floating-point adder of `bits` total width. */
    UnitCost fpAdd(int bits) const;

    /** Floating-point multiplier of `bits` total width. */
    UnitCost fpMult(int bits) const;

    /** Adder in a given format (dispatches int/fp/bf16). */
    UnitCost add(NumFormat fmt) const;

    /** Multiplier in a given format. */
    UnitCost mult(NumFormat fmt) const;

    /** Subtractor (costed as an adder). */
    UnitCost sub(NumFormat fmt) const { return add(fmt); }

    /** Absolute-value unit (conditional negate, ~half an adder). */
    UnitCost absUnit(NumFormat fmt) const;

    /** Two-input max/compare unit (comparator + mux). */
    UnitCost maxUnit(NumFormat fmt) const;

    /** Comparator for the dPE's running-min update. */
    UnitCost comparator(NumFormat fmt) const;

    /** One bit of pipeline register (flip-flop). */
    UnitCost registerBit() const;

    TechNode node() const { return node_; }

  private:
    TechNode node_;
    double area_scale_;
    double energy_scale_;
};

} // namespace lutdla::hw

#endif // LUTDLA_HW_ARITH_H
