#include "hw/efficiency.h"

#include <cmath>

#include "hw/dpe.h"

namespace lutdla::hw {

std::vector<EfficiencyPoint>
aluEfficiencyCurves(const ArithLibrary &lib)
{
    std::vector<EfficiencyPoint> points;
    auto push = [&](const std::string &series, double bits, UnitCost cost) {
        EfficiencyPoint p;
        p.series = series;
        p.bitwidth = bits;
        p.ops_per_mm2 = 1.0 / (cost.area_um2 * 1e-6);
        p.ops_per_pj = 1.0 / cost.energy_pj;
        points.push_back(p);
    };
    for (int bits : {1, 2, 4, 8, 16, 32, 64}) {
        push("INT ADD", bits, lib.intAdd(bits));
        push("INT MULT", bits, lib.intMult(bits));
    }
    for (int bits : {8, 16, 32, 64}) {
        push("FP ADD", bits, lib.fpAdd(bits));
        push("FP MULT", bits, lib.fpMult(bits));
    }
    return points;
}

EfficiencyPoint
lutEfficiencyPoint(const ArithLibrary &lib, const SramModel &sram,
                   const LutEfficiencyConfig &config, int64_t v, int64_t c)
{
    CcuConfig ccu;
    ccu.dpe.v = v;
    ccu.dpe.metric = config.metric;
    ccu.dpe.format = config.sim_format;
    ccu.c = c;
    const UnitCost ccu_cost = ccuCost(lib, ccu);

    // One lane: ping-pong slice of c entries each plus a 16-bit adder.
    const SramMacro slice =
        sram.compile(2 * c * config.lut_entry_bytes);
    const UnitCost accum = lib.intAdd(16);

    const double lanes = static_cast<double>(config.lanes);
    const double area_mm2 = ccu_cost.area_um2 * 1e-6 +
                            lanes * (slice.area_mm2 +
                                     accum.area_um2 * 1e-6);
    const double energy_pj =
        ccu_cost.energy_pj +
        lanes * (slice.read_energy_pj *
                     static_cast<double>(config.lut_entry_bytes) +
                 accum.energy_pj);

    const double ops_per_cycle = lanes * 2.0 * static_cast<double>(v);

    EfficiencyPoint p;
    p.series = "LUT V=" + std::to_string(v);
    double bits = 0.0;
    for (int64_t x = 1; x < c; x *= 2)
        bits += 1.0;
    p.bitwidth = bits / static_cast<double>(v);
    p.ops_per_mm2 = ops_per_cycle / area_mm2;
    p.ops_per_pj = ops_per_cycle / energy_pj;
    return p;
}

std::vector<EfficiencyPoint>
lutEfficiencyCurves(const ArithLibrary &lib, const SramModel &sram,
                    const LutEfficiencyConfig &config)
{
    std::vector<EfficiencyPoint> points;
    for (int64_t v : {2, 4, 8, 16})
        for (int64_t c : {8, 16, 32, 64, 128, 256, 512})
            points.push_back(lutEfficiencyPoint(lib, sram, config, v, c));
    return points;
}

} // namespace lutdla::hw
