#ifndef LUTDLA_HW_SOA_DB_H
#define LUTDLA_HW_SOA_DB_H

/**
 * @file
 * Published state-of-the-art accelerator specs (Table VIII rows as printed
 * in the paper) plus node-normalized efficiency computation. These are the
 * comparison baselines; LUT-DLA designs are evaluated by our own models
 * and appended alongside.
 */

#include <string>
#include <vector>

#include "hw/tech.h"

namespace lutdla::hw {

/** One published accelerator's data sheet. */
struct AcceleratorSpec
{
    std::string name;
    double tech_nm = 28.0;
    double freq_mhz = 0.0;
    double area_mm2 = 0.0;
    double power_mw = 0.0;
    double perf_gops = 0.0;
    std::string func;  ///< "C", "T", or "C/T"

    /** Raw (unscaled) GOPS/mm^2. */
    double rawAreaEff() const { return perf_gops / area_mm2; }

    /** Raw GOPS/mW. */
    double rawPowerEff() const { return perf_gops / power_mw; }

    /** Area efficiency with area scaled to `node` (paper's method [54]). */
    double scaledAreaEff(TechNode node) const;

    /** Power efficiency with power scaled to `node`. */
    double scaledPowerEff(TechNode node) const;
};

/** The seven published rows of Table VIII. */
std::vector<AcceleratorSpec> publishedAccelerators();

/** Look a spec up by name (fatal if absent). */
AcceleratorSpec findAccelerator(const std::string &name);

} // namespace lutdla::hw

#endif // LUTDLA_HW_SOA_DB_H
