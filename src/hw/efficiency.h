#ifndef LUTDLA_HW_EFFICIENCY_H
#define LUTDLA_HW_EFFICIENCY_H

/**
 * @file
 * The Fig. 1 study: area efficiency (ops/cycle per mm^2) and power
 * efficiency (ops per pJ) of conventional ALUs across bitwidths versus
 * LUT-based approximate computing across (V, C) configurations, evaluated
 * for a 1k x 1k x 1k matrix multiplication at 28 nm / 300 MHz.
 *
 * For the LUT engine we cost a balanced reference instance: one CCU
 * (c-deep dPE pipeline at width V) feeding `lanes` lookup lanes, each lane
 * owning its ping-pong LUT slice and a 16-bit accumulator; one lane
 * retires 2V ops per cycle (the v MACs a lookup replaces).
 */

#include <string>
#include <vector>

#include "hw/arith.h"
#include "hw/sram.h"
#include "vq/distance.h"

namespace lutdla::hw {

/** One point of the Fig. 1 scatter. */
struct EfficiencyPoint
{
    std::string series;     ///< e.g. "INT ADD", "LUT V=4"
    double bitwidth = 0.0;  ///< x-axis: op bits or log2(C)/V equivalent
    double ops_per_mm2 = 0.0;  ///< ops/cycle per mm^2
    double ops_per_pj = 0.0;
};

/** ALU curves: INT/FP add/mult over power-of-two bitwidths. */
std::vector<EfficiencyPoint> aluEfficiencyCurves(const ArithLibrary &lib);

/** LUT-engine parameters for the study. */
struct LutEfficiencyConfig
{
    vq::Metric metric = vq::Metric::L2;
    NumFormat sim_format = NumFormat::Bf16;
    int64_t lut_entry_bytes = 1;
    int64_t lanes = 256;   ///< lookup lanes amortizing one CCU
};

/** LUT curves over V in {2,4,8,16} and C in {8..512}. */
std::vector<EfficiencyPoint> lutEfficiencyCurves(
    const ArithLibrary &lib, const SramModel &sram,
    const LutEfficiencyConfig &config);

/** Efficiency of one specific (v, c) LUT configuration. */
EfficiencyPoint lutEfficiencyPoint(const ArithLibrary &lib,
                                   const SramModel &sram,
                                   const LutEfficiencyConfig &config,
                                   int64_t v, int64_t c);

} // namespace lutdla::hw

#endif // LUTDLA_HW_EFFICIENCY_H
