#include "hw/dpe.h"

#include "util/logging.h"

namespace lutdla::hw {

UnitCost
dpeCost(const ArithLibrary &lib, const DpeConfig &config)
{
    const int64_t v = config.v;
    LUTDLA_CHECK(v >= 1, "dPE needs v >= 1");
    UnitCost cost;

    // Element-wise stage: v subtractors plus the metric-specific unit.
    cost += lib.sub(config.format) * static_cast<double>(v);
    switch (config.metric) {
      case vq::Metric::L2:
        cost += lib.mult(config.format) * static_cast<double>(v);
        break;
      case vq::Metric::L1:
      case vq::Metric::Chebyshev:
        cost += lib.absUnit(config.format) * static_cast<double>(v);
        break;
    }

    // Reduction tree: v-1 two-input reducers (adders for L2/L1, max units
    // for Chebyshev). Tree wiring adds a mild super-linear term, which we
    // fold in as 12% per doubling beyond 4 lanes.
    if (v > 1) {
        UnitCost reducer = config.metric == vq::Metric::Chebyshev
                               ? lib.maxUnit(config.format)
                               : lib.add(config.format);
        double wiring = 1.0;
        for (int64_t w = 8; w <= v; w *= 2)
            wiring *= 1.12;
        cost += reducer * (static_cast<double>(v - 1) * wiring);
    }

    // Running-min compare + index mux + (dist, idx) latch.
    cost += lib.comparator(config.format);
    cost += lib.registerBit() *
            static_cast<double>(formatBits(config.format) + 16);
    return cost;
}

UnitCost
ccuCost(const ArithLibrary &lib, const CcuConfig &config)
{
    LUTDLA_CHECK(config.c >= 1, "CCU needs c >= 1");
    UnitCost one = dpeCost(lib, config.dpe);
    UnitCost total = one * static_cast<double>(config.c);

    // Input-vector pipeline registers between stages: each of the c stages
    // forwards the v-element vector to the next dPE.
    const double vec_bits = static_cast<double>(
        config.dpe.v * formatBits(config.dpe.format));
    total += lib.registerBit() * (vec_bits * static_cast<double>(config.c));
    return total;
}

int64_t
ccuCentroidBytes(const CcuConfig &config)
{
    return config.c * config.dpe.v * (formatBits(config.dpe.format) / 8);
}

} // namespace lutdla::hw
