#include "hw/accel.h"

#include "util/logging.h"

namespace lutdla::hw {

int64_t
LutDlaDesign::indexBits() const
{
    int64_t bits = 0;
    while ((int64_t{1} << bits) < c)
        ++bits;
    return std::max<int64_t>(bits, 1);
}

double
LutDlaDesign::peakOps() const
{
    // One lookup lane retires one psum/cycle, replacing v MACs = 2v ops.
    return static_cast<double>(n_imm * tn) * 2.0 *
           static_cast<double>(v) * freq_imm_hz;
}

ImmMemory
immMemory(const LutDlaDesign &design)
{
    ImmMemory mem;
    mem.scratchpad_bytes = design.m_rows * design.tn * design.psum_bytes;
    mem.psum_lut_bytes = 2 * design.c * design.tn * design.lut_entry_bytes;
    mem.indices_bytes = (design.m_rows * design.indexBits() + 7) / 8;
    return mem;
}

double
minBandwidthBytesPerSec(const LutDlaDesign &design)
{
    // The next LUT tile (c * tn entries) must land while the current one
    // serves m_rows lookups; all n_imm tiles share the channel. The CCM
    // additionally streams the input subvectors (v elements per index).
    const double lut_tile =
        static_cast<double>(design.c * design.tn * design.lut_entry_bytes);
    const double per_imm =
        lut_tile / static_cast<double>(design.m_rows) * design.freq_imm_hz;
    const double input_stream =
        static_cast<double>(design.v) * design.freq_ccm_hz;
    return per_imm * static_cast<double>(design.n_imm) + input_stream;
}

AccelPpa
evaluateDesign(const ArithLibrary &lib, const SramModel &sram,
               const LutDlaDesign &design)
{
    AccelPpa ppa;
    ppa.peak_gops = design.peakOps() * 1e-9;

    // ---- IMM: memories + accumulators --------------------------------
    const ImmMemory mem = immMemory(design);
    const SramMacro scratch = sram.compile(mem.scratchpad_bytes);
    const SramMacro lut = sram.compile(mem.psum_lut_bytes);
    const SramMacro idx = sram.compile(mem.indices_bytes);
    // Wide memories are physically banked; accesses see a 4 KB bank's
    // bitlines, not the full macro's.
    const SramMacro bank = sram.compile(4096);

    // Accumulate in 16-bit regardless of the 8-bit stored psum.
    const UnitCost accum = lib.intAdd(16);
    const double n_imm = static_cast<double>(design.n_imm);
    const double tn = static_cast<double>(design.tn);

    double imm_area = (scratch.area_mm2 + lut.area_mm2 + idx.area_mm2) +
                      accum.area_um2 * tn * 1e-6;
    ppa.sram_area_mm2 =
        (scratch.area_mm2 + lut.area_mm2 + idx.area_mm2) * n_imm;
    ppa.imm_area_mm2 = imm_area * n_imm;

    // Per-cycle IMM activity: read a tn-byte LUT row, read+write the
    // tn-byte scratchpad line, read one index, run tn accumulators.
    const double lut_bytes_cy =
        tn * static_cast<double>(design.lut_entry_bytes);
    const double sp_bytes_cy = tn * static_cast<double>(design.psum_bytes);
    double imm_energy_pj =
        bank.read_energy_pj * lut_bytes_cy +
        bank.read_energy_pj * sp_bytes_cy +
        bank.write_energy_pj * sp_bytes_cy +
        idx.read_energy_pj * (static_cast<double>(design.indexBits()) / 8.0) +
        accum.energy_pj * tn;
    double imm_power =
        imm_energy_pj * design.freq_imm_hz * 1e-9 +
        scratch.leakage_mw + lut.leakage_mw + idx.leakage_mw;

    // ---- CCM: CCUs + centroid/input buffers ---------------------------
    CcuConfig ccu;
    ccu.dpe.v = design.v;
    ccu.dpe.metric = design.metric;
    ccu.dpe.format = design.sim_format;
    ccu.c = design.c;
    const UnitCost ccu_cost = ccuCost(lib, ccu);
    const SramMacro centroid_buf = sram.compile(ccuCentroidBytes(ccu));
    const SramMacro input_buf = sram.compile(
        design.m_rows * design.v * (formatBits(design.sim_format) / 8));

    const double n_ccu = static_cast<double>(design.n_ccu);
    ppa.ccm_area_mm2 = (ccu_cost.area_um2 * 1e-6 + centroid_buf.area_mm2 +
                        input_buf.area_mm2) * n_ccu;

    // Per CCM cycle the full pipeline is busy: one vector at each of the
    // c dPE stages, plus an input-buffer read of v elements.
    double ccm_energy_pj =
        ccu_cost.energy_pj +
        input_buf.read_energy_pj *
            static_cast<double>(design.v *
                                (formatBits(design.sim_format) / 8));
    double ccm_power = ccm_energy_pj * design.freq_ccm_hz * 1e-9 * n_ccu +
                       (centroid_buf.leakage_mw + input_buf.leakage_mw) *
                           n_ccu;

    // ---- Glue: global buffer, DMA/prefetcher, FIFOs, interconnect -----
    // The architecture (Fig. 4) includes a global buffer for bandwidth
    // smoothing plus control/prefetch logic; budget a 128 KB buffer and
    // 15% interconnect overhead on the core.
    const SramMacro global_buf = sram.compile(128 * 1024);
    const double core_area = ppa.imm_area_mm2 + ppa.ccm_area_mm2;
    ppa.other_area_mm2 =
        0.15 * core_area + global_buf.area_mm2 + 0.05;
    const double core_power = imm_power * n_imm + ccm_power;
    const double other_power =
        0.10 * core_power + global_buf.leakage_mw + 4.0;

    ppa.area_mm2 = core_area + ppa.other_area_mm2;
    ppa.power_mw = core_power + other_power;
    return ppa;
}

LutDlaDesign
design1Tiny()
{
    LutDlaDesign d;
    d.name = "Design1 (Tiny)";
    d.v = 3;
    d.c = 16;
    d.metric = vq::Metric::L2;
    d.sim_format = NumFormat::Bf16;
    d.tn = 128;
    d.m_rows = 256;
    d.n_imm = 2;
    d.n_ccu = 2;
    d.freq_ccm_hz = 1.2e9;  // decoupled faster CCM clock (Sec. IV-A)
    return d;
}

LutDlaDesign
design2Large()
{
    LutDlaDesign d;
    d.name = "Design2 (Large)";
    d.v = 4;
    d.c = 16;
    d.metric = vq::Metric::L2;
    d.sim_format = NumFormat::Bf16;
    d.tn = 256;
    d.m_rows = 256;
    d.n_imm = 2;
    d.n_ccu = 2;
    d.freq_ccm_hz = 1.2e9;
    return d;
}

LutDlaDesign
design3Fit()
{
    LutDlaDesign d;
    d.name = "Design3 (Fit)";
    d.v = 3;
    d.c = 16;
    d.metric = vq::Metric::L2;
    d.sim_format = NumFormat::Bf16;
    d.tn = 768;
    d.m_rows = 512;
    d.n_imm = 2;
    d.n_ccu = 2;
    d.freq_ccm_hz = 1.2e9;
    return d;
}

} // namespace lutdla::hw
