#ifndef LUTDLA_HW_TECH_H
#define LUTDLA_HW_TECH_H

/**
 * @file
 * Process-node scaling, approximating Stillmaker & Baas, "Scaling equations
 * for the accurate prediction of CMOS device performance from 180 nm to
 * 7 nm" (Integration 2017) — the same reference the paper uses ([54]) to
 * normalize published accelerators to a common node (Table VIII).
 *
 * We model area ~ (L/Lref)^2 and energy ~ (L/Lref)^1.56 with per-node
 * correction factors for FinFET generations, which reproduces the
 * commonly-cited factors within a few percent. Absolute fidelity to a
 * foundry PDK is out of scope; cross-node *ratios* are what the paper's
 * comparisons need.
 */

#include <cstdint>

namespace lutdla::hw {

/** A CMOS process node in nanometers. */
struct TechNode
{
    double nm = 28.0;

    /** Area scale factor from this node to `to`. */
    double areaScaleTo(const TechNode &to) const;

    /** Dynamic-energy scale factor from this node to `to`. */
    double energyScaleTo(const TechNode &to) const;

    /** Delay scale factor (smaller is faster) from this node to `to`. */
    double delayScaleTo(const TechNode &to) const;
};

/** The paper's implementation node: 28 nm FD-SOI. */
inline TechNode tech28() { return TechNode{28.0}; }

/** The Horowitz ISSCC'14 reference node used by our arithmetic anchors. */
inline TechNode tech45() { return TechNode{45.0}; }

} // namespace lutdla::hw

#endif // LUTDLA_HW_TECH_H
