#ifndef LUTDLA_HW_DPE_H
#define LUTDLA_HW_DPE_H

/**
 * @file
 * Cost models for the CCM's compute blocks (Fig. 5 of the paper):
 *
 *   dPE  - one distance processing element: computes the distance between
 *          the input subvector and one centroid per cycle (v element-wise
 *          ops + reduction) and keeps the running (min, index) pair.
 *   CCU  - a pipeline of c dPEs; one input vector enters per cycle and an
 *          argmin index emerges c cycles later (throughput 1 index/cycle).
 *
 * The similarity metric changes the element-wise datapath (Sec. V-2):
 *   L2: sub + mult, reduce with adders;
 *   L1: sub + abs,  reduce with adders (multiplier-free);
 *   Chebyshev: sub + abs, reduce with max units (cheapest).
 */

#include "hw/arith.h"
#include "vq/distance.h"

namespace lutdla::hw {

/** dPE configuration. */
struct DpeConfig
{
    int64_t v = 4;                        ///< subvector length
    vq::Metric metric = vq::Metric::L2;   ///< similarity metric
    NumFormat format = NumFormat::Fp32;   ///< datapath precision
};

/** Area (um^2), per-comparison energy (pJ) of one dPE. */
UnitCost dpeCost(const ArithLibrary &lib, const DpeConfig &config);

/** CCU configuration: a c-deep chain of dPEs plus pipeline registers. */
struct CcuConfig
{
    DpeConfig dpe;
    int64_t c = 16;  ///< centroids, i.e. pipeline depth
};

/** Area/energy of one CCU (energy = per input vector fully compared). */
UnitCost ccuCost(const ArithLibrary &lib, const CcuConfig &config);

/** Centroid buffer bytes for one CCU: c * v elements. */
int64_t ccuCentroidBytes(const CcuConfig &config);

} // namespace lutdla::hw

#endif // LUTDLA_HW_DPE_H
