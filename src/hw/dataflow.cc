#include "hw/dataflow.h"

#include "util/logging.h"

namespace lutdla::hw {

std::string
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::MNK: return "MNK";
      case Dataflow::NMK: return "NMK";
      case Dataflow::MKN: return "MKN";
      case Dataflow::KMN: return "KMN";
      case Dataflow::KNM: return "KNM";
      case Dataflow::LutStationary: return "LUT-Stationary";
    }
    return "?";
}

std::vector<Dataflow>
allDataflows()
{
    return {Dataflow::MNK, Dataflow::NMK, Dataflow::MKN,
            Dataflow::KMN, Dataflow::KNM, Dataflow::LutStationary};
}

int64_t
DataflowParams::indexBits() const
{
    int64_t bits = 0;
    while ((int64_t{1} << bits) < c)
        ++bits;
    return std::max<int64_t>(bits, 1);
}

DataflowMemory
dataflowMemory(Dataflow df, const DataflowParams &p)
{
    const double nc = static_cast<double>(p.numSubspaces());
    const double idx_bits = static_cast<double>(p.indexBits());
    const double m = static_cast<double>(p.m);
    const double n = static_cast<double>(p.n);
    const double c = static_cast<double>(p.c);
    const double tn = static_cast<double>(p.tn);
    const double lutB = static_cast<double>(p.lut_entry_bytes);
    const double psB = static_cast<double>(p.psum_bytes);
    const double full_lut = c * nc * n * lutB;

    DataflowMemory mem;
    mem.dataflow = df;
    switch (df) {
      case Dataflow::MNK:
        // K innermost: a tile of Tn output accumulators; row-m indices are
        // computed once and reused across the n loop; every (k, n) LUT
        // slice must stay resident or it would reload per m.
        mem.scratchpad_bytes = tn * psB;
        mem.indices_bytes = nc * idx_bits / 8.0;
        mem.psum_lut_bytes = full_lut;
        break;
      case Dataflow::NMK:
        // Same residency; indices of all (m, k) must be cached to survive
        // the outer n loop without recomputation.
        mem.scratchpad_bytes = tn * psB;
        mem.indices_bytes = m * nc * idx_bits / 8.0;
        mem.psum_lut_bytes = full_lut;
        break;
      case Dataflow::MKN:
        // N innermost: one full output row of psums; a single (m, k)
        // index; full LUT residency.
        mem.scratchpad_bytes = n * psB;
        mem.indices_bytes = idx_bits / 8.0;
        mem.psum_lut_bytes = full_lut;
        break;
      case Dataflow::KMN:
        // K outermost: all M*N partial sums live across k iterations, but
        // only the per-k LUT slice (c x N) is needed at a time.
        mem.scratchpad_bytes = m * n * psB;
        mem.indices_bytes = idx_bits / 8.0;
        mem.psum_lut_bytes = c * n * lutB;
        break;
      case Dataflow::KNM:
        // M innermost: per-k indices for all m; LUT tile c x Tn.
        mem.scratchpad_bytes = m * n * psB;
        mem.indices_bytes = m * idx_bits / 8.0;
        mem.psum_lut_bytes = c * tn * lutB;
        break;
      case Dataflow::LutStationary:
        // N -> K -> M with an n-tile: M x Tn psums, M indices for the
        // current subspace, one c x Tn LUT tile.
        mem.scratchpad_bytes = m * tn * psB;
        mem.indices_bytes = m * idx_bits / 8.0;
        mem.psum_lut_bytes = c * tn * lutB;
        break;
    }
    return mem;
}

int64_t
dataflowLutLoads(Dataflow df, const DataflowParams &p)
{
    const int64_t nc = p.numSubspaces();
    const int64_t no = (p.n + p.tn - 1) / p.tn;
    switch (df) {
      case Dataflow::MNK:
      case Dataflow::NMK:
      case Dataflow::MKN:
        // Whole LUT loaded once (that is what the buffering bought).
        return 1;
      case Dataflow::KMN:
        return nc;           // one c x N slice per subspace
      case Dataflow::KNM:
        return nc * no;      // one c x Tn tile per (k, n-tile)
      case Dataflow::LutStationary:
        return no * nc;      // same tile count, loop order swapped
    }
    return 0;
}

} // namespace lutdla::hw
