#include "hw/soa_db.h"

#include "util/logging.h"

namespace lutdla::hw {

double
AcceleratorSpec::scaledAreaEff(TechNode node) const
{
    const double factor = TechNode{tech_nm}.areaScaleTo(node);
    return perf_gops / (area_mm2 * factor);
}

double
AcceleratorSpec::scaledPowerEff(TechNode node) const
{
    const double factor = TechNode{tech_nm}.energyScaleTo(node);
    return perf_gops / (power_mw * factor);
}

std::vector<AcceleratorSpec>
publishedAccelerators()
{
    // Values as printed in the paper's Table VIII.
    return {
        {"NVIDIA A100", 7, 1512, 826.0, 300000.0, 624000.0, "C/T"},
        {"Gemmini", 16, 500, 1.21, 312.41, 256.0, "C/T"},
        {"NVDLA-Small", 28, 1000, 0.91, 55.0, 64.0, "C"},
        {"NVDLA-Large", 28, 1000, 5.5, 766.0, 2048.0, "C"},
        {"ELSA", 40, 1000, 2.147, 1047.08, 1088.0, "T"},
        {"FACT", 28, 500, 6.03, 337.07, 928.0, "T"},
        {"RRAM-DNN", 22, 120, 10.8, 127.9, 123.0, "C"},
    };
}

AcceleratorSpec
findAccelerator(const std::string &name)
{
    for (const auto &spec : publishedAccelerators())
        if (spec.name == name)
            return spec;
    fatal("unknown accelerator '", name, "'");
}

} // namespace lutdla::hw
