#include "tensor/gemm.h"

#include "util/logging.h"

namespace lutdla {

namespace {

/** Blocking factor tuned for L1-resident panels of float32. */
constexpr int64_t kBlock = 64;

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    LUTDLA_CHECK(a.rank() == 2 && b.rank() == 2, "matmul needs matrices");
    LUTDLA_CHECK(a.dim(1) == b.dim(0), "matmul inner dims: ",
                 shapeStr(a.shape()), " x ", shapeStr(b.shape()));
    Tensor c(Shape{a.dim(0), b.dim(1)});
    matmulAccum(a, b, c);
    return c;
}

void
matmulAccum(const Tensor &a, const Tensor &b, Tensor &c)
{
    const int64_t M = a.dim(0), K = a.dim(1), N = b.dim(1);
    LUTDLA_CHECK(b.dim(0) == K && c.dim(0) == M && c.dim(1) == N,
                 "matmulAccum shape mismatch");
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();

    for (int64_t m0 = 0; m0 < M; m0 += kBlock) {
        const int64_t m1 = std::min(m0 + kBlock, M);
        for (int64_t k0 = 0; k0 < K; k0 += kBlock) {
            const int64_t k1 = std::min(k0 + kBlock, K);
            for (int64_t m = m0; m < m1; ++m) {
                for (int64_t k = k0; k < k1; ++k) {
                    const float av = pa[m * K + k];
                    if (av == 0.0f)
                        continue;
                    const float *brow = pb + k * N;
                    float *crow = pc + m * N;
                    for (int64_t n = 0; n < N; ++n)
                        crow[n] += av * brow[n];
                }
            }
        }
    }
}

Tensor
matmulTransposedB(const Tensor &a, const Tensor &b)
{
    const int64_t M = a.dim(0), K = a.dim(1), N = b.dim(0);
    LUTDLA_CHECK(b.dim(1) == K, "matmulTransposedB inner dims");
    Tensor c(Shape{M, N});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (int64_t m = 0; m < M; ++m) {
        for (int64_t n = 0; n < N; ++n) {
            const float *arow = pa + m * K;
            const float *brow = pb + n * K;
            float acc = 0.0f;
            for (int64_t k = 0; k < K; ++k)
                acc += arow[k] * brow[k];
            pc[m * N + n] = acc;
        }
    }
    return c;
}

Tensor
matmulTransposedA(const Tensor &a, const Tensor &b)
{
    const int64_t K = a.dim(0), M = a.dim(1), N = b.dim(1);
    LUTDLA_CHECK(b.dim(0) == K, "matmulTransposedA inner dims");
    Tensor c(Shape{M, N});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (int64_t k = 0; k < K; ++k) {
        const float *arow = pa + k * M;
        const float *brow = pb + k * N;
        for (int64_t m = 0; m < M; ++m) {
            const float av = arow[m];
            if (av == 0.0f)
                continue;
            float *crow = pc + m * N;
            for (int64_t n = 0; n < N; ++n)
                crow[n] += av * brow[n];
        }
    }
    return c;
}

Tensor
matvec(const Tensor &a, const Tensor &x)
{
    LUTDLA_CHECK(a.rank() == 2 && x.rank() == 1 && a.dim(1) == x.dim(0),
                 "matvec shapes");
    const int64_t M = a.dim(0), K = a.dim(1);
    Tensor y(Shape{M});
    for (int64_t m = 0; m < M; ++m) {
        float acc = 0.0f;
        for (int64_t k = 0; k < K; ++k)
            acc += a.at(m, k) * x.at(k);
        y.at(m) = acc;
    }
    return y;
}

} // namespace lutdla
