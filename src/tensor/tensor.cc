#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace lutdla {

std::string
shapeStr(const Shape &shape)
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < shape.size(); ++i)
        oss << (i ? ", " : "") << shape[i];
    oss << "]";
    return oss.str();
}

int64_t
shapeNumel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape))
{
    LUTDLA_CHECK(!shape_.empty(), "tensor must have rank >= 1");
    for (int64_t d : shape_)
        LUTDLA_CHECK(d > 0, "dims must be positive, got ", shapeStr(shape_));
    data_.assign(static_cast<size_t>(shapeNumel(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, float fill_value) : Tensor(std::move(shape))
{
    fill(fill_value);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    LUTDLA_CHECK(shapeNumel(shape_) == static_cast<int64_t>(data_.size()),
                 "data size ", data_.size(), " != shape ", shapeStr(shape_));
}

int64_t
Tensor::dim(int64_t d) const
{
    if (d < 0)
        d += rank();
    LUTDLA_CHECK(d >= 0 && d < rank(), "dim ", d, " out of range");
    return shape_[static_cast<size_t>(d)];
}

float &
Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w)
{
    const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
    return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

float
Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const
{
    const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
    return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    LUTDLA_CHECK(shapeNumel(new_shape) == numel(), "reshape ",
                 shapeStr(shape_), " -> ", shapeStr(new_shape),
                 " changes numel");
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Tensor &
Tensor::operator+=(const Tensor &rhs)
{
    LUTDLA_CHECK(numel() == rhs.numel(), "shape mismatch in +=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += rhs.data_[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &rhs)
{
    LUTDLA_CHECK(numel() == rhs.numel(), "shape mismatch in -=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= rhs.data_[i];
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    for (auto &x : data_)
        x *= s;
    return *this;
}

Tensor
Tensor::operator+(const Tensor &rhs) const
{
    Tensor out = *this;
    out += rhs;
    return out;
}

Tensor
Tensor::operator-(const Tensor &rhs) const
{
    Tensor out = *this;
    out -= rhs;
    return out;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float x : data_)
        s += x;
    return s;
}

double
Tensor::mean() const
{
    return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

double
Tensor::squaredNorm() const
{
    double s = 0.0;
    for (float x : data_)
        s += static_cast<double>(x) * x;
    return s;
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (float x : data_)
        m = std::max(m, std::fabs(x));
    return m;
}

Tensor
Tensor::transposed2d() const
{
    LUTDLA_CHECK(rank() == 2, "transposed2d requires rank 2, got ",
                 shapeStr(shape_));
    const int64_t R = shape_[0], C = shape_[1];
    Tensor out(Shape{C, R});
    for (int64_t r = 0; r < R; ++r)
        for (int64_t c = 0; c < C; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Tensor
Tensor::row(int64_t r) const
{
    LUTDLA_CHECK(rank() == 2 && r >= 0 && r < shape_[0], "bad row index");
    const int64_t C = shape_[1];
    Tensor out(Shape{C});
    for (int64_t c = 0; c < C; ++c)
        out.at(c) = at(r, c);
    return out;
}

bool
Tensor::equals(const Tensor &rhs) const
{
    return shape_ == rhs.shape_ && data_ == rhs.data_;
}

float
Tensor::maxAbsDiff(const Tensor &a, const Tensor &b)
{
    LUTDLA_CHECK(a.numel() == b.numel(), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a.at(i) - b.at(i)));
    return m;
}

double
Tensor::relError(const Tensor &a, const Tensor &b)
{
    LUTDLA_CHECK(a.numel() == b.numel(), "relError shape mismatch");
    double num = 0.0, den = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
        double d = static_cast<double>(a.at(i)) - b.at(i);
        num += d * d;
        den += static_cast<double>(b.at(i)) * b.at(i);
    }
    return std::sqrt(num) / std::max(std::sqrt(den), 1e-12);
}

} // namespace lutdla
