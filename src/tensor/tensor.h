#ifndef LUTDLA_TENSOR_TENSOR_H
#define LUTDLA_TENSOR_TENSOR_H

/**
 * @file
 * Dense float tensor used across the library.
 *
 * Row-major, contiguous, up to 4 dimensions (enough for NCHW activations,
 * weight matrices, and attention tensors). The LUT-DLA code paths only need
 * float32; reduced-precision effects (BF16/INT8 LUT entries) are modelled by
 * explicit quantize/dequantize helpers in vq/quant.h rather than by storage
 * types.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lutdla {

/** Shape of a tensor: a small vector of dimension sizes. */
using Shape = std::vector<int64_t>;

/** Render a shape as "[a, b, c]" for error messages. */
std::string shapeStr(const Shape &shape);

/** Number of elements a shape spans. */
int64_t shapeNumel(const Shape &shape);

/**
 * A dense row-major float tensor.
 *
 * Cheap to copy semantically (deep copy); all hot loops take raw pointers
 * via data() so there is no abstraction penalty in kernels.
 */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no storage). */
    Tensor() = default;

    /** Allocate a zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Allocate and fill with a constant. */
    Tensor(Shape shape, float fill_value);

    /** Wrap existing data (copied) with a shape. */
    Tensor(Shape shape, std::vector<float> data);

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** Number of dimensions. */
    int64_t rank() const { return static_cast<int64_t>(shape_.size()); }

    /** Size along dimension `d` (negative indexes from the back). */
    int64_t dim(int64_t d) const;

    /** Total number of elements. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Raw storage access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access with bounds check in debug builds. */
    float &at(int64_t i) { return data_[static_cast<size_t>(i)]; }
    float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

    /** 2-D element access for matrices (row-major). */
    float &
    at(int64_t r, int64_t c)
    {
        return data_[static_cast<size_t>(r * shape_[1] + c)];
    }
    float
    at(int64_t r, int64_t c) const
    {
        return data_[static_cast<size_t>(r * shape_[1] + c)];
    }

    /** 4-D element access for NCHW tensors. */
    float &at4(int64_t n, int64_t c, int64_t h, int64_t w);
    float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

    /** Reinterpret with a new shape of identical numel. */
    Tensor reshaped(Shape new_shape) const;

    /** Fill with a constant. */
    void fill(float value);

    /** Set all elements to zero. */
    void zero() { fill(0.0f); }

    /** Elementwise in-place operations. */
    Tensor &operator+=(const Tensor &rhs);
    Tensor &operator-=(const Tensor &rhs);
    Tensor &operator*=(float s);

    /** Elementwise binary operations (shapes must match). */
    Tensor operator+(const Tensor &rhs) const;
    Tensor operator-(const Tensor &rhs) const;

    /** Sum of all elements. */
    double sum() const;

    /** Mean of all elements (0 for empty). */
    double mean() const;

    /** Squared L2 norm of all elements. */
    double squaredNorm() const;

    /** Max absolute element. */
    float absMax() const;

    /** 2-D transpose (rank must be 2). */
    Tensor transposed2d() const;

    /** Extract row `r` of a matrix as a rank-1 tensor. */
    Tensor row(int64_t r) const;

    /** True when shapes and all elements match exactly. */
    bool equals(const Tensor &rhs) const;

    /** Max |a-b| across elements; shapes must match. */
    static float maxAbsDiff(const Tensor &a, const Tensor &b);

    /** Relative Frobenius error ||a-b|| / max(||b||, eps). */
    static double relError(const Tensor &a, const Tensor &b);

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace lutdla

#endif // LUTDLA_TENSOR_TENSOR_H
