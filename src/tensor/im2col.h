#ifndef LUTDLA_TENSOR_IM2COL_H
#define LUTDLA_TENSOR_IM2COL_H

/**
 * @file
 * im2col / col2im transforms that lower convolution onto GEMM.
 *
 * The LUT-DLA hardware only accelerates GEMM-shaped operators; convolutions
 * reach it through exactly this lowering (as the paper notes for its
 * ResNet/VGG evaluations).
 */

#include "tensor/tensor.h"

namespace lutdla {

/** Static geometry of a 2-D convolution. */
struct ConvGeometry
{
    int64_t in_channels = 0;
    int64_t out_channels = 0;
    int64_t kernel = 1;       ///< square kernel size
    int64_t stride = 1;
    int64_t padding = 0;

    /** Output spatial size for an input of height/width `in`. */
    int64_t
    outSize(int64_t in) const
    {
        return (in + 2 * padding - kernel) / stride + 1;
    }

    /** GEMM K dimension after lowering: C_in * k * k. */
    int64_t patchSize() const { return in_channels * kernel * kernel; }
};

/**
 * Lower an NCHW input to the im2col matrix.
 *
 * @param input NCHW tensor [N, C, H, W].
 * @param geom  Convolution geometry (uses kernel/stride/padding/channels).
 * @return Matrix [N * H_out * W_out, C * k * k]; each row is one receptive
 *         field patch, ordered (c, kh, kw) within the row.
 */
Tensor im2col(const Tensor &input, const ConvGeometry &geom);

/**
 * Raw batched im2col into a caller-provided buffer — the allocation-free
 * kernel the serving layer drives with reusable per-worker scratch.
 * `input` is [n, geom.in_channels, h, w] contiguous NCHW; `out` must hold
 * n * outSize(h) * outSize(w) * patchSize() floats. Identical element
 * order to im2col() (which delegates here).
 */
void im2colInto(const float *input, int64_t n, int64_t h, int64_t w,
                const ConvGeometry &geom, float *out);

/**
 * Scatter-add the im2col-shaped gradient back to input layout.
 *
 * @param cols Gradient matrix shaped like im2col's output.
 * @param geom Convolution geometry.
 * @param n    Batch size.
 * @param h    Input height.
 * @param w    Input width.
 * @return Gradient tensor [n, C, h, w].
 */
Tensor col2im(const Tensor &cols, const ConvGeometry &geom, int64_t n,
              int64_t h, int64_t w);

} // namespace lutdla

#endif // LUTDLA_TENSOR_IM2COL_H
