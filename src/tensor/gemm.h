#ifndef LUTDLA_TENSOR_GEMM_H
#define LUTDLA_TENSOR_GEMM_H

/**
 * @file
 * Reference dense GEMM kernels. These are both the exact baselines the
 * LUT-approximated kernels are compared against and the building block of
 * the NN substrate's linear/conv layers.
 */

#include "tensor/tensor.h"

namespace lutdla {

/**
 * C = A(MxK) * B(KxN). Cache-blocked, single-threaded.
 *
 * @param a Left operand, rank-2 [M, K].
 * @param b Right operand, rank-2 [K, N].
 * @return Product, rank-2 [M, N].
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C += A * B into a preallocated output (shapes checked). */
void matmulAccum(const Tensor &a, const Tensor &b, Tensor &c);

/** C = A * B^T where b is [N, K]; used by backward passes. */
Tensor matmulTransposedB(const Tensor &a, const Tensor &b);

/** C = A^T * B where a is [K, M]; used by weight-gradient passes. */
Tensor matmulTransposedA(const Tensor &a, const Tensor &b);

/** y = A * x for rank-1 x of size K. */
Tensor matvec(const Tensor &a, const Tensor &x);

} // namespace lutdla

#endif // LUTDLA_TENSOR_GEMM_H
