#include "tensor/im2col.h"

#include "util/logging.h"

namespace lutdla {

void
im2colInto(const float *input, int64_t n, int64_t h, int64_t w,
           const ConvGeometry &geom, float *out)
{
    const int64_t C = geom.in_channels;
    const int64_t Ho = geom.outSize(h), Wo = geom.outSize(w);
    const int64_t k = geom.kernel;

    int64_t row = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t ho = 0; ho < Ho; ++ho) {
            for (int64_t wo = 0; wo < Wo; ++wo, ++row) {
                float *dst = out + row * geom.patchSize();
                int64_t idx = 0;
                for (int64_t c = 0; c < C; ++c) {
                    const float *plane = input + (b * C + c) * h * w;
                    for (int64_t kh = 0; kh < k; ++kh) {
                        const int64_t hi = ho * geom.stride - geom.padding
                                         + kh;
                        for (int64_t kw = 0; kw < k; ++kw, ++idx) {
                            const int64_t wi = wo * geom.stride
                                             - geom.padding + kw;
                            if (hi < 0 || hi >= h || wi < 0 || wi >= w) {
                                dst[idx] = 0.0f;
                            } else {
                                dst[idx] = plane[hi * w + wi];
                            }
                        }
                    }
                }
            }
        }
    }
}

Tensor
im2col(const Tensor &input, const ConvGeometry &geom)
{
    LUTDLA_CHECK(input.rank() == 4, "im2col expects NCHW");
    const int64_t N = input.dim(0), C = input.dim(1);
    const int64_t H = input.dim(2), W = input.dim(3);
    LUTDLA_CHECK(C == geom.in_channels, "channel mismatch in im2col");
    const int64_t Ho = geom.outSize(H), Wo = geom.outSize(W);
    LUTDLA_CHECK(Ho > 0 && Wo > 0, "conv output collapsed to zero");

    Tensor cols(Shape{N * Ho * Wo, geom.patchSize()});
    im2colInto(input.data(), N, H, W, geom, cols.data());
    return cols;
}

Tensor
col2im(const Tensor &cols, const ConvGeometry &geom, int64_t n, int64_t h,
       int64_t w)
{
    const int64_t Ho = geom.outSize(h), Wo = geom.outSize(w);
    LUTDLA_CHECK(cols.dim(0) == n * Ho * Wo &&
                 cols.dim(1) == geom.patchSize(),
                 "col2im shape mismatch");
    Tensor grad(Shape{n, geom.in_channels, h, w});
    const int64_t k = geom.kernel;
    const float *src = cols.data();

    int64_t row = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t ho = 0; ho < Ho; ++ho) {
            for (int64_t wo = 0; wo < Wo; ++wo, ++row) {
                const float *patch = src + row * geom.patchSize();
                int64_t idx = 0;
                for (int64_t c = 0; c < geom.in_channels; ++c) {
                    for (int64_t kh = 0; kh < k; ++kh) {
                        const int64_t hi = ho * geom.stride - geom.padding
                                         + kh;
                        for (int64_t kw = 0; kw < k; ++kw, ++idx) {
                            const int64_t wi = wo * geom.stride
                                             - geom.padding + kw;
                            if (hi >= 0 && hi < h && wi >= 0 && wi < w)
                                grad.at4(b, c, hi, wi) += patch[idx];
                        }
                    }
                }
            }
        }
    }
    return grad;
}

} // namespace lutdla
