#include "lutboost/table_arena.h"

#include <algorithm>

#include "util/logging.h"
#include "vq/quant.h"

namespace lutdla::lutboost {

LutTableArena::LutTableArena(const vq::ProductQuantizer &pq,
                             const vq::LookupTable &lut, const Tensor *bias,
                             bool bf16_inputs)
    : in_features_(pq.featureDim()),
      out_features_(lut.outDim()),
      subvector_len_(pq.config().v),
      num_centroids_(pq.config().c),
      num_subspaces_(pq.numSubspaces()),
      metric_(pq.config().metric),
      bf16_inputs_(bf16_inputs),
      has_bias_(bias != nullptr)
{
    LUTDLA_CHECK(pq.trained(), "arena needs a trained quantizer");
    LUTDLA_CHECK(lut.numSubspaces() == num_subspaces_ &&
                     lut.numCentroids() == num_centroids_,
                 "quantizer/table geometry mismatch in LutTableArena");
    if (bias)
        LUTDLA_CHECK(bias->numel() == out_features_,
                     "bias width ", bias->numel(), " != N ", out_features_);

    const size_t codebook_floats = static_cast<size_t>(
        num_subspaces_ * num_centroids_ * subvector_len_);
    const size_t table_floats = static_cast<size_t>(
        num_subspaces_ * num_centroids_ * out_features_);
    table_offset_ = codebook_floats;
    bias_offset_ = codebook_floats + table_floats;
    data_.resize(bias_offset_ +
                 (has_bias_ ? static_cast<size_t>(out_features_) : 0));

    // Codebooks land transposed ([v, c] per subspace): the encode kernel
    // walks centroids contiguously for a fixed subvector element.
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        const Tensor &cb = pq.codebook(s);
        float *dst = data_.data() + s * num_centroids_ * subvector_len_;
        for (int64_t j = 0; j < num_centroids_; ++j)
            for (int64_t t = 0; t < subvector_len_; ++t)
                dst[t * num_centroids_ + j] = cb.at(j, t);
    }
    const Tensor &table = lut.table();
    std::copy(table.data(), table.data() + table.numel(),
              data_.data() + table_offset_);
    if (has_bias_)
        std::copy(bias->data(), bias->data() + out_features_,
                  data_.data() + bias_offset_);
}

namespace {

/**
 * Distances from one subvector to EVERY centroid of a transposed [v, c]
 * codebook, written into `d[c]`. For a fixed centroid j the elementwise
 * terms accumulate in ascending t order — exactly the order
 * vq::l2Squared / l1 / chebyshev use — so each d[j] is bit-identical to
 * the reference distance, and the ascending-j argmin scan below inherits
 * vq::argminCentroid's lower-index tie-break. The transposed layout makes
 * the inner loop contiguous over centroids, which is what lets it
 * vectorize; per-centroid scalar chains are latency-bound instead.
 */
template <vq::Metric M>
inline void
distanceAll(const float *__restrict__ sub, const float *__restrict__ cbt,
            int64_t c, int64_t v, float *__restrict__ d)
{
    for (int64_t j = 0; j < c; ++j)
        d[j] = 0.0f;
    for (int64_t t = 0; t < v; ++t) {
        const float a = sub[t];
        const float *__restrict__ row = cbt + t * c;
        if constexpr (M == vq::Metric::L2) {
            for (int64_t j = 0; j < c; ++j) {
                const float diff = a - row[j];
                d[j] += diff * diff;
            }
        } else if constexpr (M == vq::Metric::L1) {
            for (int64_t j = 0; j < c; ++j)
                d[j] += std::fabs(a - row[j]);
        } else {
            for (int64_t j = 0; j < c; ++j)
                d[j] = std::max(d[j], std::fabs(a - row[j]));
        }
    }
}

inline int32_t
argminScan(const float *__restrict__ d, int64_t c)
{
    int32_t best = 0;
    float best_dist = d[0];
    for (int64_t j = 1; j < c; ++j) {
        if (d[j] < best_dist) {
            best_dist = d[j];
            best = static_cast<int32_t>(j);
        }
    }
    return best;
}

} // namespace

template <vq::Metric M>
void
LutTableArena::encodeRowsImpl(const float *x, int64_t rows,
                              int32_t *codes) const
{
    const int64_t v = subvector_len_, c = num_centroids_;
    // Subspace-outer: one ~c*v-float codebook stays L1-resident across the
    // whole batch instead of streaming every codebook for every row. All
    // subspaces except possibly the last read the row in place; the ragged
    // tail is zero-padded into a scratch buffer, exactly like
    // ProductQuantizer::extractSubvector.
    const int64_t full_subspaces =
        in_features_ % v == 0 ? num_subspaces_ : num_subspaces_ - 1;
    std::vector<float> tail(static_cast<size_t>(v), 0.0f);
    std::vector<float> dist(static_cast<size_t>(c));
    for (int64_t s = 0; s < full_subspaces; ++s) {
        const float *cbt = codebookT(s);
        for (int64_t i = 0; i < rows; ++i) {
            distanceAll<M>(x + i * in_features_ + s * v, cbt, c, v,
                           dist.data());
            codes[i * num_subspaces_ + s] = argminScan(dist.data(), c);
        }
    }
    for (int64_t s = full_subspaces; s < num_subspaces_; ++s) {
        const float *cbt = codebookT(s);
        const int64_t base = s * v;
        for (int64_t i = 0; i < rows; ++i) {
            const float *row = x + i * in_features_;
            for (int64_t t = 0; t < v; ++t) {
                const int64_t k = base + t;
                tail[static_cast<size_t>(t)] =
                    k < in_features_ ? row[k] : 0.0f;
            }
            distanceAll<M>(tail.data(), cbt, c, v, dist.data());
            codes[i * num_subspaces_ + s] = argminScan(dist.data(), c);
        }
    }
}

void
LutTableArena::encodeRows(const float *x, int64_t rows, int32_t *codes) const
{
    switch (metric_) {
      case vq::Metric::L2:
        encodeRowsImpl<vq::Metric::L2>(x, rows, codes);
        return;
      case vq::Metric::L1:
        encodeRowsImpl<vq::Metric::L1>(x, rows, codes);
        return;
      case vq::Metric::Chebyshev:
        encodeRowsImpl<vq::Metric::Chebyshev>(x, rows, codes);
        return;
    }
}

void
LutTableArena::forwardBatch(const float *x, int64_t rows, float *y) const
{
    const int64_t n = out_features_;
    std::vector<int32_t> codes;
    std::vector<float> rounded;  // BF16 staging, reused across blocks

    for (int64_t b0 = 0; b0 < rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, rows - b0);
        const float *xb = x + b0 * in_features_;

        if (bf16_inputs_) {
            rounded.assign(xb, xb + bn * in_features_);
            for (float &value : rounded)
                value = vq::toBf16(value);
            xb = rounded.data();
        }

        codes.resize(static_cast<size_t>(bn * num_subspaces_));
        encodeRows(xb, bn, codes.data());

        float *yb = y + b0 * n;
        std::fill(yb, yb + bn * n, 0.0f);

        // Every path accumulates each output element's partial sums in
        // ascending subspace order into a zero-initialized accumulator —
        // float addition is never reassociated without -ffast-math — so
        // the result matches the reference row-major path bit for bit.
        if (bn >= kTileMinRows)
            sweepBlockGrouped(codes.data(), bn, yb);
        else
            sweepBlockSimple(codes.data(), bn, yb);

        if (has_bias_) {
            const float *__restrict__ bias = biasPtr();
            for (int64_t r = 0; r < bn; ++r) {
                float *__restrict__ yr = yb + r * n;
                for (int64_t col = 0; col < n; ++col)
                    yr[col] += bias[col];
            }
        }
    }
}

void
LutTableArena::sweepBlockSimple(const int32_t *codes, int64_t bn,
                                float *yb) const
{
    // Row-major reference shape: best for tiny batches, where the output
    // row lives in L1 and each table entry is one contiguous stream.
    const int64_t n = out_features_;
    for (int64_t r = 0; r < bn; ++r) {
        const int32_t *rcodes = codes + r * num_subspaces_;
        float *__restrict__ yr = yb + r * n;
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const float *__restrict__ psum = entry(s, rcodes[s]);
            for (int64_t col = 0; col < n; ++col)
                yr[col] += psum[col];
        }
    }
}

void
LutTableArena::sweepBlockGrouped(const int32_t *codes, int64_t bn,
                                 float *yb) const
{
    // Subspace-group-major: kSubspaceGroup table banks stay hot across the
    // whole row block, and each group folds its partial sums into the
    // output slab in ONE sweep, dividing y-slab read/write traffic by the
    // group size. Entry rows are read contiguously (prefetch-friendly
    // 4*N-byte streams) — column-tiled variants defeat the hardware
    // prefetcher and measure far slower despite touching fewer bytes.
    const int64_t n = out_features_;
    constexpr int64_t G = kSubspaceGroup;
    for (int64_t s0 = 0; s0 < num_subspaces_; s0 += G) {
        const int64_t g = std::min<int64_t>(G, num_subspaces_ - s0);
        for (int64_t r = 0; r < bn; ++r) {
            const int32_t *rcodes = codes + r * num_subspaces_;
            float *__restrict__ yr = yb + r * n;
            if (g == G) {
                const float *__restrict__ p[G];
                for (int64_t gi = 0; gi < G; ++gi)
                    p[gi] = entry(s0 + gi, rcodes[s0 + gi]);
                for (int64_t col = 0; col < n; ++col) {
                    float acc = yr[col];
                    for (int64_t gi = 0; gi < G; ++gi)
                        acc += p[gi][col];
                    yr[col] = acc;
                }
            } else {
                for (int64_t gi = 0; gi < g; ++gi) {
                    const float *__restrict__ psum =
                        entry(s0 + gi, rcodes[s0 + gi]);
                    for (int64_t col = 0; col < n; ++col)
                        yr[col] += psum[col];
                }
            }
        }
    }
}

Tensor
LutTableArena::forwardBatch(const Tensor &x) const
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
                 "LutTableArena expects [rows, ", in_features_, "], got ",
                 shapeStr(x.shape()));
    Tensor y(Shape{x.dim(0), out_features_});
    forwardBatch(x.data(), x.dim(0), y.data());
    return y;
}

} // namespace lutdla::lutboost
