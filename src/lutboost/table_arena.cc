#include "lutboost/table_arena.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "util/logging.h"
#include "vq/quant.h"

namespace lutdla::lutboost {

LutTableArena::LutTableArena(const vq::ProductQuantizer &pq,
                             const vq::LookupTable &lut, const Tensor *bias,
                             bool bf16_inputs)
    : in_features_(pq.featureDim()),
      out_features_(lut.outDim()),
      subvector_len_(pq.config().v),
      num_centroids_(pq.config().c),
      num_subspaces_(pq.numSubspaces()),
      metric_(pq.config().metric),
      bf16_inputs_(bf16_inputs),
      has_bias_(bias != nullptr)
{
    LUTDLA_CHECK(pq.trained(), "arena needs a trained quantizer");
    LUTDLA_CHECK(lut.numSubspaces() == num_subspaces_ &&
                     lut.numCentroids() == num_centroids_,
                 "quantizer/table geometry mismatch in LutTableArena");
    if (bias)
        LUTDLA_CHECK(bias->numel() == out_features_,
                     "bias width ", bias->numel(), " != N ", out_features_);

    const size_t codebook_floats = static_cast<size_t>(
        num_subspaces_ * num_centroids_ * subvector_len_);
    const size_t table_floats = static_cast<size_t>(
        num_subspaces_ * num_centroids_ * out_features_);
    table_offset_ = codebook_floats;
    bias_offset_ = codebook_floats + table_floats;
    data_.resize(bias_offset_ +
                 (has_bias_ ? static_cast<size_t>(out_features_) : 0));

    // Codebooks land transposed ([v, c] per subspace): the encode kernel
    // walks centroids contiguously for a fixed subvector element.
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        const Tensor &cb = pq.codebook(s);
        float *dst = data_.data() + s * num_centroids_ * subvector_len_;
        for (int64_t j = 0; j < num_centroids_; ++j)
            for (int64_t t = 0; t < subvector_len_; ++t)
                dst[t * num_centroids_ + j] = cb.at(j, t);
    }
    const Tensor &table = lut.table();
    std::copy(table.data(), table.data() + table.numel(),
              data_.data() + table_offset_);
    if (has_bias_)
        std::copy(bias->data(), bias->data() + out_features_,
                  data_.data() + bias_offset_);
}

namespace {

/**
 * Distances from one subvector to EVERY centroid of a transposed [v, c]
 * codebook, written into `d[c]`. For a fixed centroid j the elementwise
 * terms accumulate in ascending t order — exactly the order
 * vq::l2Squared / l1 / chebyshev use — so each d[j] is bit-identical to
 * the reference distance, and the ascending-j argmin scan below inherits
 * vq::argminCentroid's lower-index tie-break. The transposed layout makes
 * the inner loop contiguous over centroids, which is what lets it
 * vectorize; per-centroid scalar chains are latency-bound instead.
 */
template <vq::Metric M>
inline void
distanceAll(const float *__restrict__ sub, const float *__restrict__ cbt,
            int64_t c, int64_t v, float *__restrict__ d)
{
    for (int64_t j = 0; j < c; ++j)
        d[j] = 0.0f;
    for (int64_t t = 0; t < v; ++t) {
        const float a = sub[t];
        const float *__restrict__ row = cbt + t * c;
        if constexpr (M == vq::Metric::L2) {
            for (int64_t j = 0; j < c; ++j) {
                const float diff = a - row[j];
                d[j] += diff * diff;
            }
        } else if constexpr (M == vq::Metric::L1) {
            for (int64_t j = 0; j < c; ++j)
                d[j] += std::fabs(a - row[j]);
        } else {
            for (int64_t j = 0; j < c; ++j)
                d[j] = std::max(d[j], std::fabs(a - row[j]));
        }
    }
}

inline int32_t
argminScan(const float *__restrict__ d, int64_t c)
{
    int32_t best = 0;
    float best_dist = d[0];
    for (int64_t j = 1; j < c; ++j) {
        if (d[j] < best_dist) {
            best_dist = d[j];
            best = static_cast<int32_t>(j);
        }
    }
    return best;
}

#if defined(__AVX512F__)
/**
 * Fused L2 distance + argmin for the c == 16 case: the 16 per-centroid
 * accumulators live in ONE zmm register for the whole subvector, so no
 * distance array ever hits memory (~8x the generic path on this kernel's
 * hot shape). Bit-exact with distanceAll<L2> + argminScan: each lane
 * subtracts, multiplies, then adds in the same ascending-t order (explicit
 * mul + add intrinsics, never an FMA), the reduce-min is exact, and
 * taking the LOWEST set bit of the equality mask reproduces the scalar
 * scan's lower-index tie-break. Any NaN distance lane (NaN input) makes
 * min/equality semantics diverge from the scalar scan's strict-< walk,
 * so that rare case falls back to the scalar scan on the spilled lanes —
 * bit-exact including NaN poisoning.
 */
inline int32_t
argminL2C16(const float *__restrict__ sub, const float *__restrict__ cbt,
            int64_t v)
{
    __m512 vd = _mm512_setzero_ps();
    for (int64_t t = 0; t < v; ++t) {
        const __m512 row = _mm512_loadu_ps(cbt + t * 16);
        const __m512 diff = _mm512_sub_ps(_mm512_set1_ps(sub[t]), row);
        vd = _mm512_add_ps(vd, _mm512_mul_ps(diff, diff));
    }
    if (_mm512_cmp_ps_mask(vd, vd, _CMP_UNORD_Q) != 0) {
        alignas(64) float d[16];
        _mm512_store_ps(d, vd);
        return argminScan(d, 16);
    }
    // log2(16) shuffle+min steps broadcast the exact minimum to every
    // lane (min is order-insensitive, so this is still bit-exact).
    __m512 m = _mm512_min_ps(vd, _mm512_shuffle_f32x4(vd, vd, 0x4E));
    m = _mm512_min_ps(m, _mm512_shuffle_f32x4(m, m, 0xB1));
    m = _mm512_min_ps(m, _mm512_shuffle_ps(m, m, 0x4E));
    m = _mm512_min_ps(m, _mm512_shuffle_ps(m, m, 0xB1));
    const __mmask16 eq = _mm512_cmp_ps_mask(vd, m, _CMP_EQ_OQ);
    return static_cast<int32_t>(_tzcnt_u32(eq));
}
#endif

} // namespace

template <vq::Metric M, typename Sink>
void
LutTableArena::encodeRowsImpl(const float *x, int64_t rows,
                              Sink &&sink) const
{
    const int64_t v = subvector_len_, c = num_centroids_;
    // Subspace-outer: one ~c*v-float codebook stays L1-resident across the
    // whole batch instead of streaming every codebook for every row. All
    // subspaces except possibly the last read the row in place; the ragged
    // tail is zero-padded into a scratch buffer, exactly like
    // ProductQuantizer::extractSubvector.
    const int64_t full_subspaces =
        in_features_ % v == 0 ? num_subspaces_ : num_subspaces_ - 1;
    std::vector<float> tail(static_cast<size_t>(v), 0.0f);
    std::vector<float> dist(static_cast<size_t>(c));
#if defined(__AVX512F__)
    // Register-resident fast path for the flagship L2 / c=16 shape.
    if constexpr (M == vq::Metric::L2) {
        if (c == 16) {
            for (int64_t s = 0; s < full_subspaces; ++s) {
                const float *cbt = codebookT(s);
                for (int64_t i = 0; i < rows; ++i)
                    sink(i, s,
                         argminL2C16(x + i * in_features_ + s * v, cbt,
                                     v));
            }
            for (int64_t s = full_subspaces; s < num_subspaces_; ++s) {
                const float *cbt = codebookT(s);
                const int64_t base = s * v;
                for (int64_t i = 0; i < rows; ++i) {
                    const float *row = x + i * in_features_;
                    for (int64_t t = 0; t < v; ++t) {
                        const int64_t k = base + t;
                        tail[static_cast<size_t>(t)] =
                            k < in_features_ ? row[k] : 0.0f;
                    }
                    sink(i, s, argminL2C16(tail.data(), cbt, v));
                }
            }
            return;
        }
    }
#endif
    for (int64_t s = 0; s < full_subspaces; ++s) {
        const float *cbt = codebookT(s);
        for (int64_t i = 0; i < rows; ++i) {
            distanceAll<M>(x + i * in_features_ + s * v, cbt, c, v,
                           dist.data());
            sink(i, s, argminScan(dist.data(), c));
        }
    }
    for (int64_t s = full_subspaces; s < num_subspaces_; ++s) {
        const float *cbt = codebookT(s);
        const int64_t base = s * v;
        for (int64_t i = 0; i < rows; ++i) {
            const float *row = x + i * in_features_;
            for (int64_t t = 0; t < v; ++t) {
                const int64_t k = base + t;
                tail[static_cast<size_t>(t)] =
                    k < in_features_ ? row[k] : 0.0f;
            }
            distanceAll<M>(tail.data(), cbt, c, v, dist.data());
            sink(i, s, argminScan(dist.data(), c));
        }
    }
}

template <typename Sink>
void
LutTableArena::encodeDispatch(const float *x, int64_t rows,
                              Sink &&sink) const
{
    switch (metric_) {
      case vq::Metric::L2:
        encodeRowsImpl<vq::Metric::L2>(x, rows, sink);
        return;
      case vq::Metric::L1:
        encodeRowsImpl<vq::Metric::L1>(x, rows, sink);
        return;
      case vq::Metric::Chebyshev:
        encodeRowsImpl<vq::Metric::Chebyshev>(x, rows, sink);
        return;
    }
}

void
LutTableArena::encodeRows(const float *x, int64_t rows, int32_t *codes) const
{
    encodeDispatch(x, rows, [codes, this](int64_t i, int64_t s,
                                          int32_t code) {
        codes[i * num_subspaces_ + s] = code;
    });
}

void
LutTableArena::encodeBatch(const float *x, int64_t rows,
                           vq::CodeBuffer &codes,
                           std::vector<float> &staging) const
{
    if (bf16_inputs_) {
        staging.assign(x, x + rows * in_features_);
        for (float &value : staging)
            value = vq::toBf16(value);
        x = staging.data();
    }
    codes.reset(rows, num_subspaces_, num_centroids_);
    encodeDispatch(x, rows, [&codes](int64_t i, int64_t s, int32_t code) {
        codes.set(i, s, code);
    });
}

void
LutTableArena::addBias(float *yb, int64_t bn) const
{
    if (!has_bias_)
        return;
    const int64_t n = out_features_;
    const float *__restrict__ bias = biasPtr();
    for (int64_t r = 0; r < bn; ++r) {
        float *__restrict__ yr = yb + r * n;
        for (int64_t col = 0; col < n; ++col)
            yr[col] += bias[col];
    }
}

void
LutTableArena::gatherAccumulate(const vq::CodeBuffer &codes, float *y,
                                std::vector<int32_t> &unpacked) const
{
    LUTDLA_CHECK(codes.subspaces() == num_subspaces_,
                 "code buffer carries ", codes.subspaces(),
                 " subspaces, arena has ", num_subspaces_);
    const int64_t rows = codes.rows(), n = out_features_;
    for (int64_t b0 = 0; b0 < rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, rows - b0);
        unpacked.resize(static_cast<size_t>(bn * num_subspaces_));
        codes.unpackRows(b0, bn, unpacked.data());
        float *yb = y + b0 * n;
        std::fill(yb, yb + bn * n, 0.0f);
        // Same ascending-subspace accumulation as forwardBatch: packing
        // round-trips codes exactly, so this phase split stays bit-exact
        // with the fused reference kernel.
        if (bn >= kTileMinRows)
            sweepBlockGrouped(unpacked.data(), bn, yb);
        else
            sweepBlockSimple(unpacked.data(), bn, yb);
        addBias(yb, bn);
    }
}

void
LutTableArena::gatherAccumulateInt8(const vq::CodeBuffer &codes, float *y,
                                    std::vector<int32_t> &unpacked) const
{
    LUTDLA_CHECK(int8_bank_ != nullptr,
                 "gatherAccumulateInt8 requires ensureInt8Bank() first");
    LUTDLA_CHECK(codes.subspaces() == num_subspaces_,
                 "code buffer carries ", codes.subspaces(),
                 " subspaces, arena has ", num_subspaces_);
    const Int8Bank &bank = *int8_bank_;
    const int64_t rows = codes.rows(), n = out_features_;
    for (int64_t b0 = 0; b0 < rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, rows - b0);
        unpacked.resize(static_cast<size_t>(bn * num_subspaces_));
        codes.unpackRows(b0, bn, unpacked.data());
        float *yb = y + b0 * n;
        std::fill(yb, yb + bn * n, 0.0f);
        sweepBlockInt8(bank, unpacked.data(), bn, yb);
        addBias(yb, bn);
    }
}

void
LutTableArena::ensureInt8Bank() const
{
    std::call_once(int8_once_, [this] {
        auto bank = std::make_unique<Int8Bank>();
        const int64_t n = out_features_;
        bank->num_blocks = (n + kInt8BlockCols - 1) / kInt8BlockCols;
        bank->q.resize(
            static_cast<size_t>(num_subspaces_ * num_centroids_ * n));
        bank->scales.resize(
            static_cast<size_t>(num_subspaces_ * bank->num_blocks));
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            for (int64_t b = 0; b < bank->num_blocks; ++b) {
                const int64_t c0 = b * kInt8BlockCols;
                const int64_t c1 = std::min(n, c0 + kInt8BlockCols);
                // Symmetric scale covering every centroid's entries in
                // this (subspace, output-block) slab with 127 steps.
                float max_abs = 0.0f;
                for (int64_t j = 0; j < num_centroids_; ++j) {
                    const float *row = entry(s, j);
                    for (int64_t col = c0; col < c1; ++col)
                        max_abs = std::max(max_abs, std::fabs(row[col]));
                }
                const float scale =
                    max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
                bank->scales[static_cast<size_t>(s * bank->num_blocks +
                                                 b)] = scale;
                for (int64_t j = 0; j < num_centroids_; ++j) {
                    const float *row = entry(s, j);
                    int8_t *qrow =
                        bank->q.data() + (s * num_centroids_ + j) * n;
                    for (int64_t col = c0; col < c1; ++col) {
                        const float q = std::nearbyint(row[col] / scale);
                        qrow[col] = static_cast<int8_t>(
                            std::max(-127.0f, std::min(127.0f, q)));
                    }
                }
            }
        }
        int8_bank_ = std::move(bank);
    });
}

bool
LutTableArena::int8BankReady() const
{
    return int8_bank_ != nullptr;
}

int64_t
LutTableArena::int8TableBytes() const
{
    if (!int8_bank_)
        return 0;
    return static_cast<int64_t>(int8_bank_->q.size() * sizeof(int8_t) +
                                int8_bank_->scales.size() * sizeof(float));
}

void
LutTableArena::sweepBlockInt8(const Int8Bank &bank, const int32_t *codes,
                              int64_t bn, float *yb) const
{
    // Same grouped-subspace shape as the float sweep: kSubspaceGroup
    // quantized banks fold into the output slab in ONE y pass (gi is the
    // register-resident inner accumulation, exactly like the float
    // grouped sweep), with each (subspace, output-block) scale hoisted
    // out of the contiguous column loop. The hot loop is int8-load ->
    // convert -> fma at a quarter of the float bank's memory traffic.
    const int64_t n = out_features_;
    constexpr int64_t G = kSubspaceGroup;
    for (int64_t s0 = 0; s0 < num_subspaces_; s0 += G) {
        const int64_t g = std::min<int64_t>(G, num_subspaces_ - s0);
        for (int64_t r = 0; r < bn; ++r) {
            const int32_t *rcodes = codes + r * num_subspaces_;
            float *__restrict__ yr = yb + r * n;
            const int8_t *__restrict__ q[G];
            const float *scale_rows[G];
            for (int64_t gi = 0; gi < g; ++gi) {
                const int64_t s = s0 + gi;
                q[gi] = bank.q.data() +
                        (s * num_centroids_ + rcodes[s]) * n;
                scale_rows[gi] = bank.scales.data() + s * bank.num_blocks;
            }
            for (int64_t b = 0; b < bank.num_blocks; ++b) {
                const int64_t c0 = b * kInt8BlockCols;
                const int64_t c1 = std::min(n, c0 + kInt8BlockCols);
                if (g == G) {
                    float sc[G];
                    for (int64_t gi = 0; gi < G; ++gi)
                        sc[gi] = scale_rows[gi][b];
                    for (int64_t col = c0; col < c1; ++col) {
                        float acc = yr[col];
                        for (int64_t gi = 0; gi < G; ++gi)
                            acc += sc[gi] *
                                   static_cast<float>(q[gi][col]);
                        yr[col] = acc;
                    }
                } else {
                    for (int64_t col = c0; col < c1; ++col) {
                        float acc = yr[col];
                        for (int64_t gi = 0; gi < g; ++gi)
                            acc += scale_rows[gi][b] *
                                   static_cast<float>(q[gi][col]);
                        yr[col] = acc;
                    }
                }
            }
        }
    }
}

void
LutTableArena::forwardBatch(const float *x, int64_t rows, float *y) const
{
    const int64_t n = out_features_;
    std::vector<int32_t> codes;
    std::vector<float> rounded;  // BF16 staging, reused across blocks

    for (int64_t b0 = 0; b0 < rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, rows - b0);
        const float *xb = x + b0 * in_features_;

        if (bf16_inputs_) {
            rounded.assign(xb, xb + bn * in_features_);
            for (float &value : rounded)
                value = vq::toBf16(value);
            xb = rounded.data();
        }

        codes.resize(static_cast<size_t>(bn * num_subspaces_));
        encodeRows(xb, bn, codes.data());

        float *yb = y + b0 * n;
        std::fill(yb, yb + bn * n, 0.0f);

        // Every path accumulates each output element's partial sums in
        // ascending subspace order into a zero-initialized accumulator —
        // float addition is never reassociated without -ffast-math — so
        // the result matches the reference row-major path bit for bit.
        if (bn >= kTileMinRows)
            sweepBlockGrouped(codes.data(), bn, yb);
        else
            sweepBlockSimple(codes.data(), bn, yb);

        addBias(yb, bn);
    }
}

void
LutTableArena::sweepBlockSimple(const int32_t *codes, int64_t bn,
                                float *yb) const
{
    // Row-major reference shape: best for tiny batches, where the output
    // row lives in L1 and each table entry is one contiguous stream.
    const int64_t n = out_features_;
    for (int64_t r = 0; r < bn; ++r) {
        const int32_t *rcodes = codes + r * num_subspaces_;
        float *__restrict__ yr = yb + r * n;
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const float *__restrict__ psum = entry(s, rcodes[s]);
            for (int64_t col = 0; col < n; ++col)
                yr[col] += psum[col];
        }
    }
}

void
LutTableArena::sweepBlockGrouped(const int32_t *codes, int64_t bn,
                                 float *yb) const
{
    // Subspace-group-major: kSubspaceGroup table banks stay hot across the
    // whole row block, and each group folds its partial sums into the
    // output slab in ONE sweep, dividing y-slab read/write traffic by the
    // group size. Entry rows are read contiguously (prefetch-friendly
    // 4*N-byte streams) — column-tiled variants defeat the hardware
    // prefetcher and measure far slower despite touching fewer bytes.
    const int64_t n = out_features_;
    constexpr int64_t G = kSubspaceGroup;
    for (int64_t s0 = 0; s0 < num_subspaces_; s0 += G) {
        const int64_t g = std::min<int64_t>(G, num_subspaces_ - s0);
        for (int64_t r = 0; r < bn; ++r) {
            const int32_t *rcodes = codes + r * num_subspaces_;
            float *__restrict__ yr = yb + r * n;
            if (g == G) {
                const float *__restrict__ p[G];
                for (int64_t gi = 0; gi < G; ++gi)
                    p[gi] = entry(s0 + gi, rcodes[s0 + gi]);
                for (int64_t col = 0; col < n; ++col) {
                    float acc = yr[col];
                    for (int64_t gi = 0; gi < G; ++gi)
                        acc += p[gi][col];
                    yr[col] = acc;
                }
            } else {
                for (int64_t gi = 0; gi < g; ++gi) {
                    const float *__restrict__ psum =
                        entry(s0 + gi, rcodes[s0 + gi]);
                    for (int64_t col = 0; col < n; ++col)
                        yr[col] += psum[col];
                }
            }
        }
    }
}

Tensor
LutTableArena::forwardBatch(const Tensor &x) const
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
                 "LutTableArena expects [rows, ", in_features_, "], got ",
                 shapeStr(x.shape()));
    Tensor y(Shape{x.dim(0), out_features_});
    forwardBatch(x.data(), x.dim(0), y.data());
    return y;
}

} // namespace lutdla::lutboost
