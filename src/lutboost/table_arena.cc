#include "lutboost/table_arena.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "lutboost/kernels_simd.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "vq/quant.h"

namespace lutdla::lutboost {

LutTableArena::LutTableArena(const vq::ProductQuantizer &pq,
                             const vq::LookupTable &lut, const Tensor *bias,
                             bool bf16_inputs)
    : in_features_(pq.featureDim()),
      out_features_(lut.outDim()),
      subvector_len_(pq.config().v),
      num_centroids_(pq.config().c),
      num_subspaces_(pq.numSubspaces()),
      metric_(pq.config().metric),
      bf16_inputs_(bf16_inputs),
      has_bias_(bias != nullptr)
{
    LUTDLA_CHECK(pq.trained(), "arena needs a trained quantizer");
    LUTDLA_CHECK(lut.numSubspaces() == num_subspaces_ &&
                     lut.numCentroids() == num_centroids_,
                 "quantizer/table geometry mismatch in LutTableArena");
    if (bias)
        LUTDLA_CHECK(bias->numel() == out_features_,
                     "bias width ", bias->numel(), " != N ", out_features_);

    const size_t codebook_floats = static_cast<size_t>(
        num_subspaces_ * num_centroids_ * subvector_len_);
    const size_t table_floats = static_cast<size_t>(
        num_subspaces_ * num_centroids_ * out_features_);
    table_offset_ = codebook_floats;
    bias_offset_ = codebook_floats + table_floats;
    data_.resize(bias_offset_ +
                 (has_bias_ ? static_cast<size_t>(out_features_) : 0));

    // Codebooks land transposed ([v, c] per subspace): the encode kernel
    // walks centroids contiguously for a fixed subvector element.
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        const Tensor &cb = pq.codebook(s);
        float *dst = data_.data() + s * num_centroids_ * subvector_len_;
        for (int64_t j = 0; j < num_centroids_; ++j)
            for (int64_t t = 0; t < subvector_len_; ++t)
                dst[t * num_centroids_ + j] = cb.at(j, t);
    }
    const Tensor &table = lut.table();
    std::copy(table.data(), table.data() + table.numel(),
              data_.data() + table_offset_);
    if (has_bias_)
        std::copy(bias->data(), bias->data() + out_features_,
                  data_.data() + bias_offset_);
}

namespace {

/**
 * Distances from one subvector to EVERY centroid of a transposed [v, c]
 * codebook, written into `d[c]`. For a fixed centroid j the elementwise
 * terms accumulate in ascending t order — exactly the order
 * vq::l2Squared / l1 / chebyshev use — so each d[j] is bit-identical to
 * the reference distance, and the ascending-j argmin scan below inherits
 * vq::argminCentroid's lower-index tie-break. The transposed layout makes
 * the inner loop contiguous over centroids, which is what lets it
 * vectorize; per-centroid scalar chains are latency-bound instead.
 */
template <vq::Metric M>
inline void
distanceAll(const float *__restrict__ sub, const float *__restrict__ cbt,
            int64_t c, int64_t v, float *__restrict__ d)
{
    for (int64_t j = 0; j < c; ++j)
        d[j] = 0.0f;
    for (int64_t t = 0; t < v; ++t) {
        const float a = sub[t];
        const float *__restrict__ row = cbt + t * c;
        if constexpr (M == vq::Metric::L2) {
            for (int64_t j = 0; j < c; ++j) {
                const float diff = a - row[j];
                d[j] += diff * diff;
            }
        } else if constexpr (M == vq::Metric::L1) {
            for (int64_t j = 0; j < c; ++j)
                d[j] += std::fabs(a - row[j]);
        } else {
            for (int64_t j = 0; j < c; ++j)
                d[j] = std::max(d[j], std::fabs(a - row[j]));
        }
    }
}

/**
 * Quantize one value onto a subspace's 7-bit encode grid. The exact op
 * sequence the SIMD tiers vectorize: (x - lo) * inv in float (this TU
 * builds with -ffp-contract=off, so sub and mul never contract), clamp
 * in the FLOAT domain with the MAXPS/MINPS select semantics (t > 0 ? t :
 * 0 maps NaN to 0, exactly like _mm*_max_ps(t, 0)), then
 * round-to-nearest-even (std::nearbyint under the default FP
 * environment == CVTPS2DQ). Used for BOTH the bank's centroids and the
 * encode-time inputs — sharing the grid is what makes the integer
 * argmin equivalent to the quantized L2 argmin.
 */
inline int32_t
quantizeEncodeLevel(float x, float lo, float inv)
{
    float t = (x - lo) * inv;
    t = t > 0.0f ? t : 0.0f;
    t = t < 127.0f ? t : 127.0f;
    return static_cast<int32_t>(std::nearbyint(t));
}

inline int32_t
argminScan(const float *__restrict__ d, int64_t c)
{
    int32_t best = 0;
    float best_dist = d[0];
    for (int64_t j = 1; j < c; ++j) {
        if (d[j] < best_dist) {
            best_dist = d[j];
            best = static_cast<int32_t>(j);
        }
    }
    return best;
}

/**
 * The scalar INT8 group sweep as a free function over raw restrict
 * pointers: in this exact shape GCC vectorizes the unrolled 16-deep
 * widen-add reduction; as a member-function body (q/scales reached
 * through the bank reference) it refuses and emits byte-scalar code
 * ~10x slower. noinline keeps this compilation context when the caller
 * inlines around it.
 */
__attribute__((noinline)) void
sweepInt8ColOuter(const int8_t *__restrict__ qbank,
                  const float *__restrict__ scales,
                  const int32_t *__restrict__ codes, int64_t bn,
                  int64_t n, int64_t num_subspaces, int64_t c,
                  int64_t num_blocks, int64_t num_groups,
                  float *__restrict__ yb)
{
    constexpr int64_t G = LutTableArena::kInt8ScaleGroup;
    constexpr int64_t B = LutTableArena::kInt8BlockCols;
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * G;
        const int64_t gs = std::min<int64_t>(G, num_subspaces - s0);
        const float *srow = scales + g * num_blocks;
        for (int64_t r = 0; r < bn; ++r) {
            const int32_t *rcodes = codes + r * num_subspaces;
            float *__restrict__ yr = yb + r * n;
            const int8_t *__restrict__ q[G];
            for (int64_t gi = 0; gi < gs; ++gi) {
                const int64_t s = s0 + gi;
                q[gi] = qbank + (s * c + rcodes[s]) * n;
            }
            for (int64_t b = 0; b < num_blocks; ++b) {
                const int64_t c0 = b * B;
                const int64_t c1 = std::min(n, c0 + B);
                const float scale = srow[b];
                if (gs == G) {
                    for (int64_t col = c0; col < c1; ++col) {
                        int32_t acc = 0;
                        for (int64_t gi = 0; gi < G; ++gi)
                            acc += q[gi][col];
                        yr[col] += scale * static_cast<float>(acc);
                    }
                } else {
                    for (int64_t col = c0; col < c1; ++col) {
                        int32_t acc = 0;
                        for (int64_t gi = 0; gi < gs; ++gi)
                            acc += q[gi][col];
                        yr[col] += scale * static_cast<float>(acc);
                    }
                }
            }
        }
    }
}

/**
 * The scalar INT4 packed group sweep, a free function for the same
 * vectorization reason as sweepInt8ColOuter. Walks packed column PAIRS:
 * each byte yields both nibble planes with one AND + one shift, biased
 * sums accumulate exactly in int32, and the single bias-correcting
 * subtract + dequantizing mul + add per (group, column) matches the
 * shuffle kernels' float op sequence bit for bit.
 */
__attribute__((noinline)) void
sweepInt4ColOuter(const uint8_t *__restrict__ qbank,
                  const float *__restrict__ scales,
                  const int32_t *__restrict__ codes, int64_t bn,
                  int64_t n, int64_t half_n, int64_t num_subspaces,
                  int64_t c, int64_t num_blocks, int64_t num_groups,
                  float *__restrict__ yb)
{
    constexpr int64_t G = LutTableArena::kInt4ScaleGroup;
    constexpr int64_t B = LutTableArena::kInt4BlockCols;
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * G;
        const int64_t gs = std::min<int64_t>(G, num_subspaces - s0);
        const int32_t bias = static_cast<int32_t>(8 * gs);
        const float *srow = scales + g * num_blocks;
        for (int64_t r = 0; r < bn; ++r) {
            const int32_t *rcodes = codes + r * num_subspaces;
            float *__restrict__ yr = yb + r * n;
            const uint8_t *__restrict__ q[G];
            for (int64_t gi = 0; gi < gs; ++gi) {
                const int64_t s = s0 + gi;
                q[gi] = qbank + (s * c + rcodes[s]) * half_n;
            }
            for (int64_t b = 0; b < num_blocks; ++b) {
                const int64_t c0 = b * B;
                const int64_t c1 = std::min(n, c0 + B);
                const float scale = srow[b];
                // B is even, so c0 is even and the block covers whole
                // pairs — except the final block of an odd N, whose
                // dangling low-plane column is handled after the loop.
                const int64_t p0 = c0 >> 1;
                const int64_t pairs = (c1 - c0) >> 1;
                if (gs == G) {
                    for (int64_t p = 0; p < pairs; ++p) {
                        int32_t alo = 0, ahi = 0;
                        for (int64_t gi = 0; gi < G; ++gi) {
                            const int32_t byte = q[gi][p0 + p];
                            alo += byte & 15;
                            ahi += byte >> 4;
                        }
                        yr[c0 + 2 * p] +=
                            scale * static_cast<float>(alo - bias);
                        yr[c0 + 2 * p + 1] +=
                            scale * static_cast<float>(ahi - bias);
                    }
                } else {
                    for (int64_t p = 0; p < pairs; ++p) {
                        int32_t alo = 0, ahi = 0;
                        for (int64_t gi = 0; gi < gs; ++gi) {
                            const int32_t byte = q[gi][p0 + p];
                            alo += byte & 15;
                            ahi += byte >> 4;
                        }
                        yr[c0 + 2 * p] +=
                            scale * static_cast<float>(alo - bias);
                        yr[c0 + 2 * p + 1] +=
                            scale * static_cast<float>(ahi - bias);
                    }
                }
                if ((c1 - c0) & 1) {
                    int32_t alo = 0;
                    for (int64_t gi = 0; gi < gs; ++gi)
                        alo += q[gi][half_n - 1] & 15;
                    yr[n - 1] += scale * static_cast<float>(alo - bias);
                }
            }
        }
    }
}

/**
 * Transpose the first `valid_rows` rows of one shuffle-gather chunk's
 * column-major accumulators ([n, chunk]) into the row-major output block
 * ([valid_rows, n]). 16x16 tiles keep both sides cache-friendly; values
 * are moved, never recomputed, so this cannot perturb numerics.
 */
inline void
transposeColMajorTail(const float *__restrict__ colmajor, int64_t chunk,
                      int64_t n, int64_t valid_rows,
                      float *__restrict__ yb)
{
    constexpr int64_t T = 16;
    for (int64_t r0 = 0; r0 < valid_rows; r0 += T) {
        const int64_t r1 = std::min(valid_rows, r0 + T);
        for (int64_t c0 = 0; c0 < n; c0 += T) {
            const int64_t c1 = std::min(n, c0 + T);
            for (int64_t r = r0; r < r1; ++r)
                for (int64_t col = c0; col < c1; ++col)
                    yb[r * n + col] = colmajor[col * chunk + r];
        }
    }
}

inline void
transposeColMajor(const float *__restrict__ colmajor, int64_t chunk,
                  int64_t n, float *__restrict__ yb)
{
    transposeColMajorTail(colmajor, chunk, n, chunk, yb);
}

} // namespace

template <vq::Metric M, typename Sink>
void
LutTableArena::encodeRowsImpl(const float *x, int64_t rows,
                              Sink &&sink) const
{
    const int64_t v = subvector_len_, c = num_centroids_;
    // Subspace-outer: one ~c*v-float codebook stays L1-resident across the
    // whole batch instead of streaming every codebook for every row. All
    // subspaces except possibly the last read the row in place; the ragged
    // tail is zero-padded into a scratch buffer, exactly like
    // ProductQuantizer::extractSubvector.
    const int64_t full_subspaces =
        in_features_ % v == 0 ? num_subspaces_ : num_subspaces_ - 1;
    std::vector<float> tail(static_cast<size_t>(v), 0.0f);
    std::vector<float> dist(static_cast<size_t>(c));
    // Register-resident fast paths, dispatched on the RUNNING CPU (cpuid,
    // not compile flags): the flagship L2 / c=16 kernel, or the masked
    // generic-c tier for any other c <= 64.
    if constexpr (M == vq::Metric::L2) {
        const util::SimdLevel level = util::simdLevel();
        const bool c16 = c == 16 && simd::encodeL2C16Supported(level);
        const bool generic =
            !c16 && simd::encodeL2GenericSupported(level, c);
        if (c16 || generic) {
            const auto run = [&](const float *xs, int64_t nrows,
                                 int64_t stride, const float *cbt,
                                 int32_t *out) {
                if (c16)
                    simd::encodeL2C16Rows(level, xs, nrows, stride, cbt, v,
                                          out);
                else
                    simd::encodeL2GenericRows(level, xs, nrows, stride,
                                              cbt, v, c, out);
            };
            std::vector<int32_t> block(static_cast<size_t>(rows));
            for (int64_t s = 0; s < full_subspaces; ++s) {
                run(x + s * v, rows, in_features_, codebookT(s),
                    block.data());
                for (int64_t i = 0; i < rows; ++i)
                    sink(i, s, block[static_cast<size_t>(i)]);
            }
            if (full_subspaces < num_subspaces_) {
                // Zero-pad the ragged tail rows into a compact [rows, v]
                // staging plane, then encode it like a full subspace.
                const int64_t s = full_subspaces;
                const int64_t base = s * v;
                std::vector<float> padded(static_cast<size_t>(rows * v),
                                          0.0f);
                for (int64_t i = 0; i < rows; ++i) {
                    const float *row = x + i * in_features_;
                    float *dst = padded.data() + i * v;
                    for (int64_t t = 0; t < v && base + t < in_features_;
                         ++t)
                        dst[t] = row[base + t];
                }
                run(padded.data(), rows, v, codebookT(s), block.data());
                for (int64_t i = 0; i < rows; ++i)
                    sink(i, s, block[static_cast<size_t>(i)]);
            }
            return;
        }
    }
    for (int64_t s = 0; s < full_subspaces; ++s) {
        const float *cbt = codebookT(s);
        for (int64_t i = 0; i < rows; ++i) {
            distanceAll<M>(x + i * in_features_ + s * v, cbt, c, v,
                           dist.data());
            sink(i, s, argminScan(dist.data(), c));
        }
    }
    for (int64_t s = full_subspaces; s < num_subspaces_; ++s) {
        const float *cbt = codebookT(s);
        const int64_t base = s * v;
        for (int64_t i = 0; i < rows; ++i) {
            const float *row = x + i * in_features_;
            for (int64_t t = 0; t < v; ++t) {
                const int64_t k = base + t;
                tail[static_cast<size_t>(t)] =
                    k < in_features_ ? row[k] : 0.0f;
            }
            distanceAll<M>(tail.data(), cbt, c, v, dist.data());
            sink(i, s, argminScan(dist.data(), c));
        }
    }
}

template <typename Sink>
void
LutTableArena::encodeDispatch(const float *x, int64_t rows,
                              Sink &&sink) const
{
    switch (metric_) {
      case vq::Metric::L2:
        encodeRowsImpl<vq::Metric::L2>(x, rows, sink);
        return;
      case vq::Metric::L1:
        encodeRowsImpl<vq::Metric::L1>(x, rows, sink);
        return;
      case vq::Metric::Chebyshev:
        encodeRowsImpl<vq::Metric::Chebyshev>(x, rows, sink);
        return;
    }
}

void
LutTableArena::encodeRows(const float *x, int64_t rows, int32_t *codes) const
{
    encodeDispatch(x, rows, [codes, this](int64_t i, int64_t s,
                                          int32_t code) {
        codes[i * num_subspaces_ + s] = code;
    });
}

void
LutTableArena::encodeBatch(const float *x, int64_t rows,
                           vq::CodeBuffer &codes,
                           std::vector<float> &staging) const
{
    codes.reset(rows, num_subspaces_, num_centroids_);
    encodeBlock(x, 0, rows, codes, staging);
}

void
LutTableArena::encodeBlock(const float *x, int64_t row0, int64_t rows,
                           vq::CodeBuffer &codes,
                           std::vector<float> &staging) const
{
    const float *xb = x + row0 * in_features_;
    if (bf16_inputs_) {
        staging.assign(xb, xb + rows * in_features_);
        for (float &value : staging)
            value = vq::toBf16(value);
        xb = staging.data();
    }
    encodeDispatch(xb, rows,
                   [&codes, row0](int64_t i, int64_t s, int32_t code) {
                       codes.set(row0 + i, s, code);
                   });
}

template <typename Sink>
void
LutTableArena::encodeRowsInt8(const float *x, int64_t rows,
                              EncodeVariant variant, Sink &&sink) const
{
    const Int8EncodeBank &bank = *int8_encode_bank_;
    const int64_t v = subvector_len_, c = num_centroids_;
    if (variant == EncodeVariant::Auto)
        variant = int8EncodeAutoVariant();
    util::SimdLevel level = util::SimdLevel::Generic;
    if (variant == EncodeVariant::DotVnni)
        level = util::SimdLevel::Avx512Vnni;
    else if (variant == EncodeVariant::MaddAvx2)
        level = util::SimdLevel::Avx2;
    if (variant != EncodeVariant::Scalar) {
        LUTDLA_CHECK(!bank.cs_quad.empty(),
                     "SIMD INT8 encode needs c <= 16 and v <= 128 (got "
                     "c = ", c, ", v = ", v, "); use the scalar variant");
        LUTDLA_CHECK(level <= util::simdLevel(),
                     "requested encode variant needs ",
                     util::simdLevelName(level),
                     " but this CPU provides ",
                     util::simdLevelName(util::simdLevel()));
    }
    const int64_t full_subspaces =
        in_features_ % v == 0 ? num_subspaces_ : num_subspaces_ - 1;

    if (variant != EncodeVariant::Scalar) {
        // Same subspace-outer block/tail structure as the float fast
        // path: one subspace's quad bank stays L1-resident across the
        // whole batch, and the ragged tail is zero-padded into a compact
        // [rows, v] plane and encoded like a full subspace.
        std::vector<int32_t> block(static_cast<size_t>(rows));
        for (int64_t s = 0; s < full_subspaces; ++s) {
            simd::encodeInt8C16Rows(
                level, x + s * v, rows, in_features_,
                bank.cs_quad.data() + s * bank.vq4 * 64,
                bank.norms.data() + s * bank.norm_stride, bank.lo[s],
                bank.inv[s], v, block.data());
            for (int64_t i = 0; i < rows; ++i)
                sink(i, s, block[static_cast<size_t>(i)]);
        }
        if (full_subspaces < num_subspaces_) {
            const int64_t s = full_subspaces;
            const int64_t base = s * v;
            std::vector<float> padded(static_cast<size_t>(rows * v),
                                      0.0f);
            for (int64_t i = 0; i < rows; ++i) {
                const float *row = x + i * in_features_;
                float *dst = padded.data() + i * v;
                for (int64_t t = 0; t < v && base + t < in_features_; ++t)
                    dst[t] = row[base + t];
            }
            simd::encodeInt8C16Rows(
                level, padded.data(), rows, v,
                bank.cs_quad.data() + s * bank.vq4 * 64,
                bank.norms.data() + s * bank.norm_stride, bank.lo[s],
                bank.inv[s], v, block.data());
            for (int64_t i = 0; i < rows; ++i)
                sink(i, s, block[static_cast<size_t>(i)]);
        }
        return;
    }

    // Scalar integer reference: identical quantization (shared
    // quantizeEncodeLevel), identical int32 scores, identical strict-<
    // lowest-index argmin — the SIMD tiers are bit-identical to this by
    // construction, and the property tests pin it.
    std::vector<int32_t> xq(static_cast<size_t>(v));
    std::vector<float> tail(static_cast<size_t>(v), 0.0f);
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        const int8_t *cs = bank.cs.data() + s * c * v;
        const int32_t *norms = bank.norms.data() + s * bank.norm_stride;
        const float lo = bank.lo[static_cast<size_t>(s)];
        const float inv = bank.inv[static_cast<size_t>(s)];
        const int64_t base = s * v;
        const bool ragged = s >= full_subspaces;
        for (int64_t i = 0; i < rows; ++i) {
            const float *sub = x + i * in_features_ + base;
            if (ragged) {
                const float *row = x + i * in_features_;
                for (int64_t t = 0; t < v; ++t) {
                    const int64_t k = base + t;
                    tail[static_cast<size_t>(t)] =
                        k < in_features_ ? row[k] : 0.0f;
                }
                sub = tail.data();
            }
            for (int64_t t = 0; t < v; ++t)
                xq[static_cast<size_t>(t)] =
                    quantizeEncodeLevel(sub[t], lo, inv);
            int32_t best = 0;
            int32_t best_score = std::numeric_limits<int32_t>::max();
            for (int64_t j = 0; j < c; ++j) {
                const int8_t *crow = cs + j * v;
                int32_t dot = 0;
                for (int64_t t = 0; t < v; ++t)
                    dot += xq[static_cast<size_t>(t)] *
                           static_cast<int32_t>(crow[t]);
                const int32_t score = norms[j] - 2 * dot;
                if (score < best_score) {
                    best_score = score;
                    best = static_cast<int32_t>(j);
                }
            }
            sink(i, s, best);
        }
    }
}

void
LutTableArena::encodeBatchInt8(const float *x, int64_t rows,
                               vq::CodeBuffer &codes,
                               std::vector<float> &staging,
                               EncodeVariant variant) const
{
    codes.reset(rows, num_subspaces_, num_centroids_);
    encodeBlockInt8(x, 0, rows, codes, staging, variant);
}

void
LutTableArena::encodeBlockInt8(const float *x, int64_t row0, int64_t rows,
                               vq::CodeBuffer &codes,
                               std::vector<float> &staging,
                               EncodeVariant variant) const
{
    LUTDLA_CHECK(int8_encode_bank_ != nullptr,
                 "encodeBlockInt8 requires ensureInt8EncodeBank() first");
    const float *xb = x + row0 * in_features_;
    if (bf16_inputs_) {
        staging.assign(xb, xb + rows * in_features_);
        for (float &value : staging)
            value = vq::toBf16(value);
        xb = staging.data();
    }
    encodeRowsInt8(xb, rows, variant,
                   [&codes, row0](int64_t i, int64_t s, int32_t code) {
                       codes.set(row0 + i, s, code);
                   });
}

void
LutTableArena::addBias(float *yb, int64_t bn) const
{
    if (!has_bias_)
        return;
    const int64_t n = out_features_;
    const float *__restrict__ bias = biasPtr();
    for (int64_t r = 0; r < bn; ++r) {
        float *__restrict__ yr = yb + r * n;
        for (int64_t col = 0; col < n; ++col)
            yr[col] += bias[col];
    }
}

void
LutTableArena::gatherAccumulate(const vq::CodeBuffer &codes, float *y,
                                GatherScratch &scratch) const
{
    gatherAccumulate(codes, 0, codes.rows(), y, scratch);
}

void
LutTableArena::gatherAccumulate(const vq::CodeBuffer &codes, int64_t row0,
                                int64_t rows, float *y,
                                GatherScratch &scratch) const
{
    LUTDLA_CHECK(codes.subspaces() == num_subspaces_,
                 "code buffer carries ", codes.subspaces(),
                 " subspaces, arena has ", num_subspaces_);
    LUTDLA_CHECK(row0 >= 0 && row0 + rows <= codes.rows(),
                 "gather span [", row0, ", ", row0 + rows, ") exceeds ",
                 codes.rows(), " encoded rows");
    const int64_t n = out_features_;
    for (int64_t b0 = row0; b0 < row0 + rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, row0 + rows - b0);
        scratch.unpacked.resize(static_cast<size_t>(bn * num_subspaces_));
        codes.unpackRows(b0, bn, scratch.unpacked.data());
        float *yb = y + b0 * n;
        std::fill(yb, yb + bn * n, 0.0f);
        // Same ascending-subspace accumulation as forwardBatch: packing
        // round-trips codes exactly, so this phase split stays bit-exact
        // with the fused reference kernel.
        if (bn >= kTileMinRows)
            sweepBlockGrouped(scratch.unpacked.data(), bn, yb);
        else
            sweepBlockSimple(scratch.unpacked.data(), bn, yb);
        addBias(yb, bn);
    }
}

void
LutTableArena::gatherAccumulateInt8(const vq::CodeBuffer &codes, float *y,
                                    GatherScratch &scratch,
                                    Int8GatherVariant variant) const
{
    gatherAccumulateInt8(codes, 0, codes.rows(), y, scratch, variant);
}

void
LutTableArena::gatherAccumulateInt8(const vq::CodeBuffer &codes,
                                    int64_t row0, int64_t rows, float *y,
                                    GatherScratch &scratch,
                                    Int8GatherVariant variant) const
{
    LUTDLA_CHECK(int8_bank_ != nullptr,
                 "gatherAccumulateInt8 requires ensureInt8Bank() first");
    LUTDLA_CHECK(codes.subspaces() == num_subspaces_,
                 "code buffer carries ", codes.subspaces(),
                 " subspaces, arena has ", num_subspaces_);
    LUTDLA_CHECK(row0 >= 0 && row0 + rows <= codes.rows(),
                 "gather span [", row0, ", ", row0 + rows, ") exceeds ",
                 codes.rows(), " encoded rows");
    const Int8Bank &bank = *int8_bank_;
    if (variant == Int8GatherVariant::Auto)
        variant = int8AutoVariant();
    util::SimdLevel level = util::SimdLevel::Generic;
    if (variant == Int8GatherVariant::ShuffleVnni)
        level = util::SimdLevel::Avx512Vnni;
    else if (variant == Int8GatherVariant::ShuffleAvx512)
        level = util::SimdLevel::Avx512;
    else if (variant == Int8GatherVariant::ShuffleAvx2)
        level = util::SimdLevel::Avx2;
    if (variant != Int8GatherVariant::Scalar) {
        LUTDLA_CHECK(!bank.q_il.empty(),
                     "shuffle gather needs c <= 16 (got c = ",
                     num_centroids_, "); use the scalar variant");
        LUTDLA_CHECK(level <= util::simdLevel(),
                     "requested shuffle variant needs ",
                     util::simdLevelName(level),
                     " but this CPU provides ",
                     util::simdLevelName(util::simdLevel()));
    }
    const int64_t n = out_features_;
    const int64_t chunk = variant == Int8GatherVariant::Scalar
                              ? 0
                              : simd::shuffleGatherChunkRows(level);
    const auto run_chunk = [&](const uint8_t *planar, float *colmajor) {
        if (variant == Int8GatherVariant::ShuffleVnni)
            simd::vnniGatherChunk(bank.q_quad.data(), bank.scales.data(),
                                  planar, num_subspaces_, n,
                                  bank.num_blocks, kInt8ScaleGroup,
                                  kInt8BlockCols, colmajor);
        else
            simd::shuffleGatherChunk(level, bank.q_il.data(),
                                     bank.scales.data(), planar,
                                     num_subspaces_, n, bank.num_blocks,
                                     kInt8ScaleGroup, kInt8BlockCols,
                                     colmajor);
    };
    for (int64_t b0 = row0; b0 < row0 + rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, row0 + rows - b0);
        float *yb = y + b0 * n;
        int64_t done = 0;
        if (chunk > 0 && bn >= chunk / 4) {
            scratch.planar.resize(
                static_cast<size_t>(num_subspaces_ * chunk));
            scratch.colmajor.resize(static_cast<size_t>(n * chunk));
            for (; done + chunk <= bn; done += chunk) {
                codes.unpackPlanar(b0 + done, chunk,
                                   scratch.planar.data());
                run_chunk(scratch.planar.data(), scratch.colmajor.data());
                transposeColMajor(scratch.colmajor.data(), chunk, n,
                                  yb + done * n);
            }
            // Row tails still worth a vector pass run PADDED through one
            // full-width chunk: pad lanes carry code 0 (a valid index),
            // their columns are computed and simply never copied out —
            // cheaper than the scalar sweep above ~chunk/4 rows, and
            // bit-exact because the valid lanes see identical math.
            const int64_t tail = bn - done;
            if (tail >= chunk / 4) {
                std::fill(scratch.planar.begin(), scratch.planar.end(),
                          uint8_t{0});
                codes.unpackPlanar(b0 + done, tail, scratch.planar.data(),
                                   chunk);
                run_chunk(scratch.planar.data(), scratch.colmajor.data());
                transposeColMajorTail(scratch.colmajor.data(), chunk, n,
                                      tail, yb + done * n);
                done = bn;
            }
        }
        if (done < bn) {
            // Row tail (or the whole block for the scalar variant):
            // identical group scales and exact integer accumulation, so
            // the seam between paths is invisible in the output.
            const int64_t tail = bn - done;
            scratch.unpacked.resize(
                static_cast<size_t>(tail * num_subspaces_));
            codes.unpackRows(b0 + done, tail, scratch.unpacked.data());
            float *yt = yb + done * n;
            std::fill(yt, yt + tail * n, 0.0f);
            sweepRowsInt8Scalar(bank, scratch.unpacked.data(), tail, yt);
        }
        addBias(yb, bn);
    }
}

void
LutTableArena::gatherAccumulateInt4(const vq::CodeBuffer &codes, float *y,
                                    GatherScratch &scratch,
                                    Int4GatherVariant variant) const
{
    gatherAccumulateInt4(codes, 0, codes.rows(), y, scratch, variant);
}

void
LutTableArena::gatherAccumulateInt4(const vq::CodeBuffer &codes,
                                    int64_t row0, int64_t rows, float *y,
                                    GatherScratch &scratch,
                                    Int4GatherVariant variant) const
{
    LUTDLA_CHECK(int4_bank_ != nullptr,
                 "gatherAccumulateInt4 requires ensureInt4Bank() first");
    LUTDLA_CHECK(codes.subspaces() == num_subspaces_,
                 "code buffer carries ", codes.subspaces(),
                 " subspaces, arena has ", num_subspaces_);
    LUTDLA_CHECK(row0 >= 0 && row0 + rows <= codes.rows(),
                 "gather span [", row0, ", ", row0 + rows, ") exceeds ",
                 codes.rows(), " encoded rows");
    const Int4Bank &bank = *int4_bank_;
    if (variant == Int4GatherVariant::Auto)
        variant = int4AutoVariant();
    util::SimdLevel level = util::SimdLevel::Generic;
    if (variant == Int4GatherVariant::ShuffleAvx512)
        level = util::SimdLevel::Avx512;
    else if (variant == Int4GatherVariant::ShuffleAvx2)
        level = util::SimdLevel::Avx2;
    if (variant != Int4GatherVariant::Scalar) {
        LUTDLA_CHECK(!bank.q4_il.empty(),
                     "shuffle gather needs c <= 16 (got c = ",
                     num_centroids_, "); use the scalar variant");
        LUTDLA_CHECK(level <= util::simdLevel(),
                     "requested shuffle variant needs ",
                     util::simdLevelName(level),
                     " but this CPU provides ",
                     util::simdLevelName(util::simdLevel()));
    }
    const int64_t n = out_features_;
    const int64_t chunk = variant == Int4GatherVariant::Scalar
                              ? 0
                              : simd::shuffleGatherChunkRows(level);
    // Same block/chunk/tail structure as the INT8 gather: full chunks
    // through the shuffle kernel, big tails padded through one chunk
    // (pad lanes carry code 0, computed but never copied out), small
    // tails through the scalar packed sweep — every seam bit-invisible
    // because all paths share the exact biased-nibble accumulation.
    for (int64_t b0 = row0; b0 < row0 + rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, row0 + rows - b0);
        float *yb = y + b0 * n;
        int64_t done = 0;
        if (chunk > 0 && bn >= chunk / 4) {
            scratch.planar.resize(
                static_cast<size_t>(num_subspaces_ * chunk));
            scratch.colmajor.resize(static_cast<size_t>(n * chunk));
            for (; done + chunk <= bn; done += chunk) {
                codes.unpackPlanar(b0 + done, chunk,
                                   scratch.planar.data());
                simd::shuffleGatherChunkInt4(
                    level, bank.q4_il.data(), bank.scales.data(),
                    scratch.planar.data(), num_subspaces_, n,
                    bank.num_blocks, kInt4ScaleGroup, kInt4BlockCols,
                    scratch.colmajor.data());
                transposeColMajor(scratch.colmajor.data(), chunk, n,
                                  yb + done * n);
            }
            const int64_t tail = bn - done;
            if (tail >= chunk / 4) {
                std::fill(scratch.planar.begin(), scratch.planar.end(),
                          uint8_t{0});
                codes.unpackPlanar(b0 + done, tail, scratch.planar.data(),
                                   chunk);
                simd::shuffleGatherChunkInt4(
                    level, bank.q4_il.data(), bank.scales.data(),
                    scratch.planar.data(), num_subspaces_, n,
                    bank.num_blocks, kInt4ScaleGroup, kInt4BlockCols,
                    scratch.colmajor.data());
                transposeColMajorTail(scratch.colmajor.data(), chunk, n,
                                      tail, yb + done * n);
                done = bn;
            }
        }
        if (done < bn) {
            const int64_t tail = bn - done;
            scratch.unpacked.resize(
                static_cast<size_t>(tail * num_subspaces_));
            codes.unpackRows(b0 + done, tail, scratch.unpacked.data());
            float *yt = yb + done * n;
            std::fill(yt, yt + tail * n, 0.0f);
            sweepRowsInt4Scalar(bank, scratch.unpacked.data(), tail, yt);
        }
        addBias(yb, bn);
    }
}

void
LutTableArena::ensureInt8Bank() const
{
    std::call_once(int8_once_, [this] {
        auto bank = std::make_unique<Int8Bank>();
        const int64_t n = out_features_;
        const int64_t c = num_centroids_;
        bank->num_blocks = (n + kInt8BlockCols - 1) / kInt8BlockCols;
        bank->num_groups =
            (num_subspaces_ + kInt8ScaleGroup - 1) / kInt8ScaleGroup;
        bank->q.resize(static_cast<size_t>(num_subspaces_ * c * n));
        bank->scales.resize(
            static_cast<size_t>(bank->num_groups * bank->num_blocks));
        for (int64_t g = 0; g < bank->num_groups; ++g) {
            const int64_t s0 = g * kInt8ScaleGroup;
            const int64_t s1 = std::min(num_subspaces_,
                                        s0 + kInt8ScaleGroup);
            for (int64_t b = 0; b < bank->num_blocks; ++b) {
                const int64_t c0 = b * kInt8BlockCols;
                const int64_t c1 = std::min(n, c0 + kInt8BlockCols);
                // One symmetric scale covers every centroid entry of the
                // whole subspace GROUP in this output block: sharing the
                // scale across the group is what lets both gather paths
                // accumulate exact integer partial sums before a single
                // dequantizing mul + add per group.
                float max_abs = 0.0f;
                for (int64_t s = s0; s < s1; ++s)
                    for (int64_t j = 0; j < c; ++j) {
                        const float *row = entry(s, j);
                        for (int64_t col = c0; col < c1; ++col)
                            max_abs =
                                std::max(max_abs, std::fabs(row[col]));
                    }
                const float scale =
                    max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
                bank->scales[static_cast<size_t>(g * bank->num_blocks +
                                                 b)] = scale;
                for (int64_t s = s0; s < s1; ++s)
                    for (int64_t j = 0; j < c; ++j) {
                        const float *row = entry(s, j);
                        int8_t *qrow = bank->q.data() + (s * c + j) * n;
                        for (int64_t col = c0; col < c1; ++col) {
                            const float q =
                                std::nearbyint(row[col] / scale);
                            qrow[col] = static_cast<int8_t>(std::max(
                                -127.0f, std::min(127.0f, q)));
                        }
                    }
            }
        }
        // Mirror layouts are built only when the RUNNING CPU can execute
        // a variant that reads them — INT8 tables dominate this data
        // plane's memory, so a host that can never run the shuffle
        // kernels must not pay for their layouts.
        if (c <= 16 && simd::shuffleGatherSupported(util::simdLevel())) {
            // Interleaved mirror for the shuffle gather: the 16 centroid
            // entries of one (subspace, column) pack contiguously (zero
            // padded past c), so each LUT is one 128-bit register load.
            bank->q_il.assign(static_cast<size_t>(num_subspaces_ * n * 16),
                              0);
            for (int64_t s = 0; s < num_subspaces_; ++s)
                for (int64_t j = 0; j < c; ++j) {
                    const int8_t *qrow = bank->q.data() + (s * c + j) * n;
                    for (int64_t col = 0; col < n; ++col)
                        bank->q_il[static_cast<size_t>((s * n + col) * 16 +
                                                       j)] = qrow[col];
                }
            // Quad-interleaved mirror for the VNNI gather: four
            // consecutive subspaces' LUTs share one 64-byte block per
            // column (zero padded past c and past Nc), so one VPERMB
            // serves 16 rows x 4 subspaces.
            if (simd::vnniGatherSupported(util::simdLevel())) {
                const int64_t quads = (num_subspaces_ + 3) / 4;
                bank->q_quad.assign(static_cast<size_t>(quads * n * 64),
                                    0);
                for (int64_t s = 0; s < num_subspaces_; ++s) {
                    const int64_t qd = s / 4, j = s % 4;
                    for (int64_t e = 0; e < c; ++e) {
                        const int8_t *qrow =
                            bank->q.data() + (s * c + e) * n;
                        for (int64_t col = 0; col < n; ++col)
                            bank->q_quad[static_cast<size_t>(
                                (qd * n + col) * 64 + 16 * j + e)] =
                                qrow[col];
                    }
                }
            }
        }
        // Resident-accounting invariant int8ResidentBytes() relies on:
        // each mirror layout is either fully materialized because this
        // host can run a kernel that reads it, or left empty — so the
        // unconditional sum over layout sizes counts exactly the
        // layouts this CPU built, never a phantom third copy.
        LUTDLA_CHECK(
            bank->q_il.empty() ==
                !(c <= 16 &&
                  simd::shuffleGatherSupported(util::simdLevel())),
            "q_il must be materialized exactly when the shuffle gather "
            "can run on this host");
        LUTDLA_CHECK(
            bank->q_quad.empty() ==
                !(c <= 16 &&
                  simd::vnniGatherSupported(util::simdLevel())),
            "q_quad must be materialized exactly when the VNNI gather "
            "can run on this host");
        int8_bank_ = std::move(bank);
    });
}

void
LutTableArena::ensureInt4Bank() const
{
    std::call_once(int4_once_, [this] {
        auto bank = std::make_unique<Int4Bank>();
        const int64_t n = out_features_;
        const int64_t c = num_centroids_;
        bank->half_n = (n + 1) / 2;
        bank->num_blocks = (n + kInt4BlockCols - 1) / kInt4BlockCols;
        bank->num_groups =
            (num_subspaces_ + kInt4ScaleGroup - 1) / kInt4ScaleGroup;
        // 0x88 = bias nibble 8 in both planes, the exact packed zero:
        // odd-N dangling high nibbles and never-indexed pad entries all
        // decode to 0 by construction.
        bank->q4.assign(
            static_cast<size_t>(num_subspaces_ * c * bank->half_n), 0x88);
        bank->scales.resize(
            static_cast<size_t>(bank->num_groups * bank->num_blocks));
        const float max_level = static_cast<float>(kInt4MaxLevel);
        for (int64_t g = 0; g < bank->num_groups; ++g) {
            const int64_t s0 = g * kInt4ScaleGroup;
            const int64_t s1 =
                std::min(num_subspaces_, s0 + kInt4ScaleGroup);
            for (int64_t b = 0; b < bank->num_blocks; ++b) {
                const int64_t c0 = b * kInt4BlockCols;
                const int64_t c1 = std::min(n, c0 + kInt4BlockCols);
                // Same shared symmetric scale per (group, block) as the
                // INT8 bank, over the 15-level nibble range.
                float max_abs = 0.0f;
                for (int64_t s = s0; s < s1; ++s)
                    for (int64_t j = 0; j < c; ++j) {
                        const float *row = entry(s, j);
                        for (int64_t col = c0; col < c1; ++col)
                            max_abs =
                                std::max(max_abs, std::fabs(row[col]));
                    }
                const float scale =
                    max_abs > 0.0f ? max_abs / max_level : 1.0f;
                bank->scales[static_cast<size_t>(g * bank->num_blocks +
                                                 b)] = scale;
                for (int64_t s = s0; s < s1; ++s)
                    for (int64_t j = 0; j < c; ++j) {
                        const float *row = entry(s, j);
                        uint8_t *qrow = bank->q4.data() +
                                        (s * c + j) * bank->half_n;
                        for (int64_t col = c0; col < c1; ++col) {
                            const float q =
                                std::nearbyint(row[col] / scale);
                            const int32_t nib =
                                static_cast<int32_t>(std::max(
                                    -max_level,
                                    std::min(max_level, q))) +
                                8;
                            uint8_t &byte = qrow[col >> 1];
                            if (col & 1)
                                byte = static_cast<uint8_t>(
                                    (byte & 0x0F) | (nib << 4));
                            else
                                byte = static_cast<uint8_t>(
                                    (byte & 0xF0) | nib);
                        }
                    }
            }
        }
        // Interleaved shuffle mirror, capability-gated like the INT8
        // mirrors: each (subspace, column pair) packs its 16 centroid
        // bytes contiguously so one 128-bit load is the whole LUT.
        if (c <= 16 && simd::shuffleGatherSupported(util::simdLevel())) {
            bank->q4_il.assign(
                static_cast<size_t>(num_subspaces_ * bank->half_n * 16),
                0x88);
            for (int64_t s = 0; s < num_subspaces_; ++s)
                for (int64_t j = 0; j < c; ++j) {
                    const uint8_t *qrow =
                        bank->q4.data() + (s * c + j) * bank->half_n;
                    for (int64_t p = 0; p < bank->half_n; ++p)
                        bank->q4_il[static_cast<size_t>(
                            (s * bank->half_n + p) * 16 + j)] = qrow[p];
                }
        }
        LUTDLA_CHECK(
            bank->q4_il.empty() ==
                !(c <= 16 &&
                  simd::shuffleGatherSupported(util::simdLevel())),
            "q4_il must be materialized exactly when the shuffle gather "
            "can run on this host");
        int4_bank_ = std::move(bank);
    });
}

bool
LutTableArena::int8BankReady() const
{
    return int8_bank_ != nullptr;
}

int64_t
LutTableArena::int8TableBytes() const
{
    if (!int8_bank_)
        return 0;
    return static_cast<int64_t>(int8_bank_->q.size() * sizeof(int8_t) +
                                int8_bank_->scales.size() * sizeof(float));
}

int64_t
LutTableArena::int8ResidentBytes() const
{
    if (!int8_bank_)
        return 0;
    const Int8Bank &bank = *int8_bank_;
    return static_cast<int64_t>(
        (bank.q.size() + bank.q_il.size() + bank.q_quad.size()) *
            sizeof(int8_t) +
        bank.scales.size() * sizeof(float));
}

Int8GatherVariant
LutTableArena::int8AutoVariant() const
{
    if (num_centroids_ > 16)
        return Int8GatherVariant::Scalar;
    const util::SimdLevel level = util::simdLevel();
    if (level >= util::SimdLevel::Avx512Vnni)
        return Int8GatherVariant::ShuffleVnni;
    if (level >= util::SimdLevel::Avx512)
        return Int8GatherVariant::ShuffleAvx512;
    if (level == util::SimdLevel::Avx2)
        return Int8GatherVariant::ShuffleAvx2;
    return Int8GatherVariant::Scalar;
}

const char *
LutTableArena::int8GatherVariantName(Int8GatherVariant variant)
{
    switch (variant) {
      case Int8GatherVariant::ShuffleVnni:
        return "shuffle-vnni";
      case Int8GatherVariant::ShuffleAvx512:
        return "shuffle-avx512";
      case Int8GatherVariant::ShuffleAvx2:
        return "shuffle-avx2";
      case Int8GatherVariant::Scalar:
        return "scalar";
      default:
        return "auto";
    }
}

bool
LutTableArena::int4BankReady() const
{
    return int4_bank_ != nullptr;
}

int64_t
LutTableArena::int4TableBytes() const
{
    if (!int4_bank_)
        return 0;
    return static_cast<int64_t>(int4_bank_->q4.size() * sizeof(uint8_t) +
                                int4_bank_->scales.size() * sizeof(float));
}

int64_t
LutTableArena::int4ResidentBytes() const
{
    if (!int4_bank_)
        return 0;
    const Int4Bank &bank = *int4_bank_;
    return static_cast<int64_t>(
        (bank.q4.size() + bank.q4_il.size()) * sizeof(uint8_t) +
        bank.scales.size() * sizeof(float));
}

Int4GatherVariant
LutTableArena::int4AutoVariant() const
{
    if (num_centroids_ > 16)
        return Int4GatherVariant::Scalar;
    const util::SimdLevel level = util::simdLevel();
    if (level >= util::SimdLevel::Avx512)
        return Int4GatherVariant::ShuffleAvx512;
    if (level == util::SimdLevel::Avx2)
        return Int4GatherVariant::ShuffleAvx2;
    return Int4GatherVariant::Scalar;
}

const char *
LutTableArena::int4GatherVariantName(Int4GatherVariant variant)
{
    switch (variant) {
      case Int4GatherVariant::ShuffleAvx512:
        return "shuffle-avx512";
      case Int4GatherVariant::ShuffleAvx2:
        return "shuffle-avx2";
      case Int4GatherVariant::Scalar:
        return "scalar";
      default:
        return "auto";
    }
}

void
LutTableArena::ensureInt8EncodeBank() const
{
    std::call_once(int8_encode_once_, [this] {
        // The integer score norm - 2 * dot is bounded by
        // v * (127^2 + 2 * 127 * 128); cap v so it can never leave
        // int32 — every realistic PQ subvector is orders of magnitude
        // shorter.
        LUTDLA_CHECK(metric_ == vq::Metric::L2,
                     "the INT8 encode bank requires the L2 metric");
        LUTDLA_CHECK(subvector_len_ <= 32768,
                     "INT8 encode supports subvector lengths up to 32768");
        auto bank = std::make_unique<Int8EncodeBank>();
        const int64_t v = subvector_len_, c = num_centroids_;
        bank->vq4 = (v + 3) / 4;
        bank->norm_stride = std::max<int64_t>(c, 16);
        bank->cs.resize(static_cast<size_t>(num_subspaces_ * c * v));
        bank->norms.assign(
            static_cast<size_t>(num_subspaces_ * bank->norm_stride),
            std::numeric_limits<int32_t>::max());
        bank->lo.resize(static_cast<size_t>(num_subspaces_));
        bank->inv.resize(static_cast<size_t>(num_subspaces_));
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            // One shared 7-bit affine grid per subspace, spanning the
            // codebook's value range; encode-time inputs are clamped
            // onto the same grid, so the integer argmin is exactly the
            // L2 argmin over the quantized values.
            const float *cbt = codebookT(s);
            float mn = cbt[0], mx = cbt[0];
            for (int64_t k = 1; k < c * v; ++k) {
                mn = std::min(mn, cbt[k]);
                mx = std::max(mx, cbt[k]);
            }
            const float step = mx > mn ? (mx - mn) / 127.0f : 1.0f;
            bank->lo[static_cast<size_t>(s)] = mn;
            bank->inv[static_cast<size_t>(s)] = 1.0f / step;
            for (int64_t j = 0; j < c; ++j) {
                int8_t *crow = bank->cs.data() + (s * c + j) * v;
                int32_t norm = 0;
                for (int64_t t = 0; t < v; ++t) {
                    const int32_t cu = quantizeEncodeLevel(
                        cbt[t * c + j], mn,
                        bank->inv[static_cast<size_t>(s)]);
                    // c_u - 128 lands in [-128, -1]: signed for the
                    // VPDPBUSD/VPMADDUBSW operand, and never 0, so the
                    // quad mirror's zero padding is unambiguous.
                    crow[t] = static_cast<int8_t>(cu - 128);
                    norm += cu * cu;
                }
                bank->norms[static_cast<size_t>(
                    s * bank->norm_stride + j)] = norm;
            }
        }
        // Quad-interleaved mirror for the SIMD tiers, capability-gated
        // like the gather mirrors: byte ((q * 16) + j) * 4 + k holds
        // c_s[j][4q + k], zero past v and past c.
        if (c <= 16 && v <= 128 &&
            simd::int8EncodeSupported(util::simdLevel())) {
            bank->cs_quad.assign(
                static_cast<size_t>(num_subspaces_ * bank->vq4 * 64), 0);
            for (int64_t s = 0; s < num_subspaces_; ++s)
                for (int64_t j = 0; j < c; ++j) {
                    const int8_t *crow =
                        bank->cs.data() + (s * c + j) * v;
                    for (int64_t t = 0; t < v; ++t)
                        bank->cs_quad[static_cast<size_t>(
                            (s * bank->vq4 + t / 4) * 64 + j * 4 +
                            t % 4)] = crow[t];
                }
        }
        LUTDLA_CHECK(
            bank->cs_quad.empty() ==
                !(c <= 16 && v <= 128 &&
                  simd::int8EncodeSupported(util::simdLevel())),
            "cs_quad must be materialized exactly when a SIMD encode "
            "tier can run on this host");
        int8_encode_bank_ = std::move(bank);
    });
}

bool
LutTableArena::int8EncodeBankReady() const
{
    return int8_encode_bank_ != nullptr;
}

int64_t
LutTableArena::int8EncodeTableBytes() const
{
    if (!int8_encode_bank_)
        return 0;
    const Int8EncodeBank &bank = *int8_encode_bank_;
    return static_cast<int64_t>(
        bank.cs.size() * sizeof(int8_t) +
        bank.norms.size() * sizeof(int32_t) +
        (bank.lo.size() + bank.inv.size()) * sizeof(float));
}

int64_t
LutTableArena::int8EncodeResidentBytes() const
{
    if (!int8_encode_bank_)
        return 0;
    return int8EncodeTableBytes() +
           static_cast<int64_t>(int8_encode_bank_->cs_quad.size() *
                                sizeof(int8_t));
}

bool
LutTableArena::int8EncodeSupported() const
{
    return metric_ == vq::Metric::L2 && subvector_len_ <= 32768;
}

EncodeVariant
LutTableArena::int8EncodeAutoVariant() const
{
    if (num_centroids_ > 16 || subvector_len_ > 128)
        return EncodeVariant::Scalar;
    const util::SimdLevel level = util::simdLevel();
    if (level >= util::SimdLevel::Avx512Vnni)
        return EncodeVariant::DotVnni;
    if (level >= util::SimdLevel::Avx2)
        return EncodeVariant::MaddAvx2;
    return EncodeVariant::Scalar;
}

const char *
LutTableArena::encodeVariantName(EncodeVariant variant)
{
    switch (variant) {
      case EncodeVariant::DotVnni:
        return "dot-vnni";
      case EncodeVariant::MaddAvx2:
        return "madd-avx2";
      case EncodeVariant::Scalar:
        return "scalar";
      default:
        return "auto";
    }
}

const char *
LutTableArena::int8EncodeKernelName() const
{
    switch (int8EncodeAutoVariant()) {
      case EncodeVariant::DotVnni:
        return "int8-dot-vnni";
      case EncodeVariant::MaddAvx2:
        return "int8-madd-avx2";
      default:
        return "int8-scalar";
    }
}

const char *
LutTableArena::encodeVariantName() const
{
    const util::SimdLevel level = util::simdLevel();
    if (metric_ == vq::Metric::L2) {
        if (num_centroids_ == 16 && simd::encodeL2C16Supported(level))
            return level >= util::SimdLevel::Avx512 ? "avx512-c16"
                                                    : "avx2-c16";
        if (simd::encodeL2GenericSupported(level, num_centroids_))
            return level >= util::SimdLevel::Avx512 ? "avx512-genc"
                                                    : "avx2-genc";
    }
    return "generic";
}

void
LutTableArena::sweepRowsInt8Scalar(const Int8Bank &bank,
                                   const int32_t *codes, int64_t bn,
                                   float *yb) const
{
    // The scalar half of the INT8 gather contract: per scale group,
    // accumulate the group's entries in exact int32 arithmetic, then fold
    // into the float output with ONE mul + add per (group, column) — the
    // same float op sequence the shuffle kernels emit, which is what
    // makes every variant bit-identical. This TU builds with -mno-fma so
    // the mul + add never contracts.
    sweepInt8ColOuter(bank.q.data(), bank.scales.data(), codes, bn,
                      out_features_, num_subspaces_, num_centroids_,
                      bank.num_blocks, bank.num_groups, yb);
}

void
LutTableArena::sweepRowsInt4Scalar(const Int4Bank &bank,
                                   const int32_t *codes, int64_t bn,
                                   float *yb) const
{
    // INT4 half of the same contract: exact biased-nibble accumulation
    // per scale group, one bias-correcting subtract, one dequantizing
    // mul + add per (group, column) — the shuffle kernels' float op
    // sequence, in a -mno-fma TU so it never contracts.
    sweepInt4ColOuter(bank.q4.data(), bank.scales.data(), codes, bn,
                      out_features_, bank.half_n, num_subspaces_,
                      num_centroids_, bank.num_blocks, bank.num_groups,
                      yb);
}

void
LutTableArena::forwardBatch(const float *x, int64_t rows, float *y) const
{
    const int64_t n = out_features_;
    std::vector<int32_t> codes;
    std::vector<float> rounded;  // BF16 staging, reused across blocks

    for (int64_t b0 = 0; b0 < rows; b0 += kRowBlock) {
        const int64_t bn = std::min(kRowBlock, rows - b0);
        const float *xb = x + b0 * in_features_;

        if (bf16_inputs_) {
            rounded.assign(xb, xb + bn * in_features_);
            for (float &value : rounded)
                value = vq::toBf16(value);
            xb = rounded.data();
        }

        codes.resize(static_cast<size_t>(bn * num_subspaces_));
        encodeRows(xb, bn, codes.data());

        float *yb = y + b0 * n;
        std::fill(yb, yb + bn * n, 0.0f);

        // Every path accumulates each output element's partial sums in
        // ascending subspace order into a zero-initialized accumulator —
        // float addition is never reassociated without -ffast-math — so
        // the result matches the reference row-major path bit for bit.
        if (bn >= kTileMinRows)
            sweepBlockGrouped(codes.data(), bn, yb);
        else
            sweepBlockSimple(codes.data(), bn, yb);

        addBias(yb, bn);
    }
}

void
LutTableArena::sweepBlockSimple(const int32_t *codes, int64_t bn,
                                float *yb) const
{
    // Row-major reference shape: best for tiny batches, where the output
    // row lives in L1 and each table entry is one contiguous stream.
    const int64_t n = out_features_;
    for (int64_t r = 0; r < bn; ++r) {
        const int32_t *rcodes = codes + r * num_subspaces_;
        float *__restrict__ yr = yb + r * n;
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const float *__restrict__ psum = entry(s, rcodes[s]);
            for (int64_t col = 0; col < n; ++col)
                yr[col] += psum[col];
        }
    }
}

void
LutTableArena::sweepBlockGrouped(const int32_t *codes, int64_t bn,
                                 float *yb) const
{
    // Subspace-group-major: kSubspaceGroup table banks stay hot across the
    // whole row block, and each group folds its partial sums into the
    // output slab in ONE sweep, dividing y-slab read/write traffic by the
    // group size. Entry rows are read contiguously (prefetch-friendly
    // 4*N-byte streams) — column-tiled variants defeat the hardware
    // prefetcher and measure far slower despite touching fewer bytes.
    const int64_t n = out_features_;
    constexpr int64_t G = kSubspaceGroup;
    for (int64_t s0 = 0; s0 < num_subspaces_; s0 += G) {
        const int64_t g = std::min<int64_t>(G, num_subspaces_ - s0);
        for (int64_t r = 0; r < bn; ++r) {
            const int32_t *rcodes = codes + r * num_subspaces_;
            float *__restrict__ yr = yb + r * n;
            if (g == G) {
                const float *__restrict__ p[G];
                for (int64_t gi = 0; gi < G; ++gi)
                    p[gi] = entry(s0 + gi, rcodes[s0 + gi]);
                for (int64_t col = 0; col < n; ++col) {
                    float acc = yr[col];
                    for (int64_t gi = 0; gi < G; ++gi)
                        acc += p[gi][col];
                    yr[col] = acc;
                }
            } else {
                for (int64_t gi = 0; gi < g; ++gi) {
                    const float *__restrict__ psum =
                        entry(s0 + gi, rcodes[s0 + gi]);
                    for (int64_t col = 0; col < n; ++col)
                        yr[col] += psum[col];
                }
            }
        }
    }
}

Tensor
LutTableArena::forwardBatch(const Tensor &x) const
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
                 "LutTableArena expects [rows, ", in_features_, "], got ",
                 shapeStr(x.shape()));
    Tensor y(Shape{x.dim(0), out_features_});
    forwardBatch(x.data(), x.dim(0), y.data());
    return y;
}

} // namespace lutdla::lutboost
