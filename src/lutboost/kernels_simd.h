#ifndef LUTDLA_LUTBOOST_KERNELS_SIMD_H
#define LUTDLA_LUTBOOST_KERNELS_SIMD_H

/**
 * @file
 * Runtime-dispatched SIMD kernels for the serving data plane.
 *
 * Every function here is compiled with a per-function target attribute
 * (AVX-512BW, AVX2) in a TU built WITHOUT -march=native, so a single
 * binary carries every variant; callers pick one with util::simdLevel()
 * (cpuid at first use) instead of the compile-time #ifdef guards the
 * arena kernels used to rely on. See docs/SERVING.md for the full
 * dispatch matrix (ISA x code width x table precision).
 *
 * Two kernel families:
 *
 *  - encode: fused L2 distance + argmin for the flagship c == 16 shape,
 *    keeping all 16 per-centroid accumulators in one register file.
 *    Bit-exact with the scalar distance + ascending argmin scan
 *    (explicit mul + add, never FMA; lowest-index tie-break; NaN rows
 *    fall back to the scalar scan).
 *
 *  - shuffle gather (INT8 bank, c <= 16): the in-register table lookup
 *    the paper's DPE performs in hardware. Codes for a block of rows are
 *    laid out planar (one byte lane per row), each (subspace, column)'s
 *    16 centroid entries are one vector-register LUT (the interleaved
 *    bank layout), and VPSHUFB resolves 64 (AVX-512) / 32 (AVX2) rows'
 *    lookups per instruction. Partial sums accumulate in int16 lanes
 *    across a scale group and spill through int32 to float once per
 *    group — exact integer arithmetic, so the result is bit-identical
 *    to the scalar group sweep by construction.
 *
 *  - INT4 shuffle gather (nibble-packed bank, c <= 16): same VPSHUFB
 *    machinery over the packed interleaved layout, where each looked-up
 *    byte carries TWO adjacent output columns (low/high nibble plane,
 *    both bias-shifted by +8). One AND + one shift per lookup split the
 *    planes; biased nibbles accumulate in int16 lanes, and one bias-
 *    correcting subtract precedes the per-group dequantizing mul + add
 *    — again bit-identical to the scalar packed sweep.
 */

#include <cstdint>

#include "util/cpu_features.h"

namespace lutdla::lutboost::simd {

/** True when `level` provides the c==16 L2 encode fast path. */
bool encodeL2C16Supported(util::SimdLevel level);

/**
 * Fused L2 distance + argmin of one `v`-float subvector against a
 * transposed [v, 16] codebook at `level` (which must satisfy
 * encodeL2C16Supported). Bit-exact with the scalar reference.
 */
int32_t argminL2C16(util::SimdLevel level, const float *sub,
                    const float *cbt, int64_t v);

/**
 * Batched variant of argminL2C16: encode `rows` subvectors (row i at
 * x + i * stride, `v` floats each) against one transposed [v, 16]
 * codebook, writing one code per row. One call per (subspace, batch), so
 * the per-row argmin stays inlined inside the attributed loop.
 */
void encodeL2C16Rows(util::SimdLevel level, const float *x, int64_t rows,
                     int64_t stride, const float *cbt, int64_t v,
                     int32_t *codes);

/** True when `level` provides the shuffle-based INT8 gather. */
bool shuffleGatherSupported(util::SimdLevel level);

/** Rows one shuffle-gather chunk covers at `level` (64 AVX-512, 32 AVX2;
 * 0 when unsupported). Callers hand tails to the scalar sweep. */
int64_t shuffleGatherChunkRows(util::SimdLevel level);

/**
 * Shuffle-gather one chunk of exactly shuffleGatherChunkRows(level) rows
 * over the interleaved INT8 bank, writing column-major partial sums.
 *
 * @param q_il       interleaved bank: entry (s, col, j) at
 *                   ((s * n + col) * 16 + j), j padded to 16 with zeros.
 * @param scales     dequant scales, one per (scale group, column block):
 *                   scales[g * num_blocks + block].
 * @param planar     planar codes for the chunk: code (s, row r) at
 *                   (s * chunk + r); values < 16.
 * @param num_subspaces / n / num_blocks / scale_group / block_cols
 *                   bank geometry (see LutTableArena).
 * @param colmajor   [n, chunk] output, overwritten: colmajor[col * chunk
 *                   + r] = sum over groups of scale * int-sum. The caller
 *                   transposes into the row-major output block.
 */
void shuffleGatherChunk(util::SimdLevel level, const int8_t *q_il,
                        const float *scales, const uint8_t *planar,
                        int64_t num_subspaces, int64_t n,
                        int64_t num_blocks, int64_t scale_group,
                        int64_t block_cols, float *colmajor);

/**
 * INT4 twin of shuffleGatherChunk over the nibble-packed interleaved
 * bank: one chunk of exactly shuffleGatherChunkRows(level) rows, writing
 * column-major partial sums for ALL n output columns.
 *
 * @param q4_il      packed interleaved bank: the byte at
 *                   ((s * half_n + p) * 16 + j) carries entry (s, col
 *                   2p, j) in its low nibble and entry (s, col 2p+1, j)
 *                   in its high nibble, both bias-shifted by +8 (pad
 *                   nibbles hold 8, the exact zero), where half_n =
 *                   ceil(n / 2).
 * @param scales     dequant scales as in shuffleGatherChunk; block_cols
 *                   must be even so a column pair never straddles a
 *                   scale block.
 * Other parameters and the colmajor output contract match
 * shuffleGatherChunk (an odd n's final column is still written; the
 * missing odd partner is simply never stored).
 */
void shuffleGatherChunkInt4(util::SimdLevel level, const uint8_t *q4_il,
                            const float *scales, const uint8_t *planar,
                            int64_t num_subspaces, int64_t n,
                            int64_t num_blocks, int64_t scale_group,
                            int64_t block_cols, float *colmajor);

/** True when `level` provides the VPERMB/VPDPBUSD dot-accumulate gather
 * (requires SimdLevel::Avx512Vnni). */
bool vnniGatherSupported(util::SimdLevel level);

/**
 * Dot-accumulate gather for one 64-row chunk over the QUAD-interleaved
 * INT8 bank: entries of four consecutive subspaces live in one 64-byte
 * LUT (`q_quad[(quad * n + col) * 64 + 16 * j + e]` = entry e of
 * subspace 4*quad+j, zero-padded past c and past the last subspace), so
 * one VPERMB resolves 16 rows x 4 subspaces of lookups and one VPDPBUSD
 * folds each row's four looked-up bytes into its int32 lane — no
 * widening chain at all, which is what the plain shuffle kernel spends
 * most of its shuffle-port budget on (~2.5x faster at c=16). Same
 * contract as shuffleGatherChunk otherwise: exact integer accumulation
 * per scale group, one dequantizing mul + add per group, column-major
 * output — bit-identical to every other variant.
 */
void vnniGatherChunk(const int8_t *q_quad, const float *scales,
                     const uint8_t *planar, int64_t num_subspaces,
                     int64_t n, int64_t num_blocks, int64_t scale_group,
                     int64_t block_cols, float *colmajor);

} // namespace lutdla::lutboost::simd

#endif // LUTDLA_LUTBOOST_KERNELS_SIMD_H
