#ifndef LUTDLA_LUTBOOST_KERNELS_SIMD_H
#define LUTDLA_LUTBOOST_KERNELS_SIMD_H

/**
 * @file
 * Runtime-dispatched SIMD kernels for the serving data plane.
 *
 * Every function here is compiled with a per-function target attribute
 * (AVX-512BW, AVX2) in a TU built WITHOUT -march=native, so a single
 * binary carries every variant; callers pick one with util::simdLevel()
 * (cpuid at first use) instead of the compile-time #ifdef guards the
 * arena kernels used to rely on. See docs/SERVING.md for the full
 * dispatch matrix (ISA x code width x table precision).
 *
 * Three kernel families:
 *
 *  - float encode: fused L2 distance + argmin for the flagship c == 16
 *    shape, keeping all 16 per-centroid accumulators in one register
 *    file, plus a masked generic-c tier for any c <= 64 (centroid
 *    blocks of 16/8 lanes, pad lanes parked at +inf). Bit-exact with
 *    the scalar distance + ascending argmin scan (explicit mul + add,
 *    never FMA; lowest-index tie-break; NaN rows fall back to the
 *    scalar scan).
 *
 *  - INT8 encode: integer argmin over the quantized encode bank.
 *    Input subvectors are quantized onto the SAME per-subspace 7-bit
 *    affine grid as the bank's centroids (x_u = clamp(round((x - lo) *
 *    inv), 0, 127)), so argmin ||x - c||^2 collapses to an integer
 *    argmin over (||c_u||^2 - 2 * x_u . c_s) with c_s = c_u - 128 —
 *    the dropped ||x_u||^2 and -256 * sum(x_u) terms are constant
 *    across centroids. The VNNI tier folds 4 dims x 16 centroids per
 *    VPDPBUSD over the quad-interleaved bank; the AVX2 tier pairs
 *    VPMADDUBSW + VPMADDWD (the 7-bit x grid caps a pair sum at
 *    127 * 128 * 2 = 32512, so the int16 maddubs lanes can never
 *    saturate). Every tier computes the identical int32 scores, so the
 *    result is bit-identical to the scalar integer reference by
 *    construction.
 *
 *  - shuffle gather (INT8 bank, c <= 16): the in-register table lookup
 *    the paper's DPE performs in hardware. Codes for a block of rows are
 *    laid out planar (one byte lane per row), each (subspace, column)'s
 *    16 centroid entries are one vector-register LUT (the interleaved
 *    bank layout), and VPSHUFB resolves 64 (AVX-512) / 32 (AVX2) rows'
 *    lookups per instruction. Partial sums accumulate in int16 lanes
 *    across a scale group and spill through int32 to float once per
 *    group — exact integer arithmetic, so the result is bit-identical
 *    to the scalar group sweep by construction.
 *
 *  - INT4 shuffle gather (nibble-packed bank, c <= 16): same VPSHUFB
 *    machinery over the packed interleaved layout, where each looked-up
 *    byte carries TWO adjacent output columns (low/high nibble plane,
 *    both bias-shifted by +8). One AND + one shift per lookup split the
 *    planes; biased nibbles accumulate in int16 lanes, and one bias-
 *    correcting subtract precedes the per-group dequantizing mul + add
 *    — again bit-identical to the scalar packed sweep.
 */

#include <cstdint>

#include "util/cpu_features.h"

namespace lutdla::lutboost::simd {

/** True when `level` provides the c==16 L2 encode fast path. */
bool encodeL2C16Supported(util::SimdLevel level);

/**
 * Fused L2 distance + argmin of one `v`-float subvector against a
 * transposed [v, 16] codebook at `level` (which must satisfy
 * encodeL2C16Supported). Bit-exact with the scalar reference.
 */
int32_t argminL2C16(util::SimdLevel level, const float *sub,
                    const float *cbt, int64_t v);

/**
 * Batched variant of argminL2C16: encode `rows` subvectors (row i at
 * x + i * stride, `v` floats each) against one transposed [v, 16]
 * codebook, writing one code per row. One call per (subspace, batch), so
 * the per-row argmin stays inlined inside the attributed loop.
 */
void encodeL2C16Rows(util::SimdLevel level, const float *x, int64_t rows,
                     int64_t stride, const float *cbt, int64_t v,
                     int32_t *codes);

/** True when `level` provides the masked generic-c (c <= 64) L2 encode
 * tier for centroid counts without a dedicated fast path. */
bool encodeL2GenericSupported(util::SimdLevel level, int64_t c);

/**
 * Generic-c twin of encodeL2C16Rows: encode `rows` subvectors against one
 * transposed [v, c] codebook for any 2 <= c <= 64. Centroids are
 * processed in masked blocks of 16 (AVX-512) / 8 (AVX2) lanes with pad
 * lanes parked at +inf; the cross-block argmin scans blocks in ascending
 * order and breaks ties toward the lowest index, so the result is
 * bit-exact with the scalar distance + ascending argmin scan (NaN rows
 * fall back to the scalar scan).
 */
void encodeL2GenericRows(util::SimdLevel level, const float *x,
                         int64_t rows, int64_t stride, const float *cbt,
                         int64_t v, int64_t c, int32_t *codes);

/** True when `level` provides an INT8 integer argmin-encode tier
 * (requires AVX2; the VNNI tier additionally requires
 * SimdLevel::Avx512Vnni). */
bool int8EncodeSupported(util::SimdLevel level);

/**
 * INT8 integer argmin-encode of `rows` subvectors (row i at x + i *
 * stride, `v` floats each, v <= 128) against one subspace's quantized
 * encode bank at `level` (which must satisfy int8EncodeSupported).
 *
 * Each subvector is quantized onto the bank's 7-bit grid (x_u =
 * clamp(round((x - lo) * inv), 0, 127), NaN -> 0) and scored against all
 * 16 centroid lanes as score_j = norms[j] - 2 * dot(x_u, cs_quad[j]) in
 * exact int32 arithmetic; pad centroids carry norms = INT32_MAX and
 * all-zero bank bytes so they never win. Lowest-index tie-break.
 *
 * @param cs_quad  quad-interleaved signed bank for this subspace: byte
 *                 (q * 16 + j) * 4 + k holds c_s[j][4q + k] = c_u - 128
 *                 (zero past v and past c), q < vq4 = ceil(v / 4).
 * @param norms    16 int32 centroid norms ||c_u||^2 (INT32_MAX pads).
 * @param lo, inv  the subspace's affine grid (inv = 1 / step).
 *
 * At SimdLevel::Avx512Vnni the dot is one VPDPBUSD per quad; at AVX2 /
 * plain AVX-512 it is VPMADDUBSW + VPMADDWD over two 8-centroid halves.
 * Both produce the identical int32 scores as the scalar reference in
 * LutTableArena, so codes match bit-for-bit.
 */
void encodeInt8C16Rows(util::SimdLevel level, const float *x, int64_t rows,
                       int64_t stride, const int8_t *cs_quad,
                       const int32_t *norms, float lo, float inv,
                       int64_t v, int32_t *codes);

/** True when `level` provides the shuffle-based INT8 gather. */
bool shuffleGatherSupported(util::SimdLevel level);

/** Rows one shuffle-gather chunk covers at `level` (64 AVX-512, 32 AVX2;
 * 0 when unsupported). Callers hand tails to the scalar sweep. */
int64_t shuffleGatherChunkRows(util::SimdLevel level);

/**
 * Shuffle-gather one chunk of exactly shuffleGatherChunkRows(level) rows
 * over the interleaved INT8 bank, writing column-major partial sums.
 *
 * @param q_il       interleaved bank: entry (s, col, j) at
 *                   ((s * n + col) * 16 + j), j padded to 16 with zeros.
 * @param scales     dequant scales, one per (scale group, column block):
 *                   scales[g * num_blocks + block].
 * @param planar     planar codes for the chunk: code (s, row r) at
 *                   (s * chunk + r); values < 16.
 * @param num_subspaces / n / num_blocks / scale_group / block_cols
 *                   bank geometry (see LutTableArena).
 * @param colmajor   [n, chunk] output, overwritten: colmajor[col * chunk
 *                   + r] = sum over groups of scale * int-sum. The caller
 *                   transposes into the row-major output block.
 */
void shuffleGatherChunk(util::SimdLevel level, const int8_t *q_il,
                        const float *scales, const uint8_t *planar,
                        int64_t num_subspaces, int64_t n,
                        int64_t num_blocks, int64_t scale_group,
                        int64_t block_cols, float *colmajor);

/**
 * INT4 twin of shuffleGatherChunk over the nibble-packed interleaved
 * bank: one chunk of exactly shuffleGatherChunkRows(level) rows, writing
 * column-major partial sums for ALL n output columns.
 *
 * @param q4_il      packed interleaved bank: the byte at
 *                   ((s * half_n + p) * 16 + j) carries entry (s, col
 *                   2p, j) in its low nibble and entry (s, col 2p+1, j)
 *                   in its high nibble, both bias-shifted by +8 (pad
 *                   nibbles hold 8, the exact zero), where half_n =
 *                   ceil(n / 2).
 * @param scales     dequant scales as in shuffleGatherChunk; block_cols
 *                   must be even so a column pair never straddles a
 *                   scale block.
 * Other parameters and the colmajor output contract match
 * shuffleGatherChunk (an odd n's final column is still written; the
 * missing odd partner is simply never stored).
 */
void shuffleGatherChunkInt4(util::SimdLevel level, const uint8_t *q4_il,
                            const float *scales, const uint8_t *planar,
                            int64_t num_subspaces, int64_t n,
                            int64_t num_blocks, int64_t scale_group,
                            int64_t block_cols, float *colmajor);

/** True when `level` provides the VPERMB/VPDPBUSD dot-accumulate gather
 * (requires SimdLevel::Avx512Vnni). */
bool vnniGatherSupported(util::SimdLevel level);

/**
 * Dot-accumulate gather for one 64-row chunk over the QUAD-interleaved
 * INT8 bank: entries of four consecutive subspaces live in one 64-byte
 * LUT (`q_quad[(quad * n + col) * 64 + 16 * j + e]` = entry e of
 * subspace 4*quad+j, zero-padded past c and past the last subspace), so
 * one VPERMB resolves 16 rows x 4 subspaces of lookups and one VPDPBUSD
 * folds each row's four looked-up bytes into its int32 lane — no
 * widening chain at all, which is what the plain shuffle kernel spends
 * most of its shuffle-port budget on (~2.5x faster at c=16). Same
 * contract as shuffleGatherChunk otherwise: exact integer accumulation
 * per scale group, one dequantizing mul + add per group, column-major
 * output — bit-identical to every other variant.
 */
void vnniGatherChunk(const int8_t *q_quad, const float *scales,
                     const uint8_t *planar, int64_t num_subspaces,
                     int64_t n, int64_t num_blocks, int64_t scale_group,
                     int64_t block_cols, float *colmajor);

} // namespace lutdla::lutboost::simd

#endif // LUTDLA_LUTBOOST_KERNELS_SIMD_H
