#ifndef LUTDLA_LUTBOOST_LUT_LINEAR_H
#define LUTDLA_LUTBOOST_LUT_LINEAR_H

/**
 * @file
 * The LUT operator: a drop-in replacement for nn::Linear that routes the
 * input through vector quantization (Sec. II-B / V of the paper).
 *
 * Forward:  A -> encode (argmin distance per subspace) -> A_hat -> A_hat*W.
 * Backward: straight-through estimator for the non-differentiable argmin
 *           (dL/dA ~= dL/dA_hat), VQ-VAE-style scatter gradients into the
 *           selected centroids, plus the paper's symmetric reconstruction
 *           loss  Lre = (SG(A_hat W) - A W)^2 + (A_hat W - SG(A W))^2
 *           scaled by a penalty ratio.
 */

#include <atomic>
#include <memory>
#include <mutex>

#include "lutboost/table_arena.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "vq/lut.h"
#include "vq/pq.h"

namespace lutdla::lutboost {

/** Vector-quantized linear layer. */
class LutLinear : public nn::Layer
{
  public:
    /**
     * Construct with randomly initialized centroids (single-stage setups
     * initialize this way; LUTBoost overwrites via calibration).
     */
    LutLinear(int64_t in_features, int64_t out_features, vq::PQConfig pq,
              bool bias = true, uint64_t seed = 23);

    /** Clone weights/bias from an existing Linear (operator replace). */
    static std::shared_ptr<LutLinear> fromLinear(const nn::Linear &linear,
                                                 vq::PQConfig pq);

    std::string name() const override { return "LutLinear"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<nn::Parameter *> parameters() override;
    double auxLoss() const override { return aux_loss_; }

    int64_t inFeatures() const { return in_features_; }
    int64_t outFeatures() const { return out_features_; }

    /**
     * Rows of the most recent forward() input (0 before any forward).
     * Convolutions reach this layer post-im2col, so for them this is
     * batch x output-pixels — exactly the M of the lowered GEMM, which is
     * how the pipeline facade extracts a deployment trace from a model.
     *
     * Contract: this is a *trace probe* for the single-threaded extraction
     * flow (drive one forward(), then read it). The store/load pair is
     * atomic so concurrent readers never see a torn value, but the probe is
     * NOT a per-call result: interleaved forward() calls from several
     * threads leave whichever row count was stored last. forwardBatch()
     * deliberately never updates it — batched callers take the row count
     * from the returned tensor (`result.dim(0)`) instead.
     */
    int64_t
    lastForwardRows() const
    {
        return last_forward_rows_.load(std::memory_order_relaxed);
    }
    const vq::PQConfig &pqConfig() const { return pq_config_; }
    int64_t numSubspaces() const { return num_subspaces_; }

    /** Centroid parameter, shaped [Nc, c, v]. */
    nn::Parameter &centroids() { return centroids_; }
    nn::Parameter &weight() { return weight_; }
    nn::Parameter &bias() { return bias_; }

    /** Reconstruction-loss penalty ratio (0 disables the term). */
    void setReconPenalty(double penalty) { recon_penalty_ = penalty; }
    double reconPenalty() const { return recon_penalty_; }

    /** @name Calibration (LUTBoost stage 1->2 bridge)
     * While calibrating, forward() behaves as the exact Linear and records
     * input rows; finishCalibration() k-means-inits the codebooks from the
     * recorded activations.
     * @{
     */
    void beginCalibration(int64_t max_rows = 4096);
    void finishCalibration();
    bool calibrating() const { return calibrating_; }
    /** @} */

    /** Encode rows of x to [rows, Nc] indices with current centroids. */
    std::vector<int32_t> encode(const Tensor &x) const;

    /** Quantized reconstruction A_hat of x under current centroids. */
    Tensor quantize(const Tensor &x) const;

    /**
     * Inference precision: when set, eval-mode forward() uses a frozen
     * LookupTable honoring BF16 similarity / INT8 entries. Call
     * refreshInferenceLut() after training to (re)build it.
     */
    void setPrecision(vq::LutPrecision precision);
    void refreshInferenceLut();
    void clearInferenceLut();

    /** True once refreshInferenceLut() has frozen the inference tables. */
    bool inferenceLutReady() const { return use_inference_lut_; }

    /** Precision the inference LUT was (or will be) frozen with. */
    const vq::LutPrecision &precision() const { return precision_; }

    /**
     * Batched frozen-LUT inference through the flat table arena.
     *
     * Bit-exact with calling eval-mode forward() row by row on a frozen
     * layer, but row-blocked so table banks stay cache-resident across the
     * batch. Thread-safe: const, touches only the immutable arena, and does
     * not update lastForwardRows() or auxLoss(). Requires
     * refreshInferenceLut() first (panics otherwise — serving code guards
     * this via inferenceLutReady()).
     */
    Tensor forwardBatch(const Tensor &x) const;

    /**
     * Shared handle to the frozen arena; panics before
     * refreshInferenceLut(). Built lazily on first use (forwardBatch or
     * this accessor), so freeze-only flows — deployPrecision accuracy
     * evals that never serve — pay no extra table memory. The serving
     * layer aliases the returned pointer, so an engine keeps working even
     * if the layer is later re-trained or re-frozen. Safe to call
     * concurrently with forwardBatch(); NOT safe concurrently with
     * refreshInferenceLut()/clearInferenceLut().
     */
    std::shared_ptr<const LutTableArena> inferenceArena() const;

  private:
    /** Copy the padded subvector for subspace `s` of `row` into `out`. */
    void extractSub(const float *row, int64_t s, float *out) const;

    /** Scatter dA_hat into centroid grads following `codes`. */
    void scatterCentroidGrad(const Tensor &d_ahat,
                             const std::vector<int32_t> &codes);

    /** Build a ProductQuantizer view of the current centroid parameter. */
    vq::ProductQuantizer snapshotQuantizer(bool bf16) const;

    int64_t in_features_;
    int64_t out_features_;
    vq::PQConfig pq_config_;
    int64_t num_subspaces_;
    bool has_bias_;

    nn::Parameter weight_;     ///< [in, out]
    nn::Parameter bias_;       ///< [out]
    nn::Parameter centroids_;  ///< [Nc, c, v]

    double recon_penalty_ = 0.0;
    double aux_loss_ = 0.0;
    std::atomic<int64_t> last_forward_rows_{0};

    // Training caches.
    Tensor cached_input_;
    Tensor cached_ahat_;
    Tensor cached_diff_;       ///< D = A_hat*W - A*W when recon active
    std::vector<int32_t> cached_codes_;

    // Calibration state.
    bool calibrating_ = false;
    int64_t calib_cap_ = 0;
    std::vector<float> calib_rows_;
    int64_t calib_count_ = 0;

    // Inference LUT (reference path) + flat arena (batched path). The
    // arena duplicates the frozen tables in serving layout, so it is
    // built lazily under arena_mu_ the first time serving asks for it.
    vq::LutPrecision precision_;
    bool use_inference_lut_ = false;
    std::unique_ptr<vq::ProductQuantizer> infer_pq_;
    std::unique_ptr<vq::LookupTable> infer_lut_;
    mutable std::mutex arena_mu_;
    mutable std::shared_ptr<const LutTableArena> infer_arena_;
};

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_LUT_LINEAR_H
