#include "lutboost/kernels.h"

namespace lutdla::lutboost {

void
KernelBackend::encodeBatch(const LutTableArena &arena, const float *x,
                           int64_t rows, KernelScratch &scratch) const
{
    // Both backends share the exact argmin encode: quantization applies
    // only to the gather-side tables, so reference and quantized plans
    // select identical codes and differ purely in accumulation precision.
    arena.encodeBatch(x, rows, scratch.codes, scratch.staging);
}

void
KernelBackend::prepare(const LutTableArena &) const
{
}

namespace {

/** Float-bank gather: bit-exact with LutTableArena::forwardBatch. */
class ReferenceBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "float32"; }
    bool bitExact() const override { return true; }

    void
    gatherAccumulate(const LutTableArena &arena, KernelScratch &scratch,
                     float *y) const override
    {
        arena.gatherAccumulate(scratch.codes, y, scratch.unpacked);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.sizeBytes();
    }
};

/** INT8-bank gather: ~4x less table traffic, approximate. */
class QuantizedBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "int8"; }
    bool bitExact() const override { return false; }

    void
    gatherAccumulate(const LutTableArena &arena, KernelScratch &scratch,
                     float *y) const override
    {
        arena.gatherAccumulateInt8(scratch.codes, y, scratch.unpacked);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.int8TableBytes();
    }

    void
    prepare(const LutTableArena &arena) const override
    {
        arena.ensureInt8Bank();
    }
};

} // namespace

const KernelBackend &
referenceBackend()
{
    static const ReferenceBackend backend;
    return backend;
}

const KernelBackend &
quantizedBackend()
{
    static const QuantizedBackend backend;
    return backend;
}

} // namespace lutdla::lutboost
