#include "lutboost/kernels.h"

#include <chrono>

#include "lutboost/kernels_simd.h"
#include "util/cpu_features.h"

namespace lutdla::lutboost {

namespace {

uint64_t
nanosSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** Shuffle chunk when the vector kernels dispatch, else the float/scalar
 * sweeps' row-block granularity. */
int64_t
chunkOrRowBlock(bool scalar)
{
    if (scalar)
        return LutTableArena::kRowBlock;
    const int64_t chunk = simd::shuffleGatherChunkRows(util::simdLevel());
    return chunk > 0 ? chunk : LutTableArena::kRowBlock;
}

/** True when the arena can honor an Int8 encode request; unsupported
 * arenas (non-L2 metric, oversized subvectors) fall back to the exact
 * float argmin rather than faulting — the planner resolves the same
 * predicate, so the fallback only fires for hand-built configurations. */
bool
useInt8Encode(const LutTableArena &arena, EncodePrecision encode)
{
    return encode == EncodePrecision::Int8 && arena.int8EncodeSupported();
}

} // namespace

const char *
encodePrecisionName(EncodePrecision precision)
{
    return precision == EncodePrecision::Int8 ? "int8" : "float32";
}

void
KernelBackend::encodeBatch(const LutTableArena &arena, const float *x,
                           int64_t rows, KernelScratch &scratch,
                           EncodePrecision encode) const
{
    // Every backend shares the arena's encode phase; `encode` picks the
    // argmin arithmetic (exact float scan vs integer scan over the INT8
    // encode bank), independent of the gather-side table precision.
    if (useInt8Encode(arena, encode)) {
        arena.ensureInt8EncodeBank();
        arena.encodeBatchInt8(x, rows, scratch.codes, scratch.staging);
        return;
    }
    arena.encodeBatch(x, rows, scratch.codes, scratch.staging);
}

void
KernelBackend::encodePrepare(const LutTableArena &arena, int64_t rows,
                             vq::CodeBuffer &codes) const
{
    codes.reset(rows, arena.numSubspaces(), arena.numCentroids());
}

void
KernelBackend::encodeBlock(const LutTableArena &arena, const float *x,
                           int64_t row0, int64_t rows,
                           vq::CodeBuffer &codes, KernelScratch &local,
                           EncodePrecision encode) const
{
    if (useInt8Encode(arena, encode)) {
        arena.ensureInt8EncodeBank();
        arena.encodeBlockInt8(x, row0, rows, codes, local.staging);
        return;
    }
    arena.encodeBlock(x, row0, rows, codes, local.staging);
}

void
KernelBackend::gatherAccumulate(const LutTableArena &arena,
                                KernelScratch &scratch, float *y) const
{
    gatherBlock(arena, scratch.codes, 0, scratch.codes.rows(), y, scratch);
}

void
KernelBackend::forwardTile(const LutTableArena &arena, const float *x,
                           int64_t rows, float *y, KernelScratch &scratch,
                           uint64_t *encode_ns, uint64_t *gather_ns,
                           EncodePrecision encode) const
{
    const auto t0 = std::chrono::steady_clock::now();
    encodeBatch(arena, x, rows, scratch, encode);
    if (encode_ns != nullptr)
        *encode_ns += nanosSince(t0);
    const auto t1 = std::chrono::steady_clock::now();
    gatherAccumulate(arena, scratch, y);
    if (gather_ns != nullptr)
        *gather_ns += nanosSince(t1);
}

int64_t
KernelBackend::gatherGranuleRows(const LutTableArena &) const
{
    // Float grouped sweep: one table pass per kRowBlock rows.
    return LutTableArena::kRowBlock;
}

void
KernelBackend::prepare(const LutTableArena &) const
{
}

namespace {

/** Float-bank gather: bit-exact with LutTableArena::forwardBatch. */
class ReferenceBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "float32"; }
    bool bitExact() const override { return true; }

    void
    gatherBlock(const LutTableArena &arena, const vq::CodeBuffer &codes,
                int64_t row0, int64_t rows, float *y,
                KernelScratch &local) const override
    {
        arena.gatherAccumulate(codes, row0, rows, y, local.gather);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.sizeBytes();
    }
};

/** INT8-bank gather: ~4x less table traffic, approximate. The variant
 * (shuffle vs scalar) resolves per arena + CPU at run time. */
class QuantizedBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "int8"; }
    bool bitExact() const override { return false; }

    void
    gatherBlock(const LutTableArena &arena, const vq::CodeBuffer &codes,
                int64_t row0, int64_t rows, float *y,
                KernelScratch &local) const override
    {
        arena.gatherAccumulateInt8(codes, row0, rows, y, local.gather);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.int8TableBytes();
    }

    int64_t
    gatherGranuleRows(const LutTableArena &arena) const override
    {
        return chunkOrRowBlock(arena.int8AutoVariant() ==
                               Int8GatherVariant::Scalar);
    }

    int64_t
    residentBytes(const LutTableArena &arena) const override
    {
        return arena.int8ResidentBytes();
    }

    void
    prepare(const LutTableArena &arena) const override
    {
        arena.ensureInt8Bank();
    }
};

/** INT4-bank gather: nibble-packed tables, ~8x less traffic than float
 * and half the INT8 bank; coarser quantization (see docs/SERVING.md). */
class Int4Backend final : public KernelBackend
{
  public:
    std::string name() const override { return "int4"; }
    bool bitExact() const override { return false; }

    void
    gatherBlock(const LutTableArena &arena, const vq::CodeBuffer &codes,
                int64_t row0, int64_t rows, float *y,
                KernelScratch &local) const override
    {
        arena.gatherAccumulateInt4(codes, row0, rows, y, local.gather);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.int4TableBytes();
    }

    int64_t
    gatherGranuleRows(const LutTableArena &arena) const override
    {
        return chunkOrRowBlock(arena.int4AutoVariant() ==
                               Int4GatherVariant::Scalar);
    }

    int64_t
    residentBytes(const LutTableArena &arena) const override
    {
        return arena.int4ResidentBytes();
    }

    void
    prepare(const LutTableArena &arena) const override
    {
        arena.ensureInt4Bank();
    }
};

} // namespace

const KernelBackend &
referenceBackend()
{
    static const ReferenceBackend backend;
    return backend;
}

const KernelBackend &
quantizedBackend()
{
    static const QuantizedBackend backend;
    return backend;
}

const KernelBackend &
int4Backend()
{
    static const Int4Backend backend;
    return backend;
}

} // namespace lutdla::lutboost
