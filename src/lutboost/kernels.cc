#include "lutboost/kernels.h"

namespace lutdla::lutboost {

void
KernelBackend::encodeBatch(const LutTableArena &arena, const float *x,
                           int64_t rows, KernelScratch &scratch) const
{
    // Both backends share the exact argmin encode: quantization applies
    // only to the gather-side tables, so reference and quantized plans
    // select identical codes and differ purely in accumulation precision.
    arena.encodeBatch(x, rows, scratch.codes, scratch.staging);
}

void
KernelBackend::encodePrepare(const LutTableArena &arena, int64_t rows,
                             vq::CodeBuffer &codes) const
{
    codes.reset(rows, arena.numSubspaces(), arena.numCentroids());
}

void
KernelBackend::encodeBlock(const LutTableArena &arena, const float *x,
                           int64_t row0, int64_t rows,
                           vq::CodeBuffer &codes,
                           KernelScratch &local) const
{
    arena.encodeBlock(x, row0, rows, codes, local.staging);
}

void
KernelBackend::gatherAccumulate(const LutTableArena &arena,
                                KernelScratch &scratch, float *y) const
{
    gatherBlock(arena, scratch.codes, 0, scratch.codes.rows(), y, scratch);
}

void
KernelBackend::prepare(const LutTableArena &) const
{
}

namespace {

/** Float-bank gather: bit-exact with LutTableArena::forwardBatch. */
class ReferenceBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "float32"; }
    bool bitExact() const override { return true; }

    void
    gatherBlock(const LutTableArena &arena, const vq::CodeBuffer &codes,
                int64_t row0, int64_t rows, float *y,
                KernelScratch &local) const override
    {
        arena.gatherAccumulate(codes, row0, rows, y, local.gather);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.sizeBytes();
    }
};

/** INT8-bank gather: ~4x less table traffic, approximate. The variant
 * (shuffle vs scalar) resolves per arena + CPU at run time. */
class QuantizedBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "int8"; }
    bool bitExact() const override { return false; }

    void
    gatherBlock(const LutTableArena &arena, const vq::CodeBuffer &codes,
                int64_t row0, int64_t rows, float *y,
                KernelScratch &local) const override
    {
        arena.gatherAccumulateInt8(codes, row0, rows, y, local.gather);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.int8TableBytes();
    }

    int64_t
    residentBytes(const LutTableArena &arena) const override
    {
        return arena.int8ResidentBytes();
    }

    void
    prepare(const LutTableArena &arena) const override
    {
        arena.ensureInt8Bank();
    }
};

/** INT4-bank gather: nibble-packed tables, ~8x less traffic than float
 * and half the INT8 bank; coarser quantization (see docs/SERVING.md). */
class Int4Backend final : public KernelBackend
{
  public:
    std::string name() const override { return "int4"; }
    bool bitExact() const override { return false; }

    void
    gatherBlock(const LutTableArena &arena, const vq::CodeBuffer &codes,
                int64_t row0, int64_t rows, float *y,
                KernelScratch &local) const override
    {
        arena.gatherAccumulateInt4(codes, row0, rows, y, local.gather);
    }

    int64_t
    tableBytes(const LutTableArena &arena) const override
    {
        return arena.int4TableBytes();
    }

    int64_t
    residentBytes(const LutTableArena &arena) const override
    {
        return arena.int4ResidentBytes();
    }

    void
    prepare(const LutTableArena &arena) const override
    {
        arena.ensureInt4Bank();
    }
};

} // namespace

const KernelBackend &
referenceBackend()
{
    static const ReferenceBackend backend;
    return backend;
}

const KernelBackend &
quantizedBackend()
{
    static const QuantizedBackend backend;
    return backend;
}

const KernelBackend &
int4Backend()
{
    static const Int4Backend backend;
    return backend;
}

} // namespace lutdla::lutboost
