#ifndef LUTDLA_LUTBOOST_KERNELS_H
#define LUTDLA_LUTBOOST_KERNELS_H

/**
 * @file
 * The precision-pluggable kernel backend behind the serving data plane.
 *
 * A frozen LUT layer executes in two phases — encode (argmin each row's
 * subvectors against the codebooks, producing bit-packed centroid indices)
 * and gather (accumulate the indexed PSum table rows into the output) —
 * and KernelBackend is the seam where the precision of each phase is
 * chosen:
 *
 *  - referenceBackend(): float table bank; with the default Float32
 *    encode it is bit-exact with eval-mode LutLinear::forward (the
 *    numerics contract every serving test pins).
 *  - quantizedBackend(): gather over the arena's INT8-quantized bank
 *    (per-(subspace, output-block) symmetric scales, ~4x less table
 *    traffic). Approximate — docs/SERVING.md documents the error
 *    envelope, and tests bound top-1 disagreement.
 *  - int4Backend(): gather over the nibble-packed INT4 bank (two output
 *    columns per byte, ~8x less traffic than float). Coarser still; the
 *    per-stage mixed-precision auto-tuner (serve/autotune.h) decides
 *    where it is safe.
 *
 * The ENCODE phase has its own, orthogonal precision axis
 * (EncodePrecision below): every backend defaults to the exact float
 * argmin, and any backend can instead run the INT8 integer argmin over
 * the arena's quantized encode bank — the planner picks per stage, and
 * the auto-tuner searches the joint (table, encode) space.
 *
 * Backends are stateless singletons; all mutable per-batch state lives in
 * the caller-owned KernelScratch, so one backend serves every worker
 * thread concurrently. Serving stages (serve/stage.h) hold a backend
 * pointer chosen by the lowering-time planner (serve/plan.h) and emit
 * encodeBatch/gatherAccumulate calls instead of doing inline math.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "lutboost/table_arena.h"
#include "vq/code_buffer.h"

namespace lutdla::lutboost {

/**
 * Issue software prefetches for the first `bytes` of `p` (one per cache
 * line, read-intent, moderate temporal locality). The row-tiled segment
 * executor uses this to pull the NEXT tile's input rows toward L1/L2
 * while the current tile is still streaming through the segment, hiding
 * the cold-plane latency the full-batch executor paid at every stage
 * boundary. Callers cap `bytes` — prefetching beyond a few tens of KB
 * just evicts what the current tile is using.
 */
inline void
prefetchSpan(const void *p, int64_t bytes)
{
#if defined(__GNUC__) || defined(__clang__)
    const char *line = static_cast<const char *>(p);
    for (int64_t off = 0; off < bytes; off += 64)
        __builtin_prefetch(line + off, 0, 2);
#else
    (void)p;
    (void)bytes;
#endif
}

/**
 * Reusable per-caller buffers for one in-flight batch of kernel calls:
 * the packed code buffer the encode phase fills and the gather phase
 * reads, plus the float staging planes (BF16 rounding, fused width
 * adaptation) and the gather-side scratch (unpacked codes, planar code
 * lanes, shuffle accumulators). Owned by the serving StageScratch so
 * steady-state batches perform no allocations. When a batch is sharded
 * across workers, the CodeBuffer of the INITIATING worker is shared
 * (disjoint row spans never race) while each participant brings its own
 * staging/gather scratch.
 */
struct KernelScratch
{
    vq::CodeBuffer codes;        ///< bit-packed [rows, Nc] indices
    std::vector<float> staging;  ///< BF16-rounded input rows
    std::vector<float> adapted;  ///< width-adapted input rows
    GatherScratch gather;        ///< unpacked / planar / colmajor scratch
};

/**
 * Precision of the ENCODE phase, orthogonal to the backend's gather
 * precision: Float32 is the bit-exact argmin every numerics contract
 * pins; Int8 runs the integer argmin over the arena's quantized encode
 * bank (VNNI/AVX2 tiers, ~4x less codebook traffic) and carries a top-1
 * agreement envelope instead. Lives here rather than in serve/plan.h so
 * the lutboost layer needs no serve dependency; the serving planner
 * re-exports it (serve::EncodePrecision) and resolves per-stage choices.
 */
enum class EncodePrecision
{
    Float32,  ///< exact float argmin (default; bit-exact contract)
    Int8      ///< integer argmin over the INT8 encode bank (L2 only)
};

/** Stable tag for plans and reports: "float32" / "int8". */
const char *encodePrecisionName(EncodePrecision precision);

/**
 * One precision choice for the encode -> gather execution of a frozen LUT
 * layer. Implementations are stateless and thread-safe; per-batch state
 * lives in the caller's KernelScratch.
 */
class KernelBackend
{
  public:
    virtual ~KernelBackend() = default;

    /** Stable backend tag for plans and reports, e.g. "float32". */
    virtual std::string name() const = 0;

    /** True when gather runs over the bit-exact float bank. */
    virtual bool bitExact() const = 0;

    /**
     * Encode phase: argmin-encode `rows` rows of `x` (arena.inFeatures()
     * wide) into scratch.codes at the arena's packed code width. Applies
     * the arena's BF16 input rounding via scratch.staging. `encode`
     * selects the argmin arithmetic: Float32 is the exact scan; Int8
     * routes through the arena's quantized encode bank when the arena
     * supports it (L2 metric) and silently falls back to the exact scan
     * otherwise, mirroring how the planner resolves the choice.
     */
    virtual void encodeBatch(
        const LutTableArena &arena, const float *x, int64_t rows,
        KernelScratch &scratch,
        EncodePrecision encode = EncodePrecision::Float32) const;

    /**
     * Size `codes` for a `rows`-row batch before sharded encode: shards
     * then fill disjoint row spans of the shared buffer concurrently.
     */
    void encodePrepare(const LutTableArena &arena, int64_t rows,
                       vq::CodeBuffer &codes) const;

    /**
     * Shardable encode span: encode rows [row0, row0 + rows) of the full
     * batch `x` into the shared (already encodePrepare'd) `codes`,
     * staging through the EXECUTING worker's `local` scratch. `encode`
     * follows the encodeBatch contract (Int8 with fallback to Float32).
     */
    virtual void encodeBlock(
        const LutTableArena &arena, const float *x, int64_t row0,
        int64_t rows, vq::CodeBuffer &codes, KernelScratch &local,
        EncodePrecision encode = EncodePrecision::Float32) const;

    /**
     * Gather phase: accumulate the table rows scratch.codes selects into
     * `y` ([rows, arena.outFeatures()]), bias included. Default
     * implementation runs gatherBlock over the whole buffer.
     */
    virtual void gatherAccumulate(const LutTableArena &arena,
                                  KernelScratch &scratch, float *y) const;

    /**
     * Fused tile entry point for the row-tiled segment executor: encode
     * `rows` contiguous rows of `x` and immediately gather them into `y`
     * in one call, so the tile's packed codes never leave cache between
     * the phases. Phase wall times are accumulated into *encode_ns /
     * *gather_ns (either may be null). Bit-exact with a separate
     * encodeBatch + gatherAccumulate pair by construction — it IS that
     * pair, minus the full-batch barrier between them.
     */
    void forwardTile(const LutTableArena &arena, const float *x,
                     int64_t rows, float *y, KernelScratch &scratch,
                     uint64_t *encode_ns, uint64_t *gather_ns,
                     EncodePrecision encode = EncodePrecision::Float32)
        const;

    /**
     * Rows one full sweep of this backend's table bank covers: kRowBlock
     * (256) for the float bank's grouped sweep and for the scalar
     * quantized paths, one shuffle-gather chunk (64 on AVX-512, 32 on
     * AVX2) for the vectorized INT8/INT4 banks. Row tiles that are a
     * multiple of this granule add NO extra table traffic versus the
     * untiled sweep — the planner's tile-size model rounds to it.
     */
    virtual int64_t gatherGranuleRows(const LutTableArena &arena) const;

    /**
     * Shardable gather span: fill output rows [row0, row0 + rows) of `y`
     * (the full output base) from the same rows of `codes`, using the
     * EXECUTING worker's `local` scratch. Disjoint spans never race.
     */
    virtual void gatherBlock(const LutTableArena &arena,
                             const vq::CodeBuffer &codes, int64_t row0,
                             int64_t rows, float *y,
                             KernelScratch &local) const = 0;

    /** Bytes the gather phase streams per full table sweep. */
    virtual int64_t tableBytes(const LutTableArena &arena) const = 0;

    /**
     * Bytes the backend keeps RESIDENT for this arena — the gather
     * stream plus any CPU-capability-gated mirror layouts (interleaved
     * shuffle banks, VNNI quads). Defaults to tableBytes(); quantized
     * backends override with their bank's resident accounting.
     */
    virtual int64_t
    residentBytes(const LutTableArena &arena) const
    {
        return tableBytes(arena);
    }

    /**
     * One-time lowering hook: build whatever derived tables the gather
     * phase needs (e.g. the INT8 bank) so serving never pays the cost.
     */
    virtual void prepare(const LutTableArena &arena) const;
};

/** The bit-exact float-bank backend (today's semantics). */
const KernelBackend &referenceBackend();

/** The packed-code + INT8-table backend. */
const KernelBackend &quantizedBackend();

/** The packed-code + nibble-packed INT4-table backend. */
const KernelBackend &int4Backend();

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_KERNELS_H
