#ifndef LUTDLA_LUTBOOST_SERIALIZE_H
#define LUTDLA_LUTBOOST_SERIALIZE_H

/**
 * @file
 * Deployment-artifact serialization: save a converted model's parameters
 * (weights, biases, codebooks — everything the accelerator's compiler
 * needs to emit LUTs) to a simple binary container and load them back
 * into a structurally identical model.
 *
 * Format: magic "LUTDLA01", then a count of tensors, then per tensor a
 * rank, dims, and raw float payload, in deterministic traversal order.
 * The loader checks shapes strictly — loading into a mismatched
 * architecture is refused rather than silently misassigned.
 *
 * The low-level container primitives (BinWriter/BinReader) are public so
 * higher layers can serialize richer artifacts in the same container
 * family — api::RunArtifacts ("LUTDLAR1") reuses them for its round-trip.
 */

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace lutdla::lutboost {

/** Little-endian binary stream writer for LUT-DLA container files. */
class BinWriter
{
  public:
    /** Open `path` for writing (truncating). Check ok() before use. */
    explicit BinWriter(const std::string &path)
        : out_(path, std::ios::binary | std::ios::trunc)
    {
    }

    bool ok() const { return static_cast<bool>(out_); }

    /** Write an 8-byte magic tag identifying the container flavor. */
    void magic(const char (&tag)[9]) { out_.write(tag, 8); }

    void
    u64(uint64_t v)
    {
        out_.write(reinterpret_cast<const char *>(&v), sizeof(v));
    }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void
    f64(double v)
    {
        out_.write(reinterpret_cast<const char *>(&v), sizeof(v));
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

    void
    f64vec(const std::vector<double> &v)
    {
        u64(v.size());
        for (double d : v)
            f64(d);
    }

    void
    bytes(const void *data, int64_t n)
    {
        out_.write(static_cast<const char *>(data),
                   static_cast<std::streamsize>(n));
    }

  private:
    std::ofstream out_;
};

/** Mirror reader for BinWriter containers; every read reports success. */
class BinReader
{
  public:
    explicit BinReader(const std::string &path)
        : in_(path, std::ios::binary)
    {
    }

    bool ok() const { return static_cast<bool>(in_); }

    /** Read and verify the 8-byte magic tag. */
    bool magic(const char (&expected)[9]);

    bool
    u64(uint64_t &v)
    {
        in_.read(reinterpret_cast<char *>(&v), sizeof(v));
        return static_cast<bool>(in_);
    }
    bool
    i64(int64_t &v)
    {
        uint64_t raw = 0;
        if (!u64(raw))
            return false;
        v = static_cast<int64_t>(raw);
        return true;
    }
    bool
    f64(double &v)
    {
        in_.read(reinterpret_cast<char *>(&v), sizeof(v));
        return static_cast<bool>(in_);
    }

    bool str(std::string &s, uint64_t max_len = 1u << 20);
    bool f64vec(std::vector<double> &v, uint64_t max_len = 1u << 24);

    bool
    bytes(void *data, int64_t n)
    {
        in_.read(static_cast<char *>(data),
                 static_cast<std::streamsize>(n));
        return static_cast<bool>(in_);
    }

  private:
    std::ifstream in_;
};

/** Serialize every parameter of `model` to `path`. Fatal on I/O error. */
void saveParameters(const nn::LayerPtr &model, const std::string &path);

/**
 * Load parameters saved by saveParameters into `model`.
 * @return false when the file doesn't match the model's parameter
 *         inventory (count or any shape); model is unchanged on failure.
 */
bool loadParameters(const nn::LayerPtr &model, const std::string &path);

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_SERIALIZE_H
