#ifndef LUTDLA_LUTBOOST_SERIALIZE_H
#define LUTDLA_LUTBOOST_SERIALIZE_H

/**
 * @file
 * Deployment-artifact serialization: save a converted model's parameters
 * (weights, biases, codebooks — everything the accelerator's compiler
 * needs to emit LUTs) to a simple binary container and load them back
 * into a structurally identical model.
 *
 * Format: magic "LUTDLA01", then a count of tensors, then per tensor a
 * rank, dims, and raw float payload, in deterministic traversal order.
 * The loader checks shapes strictly — loading into a mismatched
 * architecture is refused rather than silently misassigned.
 */

#include <string>

#include "nn/layer.h"

namespace lutdla::lutboost {

/** Serialize every parameter of `model` to `path`. Fatal on I/O error. */
void saveParameters(const nn::LayerPtr &model, const std::string &path);

/**
 * Load parameters saved by saveParameters into `model`.
 * @return false when the file doesn't match the model's parameter
 *         inventory (count or any shape); model is unchanged on failure.
 */
bool loadParameters(const nn::LayerPtr &model, const std::string &path);

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_SERIALIZE_H
