#include "lutboost/serialize.h"

#include <cstring>

#include "util/logging.h"

namespace lutdla::lutboost {

namespace {

constexpr char kMagic[9] = "LUTDLA01";

} // namespace

bool
BinReader::magic(const char (&expected)[9])
{
    char tag[8];
    in_.read(tag, sizeof(tag));
    return static_cast<bool>(in_) &&
           std::memcmp(tag, expected, sizeof(tag)) == 0;
}

bool
BinReader::str(std::string &s, uint64_t max_len)
{
    uint64_t len = 0;
    if (!u64(len) || len > max_len)
        return false;
    s.resize(len);
    in_.read(s.data(), static_cast<std::streamsize>(len));
    return static_cast<bool>(in_);
}

bool
BinReader::f64vec(std::vector<double> &v, uint64_t max_len)
{
    uint64_t len = 0;
    if (!u64(len) || len > max_len)
        return false;
    v.resize(len);
    for (double &d : v)
        if (!f64(d))
            return false;
    return true;
}

void
saveParameters(const nn::LayerPtr &model, const std::string &path)
{
    const auto params = nn::collectParameters(model);
    BinWriter out(path);
    if (!out.ok())
        fatal("cannot open '", path, "' for writing");

    out.magic(kMagic);
    out.u64(params.size());
    for (const nn::Parameter *p : params) {
        out.u64(p->value.shape().size());
        for (int64_t d : p->value.shape())
            out.u64(static_cast<uint64_t>(d));
        out.bytes(p->value.data(),
                  p->value.numel() * static_cast<int64_t>(sizeof(float)));
    }
    if (!out.ok())
        fatal("write failed for '", path, "'");
}

bool
loadParameters(const nn::LayerPtr &model, const std::string &path)
{
    auto params = nn::collectParameters(model);
    BinReader in(path);
    if (!in.ok()) {
        warn("cannot open '", path, "' for reading");
        return false;
    }

    if (!in.magic(kMagic)) {
        warn("'", path, "' is not a LUT-DLA parameter file");
        return false;
    }
    uint64_t count = 0;
    if (!in.u64(count) || count != params.size()) {
        warn("parameter count mismatch: file has ", count, ", model has ",
             params.size());
        return false;
    }

    // Stage into a buffer first so a mismatch leaves the model intact.
    std::vector<Tensor> staged;
    staged.reserve(params.size());
    for (const nn::Parameter *p : params) {
        uint64_t rank = 0;
        if (!in.u64(rank) || rank != p->value.shape().size()) {
            warn("rank mismatch for '", p->name, "'");
            return false;
        }
        Shape shape;
        for (uint64_t d = 0; d < rank; ++d) {
            uint64_t dim = 0;
            if (!in.u64(dim))
                return false;
            shape.push_back(static_cast<int64_t>(dim));
        }
        if (shape != p->value.shape()) {
            warn("shape mismatch for '", p->name, "': file ",
                 shapeStr(shape), " vs model ", shapeStr(p->value.shape()));
            return false;
        }
        Tensor t(shape);
        if (!in.bytes(t.data(),
                      t.numel() * static_cast<int64_t>(sizeof(float)))) {
            warn("truncated payload in '", path, "'");
            return false;
        }
        staged.push_back(std::move(t));
    }

    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value = std::move(staged[i]);
    return true;
}

} // namespace lutdla::lutboost
