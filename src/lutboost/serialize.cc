#include "lutboost/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.h"

namespace lutdla::lutboost {

namespace {

constexpr char kMagic[8] = {'L', 'U', 'T', 'D', 'L', 'A', '0', '1'};

void
writeU64(std::ofstream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU64(std::ifstream &in, uint64_t &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(in);
}

} // namespace

void
saveParameters(const nn::LayerPtr &model, const std::string &path)
{
    const auto params = nn::collectParameters(model);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open '", path, "' for writing");

    out.write(kMagic, sizeof(kMagic));
    writeU64(out, params.size());
    for (const nn::Parameter *p : params) {
        writeU64(out, p->value.shape().size());
        for (int64_t d : p->value.shape())
            writeU64(out, static_cast<uint64_t>(d));
        out.write(reinterpret_cast<const char *>(p->value.data()),
                  static_cast<std::streamsize>(p->value.numel() *
                                               sizeof(float)));
    }
    if (!out)
        fatal("write failed for '", path, "'");
}

bool
loadParameters(const nn::LayerPtr &model, const std::string &path)
{
    auto params = nn::collectParameters(model);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("cannot open '", path, "' for reading");
        return false;
    }

    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        warn("'", path, "' is not a LUT-DLA parameter file");
        return false;
    }
    uint64_t count = 0;
    if (!readU64(in, count) || count != params.size()) {
        warn("parameter count mismatch: file has ", count, ", model has ",
             params.size());
        return false;
    }

    // Stage into a buffer first so a mismatch leaves the model intact.
    std::vector<Tensor> staged;
    staged.reserve(params.size());
    for (const nn::Parameter *p : params) {
        uint64_t rank = 0;
        if (!readU64(in, rank) ||
            rank != p->value.shape().size()) {
            warn("rank mismatch for '", p->name, "'");
            return false;
        }
        Shape shape;
        for (uint64_t d = 0; d < rank; ++d) {
            uint64_t dim = 0;
            if (!readU64(in, dim))
                return false;
            shape.push_back(static_cast<int64_t>(dim));
        }
        if (shape != p->value.shape()) {
            warn("shape mismatch for '", p->name, "': file ",
                 shapeStr(shape), " vs model ", shapeStr(p->value.shape()));
            return false;
        }
        Tensor t(shape);
        in.read(reinterpret_cast<char *>(t.data()),
                static_cast<std::streamsize>(t.numel() * sizeof(float)));
        if (!in) {
            warn("truncated payload in '", path, "'");
            return false;
        }
        staged.push_back(std::move(t));
    }

    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value = std::move(staged[i]);
    return true;
}

} // namespace lutdla::lutboost
