#include "lutboost/converter.h"

#include "nn/loss.h"
#include "util/logging.h"
#include "util/rng.h"

namespace lutdla::lutboost {

std::vector<LutLinear *>
findLutLayers(const nn::LayerPtr &model)
{
    std::vector<LutLinear *> found;
    if (auto *self = dynamic_cast<LutLinear *>(model.get()))
        found.push_back(self);
    if (auto *conv = dynamic_cast<LutConv2d *>(model.get()))
        found.push_back(&conv->inner());
    nn::visitAllSlots(model, [&](nn::LayerPtr &slot) {
        if (auto *lin = dynamic_cast<LutLinear *>(slot.get()))
            found.push_back(lin);
        else if (auto *conv = dynamic_cast<LutConv2d *>(slot.get()))
            found.push_back(&conv->inner());
    });
    return found;
}

int64_t
replaceOperators(const nn::LayerPtr &model, const ConvertOptions &options)
{
    int64_t replaced = 0;
    nn::visitAllSlots(model, [&](nn::LayerPtr &slot) {
        if (options.replace_linear) {
            if (auto *lin = dynamic_cast<nn::Linear *>(slot.get())) {
                if (lin->inFeatures() >= options.min_in_features) {
                    slot = LutLinear::fromLinear(*lin, options.pq);
                    ++replaced;
                    return;
                }
            }
        }
        if (options.replace_conv) {
            if (auto *conv = dynamic_cast<nn::Conv2d *>(slot.get())) {
                if (conv->geometry().patchSize() >=
                    options.min_in_features) {
                    slot = LutConv2d::fromConv(*conv, options.pq);
                    ++replaced;
                }
            }
        }
    });
    return replaced;
}

void
calibrateCentroids(const nn::LayerPtr &model, const nn::Dataset &dataset,
                   const ConvertOptions &options)
{
    auto layers = findLutLayers(model);
    for (LutLinear *layer : layers)
        layer->beginCalibration(options.calibration_rows);

    // Stream training batches through the model until every layer has
    // enough rows (conv layers multiply rows by output pixels, so a couple
    // of batches usually suffice).
    const int64_t batch = 64;
    const int64_t n = dataset.trainSize();
    for (int64_t start = 0; start < n; start += batch) {
        const int64_t end = std::min(start + batch, n);
        std::vector<int64_t> idx;
        for (int64_t i = start; i < end; ++i)
            idx.push_back(i);
        Tensor x = nn::gatherRows(dataset.train_x, idx);
        (void)model->forward(x, false);
        bool all_full = true;
        for (LutLinear *layer : layers)
            all_full &= !layer->calibrating();
        if (all_full || end >= std::min<int64_t>(n, 512))
            break;
    }
    for (LutLinear *layer : layers)
        if (layer->calibrating())
            layer->finishCalibration();
}

namespace {

/** Centroid parameters of every LUT layer in the model. */
std::vector<nn::Parameter *>
centroidParams(const nn::LayerPtr &model)
{
    std::vector<nn::Parameter *> params;
    for (LutLinear *layer : findLutLayers(model))
        params.push_back(&layer->centroids());
    return params;
}

void
setReconPenalty(const nn::LayerPtr &model, double penalty)
{
    for (LutLinear *layer : findLutLayers(model))
        layer->setReconPenalty(penalty);
}

double
evalModel(const nn::LayerPtr &model, const nn::Dataset &dataset)
{
    nn::Trainer probe(model, dataset, {});
    return probe.evaluate(dataset.test_x, dataset.test_y);
}

} // namespace

ConversionReport
convert(const nn::LayerPtr &model, const nn::Dataset &dataset,
        const ConvertOptions &options)
{
    ConversionReport report;
    report.baseline_accuracy = evalModel(model, dataset);

    // Stage 1: operator replace + k-means calibration on activations.
    report.replaced_layers = replaceOperators(model, options);
    LUTDLA_CHECK(report.replaced_layers > 0,
                 "no operators eligible for LUT replacement");
    calibrateCentroids(model, dataset, options);
    report.post_replace_accuracy = evalModel(model, dataset);

    // Stage 2: centroid-only training with reconstruction loss.
    setReconPenalty(model, options.recon_penalty_centroid);
    {
        nn::Trainer trainer(model, dataset, options.centroid_stage);
        trainer.setTrainableParams(centroidParams(model));
        report.centroid_stage = trainer.train();
    }

    // Stage 3: joint training of centroids and weights.
    setReconPenalty(model, options.recon_penalty_joint);
    {
        nn::Trainer trainer(model, dataset, options.joint_stage);
        report.joint_stage = trainer.train();
    }
    setReconPenalty(model, 0.0);

    report.final_accuracy = evalModel(model, dataset);
    return report;
}

ConversionReport
singleStageConvert(const nn::LayerPtr &model, const nn::Dataset &dataset,
                   const ConvertOptions &options, SingleStageMode mode,
                   int total_epochs)
{
    ConversionReport report;
    report.baseline_accuracy = evalModel(model, dataset);
    report.replaced_layers = replaceOperators(model, options);
    LUTDLA_CHECK(report.replaced_layers > 0,
                 "no operators eligible for LUT replacement");

    if (mode == SingleStageMode::FromScratch) {
        // PECAN-style: discard the trained weights as well.
        Rng rng(options.pq.seed + 31);
        for (nn::Parameter *p : nn::collectParameters(model)) {
            const float bound =
                0.5f / std::sqrt(
                    static_cast<float>(std::max<int64_t>(
                        p->value.dim(0), 1)));
            for (int64_t i = 0; i < p->value.numel(); ++i)
                p->value.at(i) =
                    static_cast<float>(rng.uniform(-bound, bound));
        }
    }
    report.post_replace_accuracy = evalModel(model, dataset);

    // One long joint stage; same total epoch budget as multistage runs.
    setReconPenalty(model, options.recon_penalty_joint);
    nn::TrainConfig cfg = options.joint_stage;
    cfg.epochs = total_epochs;
    nn::Trainer trainer(model, dataset, cfg);
    report.joint_stage = trainer.train();
    setReconPenalty(model, 0.0);

    report.final_accuracy = evalModel(model, dataset);
    return report;
}

} // namespace lutdla::lutboost
