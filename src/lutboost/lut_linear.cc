#include "lutboost/lut_linear.h"

#include <cmath>

#include "tensor/gemm.h"
#include "util/logging.h"
#include "util/rng.h"
#include "vq/distance.h"
#include "vq/kmeans.h"

namespace lutdla::lutboost {

LutLinear::LutLinear(int64_t in_features, int64_t out_features,
                     vq::PQConfig pq, bool bias, uint64_t seed)
    : in_features_(in_features), out_features_(out_features),
      pq_config_(pq),
      num_subspaces_((in_features + pq.v - 1) / pq.v),
      has_bias_(bias)
{
    Rng rng(seed);
    Tensor w(Shape{in_features_, out_features_});
    const float bound = std::sqrt(6.0f / static_cast<float>(in_features_));
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = static_cast<float>(rng.uniform(-bound, bound));
    weight_ = nn::Parameter("weight", std::move(w));
    if (has_bias_)
        bias_ = nn::Parameter("bias", Tensor(Shape{out_features_}));

    Tensor c(Shape{num_subspaces_, pq_config_.c, pq_config_.v});
    for (int64_t i = 0; i < c.numel(); ++i)
        c.at(i) = static_cast<float>(rng.gaussian(0.0, 0.5));
    centroids_ = nn::Parameter("centroids", std::move(c));
}

std::shared_ptr<LutLinear>
LutLinear::fromLinear(const nn::Linear &linear, vq::PQConfig pq)
{
    auto lut = std::make_shared<LutLinear>(
        linear.inFeatures(), linear.outFeatures(), pq, linear.hasBias());
    lut->weight_.value = linear.weight().value;
    if (linear.hasBias())
        lut->bias_.value = linear.bias().value;
    return lut;
}

void
LutLinear::extractSub(const float *row, int64_t s, float *out) const
{
    const int64_t base = s * pq_config_.v;
    for (int64_t t = 0; t < pq_config_.v; ++t) {
        const int64_t k = base + t;
        out[t] = k < in_features_ ? row[k] : 0.0f;
    }
}

std::vector<int32_t>
LutLinear::encode(const Tensor &x) const
{
    const int64_t m = x.dim(0);
    const int64_t v = pq_config_.v, c = pq_config_.c;
    std::vector<int32_t> codes(static_cast<size_t>(m * num_subspaces_));
    std::vector<float> sub(static_cast<size_t>(v));
    for (int64_t i = 0; i < m; ++i) {
        const float *row = x.data() + i * in_features_;
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            extractSub(row, s, sub.data());
            const float *cb = centroids_.value.data() + s * c * v;
            codes[static_cast<size_t>(i * num_subspaces_ + s)] =
                vq::argminCentroid(pq_config_.metric, sub.data(), cb, c, v);
        }
    }
    return codes;
}

Tensor
LutLinear::quantize(const Tensor &x) const
{
    const auto codes = encode(x);
    const int64_t m = x.dim(0);
    const int64_t v = pq_config_.v, c = pq_config_.c;
    Tensor ahat(Shape{m, in_features_});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const int32_t j =
                codes[static_cast<size_t>(i * num_subspaces_ + s)];
            const float *cb = centroids_.value.data() + (s * c + j) * v;
            const int64_t base = s * v;
            for (int64_t t = 0; t < v && base + t < in_features_; ++t)
                ahat.at(i, base + t) = cb[t];
        }
    }
    return ahat;
}

Tensor
LutLinear::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
                 "LutLinear expects [rows, ", in_features_, "], got ",
                 shapeStr(x.shape()));
    aux_loss_ = 0.0;
    last_forward_rows_.store(x.dim(0), std::memory_order_relaxed);

    if (calibrating_) {
        // Record activations and behave exactly like the float layer so
        // downstream layers calibrate on undistorted inputs.
        const int64_t take =
            std::min(x.dim(0), calib_cap_ - calib_count_);
        for (int64_t i = 0; i < take; ++i) {
            const float *row = x.data() + i * in_features_;
            calib_rows_.insert(calib_rows_.end(), row, row + in_features_);
        }
        calib_count_ += take;
        Tensor y = matmul(x, weight_.value);
        if (has_bias_)
            for (int64_t r = 0; r < y.dim(0); ++r)
                for (int64_t n = 0; n < out_features_; ++n)
                    y.at(r, n) += bias_.value.at(n);
        return y;
    }

    if (!train && use_inference_lut_ && infer_lut_) {
        Tensor xin = x;
        if (precision_.bf16_similarity)
            vq::tensorToBf16(xin);
        Tensor y = infer_lut_->lookupGemm(infer_pq_->encode(xin),
                                          xin.dim(0));
        if (has_bias_)
            for (int64_t r = 0; r < y.dim(0); ++r)
                for (int64_t n = 0; n < out_features_; ++n)
                    y.at(r, n) += bias_.value.at(n);
        return y;
    }

    const auto codes = encode(x);
    Tensor ahat(Shape{x.dim(0), in_features_});
    {
        const int64_t v = pq_config_.v, c = pq_config_.c;
        for (int64_t i = 0; i < x.dim(0); ++i) {
            for (int64_t s = 0; s < num_subspaces_; ++s) {
                const int32_t j =
                    codes[static_cast<size_t>(i * num_subspaces_ + s)];
                const float *cb =
                    centroids_.value.data() + (s * c + j) * v;
                const int64_t base = s * v;
                for (int64_t t = 0; t < v && base + t < in_features_; ++t)
                    ahat.at(i, base + t) = cb[t];
            }
        }
    }

    Tensor y = matmul(ahat, weight_.value);

    if (train) {
        cached_input_ = x;
        cached_ahat_ = ahat;
        cached_codes_ = codes;
        if (recon_penalty_ > 0.0) {
            // D = A_hat*W - A*W; both SG terms of Lre square exactly D.
            cached_diff_ = y - matmul(x, weight_.value);
            const double msd =
                cached_diff_.squaredNorm() /
                static_cast<double>(cached_diff_.numel());
            aux_loss_ = 2.0 * recon_penalty_ * msd;
        } else {
            cached_diff_ = Tensor();
        }
    }

    if (has_bias_)
        for (int64_t r = 0; r < y.dim(0); ++r)
            for (int64_t n = 0; n < out_features_; ++n)
                y.at(r, n) += bias_.value.at(n);
    return y;
}

void
LutLinear::scatterCentroidGrad(const Tensor &d_ahat,
                               const std::vector<int32_t> &codes)
{
    const int64_t m = d_ahat.dim(0);
    const int64_t v = pq_config_.v, c = pq_config_.c;
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t s = 0; s < num_subspaces_; ++s) {
            const int32_t j =
                codes[static_cast<size_t>(i * num_subspaces_ + s)];
            float *gc = centroids_.grad.data() + (s * c + j) * v;
            const int64_t base = s * v;
            for (int64_t t = 0; t < v && base + t < in_features_; ++t)
                gc[t] += d_ahat.at(i, base + t);
        }
    }
}

Tensor
LutLinear::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(cached_input_.numel() > 0,
                 "backward without forward(train=true)");
    // Task-loss path (forward used A_hat * W + b).
    weight_.grad += matmulTransposedA(cached_ahat_, grad_out);
    if (has_bias_) {
        for (int64_t r = 0; r < grad_out.dim(0); ++r)
            for (int64_t n = 0; n < out_features_; ++n)
                bias_.grad.at(n) += grad_out.at(r, n);
    }
    Tensor d_ahat = matmulTransposedB(grad_out, weight_.value);
    scatterCentroidGrad(d_ahat, cached_codes_);

    // STE: dL/dA ~= dL/dA_hat.
    Tensor grad_in = d_ahat;

    if (recon_penalty_ > 0.0 && cached_diff_.numel() > 0) {
        // Each SG term differentiates once w.r.t. its live side:
        // d(term2)/dP = 2*lambda*D/n and d(term1)/dQ = -2*lambda*D/n.
        const double coeff =
            2.0 * recon_penalty_ /
            static_cast<double>(cached_diff_.numel());
        // R = coeff * D * W^T feeds +centroids (term 2) and -input (term 1).
        Tensor r = matmulTransposedB(cached_diff_, weight_.value);
        r *= static_cast<float>(coeff);
        scatterCentroidGrad(r, cached_codes_);
        grad_in -= r;
        // dW = coeff * (A_hat - A)^T * D.
        Tensor ahat_minus_a = cached_ahat_ - cached_input_;
        Tensor dw = matmulTransposedA(ahat_minus_a, cached_diff_);
        dw *= static_cast<float>(coeff);
        weight_.grad += dw;
    }
    return grad_in;
}

std::vector<nn::Parameter *>
LutLinear::parameters()
{
    std::vector<nn::Parameter *> out{&weight_, &centroids_};
    if (has_bias_)
        out.push_back(&bias_);
    return out;
}

void
LutLinear::beginCalibration(int64_t max_rows)
{
    calibrating_ = true;
    calib_cap_ = max_rows;
    calib_count_ = 0;
    calib_rows_.clear();
}

void
LutLinear::finishCalibration()
{
    LUTDLA_CHECK(calibrating_, "finishCalibration without begin");
    calibrating_ = false;
    if (calib_count_ == 0) {
        warn("LutLinear calibration saw no rows; keeping random centroids");
        return;
    }
    Tensor samples(Shape{calib_count_, in_features_},
                   std::move(calib_rows_));
    calib_rows_ = {};

    const int64_t v = pq_config_.v;
    Tensor sub(Shape{calib_count_, v});
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        for (int64_t i = 0; i < calib_count_; ++i)
            extractSub(samples.data() + i * in_features_, s,
                       sub.data() + i * v);
        vq::KMeansConfig kc;
        kc.clusters = pq_config_.c;
        kc.metric = pq_config_.metric;
        kc.max_iters = pq_config_.kmeans_iters;
        kc.seed = pq_config_.seed + static_cast<uint64_t>(s) * 7919;
        const Tensor centers = vq::kmeans(sub, kc).centroids;
        std::copy(centers.data(), centers.data() + pq_config_.c * v,
                  centroids_.value.data() + s * pq_config_.c * v);
    }
    calib_count_ = 0;
}

vq::ProductQuantizer
LutLinear::snapshotQuantizer(bool bf16) const
{
    vq::ProductQuantizer pq(in_features_, pq_config_);
    const int64_t v = pq_config_.v, c = pq_config_.c;
    for (int64_t s = 0; s < num_subspaces_; ++s) {
        Tensor cb(Shape{c, v});
        const float *src = centroids_.value.data() + s * c * v;
        std::copy(src, src + c * v, cb.data());
        if (bf16)
            vq::tensorToBf16(cb);
        pq.setCodebook(s, std::move(cb));
    }
    return pq;
}

void
LutLinear::setPrecision(vq::LutPrecision precision)
{
    precision_ = precision;
}

void
LutLinear::refreshInferenceLut()
{
    infer_pq_ = std::make_unique<vq::ProductQuantizer>(
        snapshotQuantizer(precision_.bf16_similarity));
    infer_lut_ = std::make_unique<vq::LookupTable>(*infer_pq_,
                                                   weight_.value,
                                                   precision_);
    {
        // Invalidate any arena built from a previous freeze; the next
        // serving call rebuilds it from the fresh tables.
        std::unique_lock<std::mutex> lock(arena_mu_);
        infer_arena_.reset();
    }
    use_inference_lut_ = true;
}

void
LutLinear::clearInferenceLut()
{
    infer_pq_.reset();
    infer_lut_.reset();
    {
        std::unique_lock<std::mutex> lock(arena_mu_);
        infer_arena_.reset();
    }
    use_inference_lut_ = false;
}

std::shared_ptr<const LutTableArena>
LutLinear::inferenceArena() const
{
    LUTDLA_CHECK(use_inference_lut_ && infer_pq_ && infer_lut_,
                 "inferenceArena requires refreshInferenceLut() first");
    std::unique_lock<std::mutex> lock(arena_mu_);
    if (!infer_arena_)
        infer_arena_ = std::make_shared<const LutTableArena>(
            *infer_pq_, *infer_lut_, has_bias_ ? &bias_.value : nullptr,
            precision_.bf16_similarity);
    return infer_arena_;
}

Tensor
LutLinear::forwardBatch(const Tensor &x) const
{
    LUTDLA_CHECK(use_inference_lut_,
                 "forwardBatch requires refreshInferenceLut() first");
    LUTDLA_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
                 "LutLinear::forwardBatch expects [rows, ", in_features_,
                 "], got ", shapeStr(x.shape()));
    return inferenceArena()->forwardBatch(x);
}

} // namespace lutdla::lutboost
