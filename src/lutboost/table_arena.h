#ifndef LUTDLA_LUTBOOST_TABLE_ARENA_H
#define LUTDLA_LUTBOOST_TABLE_ARENA_H

/**
 * @file
 * LutTableArena: one frozen LUT layer packed into a single contiguous
 * allocation — per-subspace codebooks, the precomputed PSum table, and the
 * bias, in that order — plus the row-blocked batched inference kernels that
 * run on it.
 *
 * Rationale: LutLinear's training-time state scatters the tables the
 * inference path needs across several heap objects (one Tensor per codebook
 * inside ProductQuantizer, a separate table Tensor inside LookupTable, the
 * bias parameter). Serving wants the opposite: everything the gather loop
 * touches in one flat arena so a batch of rows sweeps each subspace's table
 * bank while it is hot in L1/L2, instead of chasing per-layer allocations
 * row by row. The arena is immutable after construction, which is what
 * makes the batched kernels safe to call from many threads at once.
 *
 * Execution model: inference splits into two phases the serving data plane
 * drives separately (see lutboost/kernels.h for the pluggable dispatch):
 *  - encode: `encodeBatch` / `encodeBlock` argmin-encode rows into a
 *    bit-packed vq::CodeBuffer (BF16 input rounding applied when the
 *    arena demands it). The flagship L2 / c=16 shape dispatches to the
 *    runtime-selected SIMD argmin (lutboost/kernels_simd.h).
 *  - gather: `gatherAccumulate` sweeps the float table bank,
 *    `gatherAccumulateInt8` sweeps the INT8-quantized bank, and
 *    `gatherAccumulateInt4` sweeps the nibble-packed INT4 bank. For
 *    c <= 16 the quantized gathers run as an in-register shuffle lookup
 *    (AVX-512 VPSHUFB over 64-row chunks, AVX2 over 32) against the
 *    bank's interleaved layout — the INT4 variant adds one
 *    unpack-and-shift per chunk to split the two nibble planes;
 *    otherwise (and for row tails) a scalar group sweep runs. All paths
 *    of one bank share exact integer accumulation under
 *    per-(subspace-group, column-block) scales, so every variant of a
 *    bank is bit-identical by construction.
 * Both phases take explicit [row0, row0 + rows) spans so the serving
 * engine can shard one batch across its worker pool; the whole-buffer
 * overloads are the single-thread convenience.
 * The fused `forwardBatch` composes encode + float gather and is the
 * bit-exact reference everything else is tested against.
 *
 * Numerics contract: `forwardBatch` (and the encode + float-gather split)
 * is bit-exact with the reference eval-mode path in LutLinear::forward
 * (encode with the same argminCentroid, accumulate partial sums in
 * ascending subspace order into a zero-initialized output, add the bias
 * last). Tests enforce this.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"
#include "vq/code_buffer.h"
#include "vq/distance.h"
#include "vq/lut.h"
#include "vq/pq.h"

namespace lutdla::lutboost {

/**
 * Reusable per-caller gather scratch: the per-block unpacked codes the
 * scalar sweeps run on, plus the planar code lanes and column-major
 * accumulator plane the shuffle gather uses. Caller-owned so steady-state
 * batches perform no allocations; one per concurrent caller.
 */
struct GatherScratch
{
    std::vector<int32_t> unpacked;  ///< [block rows, Nc] row-major codes
    std::vector<uint8_t> planar;    ///< [Nc, chunk] planar code lanes
    std::vector<float> colmajor;    ///< [N, chunk] shuffle accumulators
};

/**
 * Which INT8 gather kernel to run. Auto picks the best the CPU supports
 * (the serving planner records the resolved choice); the explicit
 * variants exist for benchmarks and the bit-exactness property tests.
 */
enum class Int8GatherVariant
{
    Auto,           ///< best supported (shuffle when c <= 16 and SIMD)
    Scalar,         ///< portable group sweep (always available)
    ShuffleAvx2,    ///< 32-row VPSHUFB chunks (requires AVX2)
    ShuffleAvx512,  ///< 64-row VPSHUFB chunks (requires AVX-512BW)
    ShuffleVnni     ///< VPERMB + VPDPBUSD dot chunks (AVX-512 VBMI+VNNI)
};

/**
 * Which INT8 encode kernel to run. Mirrors the gather-variant pattern:
 * Auto picks the best the CPU supports (the serving planner records the
 * resolved choice); the explicit variants exist for benchmarks and the
 * bit-identity property tests. Every variant computes the identical
 * int32 scores, so codes match bit-for-bit across the whole enum.
 */
enum class EncodeVariant
{
    Auto,      ///< best supported (SIMD when c <= 16, v <= 128)
    Scalar,    ///< portable integer reference (always available)
    MaddAvx2,  ///< VPMADDUBSW + VPMADDWD dots (AVX2 / plain AVX-512)
    DotVnni    ///< VPDPBUSD quad dots (requires AVX-512 VNNI)
};

/**
 * Which INT4 gather kernel to run. Mirrors Int8GatherVariant minus the
 * VNNI tier (VPDPBUSD folds raw bytes, which would mix the two nibble
 * planes; the bit-plane split needs the explicit unpack the shuffle
 * kernels perform).
 */
enum class Int4GatherVariant
{
    Auto,           ///< best supported (shuffle when c <= 16 and SIMD)
    Scalar,         ///< portable packed group sweep (always available)
    ShuffleAvx2,    ///< 32-row VPSHUFB + nibble-unpack chunks (AVX2)
    ShuffleAvx512   ///< 64-row VPSHUFB + nibble-unpack chunks (AVX-512BW)
};

/** One frozen LUT layer in a single flat allocation. Immutable. */
class LutTableArena
{
  public:
    /**
     * Pack a trained quantizer + precomputed lookup table (+ optional bias)
     * into the arena.
     *
     * @param pq          Trained quantizer; codebooks are copied as-is, so
     *                    any BF16 rounding must already be applied.
     * @param lut         Precomputed PSum table over the same quantizer
     *                    (already INT8-round-tripped when requested).
     * @param bias        Optional [N] bias added after accumulation; may be
     *                    null.
     * @param bf16_inputs When true, input rows are rounded to BF16 before
     *                    encoding, mirroring LutPrecision::bf16_similarity.
     */
    LutTableArena(const vq::ProductQuantizer &pq, const vq::LookupTable &lut,
                  const Tensor *bias, bool bf16_inputs);

    /** Input width K this layer consumes. */
    int64_t inFeatures() const { return in_features_; }

    /** Output width N this layer produces. */
    int64_t outFeatures() const { return out_features_; }

    /** Number of subspaces Nc = ceil(K / v). */
    int64_t numSubspaces() const { return num_subspaces_; }

    /** Centroids per codebook c. */
    int64_t numCentroids() const { return num_centroids_; }

    /** Subvector length v. */
    int64_t subvectorLen() const { return subvector_len_; }

    /** True when inputs are rounded to BF16 before encoding. */
    bool bf16Inputs() const { return bf16_inputs_; }

    /** True when a bias row is packed into the arena. */
    bool hasBias() const { return has_bias_; }

    /** Total arena footprint in bytes (codebooks + table + bias). */
    int64_t sizeBytes() const
    {
        return static_cast<int64_t>(data_.size() * sizeof(float));
    }

    /**
     * Encode `rows` rows of `x` (each `inFeatures()` wide, already
     * BF16-rounded when the arena demands it) into `codes` ([rows, Nc],
     * row-major). Thread-safe.
     */
    void encodeRows(const float *x, int64_t rows, int32_t *codes) const;

    /**
     * Encode phase of the split execution model: resize `codes` for
     * [rows, Nc] at this arena's packed code width and fill it. Unlike
     * encodeRows, this applies the arena's BF16 input rounding itself,
     * staging rounded rows in `staging` (caller-owned so steady-state
     * batches do not allocate). Thread-safe with distinct scratch.
     */
    void encodeBatch(const float *x, int64_t rows, vq::CodeBuffer &codes,
                     std::vector<float> &staging) const;

    /**
     * Shardable encode span: encode rows [row0, row0 + rows) of the full
     * batch `x` into an already-reset `codes` buffer. Packed rows are
     * byte-aligned, so concurrent shards writing disjoint row spans of
     * one shared CodeBuffer never race. Thread-safe with distinct
     * `staging` per shard.
     */
    void encodeBlock(const float *x, int64_t row0, int64_t rows,
                     vq::CodeBuffer &codes,
                     std::vector<float> &staging) const;

    /**
     * INT8 twins of encodeBatch / encodeBlock: argmin-encode over the
     * quantized encode bank (requires ensureInt8EncodeBank() first;
     * panics otherwise). Rows are quantized onto the bank's per-subspace
     * 7-bit grid and scored in exact int32 arithmetic, so every variant
     * — scalar or SIMD — selects bit-identical codes; vs the float
     * encode the codes carry a top-1 agreement envelope instead (see
     * docs/SERVING.md). BF16 input rounding still applies first, and
     * ragged tail subspaces are zero-padded exactly like the float path.
     * L2 metric only. Thread-safe with distinct `staging` per shard.
     */
    void encodeBatchInt8(const float *x, int64_t rows,
                         vq::CodeBuffer &codes, std::vector<float> &staging,
                         EncodeVariant variant = EncodeVariant::Auto) const;

    /** Shardable INT8 encode span; see encodeBlock for the contract. */
    void encodeBlockInt8(const float *x, int64_t row0, int64_t rows,
                         vq::CodeBuffer &codes, std::vector<float> &staging,
                         EncodeVariant variant = EncodeVariant::Auto) const;

    /**
     * Build the INT8 encode bank (idempotent, thread-safe): per-subspace
     * affine-quantized transposed codebooks on a shared 7-bit grid,
     * precomputed integer centroid norms, and — when this CPU can run a
     * SIMD tier and c <= 16 — the quad-interleaved signed mirror the
     * VNNI/AVX2 kernels consume. Independent of the gather banks.
     * Requires the L2 metric (panics otherwise; callers gate on
     * int8EncodeSupported()).
     */
    void ensureInt8EncodeBank() const;

    /** True once ensureInt8EncodeBank() has built the encode bank. */
    bool int8EncodeBankReady() const;

    /**
     * Bytes of the canonical INT8 encode bank (scalar codes + norms +
     * grid) — what the encode phase streams per sweep instead of the
     * float codebooks; 0 until ensureInt8EncodeBank(). Deliberately
     * capability-independent so the auto-tuner's byte accounting is
     * deterministic across hosts.
     */
    int64_t int8EncodeTableBytes() const;

    /**
     * Total RESIDENT bytes of the INT8 encode bank including the
     * capability-gated quad mirror; 0 until ensureInt8EncodeBank().
     * Separate from int8ResidentBytes(): the gather banks' accounting is
     * pinned by tests and must not absorb the encode bank.
     */
    int64_t int8EncodeResidentBytes() const;

    /** True when this arena can serve INT8 encode at all (L2 metric). */
    bool int8EncodeSupported() const;

    /**
     * The encode variant Auto resolves to on this arena and CPU (SIMD
     * needs c <= 16, v <= 128 and at least AVX2). What the serving plan
     * records.
     */
    EncodeVariant int8EncodeAutoVariant() const;

    /** Stable variant tag, e.g. "dot-vnni" / "madd-avx2" / "scalar". */
    static const char *encodeVariantName(EncodeVariant variant);

    /** Stable kernel tag for plans serving INT8 encode, e.g.
     * "int8-dot-vnni"; the INT8 twin of encodeVariantName(). */
    const char *int8EncodeKernelName() const;

    /**
     * Gather phase over the bit-exact float bank:
     * y[rows, N] = gather(codes) + bias. Identical numerics to
     * forwardBatch. Thread-safe with distinct scratch.
     */
    void gatherAccumulate(const vq::CodeBuffer &codes, float *y,
                          GatherScratch &scratch) const;

    /**
     * Shardable float gather span: fill output rows [row0, row0 + rows)
     * of `y` (the FULL [codes.rows(), N] output base) from the same rows
     * of `codes`. Disjoint spans never race.
     */
    void gatherAccumulate(const vq::CodeBuffer &codes, int64_t row0,
                          int64_t rows, float *y,
                          GatherScratch &scratch) const;

    /**
     * Gather phase over the INT8 bank (requires ensureInt8Bank() first;
     * panics otherwise). Accumulation is exact integer arithmetic per
     * scale group (kInt8ScaleGroup subspaces share one scale per
     * kInt8BlockCols-wide output block), dequantized with one mul + add
     * per group — so every variant, shuffle or scalar, produces
     * bit-identical output. NOT bit-exact vs the float bank; see
     * docs/SERVING.md for the error envelope.
     */
    void gatherAccumulateInt8(
        const vq::CodeBuffer &codes, float *y, GatherScratch &scratch,
        Int8GatherVariant variant = Int8GatherVariant::Auto) const;

    /** Shardable INT8 gather span; see the float span overload. */
    void gatherAccumulateInt8(
        const vq::CodeBuffer &codes, int64_t row0, int64_t rows, float *y,
        GatherScratch &scratch,
        Int8GatherVariant variant = Int8GatherVariant::Auto) const;

    /**
     * Build the INT8-quantized table bank (idempotent, thread-safe). The
     * planner calls this at lowering time so serving never pays the
     * quantization cost; the bank is cached for the arena's lifetime.
     */
    void ensureInt8Bank() const;

    /** True once ensureInt8Bank() has built the quantized bank. */
    bool int8BankReady() const;

    /**
     * Bytes of the canonical INT8 bank (row-major table + scales) — the
     * traffic number plans and benches report; 0 until ensureInt8Bank().
     * At the flagship c=16 every mirror layout is the same size, so this
     * is exactly what any variant streams per sweep; at c < 16 the
     * 16-entry-padded shuffle layouts stream up to 16/c x more (still
     * well under the float bank). Resident memory spans every layout
     * built for this CPU — see int8ResidentBytes().
     */
    int64_t int8TableBytes() const;

    /**
     * Total RESIDENT bytes of the INT8 bank: the row-major table plus
     * whichever mirror layouts were built for this CPU's kernel variants
     * (mirrors are capability-gated at build time, so a host that cannot
     * run a variant never pays for its layout; a VNNI host carries up to
     * 3x the streamed size). 0 until ensureInt8Bank().
     */
    int64_t int8ResidentBytes() const;

    /**
     * The INT8 gather variant Auto resolves to on this arena and CPU
     * (shuffle needs c <= 16 and at least AVX2). What the serving plan
     * records.
     */
    Int8GatherVariant int8AutoVariant() const;

    /** Stable variant tag, e.g. "shuffle-avx512" / "scalar". */
    static const char *int8GatherVariantName(Int8GatherVariant variant);

    /**
     * Gather phase over the INT4 bank (requires ensureInt4Bank() first;
     * panics otherwise). Entries are symmetric 4-bit codes under the same
     * per-(kInt4ScaleGroup subspaces, kInt4BlockCols columns) scale
     * geometry as the INT8 bank, packed two adjacent output columns per
     * byte. Accumulation is exact integer arithmetic over bias-shifted
     * nibbles with one bias-correcting subtract and one dequantizing
     * mul + add per (group, column), so every variant — shuffle or scalar
     * — produces bit-identical output. NOT bit-exact vs the float or
     * INT8 banks; see docs/SERVING.md for the error envelope.
     */
    void gatherAccumulateInt4(
        const vq::CodeBuffer &codes, float *y, GatherScratch &scratch,
        Int4GatherVariant variant = Int4GatherVariant::Auto) const;

    /** Shardable INT4 gather span; see the float span overload. */
    void gatherAccumulateInt4(
        const vq::CodeBuffer &codes, int64_t row0, int64_t rows, float *y,
        GatherScratch &scratch,
        Int4GatherVariant variant = Int4GatherVariant::Auto) const;

    /**
     * Build the INT4-quantized table bank (idempotent, thread-safe).
     * Independent of the INT8 bank — a plan that only serves INT4 never
     * materializes INT8 layouts.
     */
    void ensureInt4Bank() const;

    /** True once ensureInt4Bank() has built the packed bank. */
    bool int4BankReady() const;

    /**
     * Bytes of the canonical packed INT4 bank (row-major nibble pairs +
     * scales) — what plans and benches report; 0 until ensureInt4Bank().
     */
    int64_t int4TableBytes() const;

    /**
     * Total RESIDENT bytes of the INT4 bank: the packed row-major table
     * plus the interleaved shuffle mirror when this CPU built it
     * (capability-gated exactly like the INT8 mirrors). 0 until
     * ensureInt4Bank().
     */
    int64_t int4ResidentBytes() const;

    /**
     * The INT4 gather variant Auto resolves to on this arena and CPU
     * (shuffle needs c <= 16 and at least AVX2). What the serving plan
     * records.
     */
    Int4GatherVariant int4AutoVariant() const;

    /** Stable variant tag, e.g. "shuffle-avx512" / "scalar". */
    static const char *int4GatherVariantName(Int4GatherVariant variant);

    /** Stable tag of the FLOAT encode kernel this arena dispatches to:
     * "avx512-c16"/"avx2-c16" for the SIMD L2/c=16 fast path,
     * "avx512-genc"/"avx2-genc" for the masked generic-c (c <= 64) tier,
     * else "generic" (scalar scan). */
    const char *encodeVariantName() const;

    /**
     * Batched lookup-accumulate: y[rows, N] = gather(x) + bias.
     *
     * Rows are processed in blocks (kRowBlock) and, within a block, the
     * accumulation walks subspace-major so one codebook's table bank stays
     * cache-resident across the whole block. Thread-safe; `x` and `y` must
     * not alias.
     */
    void forwardBatch(const float *x, int64_t rows, float *y) const;

    /** Tensor-typed convenience wrapper over the raw kernel. */
    Tensor forwardBatch(const Tensor &x) const;

    /** Rows per internal block of the batched kernel. */
    static constexpr int64_t kRowBlock = 256;

    /** Subspace banks folded per output-slab sweep in the grouped path. */
    static constexpr int64_t kSubspaceGroup = 8;

    /** Minimum block rows before the grouped sweep beats the simple one. */
    static constexpr int64_t kTileMinRows = 8;

    /**
     * Output columns sharing one INT8 dequantization scale. Wide enough
     * that the per-block scale handling amortizes over many vector
     * iterations of the gather inner loop — at 32 the broadcasts
     * dominated the pre-shuffle sweep and the INT8 path measured ~0.7x
     * the float sweep; at 128 it wins even when the float bank is
     * LLC-resident.
     */
    static constexpr int64_t kInt8BlockCols = 128;

    /**
     * Subspaces sharing one INT8 scale (per output block). Grouping is
     * what lets both gather paths accumulate exact int16/int32 partial
     * sums across the group before a single dequantizing mul + add: 16
     * entries of |q| <= 127 sum to <= 2032, comfortably inside int16.
     */
    static constexpr int64_t kInt8ScaleGroup = 16;

    /**
     * Output columns sharing one INT4 scale. Same geometry as the INT8
     * bank — kept even so a packed column pair never straddles a scale
     * block (2p and 2p+1 always share a block when the width is even),
     * which lets every kernel dequantize a whole pair with one scale.
     */
    static constexpr int64_t kInt4BlockCols = kInt8BlockCols;

    /**
     * Subspaces sharing one INT4 scale (per output block). 16 bias-
     * shifted nibbles of <= 15 sum to <= 240, comfortably inside the
     * int16 lanes both gather paths accumulate in before the single
     * bias-correcting subtract + dequantizing mul + add per group.
     */
    static constexpr int64_t kInt4ScaleGroup = kInt8ScaleGroup;

    /**
     * Symmetric INT4 range: entries clamp to [-7, 7] (scale =
     * max_abs / 7) and are stored bias-shifted by +8 as unsigned
     * nibbles 1..15; nibble 8 is the exact zero the padding uses.
     */
    static constexpr int64_t kInt4MaxLevel = 7;

  private:
    /**
     * INT8 mirror of the PSum table in two layouts: `q` row-major
     * [Nc, c, N] for the scalar group sweep, and (c <= 16 only) `q_il`
     * interleaved [Nc, N, 16] — the 16 centroid entries of one
     * (subspace, column) packed contiguously so the shuffle gather loads
     * each LUT as one vector register. One symmetric scale per
     * (kInt8ScaleGroup-subspace group, kInt8BlockCols-wide output block).
     */
    struct Int8Bank
    {
        std::vector<int8_t> q;      ///< [Nc, c, N] row-major entries
        std::vector<int8_t> q_il;   ///< [Nc, N, 16] interleaved (c <= 16)
        /** [ceil(Nc/4), N, 64] quad-interleaved (c <= 16): one 64-byte
         * LUT per (subspace quad, column) for the VNNI gather. */
        std::vector<int8_t> q_quad;
        std::vector<float> scales;  ///< [numGroups, num_blocks] scales
        int64_t num_blocks = 0;
        int64_t num_groups = 0;
    };

    /**
     * INT4 mirror of the PSum table, packed two adjacent output columns
     * per byte (column-pair bit-plane split: low nibble = even column,
     * high nibble = odd column, both bias-shifted by +8). Codes are per
     * (row, subspace) and identical across columns, so one looked-up
     * byte serves BOTH columns of a pair — the shuffle kernels unpack
     * the two nibble planes with one AND + one shift per lookup. `q4`
     * row-major [Nc, c, ceil(N/2)] for the scalar sweep; `q4_il`
     * interleaved [Nc, ceil(N/2), 16] (c <= 16 only) so each
     * (subspace, column pair) is one vector-register LUT. Odd N leaves
     * the last pair's high nibble at the bias value 8 (exact zero):
     * computed, never copied out. Scale geometry matches the INT8 bank.
     */
    struct Int4Bank
    {
        std::vector<uint8_t> q4;    ///< [Nc, c, ceil(N/2)] packed pairs
        std::vector<uint8_t> q4_il; ///< [Nc, ceil(N/2), 16] interleaved
        std::vector<float> scales;  ///< [numGroups, num_blocks] scales
        int64_t num_blocks = 0;
        int64_t num_groups = 0;
        int64_t half_n = 0;         ///< ceil(N/2) packed column pairs
    };

    /**
     * INT8 encode bank: the quantized twin of the transposed codebooks.
     * One shared 7-bit affine grid per subspace (lo + inverse step)
     * quantizes BOTH the stored centroids and, at encode time, the input
     * subvectors, which is what collapses argmin ||x - c||^2 to the
     * integer argmin over (||c_u||^2 - 2 * x_u . c_s) with c_s = c_u -
     * 128 (the shift makes centroids signed for VPDPBUSD/VPMADDUBSW; the
     * dropped ||x_u||^2 and -256 * sum(x_u) terms are centroid-
     * independent). `cs` row-major [Nc, c, v] for the scalar reference;
     * `cs_quad` quad-interleaved [Nc, ceil(v/4), 16, 4] (byte
     * ((s-local quad * 16) + j) * 4 + k = c_s[j][4q + k], zero past v
     * and past c) for the SIMD tiers, built only when c <= 16, v <= 128
     * and the CPU has a tier. `norms` [Nc, norm_stride] int32 centroid
     * norms with INT32_MAX pads so pad lanes never win the argmin.
     */
    struct Int8EncodeBank
    {
        std::vector<int8_t> cs;       ///< [Nc, c, v] shifted codes
        std::vector<int8_t> cs_quad;  ///< [Nc, vq4 * 64] quad mirror
        std::vector<int32_t> norms;   ///< [Nc, norm_stride] ||c_u||^2
        std::vector<float> lo;        ///< [Nc] grid offsets
        std::vector<float> inv;       ///< [Nc] inverse grid steps
        int64_t vq4 = 0;              ///< ceil(v / 4) dim quads
        int64_t norm_stride = 0;      ///< max(c, 16)
    };

    template <vq::Metric M, typename Sink>
    void encodeRowsImpl(const float *x, int64_t rows, Sink &&sink) const;

    template <typename Sink>
    void encodeDispatch(const float *x, int64_t rows, Sink &&sink) const;

    /** INT8 encode over `rows` already-staged rows: per-subspace scalar
     * integer reference or SIMD kernel per `variant` (Auto resolved by
     * the caller). Shared by encodeBatchInt8 / encodeBlockInt8. */
    template <typename Sink>
    void encodeRowsInt8(const float *x, int64_t rows, EncodeVariant variant,
                        Sink &&sink) const;

    /** Row-major accumulate: optimal for tiny batches. */
    void sweepBlockSimple(const int32_t *codes, int64_t bn, float *yb) const;

    /** Grouped-subspace accumulate: optimal for real batches. */
    void sweepBlockGrouped(const int32_t *codes, int64_t bn,
                           float *yb) const;

    /** Scalar INT8 group sweep (exact integer accumulation per group). */
    void sweepRowsInt8Scalar(const Int8Bank &bank, const int32_t *codes,
                             int64_t bn, float *yb) const;

    /** Scalar INT4 packed group sweep (exact biased-nibble accumulation
     * per group; bit-identical to the shuffle variants). */
    void sweepRowsInt4Scalar(const Int4Bank &bank, const int32_t *codes,
                             int64_t bn, float *yb) const;

    /** Add the packed bias row to `bn` output rows (no-op without bias). */
    void addBias(float *yb, int64_t bn) const;

    /**
     * Codebook of subspace `s`, stored TRANSPOSED as [v, c] so the encode
     * kernel's inner loop runs contiguously over centroids (SIMD-friendly)
     * instead of strided over subvector elements.
     */
    const float *
    codebookT(int64_t s) const
    {
        return data_.data() + s * num_centroids_ * subvector_len_;
    }
    const float *
    entry(int64_t s, int64_t j) const
    {
        return data_.data() + table_offset_ +
               (s * num_centroids_ + j) * out_features_;
    }
    const float *biasPtr() const { return data_.data() + bias_offset_; }

    int64_t in_features_;
    int64_t out_features_;
    int64_t subvector_len_;
    int64_t num_centroids_;
    int64_t num_subspaces_;
    vq::Metric metric_;
    bool bf16_inputs_;
    bool has_bias_;
    size_t table_offset_;
    size_t bias_offset_;
    std::vector<float> data_;  ///< [codebooks | psum table | bias]

    // Lazily-built quantized mirrors of the table: logically-immutable
    // caches, each built at most once under its flag (planner triggers
    // them eagerly). Independent — a plan serving only one precision
    // never materializes the other bank.
    mutable std::once_flag int8_once_;
    mutable std::unique_ptr<Int8Bank> int8_bank_;
    mutable std::once_flag int4_once_;
    mutable std::unique_ptr<Int4Bank> int4_bank_;
    mutable std::once_flag int8_encode_once_;
    mutable std::unique_ptr<Int8EncodeBank> int8_encode_bank_;
};

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_TABLE_ARENA_H
