#include "lutboost/lut_conv.h"

#include "util/logging.h"

namespace lutdla::lutboost {

LutConv2d::LutConv2d(ConvGeometry geom, vq::PQConfig pq, bool bias,
                     uint64_t seed)
    : geom_(geom),
      inner_(std::make_shared<LutLinear>(geom.patchSize(),
                                         geom.out_channels, pq, bias, seed))
{
}

std::shared_ptr<LutConv2d>
LutConv2d::fromConv(const nn::Conv2d &conv, vq::PQConfig pq)
{
    auto lut = std::make_shared<LutConv2d>(conv.geometry(), pq,
                                           conv.hasBias());
    lut->inner_->weight().value = conv.weight().value;
    if (conv.hasBias())
        lut->inner_->bias().value =
            const_cast<nn::Conv2d &>(conv).bias().value;
    return lut;
}

Tensor
LutConv2d::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 4, "LutConv2d expects NCHW");
    const int64_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
    const int64_t Ho = geom_.outSize(H), Wo = geom_.outSize(W);
    if (train) {
        cached_n_ = N;
        cached_h_ = H;
        cached_w_ = W;
    }
    Tensor cols = im2col(x, geom_);
    Tensor flat = inner_->forward(cols, train);

    Tensor y(Shape{N, geom_.out_channels, Ho, Wo});
    int64_t row = 0;
    for (int64_t n = 0; n < N; ++n)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < geom_.out_channels; ++co)
                    y.at4(n, co, ho, wo) = flat.at(row, co);
    return y;
}

Tensor
LutConv2d::backward(const Tensor &grad_out)
{
    const int64_t N = grad_out.dim(0), Ho = grad_out.dim(2);
    const int64_t Wo = grad_out.dim(3);
    Tensor flat(Shape{N * Ho * Wo, geom_.out_channels});
    int64_t row = 0;
    for (int64_t n = 0; n < N; ++n)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < geom_.out_channels; ++co)
                    flat.at(row, co) = grad_out.at4(n, co, ho, wo);

    Tensor grad_cols = inner_->backward(flat);
    return col2im(grad_cols, geom_, cached_n_, cached_h_, cached_w_);
}

std::vector<nn::Parameter *>
LutConv2d::parameters()
{
    return inner_->parameters();
}

} // namespace lutdla::lutboost
