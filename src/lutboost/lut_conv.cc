#include "lutboost/lut_conv.h"

#include <chrono>

#include "util/logging.h"

namespace lutdla::lutboost {

void
convArenaForward(const LutTableArena &arena, const ConvGeometry &geom,
                 const float *x, int64_t n, int64_t h, int64_t w, float *y,
                 ConvScratch &scratch)
{
    const int64_t Ho = geom.outSize(h), Wo = geom.outSize(w);
    LUTDLA_CHECK(Ho > 0 && Wo > 0, "conv output collapsed to zero");
    LUTDLA_CHECK(arena.inFeatures() == geom.patchSize(),
                 "arena width ", arena.inFeatures(),
                 " != conv patch size ", geom.patchSize());
    const int64_t rows = n * Ho * Wo;
    const int64_t co_dim = arena.outFeatures();

    scratch.cols.resize(static_cast<size_t>(rows * geom.patchSize()));
    scratch.flat.resize(static_cast<size_t>(rows * co_dim));
    im2colInto(x, n, h, w, geom, scratch.cols.data());
    arena.forwardBatch(scratch.cols.data(), rows, scratch.flat.data());

    // [n*Ho*Wo, C_out] -> NCHW, same traversal as LutConv2d::forward.
    const float *flat = scratch.flat.data();
    int64_t row = 0;
    for (int64_t b = 0; b < n; ++b)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < co_dim; ++co)
                    y[((b * co_dim + co) * Ho + ho) * Wo + wo] =
                        flat[row * co_dim + co];
}

void
convArenaForward(const LutTableArena &arena, const ConvGeometry &geom,
                 const float *x, int64_t n, int64_t h, int64_t w, float *y,
                 ConvScratch &scratch, const KernelBackend &backend,
                 KernelScratch &kscratch, uint64_t *encode_ns,
                 uint64_t *gather_ns, EncodePrecision encode)
{
    using Clock = std::chrono::steady_clock;
    const int64_t Ho = geom.outSize(h), Wo = geom.outSize(w);
    LUTDLA_CHECK(Ho > 0 && Wo > 0, "conv output collapsed to zero");
    LUTDLA_CHECK(arena.inFeatures() == geom.patchSize(),
                 "arena width ", arena.inFeatures(),
                 " != conv patch size ", geom.patchSize());
    const int64_t rows = n * Ho * Wo;
    const int64_t co_dim = arena.outFeatures();

    const auto t0 = Clock::now();
    scratch.cols.resize(static_cast<size_t>(rows * geom.patchSize()));
    scratch.flat.resize(static_cast<size_t>(rows * co_dim));
    im2colInto(x, n, h, w, geom, scratch.cols.data());
    backend.encodeBatch(arena, scratch.cols.data(), rows, kscratch,
                        encode);
    const auto t1 = Clock::now();
    backend.gatherAccumulate(arena, kscratch, scratch.flat.data());

    // [n*Ho*Wo, C_out] -> NCHW, same traversal as LutConv2d::forward.
    const float *flat = scratch.flat.data();
    int64_t row = 0;
    for (int64_t b = 0; b < n; ++b)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < co_dim; ++co)
                    y[((b * co_dim + co) * Ho + ho) * Wo + wo] =
                        flat[row * co_dim + co];
    const auto t2 = Clock::now();
    if (encode_ns)
        *encode_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
    if (gather_ns)
        *gather_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
                .count());
}

LutConv2d::LutConv2d(ConvGeometry geom, vq::PQConfig pq, bool bias,
                     uint64_t seed)
    : geom_(geom),
      inner_(std::make_shared<LutLinear>(geom.patchSize(),
                                         geom.out_channels, pq, bias, seed))
{
}

std::shared_ptr<LutConv2d>
LutConv2d::fromConv(const nn::Conv2d &conv, vq::PQConfig pq)
{
    auto lut = std::make_shared<LutConv2d>(conv.geometry(), pq,
                                           conv.hasBias());
    lut->inner_->weight().value = conv.weight().value;
    if (conv.hasBias())
        lut->inner_->bias().value =
            const_cast<nn::Conv2d &>(conv).bias().value;
    return lut;
}

Tensor
LutConv2d::forward(const Tensor &x, bool train)
{
    LUTDLA_CHECK(x.rank() == 4, "LutConv2d expects NCHW");
    const int64_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
    const int64_t Ho = geom_.outSize(H), Wo = geom_.outSize(W);
    if (train) {
        // Always refresh: consecutive train forwards may change shape, and
        // backward must unlower against the most recent one.
        cached_n_ = N;
        cached_h_ = H;
        cached_w_ = W;
    }
    Tensor cols = im2col(x, geom_);
    Tensor flat = inner_->forward(cols, train);

    Tensor y(Shape{N, geom_.out_channels, Ho, Wo});
    int64_t row = 0;
    for (int64_t n = 0; n < N; ++n)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < geom_.out_channels; ++co)
                    y.at4(n, co, ho, wo) = flat.at(row, co);
    return y;
}

Tensor
LutConv2d::forwardBatch(const Tensor &x) const
{
    LUTDLA_CHECK(x.rank() == 4 && x.dim(1) == geom_.in_channels,
                 "LutConv2d::forwardBatch expects NCHW with C=",
                 geom_.in_channels, ", got ", shapeStr(x.shape()));
    const int64_t N = x.dim(0), H = x.dim(2), W = x.dim(3);
    Tensor y(Shape{N, geom_.out_channels, geom_.outSize(H),
                   geom_.outSize(W)});
    ConvScratch scratch;
    convArenaForward(*inferenceArena(), geom_, x.data(), N, H, W, y.data(),
                     scratch);
    return y;
}

Tensor
LutConv2d::backward(const Tensor &grad_out)
{
    LUTDLA_CHECK(cached_n_ > 0,
                 "LutConv2d backward without forward(train=true)");
    const int64_t N = grad_out.dim(0), Ho = grad_out.dim(2);
    const int64_t Wo = grad_out.dim(3);
    // The cache holds the spatial shape of the most recent TRAIN forward
    // (eval forwards — e.g. a mid-training validation pass at a different
    // resolution — deliberately do not touch it). Guard against a grad
    // from any other shape: col2im would otherwise scatter out of bounds.
    LUTDLA_CHECK(N == cached_n_ && grad_out.dim(1) == geom_.out_channels &&
                     Ho == geom_.outSize(cached_h_) &&
                     Wo == geom_.outSize(cached_w_),
                 "LutConv2d backward shape ", shapeStr(grad_out.shape()),
                 " does not match the last train forward ([", cached_n_,
                 ", ", geom_.in_channels, ", ", cached_h_, ", ", cached_w_,
                 "] input)");
    Tensor flat(Shape{N * Ho * Wo, geom_.out_channels});
    int64_t row = 0;
    for (int64_t n = 0; n < N; ++n)
        for (int64_t ho = 0; ho < Ho; ++ho)
            for (int64_t wo = 0; wo < Wo; ++wo, ++row)
                for (int64_t co = 0; co < geom_.out_channels; ++co)
                    flat.at(row, co) = grad_out.at4(n, co, ho, wo);

    Tensor grad_cols = inner_->backward(flat);
    return col2im(grad_cols, geom_, cached_n_, cached_h_, cached_w_);
}

std::vector<nn::Parameter *>
LutConv2d::parameters()
{
    return inner_->parameters();
}

} // namespace lutdla::lutboost
