#ifndef LUTDLA_LUTBOOST_LUT_CONV_H
#define LUTDLA_LUTBOOST_LUT_CONV_H

/**
 * @file
 * Vector-quantized convolution: im2col + LutLinear + reshape, matching how
 * the LUT-DLA hardware executes convolutions (the paper's CNN evaluations
 * lower every conv onto the LUT GEMM path after im2col).
 *
 * Two inference paths exist once the inner LutLinear is frozen:
 *  - forward(x, false): the reference eval path (im2col -> lookupGemm).
 *  - forwardBatch(x) / convArenaForward(): the batched serving path that
 *    lowers the whole NCHW batch through one im2col into reusable scratch
 *    and sweeps the flat LutTableArena kernel. Bit-exact with the
 *    reference path and thread-safe (immutable arena only).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "lutboost/kernels.h"
#include "lutboost/lut_linear.h"
#include "nn/conv2d.h"
#include "tensor/im2col.h"

namespace lutdla::lutboost {

/**
 * Reusable scratch for the batched conv path: the im2col matrix and the
 * flat GEMM output. Workers keep one per thread so steady-state serving
 * performs no per-batch allocations beyond vector growth to the largest
 * batch seen.
 */
struct ConvScratch
{
    std::vector<float> cols;  ///< [n*Ho*Wo, patchSize] im2col rows
    std::vector<float> flat;  ///< [n*Ho*Wo, out_channels] GEMM output
};

/**
 * Batched frozen-conv kernel: lower NCHW `x` ([n, C_in, h, w] contiguous)
 * through im2col into `scratch.cols`, run the arena's row-blocked gather
 * GEMM into `scratch.flat`, and transpose the result into NCHW `y`
 * ([n, C_out, Ho, Wo], caller-allocated). Thread-safe; bit-exact with
 * eval-mode LutConv2d::forward(x, false) on a frozen layer.
 */
void convArenaForward(const LutTableArena &arena, const ConvGeometry &geom,
                      const float *x, int64_t n, int64_t h, int64_t w,
                      float *y, ConvScratch &scratch);

/**
 * Backend-dispatched variant of convArenaForward: the lowered GEMM runs as
 * an explicit encode -> gather pair through `backend` (reference float or
 * quantized; see lutboost/kernels.h) with packed codes in `kscratch`.
 * When `encode_ns` / `gather_ns` are non-null, the im2col + encode and
 * gather + NCHW-reshape phase times are accumulated into them — the
 * serving engine's encode/gather stat split. `encode` selects the argmin
 * arithmetic for the lowered GEMM (see KernelBackend::encodeBatch).
 * Bit-exact with the fused overload when `backend` is the reference
 * backend and `encode` is Float32.
 */
void convArenaForward(const LutTableArena &arena, const ConvGeometry &geom,
                      const float *x, int64_t n, int64_t h, int64_t w,
                      float *y, ConvScratch &scratch,
                      const KernelBackend &backend, KernelScratch &kscratch,
                      uint64_t *encode_ns = nullptr,
                      uint64_t *gather_ns = nullptr,
                      EncodePrecision encode = EncodePrecision::Float32);

/** Conv2d whose lowered GEMM runs through a LutLinear. */
class LutConv2d : public nn::Layer
{
  public:
    /** Construct with random centroids. */
    LutConv2d(ConvGeometry geom, vq::PQConfig pq, bool bias = true,
              uint64_t seed = 29);

    /** Clone weights/bias from a trained Conv2d. */
    static std::shared_ptr<LutConv2d> fromConv(const nn::Conv2d &conv,
                                               vq::PQConfig pq);

    std::string name() const override { return "LutConv2d"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<nn::Parameter *> parameters() override;
    double auxLoss() const override { return inner_->auxLoss(); }

    const ConvGeometry &geometry() const { return geom_; }

    /** The wrapped LUT GEMM operator (centroids, weight, precision). */
    LutLinear &inner() { return *inner_; }

    /** True once the inner LutLinear froze its inference tables. */
    bool inferenceLutReady() const { return inner_->inferenceLutReady(); }

    /** Shared handle to the inner frozen arena; see LutLinear. */
    std::shared_ptr<const LutTableArena>
    inferenceArena() const
    {
        return inner_->inferenceArena();
    }

    /**
     * Batched frozen inference: NCHW in, NCHW out, through the flat table
     * arena (convArenaForward). Thread-safe and bit-exact with eval-mode
     * forward() on a frozen layer; requires refreshInferenceLut() on the
     * inner operator first. Serving uses the raw kernel directly with
     * per-worker scratch; this wrapper allocates its own.
     */
    Tensor forwardBatch(const Tensor &x) const;

  private:
    ConvGeometry geom_;
    std::shared_ptr<LutLinear> inner_;
    // Spatial shape of the most recent forward(train=true); backward
    // validates its grad against this so a shape-changing forward between
    // the train forward and backward cannot silently corrupt col2im.
    int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_LUT_CONV_H
