#ifndef LUTDLA_LUTBOOST_LUT_CONV_H
#define LUTDLA_LUTBOOST_LUT_CONV_H

/**
 * @file
 * Vector-quantized convolution: im2col + LutLinear + reshape, matching how
 * the LUT-DLA hardware executes convolutions (the paper's CNN evaluations
 * lower every conv onto the LUT GEMM path after im2col).
 */

#include <memory>

#include "lutboost/lut_linear.h"
#include "nn/conv2d.h"
#include "tensor/im2col.h"

namespace lutdla::lutboost {

/** Conv2d whose lowered GEMM runs through a LutLinear. */
class LutConv2d : public nn::Layer
{
  public:
    /** Construct with random centroids. */
    LutConv2d(ConvGeometry geom, vq::PQConfig pq, bool bias = true,
              uint64_t seed = 29);

    /** Clone weights/bias from a trained Conv2d. */
    static std::shared_ptr<LutConv2d> fromConv(const nn::Conv2d &conv,
                                               vq::PQConfig pq);

    std::string name() const override { return "LutConv2d"; }
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<nn::Parameter *> parameters() override;
    double auxLoss() const override { return inner_->auxLoss(); }

    const ConvGeometry &geometry() const { return geom_; }

    /** The wrapped LUT GEMM operator (centroids, weight, precision). */
    LutLinear &inner() { return *inner_; }

  private:
    ConvGeometry geom_;
    std::shared_ptr<LutLinear> inner_;
    int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_LUT_CONV_H
