// Runtime-dispatched SIMD kernel variants. This TU is compiled WITHOUT
// -march flags; every vector function carries a target attribute instead,
// so the binary always contains all variants and util::simdLevel() picks
// one at run time. Keep intrinsics inside attributed functions only.
//
// Numerics: encode kernels use explicit mul + add (never FMA) and exact
// min/tie-break reductions, so they are bit-exact with the scalar encode.
// Gather kernels accumulate in integer lanes and dequantize with one
// mul + add per (scale group, column) — the identical float op sequence
// the scalar group sweep performs, so shuffle and scalar paths agree bit
// for bit (integer addition is associative; tests enforce the match).

#include "lutboost/kernels_simd.h"

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace lutdla::lutboost::simd {

namespace {

/** Scalar argmin scan shared by the NaN fallbacks (lowest-index ties). */
int32_t
argminScan16(const float *d)
{
    int32_t best = 0;
    float best_dist = d[0];
    for (int64_t j = 1; j < 16; ++j) {
        if (d[j] < best_dist) {
            best_dist = d[j];
            best = static_cast<int32_t>(j);
        }
    }
    return best;
}

__attribute__((target("avx512f"))) int32_t
argminL2C16Avx512(const float *__restrict__ sub,
                  const float *__restrict__ cbt, int64_t v)
{
    __m512 vd = _mm512_setzero_ps();
    for (int64_t t = 0; t < v; ++t) {
        const __m512 row = _mm512_loadu_ps(cbt + t * 16);
        const __m512 diff = _mm512_sub_ps(_mm512_set1_ps(sub[t]), row);
        vd = _mm512_add_ps(vd, _mm512_mul_ps(diff, diff));
    }
    if (_mm512_cmp_ps_mask(vd, vd, _CMP_UNORD_Q) != 0) {
        alignas(64) float d[16];
        _mm512_store_ps(d, vd);
        return argminScan16(d);
    }
    // log2(16) shuffle+min steps broadcast the exact minimum to every
    // lane (min is order-insensitive, so this is still bit-exact).
    __m512 m = _mm512_min_ps(vd, _mm512_shuffle_f32x4(vd, vd, 0x4E));
    m = _mm512_min_ps(m, _mm512_shuffle_f32x4(m, m, 0xB1));
    m = _mm512_min_ps(m, _mm512_shuffle_ps(m, m, 0x4E));
    m = _mm512_min_ps(m, _mm512_shuffle_ps(m, m, 0xB1));
    const __mmask16 eq = _mm512_cmp_ps_mask(vd, m, _CMP_EQ_OQ);
    return static_cast<int32_t>(__builtin_ctz(eq));
}

__attribute__((target("avx2"))) int32_t
argminL2C16Avx2(const float *__restrict__ sub,
                const float *__restrict__ cbt, int64_t v)
{
    // Centroids 0..7 in d0, 8..15 in d1; same ascending-t add order as
    // the scalar distance loop, explicit mul + add (no FMA).
    __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
    for (int64_t t = 0; t < v; ++t) {
        const __m256 a = _mm256_set1_ps(sub[t]);
        const __m256 f0 = _mm256_sub_ps(a, _mm256_loadu_ps(cbt + t * 16));
        const __m256 f1 =
            _mm256_sub_ps(a, _mm256_loadu_ps(cbt + t * 16 + 8));
        d0 = _mm256_add_ps(d0, _mm256_mul_ps(f0, f0));
        d1 = _mm256_add_ps(d1, _mm256_mul_ps(f1, f1));
    }
    if (_mm256_movemask_ps(_mm256_cmp_ps(d0, d0, _CMP_UNORD_Q)) != 0 ||
        _mm256_movemask_ps(_mm256_cmp_ps(d1, d1, _CMP_UNORD_Q)) != 0) {
        alignas(32) float d[16];
        _mm256_store_ps(d, d0);
        _mm256_store_ps(d + 8, d1);
        return argminScan16(d);
    }
    __m256 m = _mm256_min_ps(d0, d1);
    m = _mm256_min_ps(m, _mm256_permute2f128_ps(m, m, 0x01));
    m = _mm256_min_ps(m, _mm256_shuffle_ps(m, m, 0x4E));
    m = _mm256_min_ps(m, _mm256_shuffle_ps(m, m, 0xB1));
    const unsigned eq0 = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(d0, m, _CMP_EQ_OQ)));
    const unsigned eq1 = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(d1, m, _CMP_EQ_OQ)));
    return static_cast<int32_t>(__builtin_ctz(eq0 | (eq1 << 8)));
}

__attribute__((target("avx512f"))) void
encodeL2C16RowsAvx512(const float *x, int64_t rows, int64_t stride,
                      const float *cbt, int64_t v, int32_t *codes)
{
    for (int64_t i = 0; i < rows; ++i)
        codes[i] = argminL2C16Avx512(x + i * stride, cbt, v);
}

__attribute__((target("avx2"))) void
encodeL2C16RowsAvx2(const float *x, int64_t rows, int64_t stride,
                    const float *cbt, int64_t v, int32_t *codes)
{
    for (int64_t i = 0; i < rows; ++i)
        codes[i] = argminL2C16Avx2(x + i * stride, cbt, v);
}

/** Scalar distance + argmin scan for generic c (NaN fallback). Same op
 * sequence as the arena's distanceAll + argminScan: zeroed accumulators,
 * ascending t, explicit mul + add (this TU builds with -ffp-contract=off
 * so no FMA contraction), strict-< scan for lowest-index ties. */
int32_t
argminScanL2Generic(const float *sub, const float *cbt, int64_t v,
                    int64_t c)
{
    float d[64];
    for (int64_t j = 0; j < c; ++j)
        d[j] = 0.0f;
    for (int64_t t = 0; t < v; ++t) {
        const float a = sub[t];
        const float *row = cbt + t * c;
        for (int64_t j = 0; j < c; ++j) {
            const float diff = a - row[j];
            d[j] += diff * diff;
        }
    }
    int32_t best = 0;
    float best_dist = d[0];
    for (int64_t j = 1; j < c; ++j) {
        if (d[j] < best_dist) {
            best_dist = d[j];
            best = static_cast<int32_t>(j);
        }
    }
    return best;
}

__attribute__((target("avx512f"))) int32_t
argminL2GenericAvx512(const float *__restrict__ sub,
                      const float *__restrict__ cbt, int64_t v, int64_t c)
{
    // Up to 4 blocks of 16 centroid lanes (c <= 64). Pad lanes of the
    // last block accumulate garbage from the maskz loads; they are
    // parked at +inf before the reduction and masked out of the
    // equality scan, so they can never win nor steal a tie.
    const int64_t nb = (c + 15) / 16;
    __mmask16 mask[4];
    __m512 d[4];
    for (int64_t b = 0; b < nb; ++b) {
        const int64_t lanes = std::min<int64_t>(16, c - 16 * b);
        mask[b] = static_cast<__mmask16>((1u << lanes) - 1u);
        d[b] = _mm512_setzero_ps();
    }
    for (int64_t t = 0; t < v; ++t) {
        const __m512 a = _mm512_set1_ps(sub[t]);
        const float *row = cbt + t * c;
        for (int64_t b = 0; b < nb; ++b) {
            const __m512 r = _mm512_maskz_loadu_ps(mask[b], row + 16 * b);
            const __m512 diff = _mm512_sub_ps(a, r);
            d[b] = _mm512_add_ps(d[b], _mm512_mul_ps(diff, diff));
        }
    }
    __mmask16 unord = 0;
    for (int64_t b = 0; b < nb; ++b)
        unord |= _mm512_cmp_ps_mask(d[b], d[b], _CMP_UNORD_Q) & mask[b];
    if (unord != 0)
        return argminScanL2Generic(sub, cbt, v, c);
    const __m512 inf = _mm512_set1_ps(__builtin_inff());
    __m512 m = _mm512_mask_blend_ps(mask[0], inf, d[0]);
    for (int64_t b = 1; b < nb; ++b) {
        d[b] = _mm512_mask_blend_ps(mask[b], inf, d[b]);
        m = _mm512_min_ps(m, d[b]);
    }
    m = _mm512_min_ps(m, _mm512_shuffle_f32x4(m, m, 0x4E));
    m = _mm512_min_ps(m, _mm512_shuffle_f32x4(m, m, 0xB1));
    m = _mm512_min_ps(m, _mm512_shuffle_ps(m, m, 0x4E));
    m = _mm512_min_ps(m, _mm512_shuffle_ps(m, m, 0xB1));
    // Ascending block scan + ctz keeps the lowest-index tie-break of the
    // scalar argmin scan.
    for (int64_t b = 0; b < nb; ++b) {
        const __mmask16 eq =
            _mm512_cmp_ps_mask(d[b], m, _CMP_EQ_OQ) & mask[b];
        if (eq != 0)
            return static_cast<int32_t>(16 * b + __builtin_ctz(eq));
    }
    return 0;
}

__attribute__((target("avx2"))) int32_t
argminL2GenericAvx2(const float *__restrict__ sub,
                    const float *__restrict__ cbt, int64_t v, int64_t c)
{
    static const int32_t kLaneMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                          0,  0,  0,  0,  0,  0,  0,  0};
    const int64_t nb = (c + 7) / 8;
    __m256i mask[8];
    unsigned bits[8];
    __m256 d[8];
    for (int64_t b = 0; b < nb; ++b) {
        const int64_t lanes = std::min<int64_t>(8, c - 8 * b);
        mask[b] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(kLaneMask + 8 - lanes));
        bits[b] = (1u << lanes) - 1u;
        d[b] = _mm256_setzero_ps();
    }
    for (int64_t t = 0; t < v; ++t) {
        const __m256 a = _mm256_set1_ps(sub[t]);
        const float *row = cbt + t * c;
        for (int64_t b = 0; b < nb; ++b) {
            const __m256 r = _mm256_maskload_ps(row + 8 * b, mask[b]);
            const __m256 diff = _mm256_sub_ps(a, r);
            d[b] = _mm256_add_ps(d[b], _mm256_mul_ps(diff, diff));
        }
    }
    unsigned unord = 0;
    for (int64_t b = 0; b < nb; ++b)
        unord |= static_cast<unsigned>(_mm256_movemask_ps(
                     _mm256_cmp_ps(d[b], d[b], _CMP_UNORD_Q))) &
                 bits[b];
    if (unord != 0)
        return argminScanL2Generic(sub, cbt, v, c);
    const __m256 inf = _mm256_set1_ps(__builtin_inff());
    __m256 m =
        _mm256_blendv_ps(inf, d[0], _mm256_castsi256_ps(mask[0]));
    for (int64_t b = 1; b < nb; ++b) {
        d[b] = _mm256_blendv_ps(inf, d[b], _mm256_castsi256_ps(mask[b]));
        m = _mm256_min_ps(m, d[b]);
    }
    m = _mm256_min_ps(m, _mm256_permute2f128_ps(m, m, 0x01));
    m = _mm256_min_ps(m, _mm256_shuffle_ps(m, m, 0x4E));
    m = _mm256_min_ps(m, _mm256_shuffle_ps(m, m, 0xB1));
    for (int64_t b = 0; b < nb; ++b) {
        const unsigned eq =
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_cmp_ps(d[b], m, _CMP_EQ_OQ))) &
            bits[b];
        if (eq != 0)
            return static_cast<int32_t>(8 * b + __builtin_ctz(eq));
    }
    return 0;
}

__attribute__((target("avx512f"))) void
encodeL2GenericRowsAvx512(const float *x, int64_t rows, int64_t stride,
                          const float *cbt, int64_t v, int64_t c,
                          int32_t *codes)
{
    for (int64_t i = 0; i < rows; ++i)
        codes[i] = argminL2GenericAvx512(x + i * stride, cbt, v, c);
}

__attribute__((target("avx2"))) void
encodeL2GenericRowsAvx2(const float *x, int64_t rows, int64_t stride,
                        const float *cbt, int64_t v, int64_t c,
                        int32_t *codes)
{
    for (int64_t i = 0; i < rows; ++i)
        codes[i] = argminL2GenericAvx2(x + i * stride, cbt, v, c);
}

/**
 * INT8 argmin-encode, VNNI tier. Per row: quantize the subvector onto
 * the bank's 7-bit grid in masked 16-float chunks (sub, mul, clamp via
 * max/min — MAXPS(t, 0) returns 0 for NaN, matching the scalar
 * reference's `t > 0 ? t : 0` — then CVTPS2DQ under the default
 * round-to-nearest-even mode, matching std::nearbyint), then one
 * VPDPBUSD per dim-quad folds x_u (unsigned) against c_s (signed) for
 * all 16 centroid lanes at once. Bytes past v in the last chunk hold the
 * quantization of 0.0f; the bank's quad layout stores 0 there, so they
 * contribute nothing — the scalar reference simply never reads them.
 */
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void
encodeInt8RowsVnni(const float *x, int64_t rows, int64_t stride,
                   const int8_t *cs_quad, const int32_t *norms, float lo,
                   float inv, int64_t v, int32_t *codes)
{
    const int64_t vq4 = (v + 3) / 4;
    const __m512 vlo = _mm512_set1_ps(lo);
    const __m512 vinv = _mm512_set1_ps(inv);
    const __m512 vzero = _mm512_setzero_ps();
    const __m512 vmax = _mm512_set1_ps(127.0f);
    const __m512i vnorm = _mm512_loadu_si512(norms);
    alignas(64) uint8_t xq[128];
    for (int64_t i = 0; i < rows; ++i) {
        const float *sub = x + i * stride;
        for (int64_t t0 = 0; t0 < v; t0 += 16) {
            const int64_t lanes = std::min<int64_t>(16, v - t0);
            const __mmask16 lm =
                static_cast<__mmask16>((1u << lanes) - 1u);
            __m512 t = _mm512_maskz_loadu_ps(lm, sub + t0);
            t = _mm512_mul_ps(_mm512_sub_ps(t, vlo), vinv);
            t = _mm512_min_ps(_mm512_max_ps(t, vzero), vmax);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(xq + t0),
                             _mm512_cvtepi32_epi8(_mm512_cvtps_epi32(t)));
        }
        __m512i acc = _mm512_setzero_si512();
        for (int64_t qd = 0; qd < vq4; ++qd) {
            uint32_t xw;
            std::memcpy(&xw, xq + 4 * qd, 4);
            const __m512i xb = _mm512_set1_epi32(static_cast<int>(xw));
            const __m512i cb = _mm512_loadu_si512(cs_quad + qd * 64);
            acc = _mm512_dpbusd_epi32(acc, xb, cb);
        }
        // score_j = ||c_u_j||^2 - 2 * dot; pad centroids hold INT32_MAX
        // norms and zero bank bytes, so they never win the min.
        const __m512i score =
            _mm512_sub_epi32(vnorm, _mm512_slli_epi32(acc, 1));
        __m512i m = _mm512_min_epi32(
            score, _mm512_shuffle_i32x4(score, score, 0x4E));
        m = _mm512_min_epi32(m, _mm512_shuffle_i32x4(m, m, 0xB1));
        m = _mm512_min_epi32(
            m, _mm512_shuffle_epi32(m, static_cast<_MM_PERM_ENUM>(0x4E)));
        m = _mm512_min_epi32(
            m, _mm512_shuffle_epi32(m, static_cast<_MM_PERM_ENUM>(0xB1)));
        const __mmask16 eq = _mm512_cmpeq_epi32_mask(score, m);
        codes[i] = static_cast<int32_t>(__builtin_ctz(eq));
    }
}

/**
 * INT8 argmin-encode, AVX2 tier (also serves plain AVX-512 hosts).
 * VPMADDUBSW pairs x_u (unsigned, <= 127) with c_s (signed, >= -128):
 * a pair sum is bounded by 127 * 128 * 2 = 32512 < 32767, so the int16
 * lanes never saturate; VPMADDWD against ones widens the pairs into the
 * same exact int32 quad-dots VPDPBUSD produces.
 */
__attribute__((target("avx2"))) void
encodeInt8RowsAvx2(const float *x, int64_t rows, int64_t stride,
                   const int8_t *cs_quad, const int32_t *norms, float lo,
                   float inv, int64_t v, int32_t *codes)
{
    static const int32_t kLaneMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                          0,  0,  0,  0,  0,  0,  0,  0};
    const int64_t vq4 = (v + 3) / 4;
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256 vzero = _mm256_setzero_ps();
    const __m256 vmax = _mm256_set1_ps(127.0f);
    const __m256i ones16 = _mm256_set1_epi16(1);
    const __m256i norm0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(norms));
    const __m256i norm1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(norms + 8));
    alignas(32) int32_t qtmp[8];
    alignas(32) uint8_t xq[128];
    for (int64_t i = 0; i < rows; ++i) {
        const float *sub = x + i * stride;
        for (int64_t t0 = 0; t0 < v; t0 += 8) {
            const int64_t lanes = std::min<int64_t>(8, v - t0);
            const __m256i lm = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(kLaneMask + 8 - lanes));
            __m256 t = _mm256_maskload_ps(sub + t0, lm);
            t = _mm256_mul_ps(_mm256_sub_ps(t, vlo), vinv);
            t = _mm256_min_ps(_mm256_max_ps(t, vzero), vmax);
            _mm256_store_si256(reinterpret_cast<__m256i *>(qtmp),
                               _mm256_cvtps_epi32(t));
            for (int64_t k = 0; k < 8 && t0 + k < 4 * vq4; ++k)
                xq[t0 + k] = static_cast<uint8_t>(qtmp[k]);
        }
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        for (int64_t qd = 0; qd < vq4; ++qd) {
            uint32_t xw;
            std::memcpy(&xw, xq + 4 * qd, 4);
            const __m256i xb = _mm256_set1_epi32(static_cast<int>(xw));
            const __m256i cb0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(cs_quad + qd * 64));
            const __m256i cb1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(cs_quad + qd * 64 + 32));
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(_mm256_maddubs_epi16(xb, cb0), ones16));
            acc1 = _mm256_add_epi32(
                acc1,
                _mm256_madd_epi16(_mm256_maddubs_epi16(xb, cb1), ones16));
        }
        const __m256i s0 =
            _mm256_sub_epi32(norm0, _mm256_slli_epi32(acc0, 1));
        const __m256i s1 =
            _mm256_sub_epi32(norm1, _mm256_slli_epi32(acc1, 1));
        __m256i m = _mm256_min_epi32(s0, s1);
        m = _mm256_min_epi32(m, _mm256_permute2x128_si256(m, m, 0x01));
        m = _mm256_min_epi32(m, _mm256_shuffle_epi32(m, 0x4E));
        m = _mm256_min_epi32(m, _mm256_shuffle_epi32(m, 0xB1));
        const unsigned eq0 = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(s0, m))));
        const unsigned eq1 = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(s1, m))));
        codes[i] = static_cast<int32_t>(__builtin_ctz(eq0 | (eq1 << 8)));
    }
}

__attribute__((target("avx512f,avx512bw"))) void
gatherChunkAvx512(const int8_t *__restrict__ q_il,
                  const float *__restrict__ scales,
                  const uint8_t *__restrict__ planar, int64_t num_subspaces,
                  int64_t n, int64_t num_blocks, int64_t scale_group,
                  int64_t block_cols, float *__restrict__ colmajor)
{
    constexpr int64_t kChunk = 64;
    const int64_t num_groups =
        (num_subspaces + scale_group - 1) / scale_group;
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * scale_group;
        const int64_t gs =
            std::min<int64_t>(scale_group, num_subspaces - s0);
        // Code lanes for the whole group stay register/L1-resident
        // across the column sweep (<= 16 zmm of indices).
        __m512i idx[16];
        for (int64_t i = 0; i < gs; ++i)
            idx[i] = _mm512_loadu_si512(planar + (s0 + i) * kChunk);
        const float *srow = scales + g * num_blocks;
        for (int64_t col = 0; col < n; ++col) {
            __m512i lo = _mm512_setzero_si512();
            __m512i hi = _mm512_setzero_si512();
            for (int64_t i = 0; i < gs; ++i) {
                // One 16-byte LUT per (subspace, column), broadcast to
                // every 128-bit lane; VPSHUFB resolves all 64 rows'
                // lookups in one instruction.
                const __m512i lut = _mm512_broadcast_i32x4(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        q_il + ((s0 + i) * n + col) * 16)));
                const __m512i v = _mm512_shuffle_epi8(lut, idx[i]);
                lo = _mm512_add_epi16(
                    lo, _mm512_cvtepi8_epi16(_mm512_castsi512_si256(v)));
                hi = _mm512_add_epi16(
                    hi, _mm512_cvtepi8_epi16(
                            _mm512_extracti64x4_epi64(v, 1)));
            }
            // Spill the int16 lanes through int32 and dequantize with one
            // mul + add per group (the scalar sweep's exact float ops).
            const __m512 vs = _mm512_set1_ps(srow[col / block_cols]);
            const __m512 f0 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_castsi512_si256(lo))),
                vs);
            const __m512 f1 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_extracti64x4_epi64(lo, 1))),
                vs);
            const __m512 f2 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_castsi512_si256(hi))),
                vs);
            const __m512 f3 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_extracti64x4_epi64(hi, 1))),
                vs);
            float *out = colmajor + col * kChunk;
            if (g == 0) {
                _mm512_storeu_ps(out, f0);
                _mm512_storeu_ps(out + 16, f1);
                _mm512_storeu_ps(out + 32, f2);
                _mm512_storeu_ps(out + 48, f3);
            } else {
                _mm512_storeu_ps(
                    out, _mm512_add_ps(_mm512_loadu_ps(out), f0));
                _mm512_storeu_ps(
                    out + 16,
                    _mm512_add_ps(_mm512_loadu_ps(out + 16), f1));
                _mm512_storeu_ps(
                    out + 32,
                    _mm512_add_ps(_mm512_loadu_ps(out + 32), f2));
                _mm512_storeu_ps(
                    out + 48,
                    _mm512_add_ps(_mm512_loadu_ps(out + 48), f3));
            }
        }
    }
}

__attribute__((target("avx2"))) void
gatherChunkAvx2(const int8_t *__restrict__ q_il,
                const float *__restrict__ scales,
                const uint8_t *__restrict__ planar, int64_t num_subspaces,
                int64_t n, int64_t num_blocks, int64_t scale_group,
                int64_t block_cols, float *__restrict__ colmajor)
{
    constexpr int64_t kChunk = 32;
    const int64_t num_groups =
        (num_subspaces + scale_group - 1) / scale_group;
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * scale_group;
        const int64_t gs =
            std::min<int64_t>(scale_group, num_subspaces - s0);
        __m256i idx[16];
        for (int64_t i = 0; i < gs; ++i)
            idx[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                planar + (s0 + i) * kChunk));
        const float *srow = scales + g * num_blocks;
        for (int64_t col = 0; col < n; ++col) {
            __m256i lo = _mm256_setzero_si256();
            __m256i hi = _mm256_setzero_si256();
            for (int64_t i = 0; i < gs; ++i) {
                const __m256i lut = _mm256_broadcastsi128_si256(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        q_il + ((s0 + i) * n + col) * 16)));
                const __m256i v = _mm256_shuffle_epi8(lut, idx[i]);
                lo = _mm256_add_epi16(
                    lo, _mm256_cvtepi8_epi16(_mm256_castsi256_si128(v)));
                hi = _mm256_add_epi16(
                    hi, _mm256_cvtepi8_epi16(
                            _mm256_extracti128_si256(v, 1)));
            }
            const __m256 vs = _mm256_set1_ps(srow[col / block_cols]);
            const __m256 f0 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_castsi256_si128(lo))),
                vs);
            const __m256 f1 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(lo, 1))),
                vs);
            const __m256 f2 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_castsi256_si128(hi))),
                vs);
            const __m256 f3 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(hi, 1))),
                vs);
            float *out = colmajor + col * kChunk;
            if (g == 0) {
                _mm256_storeu_ps(out, f0);
                _mm256_storeu_ps(out + 8, f1);
                _mm256_storeu_ps(out + 16, f2);
                _mm256_storeu_ps(out + 24, f3);
            } else {
                _mm256_storeu_ps(
                    out, _mm256_add_ps(_mm256_loadu_ps(out), f0));
                _mm256_storeu_ps(
                    out + 8, _mm256_add_ps(_mm256_loadu_ps(out + 8), f1));
                _mm256_storeu_ps(
                    out + 16,
                    _mm256_add_ps(_mm256_loadu_ps(out + 16), f2));
                _mm256_storeu_ps(
                    out + 24,
                    _mm256_add_ps(_mm256_loadu_ps(out + 24), f3));
            }
        }
    }
}

/**
 * INT4 shuffle gather, AVX-512 tier: identical chunk/LUT machinery to
 * gatherChunkAvx512, but each looked-up byte packs TWO adjacent output
 * columns (low nibble = even column, high nibble = odd column, both
 * bias-shifted by +8), so one VPSHUFB + one AND + one shift resolve 64
 * rows of BOTH columns of a pair. Biased nibbles (0..15) accumulate in
 * int16 lanes — at most 16 * 15 = 240, exact — and one subtract of
 * 8 * gs recovers the signed sum before the per-group dequantizing
 * mul + add, the same float op sequence the scalar packed sweep emits.
 */
__attribute__((target("avx512f,avx512bw"))) void
gatherChunkInt4Avx512(const uint8_t *__restrict__ q4_il,
                      const float *__restrict__ scales,
                      const uint8_t *__restrict__ planar,
                      int64_t num_subspaces, int64_t n, int64_t num_blocks,
                      int64_t scale_group, int64_t block_cols,
                      float *__restrict__ colmajor)
{
    constexpr int64_t kChunk = 64;
    const int64_t half_n = (n + 1) / 2;
    const int64_t num_groups =
        (num_subspaces + scale_group - 1) / scale_group;
    const __m512i nib_mask = _mm512_set1_epi8(0x0F);
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * scale_group;
        const int64_t gs =
            std::min<int64_t>(scale_group, num_subspaces - s0);
        __m512i idx[16];
        for (int64_t i = 0; i < gs; ++i)
            idx[i] = _mm512_loadu_si512(planar + (s0 + i) * kChunk);
        const float *srow = scales + g * num_blocks;
        const __m512i bias =
            _mm512_set1_epi16(static_cast<short>(8 * gs));
        for (int64_t p = 0; p < half_n; ++p) {
            __m512i lo_e = _mm512_setzero_si512();
            __m512i hi_e = _mm512_setzero_si512();
            __m512i lo_o = _mm512_setzero_si512();
            __m512i hi_o = _mm512_setzero_si512();
            for (int64_t i = 0; i < gs; ++i) {
                const __m512i lut = _mm512_broadcast_i32x4(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        q4_il + ((s0 + i) * half_n + p) * 16)));
                const __m512i v = _mm512_shuffle_epi8(lut, idx[i]);
                // Nibble-plane split; values stay 0..15, so the
                // int8 -> int16 widen below is sign-safe.
                const __m512i ve = _mm512_and_si512(v, nib_mask);
                const __m512i vo = _mm512_and_si512(
                    _mm512_srli_epi16(v, 4), nib_mask);
                lo_e = _mm512_add_epi16(
                    lo_e,
                    _mm512_cvtepi8_epi16(_mm512_castsi512_si256(ve)));
                hi_e = _mm512_add_epi16(
                    hi_e, _mm512_cvtepi8_epi16(
                              _mm512_extracti64x4_epi64(ve, 1)));
                lo_o = _mm512_add_epi16(
                    lo_o,
                    _mm512_cvtepi8_epi16(_mm512_castsi512_si256(vo)));
                hi_o = _mm512_add_epi16(
                    hi_o, _mm512_cvtepi8_epi16(
                              _mm512_extracti64x4_epi64(vo, 1)));
            }
            lo_e = _mm512_sub_epi16(lo_e, bias);
            hi_e = _mm512_sub_epi16(hi_e, bias);
            lo_o = _mm512_sub_epi16(lo_o, bias);
            hi_o = _mm512_sub_epi16(hi_o, bias);
            // block_cols is even, so both columns of the pair live in
            // one scale block: a single broadcast serves the pair.
            const __m512 vs =
                _mm512_set1_ps(srow[(2 * p) / block_cols]);
            const __m512 e0 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_castsi512_si256(lo_e))),
                vs);
            const __m512 e1 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_extracti64x4_epi64(lo_e, 1))),
                vs);
            const __m512 e2 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_castsi512_si256(hi_e))),
                vs);
            const __m512 e3 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_extracti64x4_epi64(hi_e, 1))),
                vs);
            float *out = colmajor + (2 * p) * kChunk;
            if (g == 0) {
                _mm512_storeu_ps(out, e0);
                _mm512_storeu_ps(out + 16, e1);
                _mm512_storeu_ps(out + 32, e2);
                _mm512_storeu_ps(out + 48, e3);
            } else {
                _mm512_storeu_ps(
                    out, _mm512_add_ps(_mm512_loadu_ps(out), e0));
                _mm512_storeu_ps(
                    out + 16,
                    _mm512_add_ps(_mm512_loadu_ps(out + 16), e1));
                _mm512_storeu_ps(
                    out + 32,
                    _mm512_add_ps(_mm512_loadu_ps(out + 32), e2));
                _mm512_storeu_ps(
                    out + 48,
                    _mm512_add_ps(_mm512_loadu_ps(out + 48), e3));
            }
            if (2 * p + 1 >= n)
                continue;  // odd N: the high plane has no partner column
            const __m512 o0 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_castsi512_si256(lo_o))),
                vs);
            const __m512 o1 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_extracti64x4_epi64(lo_o, 1))),
                vs);
            const __m512 o2 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_castsi512_si256(hi_o))),
                vs);
            const __m512 o3 = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(
                    _mm512_extracti64x4_epi64(hi_o, 1))),
                vs);
            float *outo = colmajor + (2 * p + 1) * kChunk;
            if (g == 0) {
                _mm512_storeu_ps(outo, o0);
                _mm512_storeu_ps(outo + 16, o1);
                _mm512_storeu_ps(outo + 32, o2);
                _mm512_storeu_ps(outo + 48, o3);
            } else {
                _mm512_storeu_ps(
                    outo, _mm512_add_ps(_mm512_loadu_ps(outo), o0));
                _mm512_storeu_ps(
                    outo + 16,
                    _mm512_add_ps(_mm512_loadu_ps(outo + 16), o1));
                _mm512_storeu_ps(
                    outo + 32,
                    _mm512_add_ps(_mm512_loadu_ps(outo + 32), o2));
                _mm512_storeu_ps(
                    outo + 48,
                    _mm512_add_ps(_mm512_loadu_ps(outo + 48), o3));
            }
        }
    }
}

/** INT4 shuffle gather, AVX2 tier (32-row chunks); see the AVX-512
 * variant for the nibble-plane contract. */
__attribute__((target("avx2"))) void
gatherChunkInt4Avx2(const uint8_t *__restrict__ q4_il,
                    const float *__restrict__ scales,
                    const uint8_t *__restrict__ planar,
                    int64_t num_subspaces, int64_t n, int64_t num_blocks,
                    int64_t scale_group, int64_t block_cols,
                    float *__restrict__ colmajor)
{
    constexpr int64_t kChunk = 32;
    const int64_t half_n = (n + 1) / 2;
    const int64_t num_groups =
        (num_subspaces + scale_group - 1) / scale_group;
    const __m256i nib_mask = _mm256_set1_epi8(0x0F);
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * scale_group;
        const int64_t gs =
            std::min<int64_t>(scale_group, num_subspaces - s0);
        __m256i idx[16];
        for (int64_t i = 0; i < gs; ++i)
            idx[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                planar + (s0 + i) * kChunk));
        const float *srow = scales + g * num_blocks;
        const __m256i bias =
            _mm256_set1_epi16(static_cast<short>(8 * gs));
        for (int64_t p = 0; p < half_n; ++p) {
            __m256i lo_e = _mm256_setzero_si256();
            __m256i hi_e = _mm256_setzero_si256();
            __m256i lo_o = _mm256_setzero_si256();
            __m256i hi_o = _mm256_setzero_si256();
            for (int64_t i = 0; i < gs; ++i) {
                const __m256i lut = _mm256_broadcastsi128_si256(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        q4_il + ((s0 + i) * half_n + p) * 16)));
                const __m256i v = _mm256_shuffle_epi8(lut, idx[i]);
                const __m256i ve = _mm256_and_si256(v, nib_mask);
                const __m256i vo = _mm256_and_si256(
                    _mm256_srli_epi16(v, 4), nib_mask);
                lo_e = _mm256_add_epi16(
                    lo_e,
                    _mm256_cvtepi8_epi16(_mm256_castsi256_si128(ve)));
                hi_e = _mm256_add_epi16(
                    hi_e, _mm256_cvtepi8_epi16(
                              _mm256_extracti128_si256(ve, 1)));
                lo_o = _mm256_add_epi16(
                    lo_o,
                    _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vo)));
                hi_o = _mm256_add_epi16(
                    hi_o, _mm256_cvtepi8_epi16(
                              _mm256_extracti128_si256(vo, 1)));
            }
            lo_e = _mm256_sub_epi16(lo_e, bias);
            hi_e = _mm256_sub_epi16(hi_e, bias);
            lo_o = _mm256_sub_epi16(lo_o, bias);
            hi_o = _mm256_sub_epi16(hi_o, bias);
            const __m256 vs =
                _mm256_set1_ps(srow[(2 * p) / block_cols]);
            const __m256 e0 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_castsi256_si128(lo_e))),
                vs);
            const __m256 e1 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(lo_e, 1))),
                vs);
            const __m256 e2 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_castsi256_si128(hi_e))),
                vs);
            const __m256 e3 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(hi_e, 1))),
                vs);
            float *out = colmajor + (2 * p) * kChunk;
            if (g == 0) {
                _mm256_storeu_ps(out, e0);
                _mm256_storeu_ps(out + 8, e1);
                _mm256_storeu_ps(out + 16, e2);
                _mm256_storeu_ps(out + 24, e3);
            } else {
                _mm256_storeu_ps(
                    out, _mm256_add_ps(_mm256_loadu_ps(out), e0));
                _mm256_storeu_ps(
                    out + 8,
                    _mm256_add_ps(_mm256_loadu_ps(out + 8), e1));
                _mm256_storeu_ps(
                    out + 16,
                    _mm256_add_ps(_mm256_loadu_ps(out + 16), e2));
                _mm256_storeu_ps(
                    out + 24,
                    _mm256_add_ps(_mm256_loadu_ps(out + 24), e3));
            }
            if (2 * p + 1 >= n)
                continue;
            const __m256 o0 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_castsi256_si128(lo_o))),
                vs);
            const __m256 o1 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(lo_o, 1))),
                vs);
            const __m256 o2 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_castsi256_si128(hi_o))),
                vs);
            const __m256 o3 = _mm256_mul_ps(
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(hi_o, 1))),
                vs);
            float *outo = colmajor + (2 * p + 1) * kChunk;
            if (g == 0) {
                _mm256_storeu_ps(outo, o0);
                _mm256_storeu_ps(outo + 8, o1);
                _mm256_storeu_ps(outo + 16, o2);
                _mm256_storeu_ps(outo + 24, o3);
            } else {
                _mm256_storeu_ps(
                    outo, _mm256_add_ps(_mm256_loadu_ps(outo), o0));
                _mm256_storeu_ps(
                    outo + 8,
                    _mm256_add_ps(_mm256_loadu_ps(outo + 8), o1));
                _mm256_storeu_ps(
                    outo + 16,
                    _mm256_add_ps(_mm256_loadu_ps(outo + 16), o2));
                _mm256_storeu_ps(
                    outo + 24,
                    _mm256_add_ps(_mm256_loadu_ps(outo + 24), o3));
            }
        }
    }
}

/**
 * VPERMB + VPDPBUSD gather: one 64-byte LUT carries FOUR subspaces'
 * 16-entry tables; idx bytes are (code + 16 * j) so a single VPERMB
 * resolves 16 rows x 4 subspaces, laid out [row-quad interleaved] so
 * VPDPBUSD(acc, ones, v) folds each row's 4 looked-up bytes straight
 * into its int32 lane. Kills the int8->int16->int32 widening chain that
 * port-limits the plain shuffle kernel.
 */
__attribute__((target("avx512f,avx512bw,avx512vbmi,avx512vnni"))) void
gatherChunkVnni(const int8_t *__restrict__ q_quad,
                const float *__restrict__ scales,
                const uint8_t *__restrict__ planar, int64_t num_subspaces,
                int64_t n, int64_t num_blocks, int64_t scale_group,
                int64_t block_cols, float *__restrict__ colmajor)
{
    constexpr int64_t kChunk = 64;
    const int64_t num_groups =
        (num_subspaces + scale_group - 1) / scale_group;
    const __m512i ones = _mm512_set1_epi8(1);
    for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t s0 = g * scale_group;
        const int64_t gs =
            std::min<int64_t>(scale_group, num_subspaces - s0);
        const int64_t quads = (gs + 3) / 4;
        // Interleave this group's code lanes into VPERMB index vectors:
        // qidx[qd][b] covers rows 16b..16b+15, byte 4r+j = code(row,
        // subspace s0+4qd+j) + 16j (missing tail subspaces index the
        // LUT's zero padding via code 0).
        alignas(64) uint8_t qidx[4][4][64];
        for (int64_t qd = 0; qd < quads; ++qd)
            for (int64_t j = 0; j < 4; ++j) {
                const int64_t s = s0 + 4 * qd + j;
                const uint8_t base = static_cast<uint8_t>(16 * j);
                if (s < num_subspaces) {
                    const uint8_t *lane = planar + s * kChunk;
                    for (int64_t r = 0; r < kChunk; ++r)
                        qidx[qd][r >> 4][4 * (r & 15) + j] =
                            static_cast<uint8_t>(lane[r] + base);
                } else {
                    for (int64_t r = 0; r < kChunk; ++r)
                        qidx[qd][r >> 4][4 * (r & 15) + j] = base;
                }
            }
        __m512i idx[4][4];
        for (int64_t qd = 0; qd < quads; ++qd)
            for (int64_t b = 0; b < 4; ++b)
                idx[qd][b] = _mm512_load_si512(qidx[qd][b]);
        const float *srow = scales + g * num_blocks;
        const int64_t quad0 = s0 / 4;
        for (int64_t col = 0; col < n; ++col) {
            __m512i acc0 = _mm512_setzero_si512();
            __m512i acc1 = _mm512_setzero_si512();
            __m512i acc2 = _mm512_setzero_si512();
            __m512i acc3 = _mm512_setzero_si512();
            for (int64_t qd = 0; qd < quads; ++qd) {
                const __m512i lut = _mm512_loadu_si512(
                    q_quad + ((quad0 + qd) * n + col) * 64);
                acc0 = _mm512_dpbusd_epi32(
                    acc0, ones,
                    _mm512_permutexvar_epi8(idx[qd][0], lut));
                acc1 = _mm512_dpbusd_epi32(
                    acc1, ones,
                    _mm512_permutexvar_epi8(idx[qd][1], lut));
                acc2 = _mm512_dpbusd_epi32(
                    acc2, ones,
                    _mm512_permutexvar_epi8(idx[qd][2], lut));
                acc3 = _mm512_dpbusd_epi32(
                    acc3, ones,
                    _mm512_permutexvar_epi8(idx[qd][3], lut));
            }
            const __m512 vs = _mm512_set1_ps(srow[col / block_cols]);
            const __m512 f0 = _mm512_mul_ps(_mm512_cvtepi32_ps(acc0), vs);
            const __m512 f1 = _mm512_mul_ps(_mm512_cvtepi32_ps(acc1), vs);
            const __m512 f2 = _mm512_mul_ps(_mm512_cvtepi32_ps(acc2), vs);
            const __m512 f3 = _mm512_mul_ps(_mm512_cvtepi32_ps(acc3), vs);
            float *out = colmajor + col * kChunk;
            if (g == 0) {
                _mm512_storeu_ps(out, f0);
                _mm512_storeu_ps(out + 16, f1);
                _mm512_storeu_ps(out + 32, f2);
                _mm512_storeu_ps(out + 48, f3);
            } else {
                _mm512_storeu_ps(
                    out, _mm512_add_ps(_mm512_loadu_ps(out), f0));
                _mm512_storeu_ps(
                    out + 16,
                    _mm512_add_ps(_mm512_loadu_ps(out + 16), f1));
                _mm512_storeu_ps(
                    out + 32,
                    _mm512_add_ps(_mm512_loadu_ps(out + 32), f2));
                _mm512_storeu_ps(
                    out + 48,
                    _mm512_add_ps(_mm512_loadu_ps(out + 48), f3));
            }
        }
    }
}

} // namespace

bool
encodeL2C16Supported(util::SimdLevel level)
{
    return level >= util::SimdLevel::Avx2;
}

int32_t
argminL2C16(util::SimdLevel level, const float *sub, const float *cbt,
            int64_t v)
{
    if (level >= util::SimdLevel::Avx512)
        return argminL2C16Avx512(sub, cbt, v);
    LUTDLA_CHECK(level == util::SimdLevel::Avx2,
                 "argminL2C16 requires AVX2 or AVX-512");
    return argminL2C16Avx2(sub, cbt, v);
}

void
encodeL2C16Rows(util::SimdLevel level, const float *x, int64_t rows,
                int64_t stride, const float *cbt, int64_t v,
                int32_t *codes)
{
    if (level >= util::SimdLevel::Avx512) {
        encodeL2C16RowsAvx512(x, rows, stride, cbt, v, codes);
        return;
    }
    LUTDLA_CHECK(level == util::SimdLevel::Avx2,
                 "encodeL2C16Rows requires AVX2 or AVX-512");
    encodeL2C16RowsAvx2(x, rows, stride, cbt, v, codes);
}

bool
encodeL2GenericSupported(util::SimdLevel level, int64_t c)
{
    return level >= util::SimdLevel::Avx2 && c >= 2 && c <= 64;
}

void
encodeL2GenericRows(util::SimdLevel level, const float *x, int64_t rows,
                    int64_t stride, const float *cbt, int64_t v, int64_t c,
                    int32_t *codes)
{
    LUTDLA_CHECK(c >= 2 && c <= 64,
                 "encodeL2GenericRows supports 2..64 centroids");
    if (level >= util::SimdLevel::Avx512) {
        encodeL2GenericRowsAvx512(x, rows, stride, cbt, v, c, codes);
        return;
    }
    LUTDLA_CHECK(level == util::SimdLevel::Avx2,
                 "encodeL2GenericRows requires AVX2 or AVX-512");
    encodeL2GenericRowsAvx2(x, rows, stride, cbt, v, c, codes);
}

bool
int8EncodeSupported(util::SimdLevel level)
{
    return level >= util::SimdLevel::Avx2;
}

void
encodeInt8C16Rows(util::SimdLevel level, const float *x, int64_t rows,
                  int64_t stride, const int8_t *cs_quad,
                  const int32_t *norms, float lo, float inv, int64_t v,
                  int32_t *codes)
{
    LUTDLA_CHECK(v >= 1 && v <= 128,
                 "INT8 encode kernels support subvector lengths up to 128");
    if (level >= util::SimdLevel::Avx512Vnni) {
        encodeInt8RowsVnni(x, rows, stride, cs_quad, norms, lo, inv, v,
                           codes);
        return;
    }
    LUTDLA_CHECK(level >= util::SimdLevel::Avx2,
                 "encodeInt8C16Rows requires AVX2 or newer");
    encodeInt8RowsAvx2(x, rows, stride, cs_quad, norms, lo, inv, v, codes);
}

bool
shuffleGatherSupported(util::SimdLevel level)
{
    return level >= util::SimdLevel::Avx2;
}

bool
vnniGatherSupported(util::SimdLevel level)
{
    return level >= util::SimdLevel::Avx512Vnni;
}

void
vnniGatherChunk(const int8_t *q_quad, const float *scales,
                const uint8_t *planar, int64_t num_subspaces, int64_t n,
                int64_t num_blocks, int64_t scale_group, int64_t block_cols,
                float *colmajor)
{
    LUTDLA_CHECK(vnniGatherSupported(util::simdLevel()),
                 "vnniGatherChunk requires AVX-512 VBMI + VNNI");
    LUTDLA_CHECK(scale_group >= 4 && scale_group <= 16 &&
                     scale_group % 4 == 0,
                 "vnni gather needs a quad-aligned scale group of <= 16");
    gatherChunkVnni(q_quad, scales, planar, num_subspaces, n, num_blocks,
                    scale_group, block_cols, colmajor);
}

int64_t
shuffleGatherChunkRows(util::SimdLevel level)
{
    if (level >= util::SimdLevel::Avx512)
        return 64;
    if (level == util::SimdLevel::Avx2)
        return 32;
    return 0;
}

void
shuffleGatherChunk(util::SimdLevel level, const int8_t *q_il,
                   const float *scales, const uint8_t *planar,
                   int64_t num_subspaces, int64_t n, int64_t num_blocks,
                   int64_t scale_group, int64_t block_cols, float *colmajor)
{
    LUTDLA_CHECK(scale_group >= 1 && scale_group <= 16,
                 "shuffle gather supports scale groups of 1..16 subspaces");
    if (level >= util::SimdLevel::Avx512) {
        gatherChunkAvx512(q_il, scales, planar, num_subspaces, n,
                          num_blocks, scale_group, block_cols, colmajor);
        return;
    }
    LUTDLA_CHECK(level == util::SimdLevel::Avx2,
                 "shuffleGatherChunk requires AVX2 or AVX-512");
    gatherChunkAvx2(q_il, scales, planar, num_subspaces, n, num_blocks,
                    scale_group, block_cols, colmajor);
}

void
shuffleGatherChunkInt4(util::SimdLevel level, const uint8_t *q4_il,
                       const float *scales, const uint8_t *planar,
                       int64_t num_subspaces, int64_t n, int64_t num_blocks,
                       int64_t scale_group, int64_t block_cols,
                       float *colmajor)
{
    LUTDLA_CHECK(scale_group >= 1 && scale_group <= 16,
                 "shuffle gather supports scale groups of 1..16 subspaces");
    LUTDLA_CHECK(block_cols % 2 == 0,
                 "INT4 shuffle gather needs an even scale block width so "
                 "a packed column pair never straddles a block");
    if (level >= util::SimdLevel::Avx512) {
        gatherChunkInt4Avx512(q4_il, scales, planar, num_subspaces, n,
                              num_blocks, scale_group, block_cols,
                              colmajor);
        return;
    }
    LUTDLA_CHECK(level == util::SimdLevel::Avx2,
                 "shuffleGatherChunkInt4 requires AVX2 or AVX-512");
    gatherChunkInt4Avx2(q4_il, scales, planar, num_subspaces, n,
                        num_blocks, scale_group, block_cols, colmajor);
}

} // namespace lutdla::lutboost::simd
