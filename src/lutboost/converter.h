#ifndef LUTDLA_LUTBOOST_CONVERTER_H
#define LUTDLA_LUTBOOST_CONVERTER_H

/**
 * @file
 * LUTBoost: the multistage model converter (Sec. V, Fig. 6).
 *
 *   Stage 1 (operator replace): swap Linear/Conv2d for LUT operators,
 *           carrying over trained weights; k-means-calibrate centroids on
 *           real activations.
 *   Stage 2 (centroid calibration): freeze everything except centroids and
 *           train them with the reconstruction loss.
 *   Stage 3 (joint training): train centroids and weights together to
 *           recover accuracy.
 *
 * Single-stage baselines (PECAN/PQA-style, used by Fig. 7/12 and Table II)
 * are provided for comparison: random centroids + joint training from the
 * start, optionally from scratch.
 */

#include <vector>

#include "lutboost/lut_conv.h"
#include "lutboost/lut_linear.h"
#include "nn/dataset.h"
#include "nn/trainer.h"

namespace lutdla::lutboost {

/** Full conversion recipe. */
struct ConvertOptions
{
    vq::PQConfig pq;                    ///< (v, c, metric) for every layer
    double recon_penalty_centroid = 0.05;  ///< Lre weight in stage 2
    double recon_penalty_joint = 0.05;     ///< Lre weight in stage 3
    int64_t calibration_rows = 2048;    ///< activation rows for k-means
    int64_t min_in_features = 0;        ///< skip layers narrower than this
    bool replace_linear = true;
    bool replace_conv = true;
    /** Stage-2 hyperparameters. */
    nn::TrainConfig centroid_stage = nn::TrainConfig::adam(3, 1e-3);
    /** Stage-3 hyperparameters. */
    nn::TrainConfig joint_stage = nn::TrainConfig::adam(8, 5e-4);
};

/** What a conversion run produced. */
struct ConversionReport
{
    int64_t replaced_layers = 0;
    double baseline_accuracy = 0.0;   ///< float model before conversion
    double post_replace_accuracy = 0.0;  ///< after k-means calibration only
    nn::TrainResult centroid_stage;
    nn::TrainResult joint_stage;
    double final_accuracy = 0.0;

    /** Accuracy drop vs the float baseline, in fraction (not %). */
    double
    accuracyDrop() const
    {
        return baseline_accuracy - final_accuracy;
    }
};

/** All LUT operators found in a model (LutConv2d contributes its inner). */
std::vector<LutLinear *> findLutLayers(const nn::LayerPtr &model);

/**
 * Stage 1: replace Linear/Conv2d operators with LUT operators in place.
 * @return Number of replaced operators.
 */
int64_t replaceOperators(const nn::LayerPtr &model,
                         const ConvertOptions &options);

/**
 * Calibrate every LUT layer's centroids by recording activations from
 * forward passes over (a subset of) the training split, then running
 * k-means per subspace.
 */
void calibrateCentroids(const nn::LayerPtr &model,
                        const nn::Dataset &dataset,
                        const ConvertOptions &options);

/**
 * Run the full LUTBoost pipeline on a *trained* float model, in place.
 */
ConversionReport convert(const nn::LayerPtr &model,
                         const nn::Dataset &dataset,
                         const ConvertOptions &options);

/** Single-stage baseline flavors. */
enum class SingleStageMode
{
    JointFromRandom,  ///< keep trained weights, random centroids, joint only
    FromScratch       ///< PECAN-style: random weights and centroids
};

/**
 * Single-stage conversion baseline: no calibration, no centroid-only
 * stage; `epochs` of joint training. Used to reproduce the paper's
 * single-vs-multi-stage comparisons.
 */
ConversionReport singleStageConvert(const nn::LayerPtr &model,
                                    const nn::Dataset &dataset,
                                    const ConvertOptions &options,
                                    SingleStageMode mode,
                                    int total_epochs);

} // namespace lutdla::lutboost

#endif // LUTDLA_LUTBOOST_CONVERTER_H
