#ifndef LUTDLA_SIM_FIFO_H
#define LUTDLA_SIM_FIFO_H

/**
 * @file
 * Bounded FIFO queue modelling the asynchronous CCM->IMM index channels
 * (Sec. IV-A: "CCMs and IMMs are connected through a group of asynchronous
 * FIFOs"). The crossing between the two clock domains is modelled with a
 * producer/consumer cycle ratio: push() and pop() take the caller's local
 * cycle, and availability respects the domain-crossing latency.
 */

#include <cstdint>
#include <deque>

#include "util/logging.h"

namespace lutdla::sim {

/** Clock-domain-crossing FIFO with a fixed synchronizer latency. */
template <typename T>
class AsyncFifo
{
  public:
    /**
     * @param capacity       Maximum occupancy.
     * @param crossing_delay Consumer-side cycles before a pushed entry
     *                       becomes visible (2-stage synchronizer default).
     */
    explicit AsyncFifo(int64_t capacity, double crossing_delay = 2.0)
        : capacity_(capacity), crossing_delay_(crossing_delay)
    {
        LUTDLA_CHECK(capacity_ >= 1, "FIFO capacity must be positive");
    }

    /** True when another push would exceed capacity. */
    bool full() const { return size() >= capacity_; }

    /** Entries resident (visible or in flight). */
    int64_t size() const { return static_cast<int64_t>(entries_.size()); }

    bool empty() const { return entries_.empty(); }

    /**
     * Push at producer time `t_push` (in consumer cycles already
     * converted by the caller's clock ratio).
     * @return false when full (caller must retry / stall).
     */
    bool
    push(const T &value, double t_push)
    {
        if (full())
            return false;
        entries_.push_back({value, t_push + crossing_delay_});
        return true;
    }

    /** True when the head entry is visible at consumer time `t`. */
    bool
    canPop(double t) const
    {
        return !entries_.empty() && entries_.front().visible_at <= t;
    }

    /** Pop the head (caller must have checked canPop). */
    T
    pop(double t)
    {
        LUTDLA_CHECK(canPop(t), "pop on empty/invisible FIFO head");
        T v = entries_.front().value;
        entries_.pop_front();
        return v;
    }

    int64_t capacity() const { return capacity_; }

  private:
    struct Entry
    {
        T value;
        double visible_at;
    };

    int64_t capacity_;
    double crossing_delay_;
    std::deque<Entry> entries_;
};

} // namespace lutdla::sim

#endif // LUTDLA_SIM_FIFO_H
