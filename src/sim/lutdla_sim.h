#ifndef LUTDLA_SIM_LUTDLA_SIM_H
#define LUTDLA_SIM_LUTDLA_SIM_H

/**
 * @file
 * LUT-DLA timing simulator executing the LUT-Stationary dataflow
 * (Algorithm 1 of the paper).
 *
 * Schedule: the No = ceil(N/Tn) output tiles are processed in waves of
 * n_imm tiles. Within a wave, for each row block (m_tile rows) and each
 * subspace k, the CCM streams the block's indices once (every IMM in the
 * wave works at the same (m, k), so the stream is shared) while the IMMs
 * retire one lookup per lane per cycle. LUT tiles for subspace k+1 are
 * prefetched into the ping-pong buffer during subspace k and only stall
 * the array when DRAM is late. The CCM's c-cycle dPE pipeline refill is
 * paid once per (block, k) phase.
 *
 * The model tracks time at IMM-cycle resolution with exact phase algebra;
 * tests cross-check it against the cycle-stepped MicroSim.
 */

#include <vector>

#include "sim/config.h"

namespace lutdla::sim {

/** Phase-exact simulator for the LS dataflow. */
class LutDlaSimulator
{
  public:
    explicit LutDlaSimulator(SimConfig config) : config_(config) {}

    /** Simulate one GEMM and return its cycle/traffic statistics. */
    SimStats simulateGemm(const GemmShape &gemm) const;

    /** Simulate a network as a sequence of GEMMs (stats accumulate). */
    SimStats simulateNetwork(const std::vector<GemmShape> &gemms) const;

    /**
     * Energy estimate (mJ) for previously simulated stats, combining the
     * design's average power with DRAM transfer energy.
     *
     * @param stats        Simulation output.
     * @param chip_power_mw Average chip power from hw::evaluateDesign.
     * @param dram_pj_per_byte DRAM access energy (default DDR4 ~20 pJ/B).
     */
    double energyMj(const SimStats &stats, double chip_power_mw,
                    double dram_pj_per_byte = 20.0) const;

    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
};

} // namespace lutdla::sim

#endif // LUTDLA_SIM_LUTDLA_SIM_H
