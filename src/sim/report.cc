#include "sim/report.h"

#include "util/logging.h"
#include "util/table.h"

namespace lutdla::sim {

int64_t
NetworkReport::hottestLayer() const
{
    int64_t best = -1;
    uint64_t most = 0;
    for (size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].stats.total_cycles >= most) {
            most = layers[i].stats.total_cycles;
            best = static_cast<int64_t>(i);
        }
    }
    return best;
}

std::string
NetworkReport::table(const SimConfig &config) const
{
    Table t("per-layer simulation breakdown",
            {"layer", "M", "K", "N", "cycles", "share", "util",
             "stall(lut)", "stall(idx)", "DRAM KB", "GOPS"});
    for (const auto &layer : layers) {
        t.addRow({layer.gemm.tag, std::to_string(layer.gemm.m),
                  std::to_string(layer.gemm.k),
                  std::to_string(layer.gemm.n),
                  std::to_string(layer.stats.total_cycles),
                  Table::fmt(100.0 * layer.cycle_share, 1) + "%",
                  Table::fmt(100.0 * layer.stats.utilization(), 1) + "%",
                  std::to_string(layer.stats.stall_lut_cycles),
                  std::to_string(layer.stats.stall_index_cycles),
                  Table::fmt(layer.stats.totalDramBytes() / 1024.0, 1),
                  Table::fmt(layer.stats.achievedGops(config), 1)});
    }
    t.addRow({"TOTAL", "", "", "", std::to_string(total.total_cycles),
              "100%", Table::fmt(100.0 * total.utilization(), 1) + "%",
              std::to_string(total.stall_lut_cycles),
              std::to_string(total.stall_index_cycles),
              Table::fmt(total.totalDramBytes() / 1024.0, 1),
              Table::fmt(total.achievedGops(config), 1)});
    return t.str();
}

std::string
NetworkReport::csv(const SimConfig &config) const
{
    Table t("breakdown", {"layer", "m", "k", "n", "cycles", "utilization",
                          "stall_lut", "stall_index", "dram_bytes",
                          "gops"});
    for (const auto &layer : layers) {
        t.addRow({layer.gemm.tag, std::to_string(layer.gemm.m),
                  std::to_string(layer.gemm.k),
                  std::to_string(layer.gemm.n),
                  std::to_string(layer.stats.total_cycles),
                  Table::fmt(layer.stats.utilization(), 4),
                  std::to_string(layer.stats.stall_lut_cycles),
                  std::to_string(layer.stats.stall_index_cycles),
                  Table::fmt(layer.stats.totalDramBytes(), 0),
                  Table::fmt(layer.stats.achievedGops(config), 2)});
    }
    return t.csv();
}

NetworkReport
profileNetwork(const LutDlaSimulator &simulator,
               const std::vector<GemmShape> &gemms)
{
    NetworkReport report;
    for (const auto &g : gemms) {
        LayerReport layer;
        layer.gemm = g;
        layer.stats = simulator.simulateGemm(g);
        report.total += layer.stats;
        report.layers.push_back(std::move(layer));
    }
    for (auto &layer : report.layers) {
        layer.cycle_share =
            report.total.total_cycles
                ? static_cast<double>(layer.stats.total_cycles) /
                      static_cast<double>(report.total.total_cycles)
                : 0.0;
    }
    return report;
}

} // namespace lutdla::sim
