#include "sim/lutdla_sim.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace lutdla::sim {

SimConfig
SimConfig::fromDesign(const hw::LutDlaDesign &design)
{
    SimConfig cfg;
    cfg.v = design.v;
    cfg.c = design.c;
    cfg.tn = design.tn;
    cfg.m_tile = design.m_rows;
    cfg.n_imm = design.n_imm;
    cfg.n_ccu = design.n_ccu;
    cfg.lut_entry_bytes = design.lut_entry_bytes;
    cfg.freq_imm_hz = design.freq_imm_hz;
    cfg.freq_ccm_hz = design.freq_ccm_hz;
    return cfg;
}

SimStats &
SimStats::operator+=(const SimStats &rhs)
{
    total_cycles += rhs.total_cycles;
    lookup_cycles += rhs.lookup_cycles;
    stall_lut_cycles += rhs.stall_lut_cycles;
    stall_index_cycles += rhs.stall_index_cycles;
    lut_tile_loads += rhs.lut_tile_loads;
    dram_lut_bytes += rhs.dram_lut_bytes;
    dram_input_bytes += rhs.dram_input_bytes;
    dram_output_bytes += rhs.dram_output_bytes;
    effective_macs += rhs.effective_macs;
    return *this;
}

namespace {

/** Serializing DRAM channel: transfers are granted in request order. */
class DramChannel
{
  public:
    explicit DramChannel(double bytes_per_cycle)
        : bytes_per_cycle_(bytes_per_cycle)
    {
    }

    /** Schedule a transfer; returns its completion time (cycles). */
    double
    transfer(double request_time, double bytes)
    {
        const double start = std::max(request_time, free_time_);
        free_time_ = start + bytes / bytes_per_cycle_;
        return free_time_;
    }

    double freeTime() const { return free_time_; }

  private:
    double bytes_per_cycle_;
    double free_time_ = 0.0;
};

} // namespace

SimStats
LutDlaSimulator::simulateGemm(const GemmShape &gemm) const
{
    const SimConfig &cfg = config_;
    LUTDLA_CHECK(gemm.m > 0 && gemm.k > 0 && gemm.n > 0,
                 "degenerate GEMM shape");

    const int64_t nc = cfg.numSubspaces(gemm.k);
    const int64_t no = (gemm.n + cfg.tn - 1) / cfg.tn;
    const int64_t waves = (no + cfg.n_imm - 1) / cfg.n_imm;
    const int64_t blocks = (gemm.m + cfg.m_tile - 1) / cfg.m_tile;
    const double rate = cfg.indexRatePerImmCycle();
    const double fill =
        static_cast<double>(cfg.c) * cfg.freq_imm_hz / cfg.freq_ccm_hz;
    DramChannel dram(cfg.dramBytesPerCycle());

    SimStats stats;
    stats.effective_macs = gemm.macs();

    double t = 0.0;
    for (int64_t w = 0; w < waves; ++w) {
        // Sum of lane widths across the active IMMs of this wave
        // (the last tile of the last wave may be ragged).
        const int64_t first_tile = w * cfg.n_imm;
        const int64_t active =
            std::min<int64_t>(cfg.n_imm, no - first_tile);
        double wave_width = 0.0;
        for (int64_t i = 0; i < active; ++i) {
            const int64_t start_n = (first_tile + i) * cfg.tn;
            wave_width += static_cast<double>(
                std::min<int64_t>(cfg.tn, gemm.n - start_n));
        }
        const double lut_tile_bytes =
            static_cast<double>(cfg.c) * wave_width *
            static_cast<double>(cfg.lut_entry_bytes);

        // Runtime CCM-IMM adaptation (Sec. IV-A): when the wave covers
        // fewer output columns than the array's lanes (narrow-N conv
        // layers), idle lanes fold onto additional rows of the same
        // subspace, bounded by the CCM's index supply rate.
        const double lanes_total =
            static_cast<double>(cfg.n_imm * cfg.tn);
        const double fold = std::clamp(
            std::floor(lanes_total / std::max(wave_width, 1.0)), 1.0,
            std::max(1.0, std::floor(rate)));

        for (int64_t b = 0; b < blocks; ++b) {
            const int64_t rows =
                std::min<int64_t>(cfg.m_tile, gemm.m - b * cfg.m_tile);
            const double drows = static_cast<double>(rows);

            // Per-phase state for the ping-pong algebra.
            double phase_end_km1 = t;    // end of phase k-1
            double phase_end_km2 = t;    // end of phase k-2
            double load_end_prev = t;    // DRAM completion of tile k
            double ccm_free = t;

            // Preload tile k=0 (and input columns for subspace 0).
            double load_end_k =
                dram.transfer(t, lut_tile_bytes +
                                     drows * cfg.v * cfg.input_bytes);
            stats.dram_lut_bytes += lut_tile_bytes;
            stats.dram_input_bytes += drows * cfg.v * cfg.input_bytes;
            stats.lut_tile_loads += static_cast<uint64_t>(active);

            for (int64_t k = 0; k < nc; ++k) {
                // Prefetch tile k+1 once its buffer slot is free
                // (the slot is released when phase k-1 finished).
                double load_end_next = load_end_k;
                if (k + 1 < nc) {
                    const double request =
                        std::max(phase_end_km1, load_end_prev);
                    load_end_next = dram.transfer(
                        request, lut_tile_bytes +
                                     drows * cfg.v * cfg.input_bytes);
                    stats.dram_lut_bytes += lut_tile_bytes;
                    stats.dram_input_bytes +=
                        drows * cfg.v * cfg.input_bytes;
                    stats.lut_tile_loads +=
                        static_cast<uint64_t>(active);
                }

                // CCM may run one phase ahead (double-buffered indices
                // buffer). The c-stage dPE pipeline imposes a fill
                // *latency* on each stream's first index, but centroids
                // for the next subspace are double-buffered in the dPEs,
                // so throughput stays at `rate` across k boundaries:
                // ccm_free advances by occupancy (rows/rate) only.
                const double ccm_start =
                    std::max(ccm_free, k == 0 ? t : phase_end_km2);
                const double first_idx = ccm_start + fill + 1.0 / rate;
                const double last_idx = ccm_start + fill + drows / rate;
                ccm_free = ccm_start + drows / rate;

                const double lookup_len = std::ceil(drows / fold);
                const double ready =
                    std::max({phase_end_km1, load_end_k, first_idx});
                const double end =
                    std::max(ready + lookup_len - 1.0, last_idx);

                stats.lookup_cycles += static_cast<uint64_t>(lookup_len);
                if (load_end_k > std::max(phase_end_km1, first_idx)) {
                    stats.stall_lut_cycles += static_cast<uint64_t>(
                        load_end_k - std::max(phase_end_km1, first_idx));
                }
                if (first_idx > std::max(phase_end_km1, load_end_k)) {
                    stats.stall_index_cycles += static_cast<uint64_t>(
                        first_idx - std::max(phase_end_km1, load_end_k));
                }

                phase_end_km2 = phase_end_km1;
                phase_end_km1 = end;
                load_end_prev = load_end_k;
                load_end_k = load_end_next;
            }

            // Drain the block's outputs; overlapped with later work via
            // the shared channel.
            const double out_bytes =
                drows * wave_width * cfg.output_bytes;
            dram.transfer(phase_end_km1, out_bytes);
            stats.dram_output_bytes += out_bytes;

            t = phase_end_km1;
        }
    }
    // The final writeback must land before the GEMM is complete.
    t = std::max(t, dram.freeTime());
    stats.total_cycles = static_cast<uint64_t>(std::ceil(t));
    return stats;
}

SimStats
LutDlaSimulator::simulateNetwork(const std::vector<GemmShape> &gemms) const
{
    SimStats total;
    for (const auto &g : gemms)
        total += simulateGemm(g);
    return total;
}

double
LutDlaSimulator::energyMj(const SimStats &stats, double chip_power_mw,
                          double dram_pj_per_byte) const
{
    const double secs = stats.seconds(config_);
    const double chip_mj = chip_power_mw * secs;  // mW * s = mJ
    const double dram_mj = stats.totalDramBytes() * dram_pj_per_byte * 1e-9;
    return chip_mj + dram_mj;
}

} // namespace lutdla::sim
