#ifndef LUTDLA_SIM_CONFIG_H
#define LUTDLA_SIM_CONFIG_H

/**
 * @file
 * Configuration and statistics types for the LUT-DLA timing simulator.
 */

#include <cstdint>
#include <string>

#include "hw/accel.h"

namespace lutdla::sim {

/** One GEMM workload: C[M,N] = A[M,K] * B[K,N]. */
struct GemmShape
{
    int64_t m = 0;
    int64_t k = 0;
    int64_t n = 0;
    std::string tag;  ///< layer name for reports

    /** Multiply-accumulate count. */
    double macs() const
    {
        return static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);
    }
};

/** Timing-relevant hardware parameters. */
struct SimConfig
{
    // Algorithm parameters.
    int64_t v = 4;
    int64_t c = 16;
    // Per-IMM lookup lanes (outputs retired per cycle) and tiling.
    int64_t tn = 128;
    int64_t m_tile = 256;          ///< row-block size buffered on chip
    int64_t n_imm = 2;
    int64_t n_ccu = 2;
    // Entry sizes.
    int64_t lut_entry_bytes = 1;
    int64_t input_bytes = 1;       ///< streamed activation element
    int64_t output_bytes = 1;      ///< written-back output element
    // Clocks: the CCM may run faster than the IMM (decoupled domains).
    double freq_imm_hz = 300e6;
    double freq_ccm_hz = 300e6;
    // DRAM channel shared by LUT loads / input stream / output drain.
    double dram_bytes_per_sec = 25.6e9;  // DDR4 per the paper

    /** Derived: DRAM bytes available per IMM cycle. */
    double
    dramBytesPerCycle() const
    {
        return dram_bytes_per_sec / freq_imm_hz;
    }

    /** Derived: indices produced per IMM cycle (CCM aggregate rate). */
    double
    indexRatePerImmCycle() const
    {
        return static_cast<double>(n_ccu) * freq_ccm_hz / freq_imm_hz;
    }

    /** Subspaces for a K-wide operand. */
    int64_t numSubspaces(int64_t k) const { return (k + v - 1) / v; }

    /** Build a SimConfig matching a hardware design point. */
    static SimConfig fromDesign(const hw::LutDlaDesign &design);
};

/** Cycle and traffic accounting of one simulated GEMM (IMM cycles). */
struct SimStats
{
    uint64_t total_cycles = 0;
    uint64_t lookup_cycles = 0;     ///< cycles IMMs spent retiring lookups
    uint64_t stall_lut_cycles = 0;  ///< waiting on LUT tile loads
    uint64_t stall_index_cycles = 0;///< waiting on the CCM index stream
    uint64_t lut_tile_loads = 0;
    double dram_lut_bytes = 0.0;
    double dram_input_bytes = 0.0;
    double dram_output_bytes = 0.0;
    double effective_macs = 0.0;    ///< M*K*N of the GEMMs simulated

    /** Busy fraction of the IMM array. */
    double
    utilization() const
    {
        return total_cycles
                   ? static_cast<double>(lookup_cycles) / total_cycles
                   : 0.0;
    }

    double totalDramBytes() const
    {
        return dram_lut_bytes + dram_input_bytes + dram_output_bytes;
    }

    /** Wall-clock seconds at the IMM frequency. */
    double seconds(const SimConfig &config) const
    {
        return static_cast<double>(total_cycles) / config.freq_imm_hz;
    }

    /** Achieved throughput in GOPS (2 ops per MAC). */
    double achievedGops(const SimConfig &config) const
    {
        const double s = seconds(config);
        return s > 0 ? 2.0 * effective_macs / s * 1e-9 : 0.0;
    }

    /** Accumulate another GEMM's stats (sequential execution). */
    SimStats &operator+=(const SimStats &rhs);
};

} // namespace lutdla::sim

#endif // LUTDLA_SIM_CONFIG_H
