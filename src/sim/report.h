#ifndef LUTDLA_SIM_REPORT_H
#define LUTDLA_SIM_REPORT_H

/**
 * @file
 * Per-layer simulation reports: run a network layer by layer and collect
 * a breakdown table (cycles, utilization, stall split, DRAM traffic per
 * GEMM) — the artifact a performance engineer actually reads when mapping
 * a model onto a LUT-DLA instance.
 */

#include <string>
#include <vector>

#include "sim/lutdla_sim.h"

namespace lutdla::sim {

/** One layer's row in the breakdown. */
struct LayerReport
{
    GemmShape gemm;
    SimStats stats;

    /** Fraction of the network's total cycles spent here. */
    double cycle_share = 0.0;
};

/** Whole-network breakdown. */
struct NetworkReport
{
    std::vector<LayerReport> layers;
    SimStats total;

    /** Index of the layer with the most cycles. */
    int64_t hottestLayer() const;

    /** Render as an aligned table string. */
    std::string table(const SimConfig &config) const;

    /** Render as CSV (one row per layer plus a total row). */
    std::string csv(const SimConfig &config) const;
};

/** Simulate each GEMM separately and assemble the breakdown. */
NetworkReport profileNetwork(const LutDlaSimulator &simulator,
                             const std::vector<GemmShape> &gemms);

} // namespace lutdla::sim

#endif // LUTDLA_SIM_REPORT_H
