#include "sim/micro_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "util/logging.h"

namespace lutdla::sim {

namespace {

/** A pending DRAM transfer. */
struct Transfer
{
    double bytes_left = 0.0;
    int64_t tag = -1;  ///< ping-pong slot index, or -1 for output drain
};

/** One ping-pong buffer slot. */
struct Slot
{
    int64_t k = -1;      ///< subspace whose tile it holds
    bool ready = false;  ///< fully loaded
};

} // namespace

SimStats
MicroSim::simulateGemm(const GemmShape &gemm) const
{
    const SimConfig &cfg = config_;
    const int64_t nc = cfg.numSubspaces(gemm.k);
    const int64_t no = (gemm.n + cfg.tn - 1) / cfg.tn;
    const int64_t waves = (no + cfg.n_imm - 1) / cfg.n_imm;
    const int64_t blocks = (gemm.m + cfg.m_tile - 1) / cfg.m_tile;
    const double rate = cfg.indexRatePerImmCycle();
    const double bw = cfg.dramBytesPerCycle();
    // dPE pipeline depth converted to IMM cycles.
    const double fill_cycles =
        static_cast<double>(cfg.c) * cfg.freq_imm_hz / cfg.freq_ccm_hz;

    SimStats stats;
    stats.effective_macs = gemm.macs();

    uint64_t cycle = 0;
    std::deque<Transfer> dram;
    double dram_budget = 0.0;

    for (int64_t w = 0; w < waves; ++w) {
        const int64_t first_tile = w * cfg.n_imm;
        const int64_t active = std::min<int64_t>(cfg.n_imm,
                                                 no - first_tile);
        double wave_width = 0.0;
        for (int64_t i = 0; i < active; ++i) {
            const int64_t start_n = (first_tile + i) * cfg.tn;
            wave_width += static_cast<double>(
                std::min<int64_t>(cfg.tn, gemm.n - start_n));
        }
        const double tile_bytes =
            static_cast<double>(cfg.c) * wave_width * cfg.lut_entry_bytes;
        // Lane folding mirrors LutDlaSimulator (idle lanes take extra
        // rows, bounded by the CCM index rate).
        const int64_t fold = std::clamp<int64_t>(
            static_cast<int64_t>(
                static_cast<double>(cfg.n_imm * cfg.tn) /
                std::max(wave_width, 1.0)),
            1, std::max<int64_t>(1, static_cast<int64_t>(rate)));

        for (int64_t b = 0; b < blocks; ++b) {
            const int64_t rows =
                std::min<int64_t>(cfg.m_tile, gemm.m - b * cfg.m_tile);
            const double input_bytes =
                static_cast<double>(rows) * cfg.v * cfg.input_bytes;

            Slot slots[2];
            int64_t next_load_k = 0;  ///< next subspace tile to request
            int64_t k_proc = 0;       ///< subspace being consumed
            int64_t m = 0;            ///< rows consumed in k_proc

            // CCM stream bookkeeping: stream k's index i becomes visible
            // at stream_start[k] + fill + (i+1)/rate (pipeline latency);
            // production occupies the CCU for rows/rate cycles and may
            // run one phase ahead of the consumer.
            const double block_start = static_cast<double>(cycle);
            std::vector<double> stream_start(static_cast<size_t>(nc),
                                             -1.0);
            stream_start[0] = block_start;
            int64_t streams_started = 1;

            auto requestLoad = [&](int64_t slot_id) {
                slots[slot_id].k = next_load_k;
                slots[slot_id].ready = false;
                dram.push_back({tile_bytes + input_bytes, slot_id});
                stats.dram_lut_bytes += tile_bytes;
                stats.dram_input_bytes += input_bytes;
                stats.lut_tile_loads += static_cast<uint64_t>(active);
                ++next_load_k;
            };
            requestLoad(0);
            if (nc > 1)
                requestLoad(1);

            while (k_proc < nc) {
                // ---- DRAM: serve the queue head with this cycle's
                // bandwidth budget.
                dram_budget += bw;
                while (!dram.empty() && dram_budget > 0.0) {
                    Transfer &head = dram.front();
                    const double served =
                        std::min(head.bytes_left, dram_budget);
                    head.bytes_left -= served;
                    dram_budget -= served;
                    if (head.bytes_left <= 1e-9) {
                        if (head.tag >= 0)
                            slots[head.tag].ready = true;
                        dram.pop_front();
                    } else {
                        break;
                    }
                }
                // Unused budget does not bank up beyond one cycle.
                dram_budget = std::min(dram_budget, bw);

                const double now = static_cast<double>(cycle);

                // ---- CCM: launch the next index stream when the CCU is
                // free and run-ahead (one phase) permits.
                if (streams_started < nc &&
                    streams_started <= k_proc + 1) {
                    const double prev_done =
                        stream_start[static_cast<size_t>(
                            streams_started - 1)] +
                        static_cast<double>(rows) / rate;
                    if (now + 1e-9 >= prev_done) {
                        stream_start[static_cast<size_t>(
                            streams_started)] = std::max(now, prev_done);
                        ++streams_started;
                    }
                }

                // Indices of the consuming phase visible by now.
                int64_t visible = 0;
                const double st =
                    stream_start[static_cast<size_t>(k_proc)];
                if (st >= 0.0) {
                    const double raw =
                        (now - st - fill_cycles) * rate;
                    visible = std::clamp<int64_t>(
                        static_cast<int64_t>(raw), 0, rows);
                }

                // ---- IMMs: up to `fold` rows per cycle if tile + index
                // ready.
                Slot *cur = nullptr;
                for (auto &s : slots)
                    if (s.k == k_proc)
                        cur = &s;
                const bool tile_ok = cur && cur->ready;
                int64_t served = 0;
                while (tile_ok && served < fold && m < visible &&
                       m < rows) {
                    ++m;
                    ++served;
                }
                if (served > 0) {
                    ++stats.lookup_cycles;
                    if (m == rows) {
                        // Phase complete: release the slot and move on.
                        cur->k = -1;
                        cur->ready = false;
                        if (next_load_k < nc)
                            requestLoad(cur == &slots[0] ? 0 : 1);
                        ++k_proc;
                        m = 0;
                    }
                } else if (!tile_ok) {
                    ++stats.stall_lut_cycles;
                } else {
                    ++stats.stall_index_cycles;
                }
                ++cycle;
            }

            // Output drain for the block.
            const double out_bytes =
                static_cast<double>(rows) * wave_width * cfg.output_bytes;
            dram.push_back({out_bytes, -1});
            stats.dram_output_bytes += out_bytes;
        }
    }

    // Flush remaining DRAM traffic (final writebacks).
    while (!dram.empty()) {
        dram_budget += bw;
        while (!dram.empty() && dram_budget > 0.0) {
            Transfer &head = dram.front();
            const double served = std::min(head.bytes_left, dram_budget);
            head.bytes_left -= served;
            dram_budget -= served;
            if (head.bytes_left <= 1e-9)
                dram.pop_front();
        }
        dram_budget = std::min(dram_budget, bw);
        ++cycle;
    }

    stats.total_cycles = cycle;
    return stats;
}

} // namespace lutdla::sim
