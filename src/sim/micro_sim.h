#ifndef LUTDLA_SIM_MICRO_SIM_H
#define LUTDLA_SIM_MICRO_SIM_H

/**
 * @file
 * Cycle-stepped micro-architectural simulator of the LS dataflow.
 *
 * Unlike LutDlaSimulator (exact phase algebra), MicroSim steps every IMM
 * cycle and models the components explicitly: a serializing DRAM queue, the
 * two ping-pong LUT buffer slots per wave, the CCM's c-deep pipeline with
 * run-ahead into a double-buffered indices store, and the lookup engines.
 * It exists to validate the fast model — tests assert the two agree.
 */

#include "sim/config.h"

namespace lutdla::sim {

/** Cycle-stepped reference simulator. */
class MicroSim
{
  public:
    explicit MicroSim(SimConfig config) : config_(config) {}

    /** Run one GEMM to completion, stepping individual IMM cycles. */
    SimStats simulateGemm(const GemmShape &gemm) const;

    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
};

} // namespace lutdla::sim

#endif // LUTDLA_SIM_MICRO_SIM_H
