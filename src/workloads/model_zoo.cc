#include "workloads/model_zoo.h"

#include "util/logging.h"

namespace lutdla::workloads {

double
Network::totalMacs() const
{
    double total = 0.0;
    for (const auto &g : gemms)
        total += g.macs();
    return total;
}

namespace {

/** Append one conv layer as its im2col GEMM. */
void
addConv(std::vector<sim::GemmShape> &out, const std::string &tag,
        int64_t res, int64_t cin, int64_t cout, int64_t kernel,
        int64_t stride)
{
    sim::GemmShape g;
    const int64_t out_res = res / stride;
    g.m = out_res * out_res;
    g.k = cin * kernel * kernel;
    g.n = cout;
    g.tag = tag;
    out.push_back(g);
}

/** Append one fully-connected layer. */
void
addFc(std::vector<sim::GemmShape> &out, const std::string &tag, int64_t m,
      int64_t k, int64_t n)
{
    out.push_back({m, k, n, tag});
}

/** Basic-block ResNet stage: `blocks` blocks, first may stride. */
void
addBasicStage(std::vector<sim::GemmShape> &out, const std::string &tag,
              int64_t &res, int64_t &ch, int64_t out_ch, int64_t blocks,
              int64_t first_stride)
{
    for (int64_t b = 0; b < blocks; ++b) {
        const int64_t stride = b == 0 ? first_stride : 1;
        addConv(out, tag + ".conv1", res, ch, out_ch, 3, stride);
        const int64_t new_res = res / stride;
        addConv(out, tag + ".conv2", new_res, out_ch, out_ch, 3, 1);
        if (b == 0 && (stride != 1 || ch != out_ch))
            addConv(out, tag + ".down", res, ch, out_ch, 1, stride);
        res = new_res;
        ch = out_ch;
    }
}

/** Bottleneck ResNet stage (expansion 4). */
void
addBottleneckStage(std::vector<sim::GemmShape> &out, const std::string &tag,
                   int64_t &res, int64_t &ch, int64_t width,
                   int64_t blocks, int64_t first_stride)
{
    const int64_t out_ch = width * 4;
    for (int64_t b = 0; b < blocks; ++b) {
        const int64_t stride = b == 0 ? first_stride : 1;
        addConv(out, tag + ".conv1", res, ch, width, 1, 1);
        addConv(out, tag + ".conv2", res, width, width, 3, stride);
        const int64_t new_res = res / stride;
        addConv(out, tag + ".conv3", new_res, width, out_ch, 1, 1);
        if (b == 0)
            addConv(out, tag + ".down", res, ch, out_ch, 1, stride);
        res = new_res;
        ch = out_ch;
    }
}

/** Transformer encoder/decoder stack: QKV + attn-out + FFN per layer. */
Network
transformer(const std::string &name, int64_t layers, int64_t d, int64_t ff,
            int64_t seq)
{
    Network net;
    net.name = name;
    for (int64_t l = 0; l < layers; ++l) {
        const std::string tag = "layer" + std::to_string(l);
        addFc(net.gemms, tag + ".q", seq, d, d);
        addFc(net.gemms, tag + ".k", seq, d, d);
        addFc(net.gemms, tag + ".v", seq, d, d);
        addFc(net.gemms, tag + ".attn_out", seq, d, d);
        addFc(net.gemms, tag + ".ffn1", seq, d, ff);
        addFc(net.gemms, tag + ".ffn2", seq, ff, d);
    }
    return net;
}

} // namespace

Network
resnet18()
{
    Network net;
    net.name = "resnet18";
    addConv(net.gemms, "conv1", 224, 3, 64, 7, 2);
    int64_t res = 56;  // after 3x3/2 maxpool
    int64_t ch = 64;
    addBasicStage(net.gemms, "layer1", res, ch, 64, 2, 1);
    addBasicStage(net.gemms, "layer2", res, ch, 128, 2, 2);
    addBasicStage(net.gemms, "layer3", res, ch, 256, 2, 2);
    addBasicStage(net.gemms, "layer4", res, ch, 512, 2, 2);
    addFc(net.gemms, "fc", 1, 512, 1000);
    return net;
}

Network
resnet34()
{
    Network net;
    net.name = "resnet34";
    addConv(net.gemms, "conv1", 224, 3, 64, 7, 2);
    int64_t res = 56;
    int64_t ch = 64;
    addBasicStage(net.gemms, "layer1", res, ch, 64, 3, 1);
    addBasicStage(net.gemms, "layer2", res, ch, 128, 4, 2);
    addBasicStage(net.gemms, "layer3", res, ch, 256, 6, 2);
    addBasicStage(net.gemms, "layer4", res, ch, 512, 3, 2);
    addFc(net.gemms, "fc", 1, 512, 1000);
    return net;
}

Network
resnet50()
{
    Network net;
    net.name = "resnet50";
    addConv(net.gemms, "conv1", 224, 3, 64, 7, 2);
    int64_t res = 56;
    int64_t ch = 64;
    addBottleneckStage(net.gemms, "layer1", res, ch, 64, 3, 1);
    addBottleneckStage(net.gemms, "layer2", res, ch, 128, 4, 2);
    addBottleneckStage(net.gemms, "layer3", res, ch, 256, 6, 2);
    addBottleneckStage(net.gemms, "layer4", res, ch, 512, 3, 2);
    addFc(net.gemms, "fc", 1, 2048, 1000);
    return net;
}

Network
resnetCifar(int depth)
{
    LUTDLA_CHECK((depth - 2) % 6 == 0, "CIFAR ResNet depth must be 6n+2");
    const int64_t n = (depth - 2) / 6;
    Network net;
    net.name = "resnet" + std::to_string(depth);
    addConv(net.gemms, "conv1", 32, 3, 16, 3, 1);
    int64_t res = 32;
    int64_t ch = 16;
    addBasicStage(net.gemms, "stage1", res, ch, 16, n, 1);
    addBasicStage(net.gemms, "stage2", res, ch, 32, n, 2);
    addBasicStage(net.gemms, "stage3", res, ch, 64, n, 2);
    addFc(net.gemms, "fc", 1, 64, 10);
    return net;
}

Network
vgg11()
{
    Network net;
    net.name = "vgg11";
    addConv(net.gemms, "conv1", 224, 3, 64, 3, 1);
    addConv(net.gemms, "conv2", 112, 64, 128, 3, 1);
    addConv(net.gemms, "conv3", 56, 128, 256, 3, 1);
    addConv(net.gemms, "conv4", 56, 256, 256, 3, 1);
    addConv(net.gemms, "conv5", 28, 256, 512, 3, 1);
    addConv(net.gemms, "conv6", 28, 512, 512, 3, 1);
    addConv(net.gemms, "conv7", 14, 512, 512, 3, 1);
    addConv(net.gemms, "conv8", 14, 512, 512, 3, 1);
    addFc(net.gemms, "fc1", 1, 512 * 7 * 7, 4096);
    addFc(net.gemms, "fc2", 1, 4096, 4096);
    addFc(net.gemms, "fc3", 1, 4096, 1000);
    return net;
}

Network
lenet()
{
    Network net;
    net.name = "lenet";
    addConv(net.gemms, "conv1", 28, 1, 6, 5, 1);
    addConv(net.gemms, "conv2", 12, 6, 16, 5, 1);
    addFc(net.gemms, "fc1", 1, 16 * 4 * 4, 120);
    addFc(net.gemms, "fc2", 1, 120, 84);
    addFc(net.gemms, "fc3", 1, 84, 10);
    return net;
}

Network
bertBase()
{
    return transformer("bert-base", 12, 768, 3072, 512);
}

Network
distilBert()
{
    return transformer("distilbert", 6, 768, 3072, 512);
}

Network
opt125m()
{
    return transformer("opt-125m", 12, 768, 3072, 512);
}

Network
networkByName(const std::string &name)
{
    if (name == "resnet18")
        return resnet18();
    if (name == "resnet34")
        return resnet34();
    if (name == "resnet50")
        return resnet50();
    if (name == "resnet20")
        return resnetCifar(20);
    if (name == "resnet32")
        return resnetCifar(32);
    if (name == "resnet56")
        return resnetCifar(56);
    if (name == "vgg11")
        return vgg11();
    if (name == "lenet")
        return lenet();
    if (name == "bert" || name == "bert-base")
        return bertBase();
    if (name == "distilbert")
        return distilBert();
    if (name == "opt-125m" || name == "opt125m")
        return opt125m();
    fatal("unknown network '", name, "'");
}

} // namespace lutdla::workloads
