#ifndef LUTDLA_WORKLOADS_MODEL_ZOO_H
#define LUTDLA_WORKLOADS_MODEL_ZOO_H

/**
 * @file
 * GEMM-shape inventories of the networks the paper evaluates end to end
 * (Fig. 13/14): ResNet-18/34/50 at 224x224 and BERT-class transformers.
 * Convolutions are listed post-im2col (M = output pixels, K = C_in*k*k,
 * N = C_out), matching how all simulated accelerators consume them. For
 * transformers we list the compute-dominant operators the paper times:
 * QKV projections, attention output, and the two FFN layers.
 */

#include <string>
#include <vector>

#include "sim/config.h"

namespace lutdla::workloads {

/** A named network workload. */
struct Network
{
    std::string name;
    std::vector<sim::GemmShape> gemms;

    /** Total MAC count across layers. */
    double totalMacs() const;
};

/** ResNet-18 (basic blocks, 224x224, batch 1). */
Network resnet18();

/** ResNet-34 (basic blocks, 224x224, batch 1). */
Network resnet34();

/** ResNet-50 (bottleneck blocks, 224x224, batch 1). */
Network resnet50();

/** CIFAR-style ResNet-20/32/56 (32x32 inputs). */
Network resnetCifar(int depth);

/** VGG-11 (224x224, batch 1). */
Network vgg11();

/** LeNet-5-style (28x28). */
Network lenet();

/** BERT-base encoder (12 layers, d=768, ff=3072, seq=512). */
Network bertBase();

/** DistilBERT (6 layers, d=768, ff=3072, seq=512). */
Network distilBert();

/** OPT-125M decoder (12 layers, d=768, ff=3072, seq=512). */
Network opt125m();

/** Look up a network by name ("resnet18", "bert", ...). */
Network networkByName(const std::string &name);

} // namespace lutdla::workloads

#endif // LUTDLA_WORKLOADS_MODEL_ZOO_H
