#ifndef LUTDLA_API_LUTDLA_H
#define LUTDLA_API_LUTDLA_H

/**
 * @file
 * Umbrella header for the public LUT-DLA API. Includes the whole facade:
 *
 *   - api::Pipeline / api::PipelineBuilder — one fluent entry point from
 *     model -> LUTBoost -> design -> simulation -> report;
 *   - api::RunArtifacts — the serializable bundle a run produces;
 *   - api::Status / api::Result<T> — typed errors for misconfiguration;
 *   - api::findWorkload / api::registerWorkload — the named-workload
 *     registry bridging the paper's evaluation zoo;
 *   - api::makeEngine / Pipeline::engine — the batched multi-threaded
 *     serving layer over frozen LUT models (src/serve/);
 *
 * plus the configuration types callers pass in (ConvertOptions, SimConfig,
 * LutDlaDesign, TrainConfig, LutPrecision) via their home headers.
 *
 * Library consumers should include only this header; the sub-module
 * headers remain available for research code that digs deeper.
 */

#include "api/artifacts.h"
#include "api/pipeline.h"
#include "api/serving.h"
#include "api/status.h"
#include "api/workload_registry.h"

#endif // LUTDLA_API_LUTDLA_H
