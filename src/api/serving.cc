#include "api/serving.h"

#include <utility>

#include "api/pipeline.h"
#include "api/workload_registry.h"
#include "lutboost/converter.h"
#include "serve/frozen_model.h"

namespace lutdla::api {

namespace {

/** Apply the mixed-precision auto-tuner when options request it: run
 * the greedy descent on the lowered model and replan it with the
 * winning per-stage assignment (arenas shared, so the final replan is
 * cheap and every already-quantized bank is reused). */
serve::FrozenModel
maybeAutoTune(serve::FrozenModel model, const ServeOptions &options)
{
    if (!options.auto_tune)
        return model;
    const serve::AutoTuneResult tuned = serve::autoTunePrecision(
        model, options.plan, options.auto_tune_options);
    serve::PlanOptions plan = options.plan;
    plan.table_precision = serve::TablePrecision::Float32;
    plan.stage_precision = tuned.stage_precision;
    plan.encode_precision = serve::EncodePrecision::Float32;
    plan.stage_encode_precision = tuned.stage_encode_precision;
    return model.withPlan(plan);
}

} // namespace

Result<EngineHandle>
makeEngine(const nn::LayerPtr &model, const ServeOptions &options)
{
    // Validate the topology BEFORE freezing anything: a rejected model
    // must come back to the caller completely unmodified (freezing pins
    // eval-mode forward() to the inference LUT path).
    if (Status status =
            serve::FrozenModel::validateServable(model,
                                                 options.input_shape);
        !status.ok())
        return status;
    for (lutboost::LutLinear *layer : lutboost::findLutLayers(model))
        if (!layer->inferenceLutReady())
            layer->refreshInferenceLut();
    Result<serve::FrozenModel> frozen = serve::FrozenModel::fromModel(
        model, options.input_shape, options.plan);
    if (!frozen.ok())
        return frozen.status();
    return serve::InferenceEngine::create(
        maybeAutoTune(frozen.take(), options), options.engine);
}

Result<EngineHandle>
makeEngine(const nn::LayerPtr &model, const serve::EngineOptions &options,
           serve::ServeInputShape input_shape)
{
    ServeOptions serve_options;
    serve_options.engine = options;
    serve_options.input_shape = input_shape;
    return makeEngine(model, serve_options);
}

Result<EngineHandle>
makeTraceEngine(const std::vector<sim::GemmShape> &gemms,
                const vq::PQConfig &pq, const ServeOptions &options,
                vq::LutPrecision precision, uint64_t seed)
{
    if (Status status = validatePqConfig(pq); !status.ok())
        return status;
    Result<serve::FrozenModel> frozen = serve::FrozenModel::fromTrace(
        gemms, pq, precision, seed, options.plan);
    if (!frozen.ok())
        return frozen.status();
    return serve::InferenceEngine::create(
        maybeAutoTune(frozen.take(), options), options.engine);
}

Result<EngineHandle>
makeEngineForWorkload(const std::string &workload, const vq::PQConfig &pq,
                      const serve::EngineOptions &options)
{
    Result<WorkloadSpec> spec = findWorkload(workload);
    if (!spec.ok())
        return spec.status();
    if (!spec->network)
        return Status::failedPrecondition(
            "workload '" + workload +
            "' has no GEMM trace to serve; use makeEngine with its "
            "converted model instead");
    return makeTraceEngine(spec->network().gemms, pq, options);
}

Result<FrontDoorHandle>
makeFrontDoor(const serve::FrontDoorOptions &options)
{
    return serve::FrontDoor::create(options);
}

Result<uint64_t>
publishModel(const FrontDoorHandle &door, const std::string &name,
             const nn::LayerPtr &model, const ServeOptions &options)
{
    if (!door)
        return Status::invalidArgument(
            "publishModel needs a front door; call makeFrontDoor first");
    // Same contract as makeEngine: validate BEFORE freezing so a
    // rejected model comes back completely unmodified.
    if (Status status =
            serve::FrozenModel::validateServable(model,
                                                 options.input_shape);
        !status.ok())
        return status;
    for (lutboost::LutLinear *layer : lutboost::findLutLayers(model))
        if (!layer->inferenceLutReady())
            layer->refreshInferenceLut();
    Result<serve::FrozenModel> frozen = serve::FrozenModel::fromModel(
        model, options.input_shape, options.plan);
    if (!frozen.ok())
        return frozen.status();
    return door->publish(name, maybeAutoTune(frozen.take(), options),
                         options.slo);
}

Result<uint64_t>
publishTraceModel(const FrontDoorHandle &door, const std::string &name,
                  const std::vector<sim::GemmShape> &gemms,
                  const vq::PQConfig &pq, const ServeOptions &options,
                  vq::LutPrecision precision, uint64_t seed)
{
    if (!door)
        return Status::invalidArgument(
            "publishTraceModel needs a front door; call makeFrontDoor "
            "first");
    if (Status status = validatePqConfig(pq); !status.ok())
        return status;
    Result<serve::FrozenModel> frozen = serve::FrozenModel::fromTrace(
        gemms, pq, precision, seed, options.plan);
    if (!frozen.ok())
        return frozen.status();
    return door->publish(name, maybeAutoTune(frozen.take(), options),
                         options.slo);
}

Result<EngineHandle>
makeEngineForArtifacts(const RunArtifacts &artifacts,
                       const serve::EngineOptions &options)
{
    if (artifacts.gemms.empty())
        return Status::failedPrecondition(
            "artifacts carry no deployment trace; run a pipeline with "
            "gemms(), a workload trace, or a converted model first");
    return makeTraceEngine(artifacts.gemms, artifacts.pq, options);
}

} // namespace lutdla::api
