#ifndef LUTDLA_API_SERVING_H
#define LUTDLA_API_SERVING_H

/**
 * @file
 * Facade entry points into the serving layer (src/serve/): build a batched
 * multi-threaded serve::InferenceEngine from the three things a caller
 * typically holds — a LUTBoost-converted model, a named registry workload,
 * or the RunArtifacts of a previous pipeline run. `Pipeline::engine(...)`
 * and `PipelineBuilder::engine()` forward here; see docs/SERVING.md for the
 * queueing model and tuning guide.
 *
 * Multi-tenant serving goes through makeFrontDoor() instead: one
 * serve::FrontDoor multiplexes every model published into its registry
 * over a single shared worker pool, with per-request deadlines,
 * priorities, cancellation, and typed load shedding. publishModel() /
 * publishTraceModel() lower a model exactly like the makeEngine()
 * builders do and install the snapshot under a name + version; calling
 * either again with the same name is the zero-drain hot-swap.
 */

#include <memory>
#include <string>
#include <vector>

#include "api/artifacts.h"
#include "api/status.h"
#include "nn/layer.h"
#include "serve/autotune.h"
#include "serve/engine.h"
#include "serve/frontdoor.h"
#include "serve/plan.h"

namespace lutdla::api {

/** Shared-ownership handle every factory below returns. */
using EngineHandle = std::shared_ptr<serve::InferenceEngine>;

/**
 * Everything a caller can tune about a serving deployment in one bundle:
 * the engine's queueing/batching knobs, the data-plane plan (kernel
 * backend precision + stage fusion), and the input image shape for
 * spatial models. Default-constructed options serve bit-exactly.
 * Implicitly constructible from bare EngineOptions so every pre-existing
 * `makeEngine(model, engine_options)`-shaped call keeps compiling with
 * the default (bit-exact) plan.
 */
struct ServeOptions
{
    ServeOptions() = default;

    /** Engine knobs with the default plan and no input shape. */
    ServeOptions(serve::EngineOptions engine_options)
        : engine(engine_options)
    {
    }

    /** Worker pool / batching / queue knobs. */
    serve::EngineOptions engine;
    /**
     * Lowering plan: table precision, encode precision
     * (`plan.encode_precision = serve::EncodePrecision::Int8` runs the
     * integer argmin over the quantized encode bank on every supporting
     * stage — approximate, top-1-agreement-bounded; see docs/SERVING.md),
     * stage fusion, and the row-tiled executor override
     * (`plan.tile_rows`: 0 auto-sizes a cache-resident row tile, -1
     * forces the untiled phase-barrier executor, >0 forces a tile size —
     * all tile sizes bit-exact; see serve/plan.h).
     */
    serve::PlanOptions plan;
    /** Image height/width for models with spatial first layers. */
    serve::ServeInputShape input_shape;
    /**
     * SLO fields for multi-tenant deployments: batching window, priority
     * stratum, and default deadline the front-door scheduler applies to
     * this model. Read by publishModel()/publishTraceModel() (the
     * single-model makeEngine() path ignores it — the engine has no
     * scheduler to enforce SLOs).
     */
    serve::ModelSlo slo;
    /**
     * Run the joint mixed-precision auto-tuner (serve/autotune.h) after
     * lowering: each LUT stage is assigned float32 / INT8 / INT4 tables
     * AND float32 / INT8 encode arithmetic by greedy
     * bytes-saved-per-accuracy-lost descent under
     * `auto_tune_options.agreement_budget`, and the winning assignment
     * replaces plan.table_precision / plan.stage_precision /
     * plan.encode_precision / plan.stage_encode_precision. The chosen
     * per-stage precisions are visible in the engine's planSummary().
     */
    bool auto_tune = false;
    /** Tuner knobs when `auto_tune` is set (budget, probe rows, seed,
     * per-axis enables). */
    serve::AutoTuneOptions auto_tune_options;

    /** Fluent enable: tune per-stage (table, encode) precision to the
     * given top-1 agreement budget (e.g. 0.90 keeps >= 90% of probe-row
     * argmaxes identical to the all-float32 plan). */
    ServeOptions &
    autoTunePrecision(double budget)
    {
        auto_tune = true;
        auto_tune_options.agreement_budget = budget;
        return *this;
    }
};

/**
 * Build an engine that serves a LUTBoost-converted model (MLP or CNN
 * chains; see serve::FrozenModel::fromModel for the lowered layer set).
 * Layers that are not yet frozen are frozen in place with their current
 * precision (the same step deployPrecision() performs); the engine then
 * snapshots the frozen tables, so later mutation of `model` does not
 * affect it.
 *
 * `options` bundles the engine knobs with the data-plane plan (table
 * precision, fusion — how the quantized INT8 plane deploys through the
 * facade) and the input image shape for models that start with spatial
 * layers (conv/pool/norm; each request row is then a flattened NCHW
 * image). Bare serve::EngineOptions convert implicitly for the common
 * bit-exact case.
 *
 * @return FailedPrecondition when the model holds no LUT operators,
 *         InvalidArgument for unsupported topologies (the status names
 *         the first unlowerable layer) or bad options.
 */
Result<EngineHandle> makeEngine(const nn::LayerPtr &model,
                                const ServeOptions &options = {});

/**
 * Convenience overload keeping the PR-3 call shape for spatial models:
 * engine knobs + explicit image shape, default (bit-exact) plan. No
 * defaulted parameters, so it never competes with the ServeOptions
 * overload during overload resolution.
 */
Result<EngineHandle> makeEngine(const nn::LayerPtr &model,
                                const serve::EngineOptions &options,
                                serve::ServeInputShape input_shape);

/**
 * Build a load-testing engine from an explicit deployment GEMM trace:
 * one synthetic frozen LUT layer per traced GEMM (random codebooks and
 * weights, deterministic in `seed`).
 */
Result<EngineHandle>
makeTraceEngine(const std::vector<sim::GemmShape> &gemms,
                const vq::PQConfig &pq, const ServeOptions &options = {},
                vq::LutPrecision precision = {}, uint64_t seed = 91);

/**
 * Trace engine for a named registry workload ("resnet18", "bert-base",
 * ...). NotFound for unknown names; FailedPrecondition when the workload
 * carries no GEMM trace.
 */
Result<EngineHandle>
makeEngineForWorkload(const std::string &workload, const vq::PQConfig &pq,
                      const serve::EngineOptions &options = {});

/**
 * Trace engine replaying the deployment trace captured in a previous
 * run's artifacts, with the run's own PQ geometry. FailedPrecondition
 * when the artifacts hold no trace.
 */
Result<EngineHandle>
makeEngineForArtifacts(const RunArtifacts &artifacts,
                       const serve::EngineOptions &options = {});

/** Shared-ownership handle on a multi-tenant front door. */
using FrontDoorHandle = std::shared_ptr<serve::FrontDoor>;

/**
 * Build a multi-tenant serving front door: an empty model registry plus
 * one shared worker pool with deadline-aware, priority-stratified
 * scheduling (see serve/frontdoor.h for the scheduling, overload, and
 * hot-swap contracts). Publish models into it with publishModel() /
 * publishTraceModel(), or through handle->registry() directly; mint
 * per-tenant submission handles with handle->tenant().
 */
Result<FrontDoorHandle>
makeFrontDoor(const serve::FrontDoorOptions &options = {});

/**
 * Lower a LUTBoost-converted model (freezing unfrozen LUT layers in
 * place, exactly like makeEngine) and publish it into `door`'s registry
 * under `name`, returning the new version. Re-publishing an existing
 * name is the zero-drain hot-swap: in-flight and queued requests finish
 * on the version they resolved, new submissions ride this one.
 * `options` supplies the lowering plan, input shape, and the ModelSlo
 * (options.engine is ignored — the front door owns the pool).
 */
Result<uint64_t> publishModel(const FrontDoorHandle &door,
                              const std::string &name,
                              const nn::LayerPtr &model,
                              const ServeOptions &options = {});

/**
 * Publish a load-testing trace model (same synthesis as
 * makeTraceEngine: one frozen LUT stage per traced GEMM, deterministic
 * in `seed`) into `door`'s registry under `name`.
 */
Result<uint64_t>
publishTraceModel(const FrontDoorHandle &door, const std::string &name,
                  const std::vector<sim::GemmShape> &gemms,
                  const vq::PQConfig &pq, const ServeOptions &options = {},
                  vq::LutPrecision precision = {}, uint64_t seed = 91);

} // namespace lutdla::api

#endif // LUTDLA_API_SERVING_H
