#ifndef LUTDLA_API_SERVING_H
#define LUTDLA_API_SERVING_H

/**
 * @file
 * Facade entry points into the serving layer (src/serve/): build a batched
 * multi-threaded serve::InferenceEngine from the three things a caller
 * typically holds — a LUTBoost-converted model, a named registry workload,
 * or the RunArtifacts of a previous pipeline run. `Pipeline::engine(...)`
 * and `PipelineBuilder::engine()` forward here; see docs/SERVING.md for the
 * queueing model and tuning guide.
 */

#include <memory>
#include <string>
#include <vector>

#include "api/artifacts.h"
#include "api/status.h"
#include "nn/layer.h"
#include "serve/engine.h"
#include "serve/plan.h"

namespace lutdla::api {

/** Shared-ownership handle every factory below returns. */
using EngineHandle = std::shared_ptr<serve::InferenceEngine>;

/**
 * Everything a caller can tune about a serving deployment in one bundle:
 * the engine's queueing/batching knobs, the data-plane plan (kernel
 * backend precision + stage fusion), and the input image shape for
 * spatial models. Default-constructed options serve bit-exactly.
 * Implicitly constructible from bare EngineOptions so every pre-existing
 * `makeEngine(model, engine_options)`-shaped call keeps compiling with
 * the default (bit-exact) plan.
 */
struct ServeOptions
{
    ServeOptions() = default;

    /** Engine knobs with the default plan and no input shape. */
    ServeOptions(serve::EngineOptions engine_options)
        : engine(engine_options)
    {
    }

    /** Worker pool / batching / queue knobs. */
    serve::EngineOptions engine;
    /** Lowering plan: table precision and stage fusion. */
    serve::PlanOptions plan;
    /** Image height/width for models with spatial first layers. */
    serve::ServeInputShape input_shape;
};

/**
 * Build an engine that serves a LUTBoost-converted model (MLP or CNN
 * chains; see serve::FrozenModel::fromModel for the lowered layer set).
 * Layers that are not yet frozen are frozen in place with their current
 * precision (the same step deployPrecision() performs); the engine then
 * snapshots the frozen tables, so later mutation of `model` does not
 * affect it.
 *
 * `options` bundles the engine knobs with the data-plane plan (table
 * precision, fusion — how the quantized INT8 plane deploys through the
 * facade) and the input image shape for models that start with spatial
 * layers (conv/pool/norm; each request row is then a flattened NCHW
 * image). Bare serve::EngineOptions convert implicitly for the common
 * bit-exact case.
 *
 * @return FailedPrecondition when the model holds no LUT operators,
 *         InvalidArgument for unsupported topologies (the status names
 *         the first unlowerable layer) or bad options.
 */
Result<EngineHandle> makeEngine(const nn::LayerPtr &model,
                                const ServeOptions &options = {});

/**
 * Convenience overload keeping the PR-3 call shape for spatial models:
 * engine knobs + explicit image shape, default (bit-exact) plan. No
 * defaulted parameters, so it never competes with the ServeOptions
 * overload during overload resolution.
 */
Result<EngineHandle> makeEngine(const nn::LayerPtr &model,
                                const serve::EngineOptions &options,
                                serve::ServeInputShape input_shape);

/**
 * Build a load-testing engine from an explicit deployment GEMM trace:
 * one synthetic frozen LUT layer per traced GEMM (random codebooks and
 * weights, deterministic in `seed`).
 */
Result<EngineHandle>
makeTraceEngine(const std::vector<sim::GemmShape> &gemms,
                const vq::PQConfig &pq, const ServeOptions &options = {},
                vq::LutPrecision precision = {}, uint64_t seed = 91);

/**
 * Trace engine for a named registry workload ("resnet18", "bert-base",
 * ...). NotFound for unknown names; FailedPrecondition when the workload
 * carries no GEMM trace.
 */
Result<EngineHandle>
makeEngineForWorkload(const std::string &workload, const vq::PQConfig &pq,
                      const serve::EngineOptions &options = {});

/**
 * Trace engine replaying the deployment trace captured in a previous
 * run's artifacts, with the run's own PQ geometry. FailedPrecondition
 * when the artifacts hold no trace.
 */
Result<EngineHandle>
makeEngineForArtifacts(const RunArtifacts &artifacts,
                       const serve::EngineOptions &options = {});

} // namespace lutdla::api

#endif // LUTDLA_API_SERVING_H
