#ifndef LUTDLA_API_PIPELINE_H
#define LUTDLA_API_PIPELINE_H

/**
 * @file
 * The unified LUT-DLA pipeline facade: one builder-style entry point that
 * composes the paper's whole flow — float model -> LUTBoost multistage
 * conversion (Sec. V) -> deployment-precision freeze -> LUT-Stationary
 * timing simulation (Algorithm 1) -> PPA/energy — and returns everything
 * as one RunArtifacts. Misconfiguration surfaces as typed Status errors,
 * never asserts.
 *
 *   auto run = Pipeline::builder()
 *                  .model(model).dataset(ds)
 *                  .convert(options)
 *                  .design(hw::design1Tiny())
 *                  .simulate()
 *                  .report();
 *   if (!run.ok()) { ... run.status() ... }
 *
 * Stages are optional and compose: a timing-only run needs just gemms() +
 * design(); an accuracy-only run needs model() + dataset() + convert().
 * Named workloads from the registry pre-wire all of it:
 *
 *   auto run = Pipeline::forWorkload("resnet18")
 *                  .design(hw::design2Large()).simulate().report();
 */

#include <string>
#include <vector>

#include "api/artifacts.h"
#include "api/serving.h"
#include "api/status.h"
#include "api/workload_registry.h"
#include "lutboost/converter.h"

namespace lutdla::api {

/** Validate VQ hyperparameters; Ok when a conversion may run with them. */
Status validatePqConfig(const vq::PQConfig &pq);

/** Validate simulator parameters; Ok when a timing run may use them. */
Status validateSimConfig(const sim::SimConfig &config);

/**
 * Extract the deployment GEMM trace from a converted model by running one
 * forward pass of `sample` (eval mode) and reading each LUT operator's
 * lowered shape. Convolutions report their post-im2col geometry.
 *
 * @return FailedPrecondition when the model has no LUT operators.
 */
Result<std::vector<sim::GemmShape>> extractGemmTrace(
    const nn::LayerPtr &model, const Tensor &sample);

/** Fluent assembler for one end-to-end run. Single-shot: build, then run. */
class PipelineBuilder
{
  public:
    // ---- Inputs ----
    /** Resolve model/dataset/trace defaults from the named workload. */
    PipelineBuilder &workload(const std::string &name);
    /** Float (or already-converted) model to operate on, shared in place. */
    PipelineBuilder &model(nn::LayerPtr model);
    /** Dataset for training/conversion/evaluation stages. */
    PipelineBuilder &dataset(nn::Dataset dataset);
    /** Explicit deployment GEMM trace (overrides workload/model traces). */
    PipelineBuilder &gemms(std::vector<sim::GemmShape> trace);
    /** Label recorded in the artifacts (defaults to the workload name). */
    PipelineBuilder &tag(std::string label);

    // ---- Stages ----
    /** Float pre-training before conversion, with an explicit recipe. */
    PipelineBuilder &pretrain(const nn::TrainConfig &config);
    /** Float pre-training with the workload's recommended recipe. */
    PipelineBuilder &pretrain();
    /** LUTBoost multistage conversion (replace -> calibrate -> joint). */
    PipelineBuilder &convert(const lutboost::ConvertOptions &options);
    /** Single-stage conversion baseline (PECAN/PQA-style). */
    PipelineBuilder &convertSingleStage(
        const lutboost::ConvertOptions &options,
        lutboost::SingleStageMode mode, int total_epochs);
    /** Freeze inference LUTs at this precision and record the accuracy. */
    PipelineBuilder &deployPrecision(vq::LutPrecision precision);
    /** Simulate on a full hardware design point (also enables PPA). */
    PipelineBuilder &design(const hw::LutDlaDesign &design);
    /** Simulate on bare timing parameters (no PPA model attached). */
    PipelineBuilder &design(const sim::SimConfig &config);
    /** Run the timing simulator over the deployment trace. */
    PipelineBuilder &simulate(bool enable = true);
    /** Rows forwarded when extracting a trace from the model (default 64). */
    PipelineBuilder &traceRows(int64_t rows);
    /** DRAM access energy used for the energy roll-up (default 20 pJ/B). */
    PipelineBuilder &dramEnergy(double pj_per_byte);

    // ---- Terminals ----
    /** Execute all configured stages. */
    Result<RunArtifacts> run();
    /** Fluent alias for run(), closing the builder chain. */
    Result<RunArtifacts> report() { return run(); }

    /**
     * Execute all configured stages, then stand up a serving engine on the
     * converted model (freezing any layer deployPrecision() did not already
     * freeze). `options` carries the engine knobs plus the data-plane plan
     * (table precision, stage fusion); bare serve::EngineOptions convert
     * implicitly. CNN workloads are served as flattened NCHW rows; the
     * image shape is inferred from the configured dataset's sample shape
     * unless options.input_shape is set explicitly. The artifacts of the
     * run are discarded; use run() + Pipeline::engine() to keep both.
     */
    Result<EngineHandle> engine(const ServeOptions &options = {});

    /** The model the run operated on (converted in place); null pre-run. */
    const nn::LayerPtr &convertedModel() const { return model_; }

  private:
    Status resolveWorkload();
    Status runModelStages(RunArtifacts &artifacts);
    Status resolveTrace(RunArtifacts &artifacts);
    Status runTimingStages(RunArtifacts &artifacts);

    std::string workload_name_;
    bool has_workload_ = false;

    nn::LayerPtr model_;
    nn::Dataset dataset_;
    bool has_dataset_ = false;
    std::vector<sim::GemmShape> gemms_;
    std::string tag_;

    bool want_pretrain_ = false;
    bool pretrain_from_workload_ = false;
    nn::TrainConfig pretrain_;

    bool want_convert_ = false;
    bool single_stage_ = false;
    lutboost::SingleStageMode single_stage_mode_ =
        lutboost::SingleStageMode::JointFromRandom;
    int single_stage_epochs_ = 0;
    lutboost::ConvertOptions convert_;

    bool want_deploy_ = false;
    vq::LutPrecision precision_;

    bool has_design_ = false;
    hw::LutDlaDesign design_;
    bool has_sim_config_ = false;
    sim::SimConfig sim_config_;
    bool want_simulate_ = false;
    int64_t trace_rows_ = 64;
    double dram_pj_per_byte_ = 20.0;
};

/** Entry point to the facade. */
class Pipeline
{
  public:
    /** Start an empty builder. */
    static PipelineBuilder builder() { return {}; }

    /** Start a builder pre-wired to a registry workload. */
    static PipelineBuilder
    forWorkload(const std::string &name)
    {
        return builder().workload(name);
    }

    // ---- Serving entry points (thin aliases over api/serving.h) ----

    /**
     * Serve a LUTBoost-converted model; see api::makeEngine. ServeOptions
     * carries engine knobs + data-plane plan + input shape; bare
     * serve::EngineOptions convert implicitly (bit-exact default plan).
     */
    static Result<EngineHandle>
    engine(const nn::LayerPtr &converted_model,
           const ServeOptions &options = {})
    {
        return makeEngine(converted_model, options);
    }

    /**
     * PR-3-shaped convenience: engine knobs + explicit image shape for
     * spatial models, default plan; see api::makeEngine.
     */
    static Result<EngineHandle>
    engine(const nn::LayerPtr &converted_model,
           const serve::EngineOptions &options,
           serve::ServeInputShape input_shape)
    {
        return makeEngine(converted_model, options, input_shape);
    }

    /** Load-test a named workload's trace; see api::makeEngineForWorkload. */
    static Result<EngineHandle>
    engineForWorkload(const std::string &name, const vq::PQConfig &pq,
                      const serve::EngineOptions &options = {})
    {
        return makeEngineForWorkload(name, pq, options);
    }

    /** Replay a previous run's trace; see api::makeEngineForArtifacts. */
    static Result<EngineHandle>
    engineForArtifacts(const RunArtifacts &artifacts,
                       const serve::EngineOptions &options = {})
    {
        return makeEngineForArtifacts(artifacts, options);
    }
};

} // namespace lutdla::api

#endif // LUTDLA_API_PIPELINE_H
