#include "api/pipeline.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "hw/arith.h"
#include "hw/sram.h"
#include "hw/tech.h"
#include "nn/trainer.h"
#include "sim/lutdla_sim.h"

namespace lutdla::api {

namespace {

bool
isPowerOfTwo(int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

Status
validateStageEpochs(const char *stage, const nn::TrainConfig &config)
{
    if (config.epochs < 0)
        return Status::invalidArgument(
            std::string(stage) + " epochs must be >= 0 (got " +
            std::to_string(config.epochs) + ")");
    if (config.batch_size < 1)
        return Status::invalidArgument(
            std::string(stage) + " batch_size must be >= 1 (got " +
            std::to_string(config.batch_size) + ")");
    return Status();
}

} // namespace

Status
validatePqConfig(const vq::PQConfig &pq)
{
    if (pq.v < 1)
        return Status::invalidArgument("v must be >= 1 (got " +
                                       std::to_string(pq.v) + ")");
    if (pq.c < 2)
        return Status::invalidArgument("c must be >= 2 (got " +
                                       std::to_string(pq.c) + ")");
    if (!isPowerOfTwo(pq.c))
        return Status::invalidArgument(
            "c must be a power of two so indices pack densely (got " +
            std::to_string(pq.c) + ")");
    if (pq.kmeans_iters < 1)
        return Status::invalidArgument("kmeans_iters must be >= 1 (got " +
                                       std::to_string(pq.kmeans_iters) +
                                       ")");
    return Status();
}

Status
validateSimConfig(const sim::SimConfig &config)
{
    if (config.v < 1)
        return Status::invalidArgument("v must be >= 1 (got " +
                                       std::to_string(config.v) + ")");
    if (config.c < 2)
        return Status::invalidArgument("c must be >= 2 (got " +
                                       std::to_string(config.c) + ")");
    if (config.tn < 1)
        return Status::invalidArgument("tn must be >= 1 (got " +
                                       std::to_string(config.tn) + ")");
    if (config.m_tile < 1)
        return Status::invalidArgument("m_tile must be >= 1 (got " +
                                       std::to_string(config.m_tile) + ")");
    if (config.n_imm < 1 || config.n_ccu < 1)
        return Status::invalidArgument(
            "n_imm and n_ccu must be >= 1 (got " +
            std::to_string(config.n_imm) + ", " +
            std::to_string(config.n_ccu) + ")");
    if (config.freq_imm_hz <= 0.0 || config.freq_ccm_hz <= 0.0)
        return Status::invalidArgument(
            "clock frequencies must be positive (got imm=" +
            std::to_string(config.freq_imm_hz) + " Hz, ccm=" +
            std::to_string(config.freq_ccm_hz) + " Hz)");
    if (config.dram_bytes_per_sec <= 0.0)
        return Status::invalidArgument(
            "dram_bytes_per_sec must be positive (got " +
            std::to_string(config.dram_bytes_per_sec) + ")");
    if (config.lut_entry_bytes < 1 || config.input_bytes < 1 ||
        config.output_bytes < 1)
        return Status::invalidArgument(
            "entry/input/output byte widths must be >= 1");
    return Status();
}

Result<std::vector<sim::GemmShape>>
extractGemmTrace(const nn::LayerPtr &model, const Tensor &sample)
{
    const auto layers = lutboost::findLutLayers(model);
    if (layers.empty())
        return Status::failedPrecondition(
            "model has no LUT operators to trace (convert it first)");
    model->forward(sample, /*train=*/false);
    std::vector<sim::GemmShape> trace;
    trace.reserve(layers.size());
    int64_t index = 0;
    for (const lutboost::LutLinear *layer : layers) {
        sim::GemmShape gemm;
        gemm.m = layer->lastForwardRows();
        gemm.k = layer->inFeatures();
        gemm.n = layer->outFeatures();
        gemm.tag = "lut" + std::to_string(index++);
        trace.push_back(gemm);
    }
    return trace;
}

PipelineBuilder &
PipelineBuilder::workload(const std::string &name)
{
    workload_name_ = name;
    has_workload_ = true;
    return *this;
}

PipelineBuilder &
PipelineBuilder::model(nn::LayerPtr model)
{
    model_ = std::move(model);
    return *this;
}

PipelineBuilder &
PipelineBuilder::dataset(nn::Dataset dataset)
{
    dataset_ = std::move(dataset);
    has_dataset_ = true;
    return *this;
}

PipelineBuilder &
PipelineBuilder::gemms(std::vector<sim::GemmShape> trace)
{
    gemms_ = std::move(trace);
    return *this;
}

PipelineBuilder &
PipelineBuilder::tag(std::string label)
{
    tag_ = std::move(label);
    return *this;
}

PipelineBuilder &
PipelineBuilder::pretrain(const nn::TrainConfig &config)
{
    want_pretrain_ = true;
    pretrain_from_workload_ = false;
    pretrain_ = config;
    return *this;
}

PipelineBuilder &
PipelineBuilder::pretrain()
{
    want_pretrain_ = true;
    pretrain_from_workload_ = true;
    return *this;
}

PipelineBuilder &
PipelineBuilder::convert(const lutboost::ConvertOptions &options)
{
    want_convert_ = true;
    single_stage_ = false;
    convert_ = options;
    return *this;
}

PipelineBuilder &
PipelineBuilder::convertSingleStage(const lutboost::ConvertOptions &options,
                                    lutboost::SingleStageMode mode,
                                    int total_epochs)
{
    want_convert_ = true;
    single_stage_ = true;
    single_stage_mode_ = mode;
    single_stage_epochs_ = total_epochs;
    convert_ = options;
    return *this;
}

PipelineBuilder &
PipelineBuilder::deployPrecision(vq::LutPrecision precision)
{
    want_deploy_ = true;
    precision_ = precision;
    return *this;
}

PipelineBuilder &
PipelineBuilder::design(const hw::LutDlaDesign &design)
{
    design_ = design;
    has_design_ = true;
    sim_config_ = sim::SimConfig::fromDesign(design);
    has_sim_config_ = true;
    return *this;
}

PipelineBuilder &
PipelineBuilder::design(const sim::SimConfig &config)
{
    sim_config_ = config;
    has_sim_config_ = true;
    has_design_ = false;
    return *this;
}

PipelineBuilder &
PipelineBuilder::simulate(bool enable)
{
    want_simulate_ = enable;
    return *this;
}

PipelineBuilder &
PipelineBuilder::traceRows(int64_t rows)
{
    trace_rows_ = rows;
    return *this;
}

PipelineBuilder &
PipelineBuilder::dramEnergy(double pj_per_byte)
{
    dram_pj_per_byte_ = pj_per_byte;
    return *this;
}

Status
PipelineBuilder::resolveWorkload()
{
    if (!has_workload_) {
        if (tag_.empty())
            tag_ = "run";
        return Status();
    }
    Result<WorkloadSpec> spec = findWorkload(workload_name_);
    if (!spec.ok())
        return spec.status();
    if (tag_.empty())
        tag_ = spec->name;

    const bool needs_model = want_pretrain_ || want_convert_ || want_deploy_;
    if (!model_ && needs_model) {
        if (!spec->model)
            return Status::failedPrecondition(
                "workload '" + workload_name_ +
                "' has no trainable substitute model; supply model()");
        model_ = spec->model();
    }
    if (!has_dataset_ && needs_model) {
        if (!spec->dataset)
            return Status::failedPrecondition(
                "workload '" + workload_name_ +
                "' has no dataset; supply dataset()");
        dataset_ = spec->dataset();
        has_dataset_ = true;
    }
    if (want_pretrain_ && pretrain_from_workload_)
        pretrain_ = spec->pretrain;
    if (gemms_.empty() && spec->network)
        gemms_ = spec->network().gemms;
    return Status();
}

Status
PipelineBuilder::runModelStages(RunArtifacts &artifacts)
{
    if (want_pretrain_) {
        if (!model_)
            return Status::failedPrecondition(
                "pretrain() requires model() or a trainable workload");
        if (!has_dataset_)
            return Status::failedPrecondition(
                "pretrain() requires dataset()");
        if (Status s = validateStageEpochs("pretrain", pretrain_); !s.ok())
            return s;
        nn::Trainer(model_, dataset_, pretrain_).train();
    }

    if (want_convert_) {
        if (Status s = validatePqConfig(convert_.pq); !s.ok())
            return s;
        if (Status s =
                validateStageEpochs("centroid_stage",
                                    convert_.centroid_stage);
            !s.ok())
            return s;
        if (Status s = validateStageEpochs("joint_stage",
                                           convert_.joint_stage);
            !s.ok())
            return s;
        if (convert_.calibration_rows < 1)
            return Status::invalidArgument(
                "calibration_rows must be >= 1 (got " +
                std::to_string(convert_.calibration_rows) + ")");
        if (!model_)
            return Status::failedPrecondition(
                "convert() requires model() or a trainable workload");
        if (!has_dataset_)
            return Status::failedPrecondition(
                "convert() requires dataset() for calibration/training");
        // numel(), not trainSize(): a default-constructed Dataset holds
        // rank-0 tensors on which dim(0) panics.
        if (dataset_.train_x.numel() == 0)
            return Status::invalidArgument(
                "dataset '" + dataset_.name + "' has no training rows");

        artifacts.conversion =
            single_stage_
                ? lutboost::singleStageConvert(model_, dataset_, convert_,
                                               single_stage_mode_,
                                               single_stage_epochs_)
                : lutboost::convert(model_, dataset_, convert_);
        artifacts.converted = true;
        artifacts.pq = convert_.pq;
    }

    if (want_deploy_) {
        if (!model_)
            return Status::failedPrecondition(
                "deployPrecision() requires a model");
        const auto layers = lutboost::findLutLayers(model_);
        if (layers.empty())
            return Status::failedPrecondition(
                "deployPrecision() requires a converted model with LUT "
                "operators");
        if (!has_dataset_)
            return Status::failedPrecondition(
                "deployPrecision() requires dataset() to re-evaluate");
        for (lutboost::LutLinear *layer : layers) {
            layer->setPrecision(precision_);
            layer->refreshInferenceLut();
        }
        nn::Trainer probe(model_, dataset_, {});
        artifacts.deployed_accuracy =
            probe.evaluate(dataset_.test_x, dataset_.test_y);
    }
    return Status();
}

Status
PipelineBuilder::resolveTrace(RunArtifacts &artifacts)
{
    if (!gemms_.empty()) {
        artifacts.gemms = gemms_;
        return Status();
    }
    // No explicit or workload trace: extract one from a converted model.
    if (!artifacts.converted || !has_dataset_ ||
        dataset_.test_x.numel() == 0)
        return Status();
    const int64_t rows =
        std::min<int64_t>(std::max<int64_t>(trace_rows_, 1),
                          dataset_.testSize());
    if (rows == 0)
        return Status();
    std::vector<int64_t> indices(rows);
    std::iota(indices.begin(), indices.end(), 0);
    Result<std::vector<sim::GemmShape>> trace =
        extractGemmTrace(model_, nn::gatherRows(dataset_.test_x, indices));
    if (!trace.ok())
        return trace.status();
    artifacts.gemms = trace.take();
    return Status();
}

Status
PipelineBuilder::runTimingStages(RunArtifacts &artifacts)
{
    if (want_simulate_) {
        if (!has_sim_config_)
            return Status::failedPrecondition(
                "simulate() requires design(LutDlaDesign) or "
                "design(SimConfig)");
        if (Status s = validateSimConfig(sim_config_); !s.ok())
            return s;
        if (artifacts.gemms.empty())
            return Status::failedPrecondition(
                "simulate() has no deployment trace: supply gemms(), a "
                "workload with a GEMM trace, or a converted model with a "
                "dataset");
        const sim::LutDlaSimulator simulator(sim_config_);
        artifacts.report =
            sim::profileNetwork(simulator, artifacts.gemms);
        artifacts.sim_config = sim_config_;
        artifacts.simulated = true;
        if (!artifacts.converted) {
            artifacts.pq.v = sim_config_.v;
            artifacts.pq.c = sim_config_.c;
        }
    }

    if (has_design_) {
        const hw::ArithLibrary lib(hw::tech28());
        const hw::SramModel sram(hw::tech28());
        artifacts.ppa = hw::evaluateDesign(lib, sram, design_);
        artifacts.has_ppa = true;
        if (artifacts.simulated)
            artifacts.energy_mj =
                sim::LutDlaSimulator(sim_config_)
                    .energyMj(artifacts.report.total, artifacts.ppa.power_mw,
                              dram_pj_per_byte_);
    }
    return Status();
}

Result<EngineHandle>
PipelineBuilder::engine(const ServeOptions &options)
{
    Result<RunArtifacts> artifacts = run();
    if (!artifacts.ok())
        return artifacts.status();
    if (!model_)
        return Status::failedPrecondition(
            "engine() needs a converted model; configure model()/workload "
            "with convert() (trace-only runs can serve via "
            "Pipeline::engineForArtifacts)");
    ServeOptions resolved = options;
    // CNN workloads serve flattened NCHW rows; the image shape comes from
    // the dataset's sample layout ([N, C, H, W] features) unless the
    // caller provided one explicitly.
    if (!resolved.input_shape.spatial() && has_dataset_ &&
        dataset_.train_x.rank() == 4) {
        resolved.input_shape.height = dataset_.train_x.dim(2);
        resolved.input_shape.width = dataset_.train_x.dim(3);
    }
    return makeEngine(model_, resolved);
}

Result<RunArtifacts>
PipelineBuilder::run()
{
    RunArtifacts artifacts;
    if (Status s = resolveWorkload(); !s.ok())
        return s;
    artifacts.workload = tag_;
    if (Status s = runModelStages(artifacts); !s.ok())
        return s;
    if (Status s = resolveTrace(artifacts); !s.ok())
        return s;
    if (Status s = runTimingStages(artifacts); !s.ok())
        return s;
    return artifacts;
}

} // namespace lutdla::api
