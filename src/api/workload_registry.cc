#include "api/workload_registry.h"

#include <utility>

#include "nn/models.h"

namespace lutdla::api {

namespace {

/** Shape-only entry backed by the model zoo. */
WorkloadSpec
zooSpec(const std::string &name, const std::string &description)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.description = description;
    spec.network = [name] { return workloads::networkByName(name); };
    return spec;
}

/** MLP on the Gaussian-mixture task (the integration-test substitute). */
WorkloadSpec
mlpMixtureSpec()
{
    WorkloadSpec spec;
    spec.name = "mlp-mixture";
    spec.description =
        "MLP 16-20-4 on the 4-class Gaussian-mixture task (trainable)";
    spec.model = [] { return nn::makeMlp(16, {20}, 4); };
    spec.dataset = [] {
        nn::GaussianMixtureConfig cfg;
        cfg.classes = 4;
        cfg.dim = 16;
        cfg.train_per_class = 24;
        cfg.test_per_class = 8;
        return nn::makeGaussianMixture(cfg);
    };
    spec.pretrain = nn::TrainConfig::sgd(8, 0.05);
    return spec;
}

/** MiniResNet on shape images (the CNN-evaluation substitute). */
WorkloadSpec
miniResNetShapesSpec()
{
    WorkloadSpec spec;
    spec.name = "miniresnet-shapes";
    spec.description =
        "MiniResNet20-class CNN on 8-class shape images (trainable)";
    spec.model = [] { return nn::makeMiniResNet(1, 8, 8); };
    spec.dataset = [] {
        nn::ShapeImageConfig cfg;
        cfg.classes = 8;
        cfg.train_per_class = 40;
        cfg.test_per_class = 12;
        return nn::makeShapeImages(cfg);
    };
    spec.pretrain = nn::TrainConfig::sgd(8, 0.05);
    return spec;
}

/**
 * LeNet-style CNN on shape images: a plain conv->pool->flatten->linear
 * chain (no residual skips), so a converted instance lowers end-to-end
 * onto the serving stage graph and can be served via Pipeline::engine().
 */
WorkloadSpec
lenetShapesSpec()
{
    WorkloadSpec spec;
    spec.name = "lenet-shapes";
    spec.description =
        "LeNet-style CNN on 6-class shape images (trainable, servable)";
    spec.model = [] { return nn::makeLeNetStyle(6); };
    spec.dataset = [] {
        nn::ShapeImageConfig cfg;
        cfg.classes = 6;
        cfg.train_per_class = 40;
        cfg.test_per_class = 12;
        return nn::makeShapeImages(cfg);
    };
    spec.pretrain = nn::TrainConfig::sgd(6, 0.05);
    return spec;
}

/** TinyTransformer on the sequence task (the BERT-family substitute). */
WorkloadSpec
tinyTransformerSpec()
{
    WorkloadSpec spec;
    spec.name = "tinytransformer-seq";
    spec.description =
        "TinyTransformer encoder on the 4-class sequence task (trainable)";
    spec.model = [] {
        nn::TinyTransformerConfig cfg;
        cfg.classes = 4;
        return nn::makeTinyTransformer(cfg);
    };
    spec.dataset = [] {
        nn::SequenceTaskConfig cfg;
        cfg.classes = 4;
        cfg.train_per_class = 40;
        cfg.test_per_class = 12;
        return nn::makeSequenceTask(cfg);
    };
    spec.pretrain = nn::TrainConfig::adam(12, 2e-3, 1e-4);
    return spec;
}

std::vector<WorkloadSpec> &
registry()
{
    static std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> s;
        s.push_back(zooSpec("resnet18", "ResNet-18 @224 GEMM trace"));
        s.push_back(zooSpec("resnet34", "ResNet-34 @224 GEMM trace"));
        s.push_back(zooSpec("resnet50", "ResNet-50 @224 GEMM trace"));
        s.push_back(zooSpec("resnet20", "CIFAR ResNet-20 GEMM trace"));
        s.push_back(zooSpec("resnet32", "CIFAR ResNet-32 GEMM trace"));
        s.push_back(zooSpec("resnet56", "CIFAR ResNet-56 GEMM trace"));
        s.push_back(zooSpec("vgg11", "VGG-11 @224 GEMM trace"));
        s.push_back(zooSpec("lenet", "LeNet-5-style GEMM trace"));
        s.push_back(zooSpec("bert-base", "BERT-base encoder GEMM trace"));
        s.push_back(zooSpec("distilbert", "DistilBERT GEMM trace"));
        s.push_back(zooSpec("opt-125m", "OPT-125M decoder GEMM trace"));
        s.push_back(mlpMixtureSpec());
        s.push_back(miniResNetShapesSpec());
        s.push_back(lenetShapesSpec());
        s.push_back(tinyTransformerSpec());
        return s;
    }();
    return specs;
}

} // namespace

Result<WorkloadSpec>
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &spec : registry())
        if (spec.name == name)
            return spec;
    std::string known;
    for (const std::string &n : workloadNames())
        known += (known.empty() ? "" : ", ") + n;
    return Status::notFound("unknown workload '" + name + "' (known: " +
                            known + ")");
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const WorkloadSpec &spec : registry())
        names.push_back(spec.name);
    return names;
}

void
registerWorkload(WorkloadSpec spec)
{
    for (WorkloadSpec &existing : registry()) {
        if (existing.name == spec.name) {
            existing = std::move(spec);
            return;
        }
    }
    registry().push_back(std::move(spec));
}

} // namespace lutdla::api
