#ifndef LUTDLA_API_ARTIFACTS_H
#define LUTDLA_API_ARTIFACTS_H

/**
 * @file
 * RunArtifacts: everything one end-to-end pipeline run produced, in a
 * single serializable object — the conversion accuracy trail, the GEMM
 * trace the deployment executes, the per-layer timing breakdown, and the
 * design's PPA/energy numbers. This is the facade's unit of output: a run
 * either fails with a typed Status or yields one of these.
 *
 * Round-trips through the lutboost::serialize container family (magic
 * "LUTDLAR1") so runs can be archived next to the model parameters.
 */

#include <string>
#include <vector>

#include "api/status.h"
#include "hw/accel.h"
#include "lutboost/converter.h"
#include "sim/report.h"

namespace lutdla::api {

/** Bundled outputs of one pipeline run. Absent stages keep defaults. */
struct RunArtifacts
{
    /** Workload / model tag the run was labeled with. */
    std::string workload;

    /** VQ hyperparameters in force for the conversion stage. */
    vq::PQConfig pq;

    // ---- Conversion stage (LUTBoost) ----
    bool converted = false;
    lutboost::ConversionReport conversion;
    /** Accuracy after the deployment-precision freeze; < 0 means not run. */
    double deployed_accuracy = -1.0;

    // ---- Deployment trace ----
    /** Per-layer GEMM shapes the deployed model executes. */
    std::vector<sim::GemmShape> gemms;

    // ---- Timing stage ----
    bool simulated = false;
    sim::SimConfig sim_config;
    /** Per-layer breakdown; `report.total` aggregates the whole network. */
    sim::NetworkReport report;

    // ---- Hardware stage ----
    bool has_ppa = false;
    hw::AccelPpa ppa;
    /** End-to-end energy (mJ) when both PPA and timing ran; else 0. */
    double energy_mj = 0.0;

    /** Total MACs across the deployment trace. */
    double totalMacs() const;

    /** Human-readable multi-line digest of the populated stages. */
    std::string summary() const;
};

/** Serialize a run to `path`. @return IoError status on failure. */
Status saveArtifacts(const RunArtifacts &artifacts, const std::string &path);

/** Load a run saved by saveArtifacts. */
Result<RunArtifacts> loadArtifacts(const std::string &path);

} // namespace lutdla::api

#endif // LUTDLA_API_ARTIFACTS_H
