#include "api/artifacts.h"

#include <sstream>

#include "lutboost/serialize.h"

namespace lutdla::api {

namespace {

constexpr char kMagic[9] = "LUTDLAR1";

using lutboost::BinReader;
using lutboost::BinWriter;

void
writeTrainResult(BinWriter &out, const nn::TrainResult &r)
{
    out.f64vec(r.iter_losses);
    out.f64vec(r.epoch_losses);
    out.f64(r.train_accuracy);
    out.f64(r.test_accuracy);
}

bool
readTrainResult(BinReader &in, nn::TrainResult &r)
{
    return in.f64vec(r.iter_losses) && in.f64vec(r.epoch_losses) &&
           in.f64(r.train_accuracy) && in.f64(r.test_accuracy);
}

void
writeGemm(BinWriter &out, const sim::GemmShape &g)
{
    out.i64(g.m);
    out.i64(g.k);
    out.i64(g.n);
    out.str(g.tag);
}

bool
readGemm(BinReader &in, sim::GemmShape &g)
{
    return in.i64(g.m) && in.i64(g.k) && in.i64(g.n) && in.str(g.tag);
}

void
writeSimStats(BinWriter &out, const sim::SimStats &s)
{
    out.u64(s.total_cycles);
    out.u64(s.lookup_cycles);
    out.u64(s.stall_lut_cycles);
    out.u64(s.stall_index_cycles);
    out.u64(s.lut_tile_loads);
    out.f64(s.dram_lut_bytes);
    out.f64(s.dram_input_bytes);
    out.f64(s.dram_output_bytes);
    out.f64(s.effective_macs);
}

bool
readSimStats(BinReader &in, sim::SimStats &s)
{
    return in.u64(s.total_cycles) && in.u64(s.lookup_cycles) &&
           in.u64(s.stall_lut_cycles) && in.u64(s.stall_index_cycles) &&
           in.u64(s.lut_tile_loads) && in.f64(s.dram_lut_bytes) &&
           in.f64(s.dram_input_bytes) && in.f64(s.dram_output_bytes) &&
           in.f64(s.effective_macs);
}

void
writeSimConfig(BinWriter &out, const sim::SimConfig &c)
{
    out.i64(c.v);
    out.i64(c.c);
    out.i64(c.tn);
    out.i64(c.m_tile);
    out.i64(c.n_imm);
    out.i64(c.n_ccu);
    out.i64(c.lut_entry_bytes);
    out.i64(c.input_bytes);
    out.i64(c.output_bytes);
    out.f64(c.freq_imm_hz);
    out.f64(c.freq_ccm_hz);
    out.f64(c.dram_bytes_per_sec);
}

bool
readSimConfig(BinReader &in, sim::SimConfig &c)
{
    return in.i64(c.v) && in.i64(c.c) && in.i64(c.tn) &&
           in.i64(c.m_tile) && in.i64(c.n_imm) && in.i64(c.n_ccu) &&
           in.i64(c.lut_entry_bytes) && in.i64(c.input_bytes) &&
           in.i64(c.output_bytes) && in.f64(c.freq_imm_hz) &&
           in.f64(c.freq_ccm_hz) && in.f64(c.dram_bytes_per_sec);
}

} // namespace

double
RunArtifacts::totalMacs() const
{
    double macs = 0.0;
    for (const sim::GemmShape &g : gemms)
        macs += g.macs();
    return macs;
}

std::string
RunArtifacts::summary() const
{
    std::ostringstream oss;
    oss << "run '" << workload << "' (v=" << pq.v << ", c=" << pq.c << ")\n";
    if (converted) {
        oss << "  conversion: " << conversion.replaced_layers
            << " layers, accuracy "
            << 100.0 * conversion.baseline_accuracy << "% -> "
            << 100.0 * conversion.final_accuracy << "%\n";
        if (deployed_accuracy >= 0.0)
            oss << "  deployed (quantized LUT) accuracy: "
                << 100.0 * deployed_accuracy << "%\n";
    }
    if (!gemms.empty())
        oss << "  trace: " << gemms.size() << " GEMMs, "
            << totalMacs() * 1e-6 << " MMACs\n";
    if (simulated) {
        oss << "  timing: " << report.total.total_cycles << " cycles, "
            << report.total.seconds(sim_config) * 1e3 << " ms, "
            << report.total.achievedGops(sim_config) << " GOPS, util "
            << 100.0 * report.total.utilization() << "%\n";
    }
    if (has_ppa) {
        oss << "  ppa: " << ppa.area_mm2 << " mm^2, " << ppa.power_mw
            << " mW, peak " << ppa.peak_gops << " GOPS";
        if (energy_mj > 0.0)
            oss << ", energy " << energy_mj << " mJ";
        oss << "\n";
    }
    return oss.str();
}

Status
saveArtifacts(const RunArtifacts &a, const std::string &path)
{
    BinWriter out(path);
    if (!out.ok())
        return Status::ioError("cannot open '" + path + "' for writing");

    out.magic(kMagic);
    out.str(a.workload);
    out.i64(a.pq.v);
    out.i64(a.pq.c);
    out.i64(static_cast<int64_t>(a.pq.metric));
    out.i64(a.pq.kmeans_iters);
    out.u64(a.pq.seed);

    out.u64(a.converted ? 1 : 0);
    out.i64(a.conversion.replaced_layers);
    out.f64(a.conversion.baseline_accuracy);
    out.f64(a.conversion.post_replace_accuracy);
    out.f64(a.conversion.final_accuracy);
    writeTrainResult(out, a.conversion.centroid_stage);
    writeTrainResult(out, a.conversion.joint_stage);
    out.f64(a.deployed_accuracy);

    out.u64(a.gemms.size());
    for (const sim::GemmShape &g : a.gemms)
        writeGemm(out, g);

    out.u64(a.simulated ? 1 : 0);
    writeSimConfig(out, a.sim_config);
    out.u64(a.report.layers.size());
    for (const sim::LayerReport &layer : a.report.layers) {
        writeGemm(out, layer.gemm);
        writeSimStats(out, layer.stats);
        out.f64(layer.cycle_share);
    }
    writeSimStats(out, a.report.total);

    out.u64(a.has_ppa ? 1 : 0);
    out.f64(a.ppa.area_mm2);
    out.f64(a.ppa.power_mw);
    out.f64(a.ppa.peak_gops);
    out.f64(a.ppa.ccm_area_mm2);
    out.f64(a.ppa.imm_area_mm2);
    out.f64(a.ppa.sram_area_mm2);
    out.f64(a.ppa.other_area_mm2);
    out.f64(a.energy_mj);

    if (!out.ok())
        return Status::ioError("write failed for '" + path + "'");
    return Status();
}

Result<RunArtifacts>
loadArtifacts(const std::string &path)
{
    BinReader in(path);
    if (!in.ok())
        return Status::ioError("cannot open '" + path + "' for reading");
    if (!in.magic(kMagic))
        return Status::ioError("'" + path +
                               "' is not a LUT-DLA artifacts file");

    RunArtifacts a;
    uint64_t flag = 0;
    int64_t metric = 0;
    bool good = in.str(a.workload) && in.i64(a.pq.v) && in.i64(a.pq.c) &&
                in.i64(metric) && in.i64(a.pq.kmeans_iters) &&
                in.u64(a.pq.seed);
    if (!good)
        return Status::ioError("truncated header in '" + path + "'");
    a.pq.metric = static_cast<vq::Metric>(metric);

    good = in.u64(flag);
    a.converted = flag != 0;
    good = good && in.i64(a.conversion.replaced_layers) &&
           in.f64(a.conversion.baseline_accuracy) &&
           in.f64(a.conversion.post_replace_accuracy) &&
           in.f64(a.conversion.final_accuracy) &&
           readTrainResult(in, a.conversion.centroid_stage) &&
           readTrainResult(in, a.conversion.joint_stage) &&
           in.f64(a.deployed_accuracy);
    if (!good)
        return Status::ioError("truncated conversion block in '" + path +
                               "'");

    uint64_t count = 0;
    if (!in.u64(count) || count > (1u << 22))
        return Status::ioError("bad GEMM count in '" + path + "'");
    a.gemms.resize(count);
    for (sim::GemmShape &g : a.gemms)
        if (!readGemm(in, g))
            return Status::ioError("truncated GEMM trace in '" + path +
                                   "'");

    if (!in.u64(flag))
        return Status::ioError("truncated timing block in '" + path + "'");
    a.simulated = flag != 0;
    if (!readSimConfig(in, a.sim_config))
        return Status::ioError("truncated sim config in '" + path + "'");
    if (!in.u64(count) || count > (1u << 22))
        return Status::ioError("bad layer count in '" + path + "'");
    a.report.layers.resize(count);
    for (sim::LayerReport &layer : a.report.layers) {
        if (!readGemm(in, layer.gemm) || !readSimStats(in, layer.stats) ||
            !in.f64(layer.cycle_share))
            return Status::ioError("truncated layer report in '" + path +
                                   "'");
    }
    if (!readSimStats(in, a.report.total))
        return Status::ioError("truncated totals in '" + path + "'");

    good = in.u64(flag);
    a.has_ppa = flag != 0;
    good = good && in.f64(a.ppa.area_mm2) && in.f64(a.ppa.power_mw) &&
           in.f64(a.ppa.peak_gops) && in.f64(a.ppa.ccm_area_mm2) &&
           in.f64(a.ppa.imm_area_mm2) && in.f64(a.ppa.sram_area_mm2) &&
           in.f64(a.ppa.other_area_mm2) && in.f64(a.energy_mj);
    if (!good)
        return Status::ioError("truncated PPA block in '" + path + "'");
    return a;
}

} // namespace lutdla::api
