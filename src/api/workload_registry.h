#ifndef LUTDLA_API_WORKLOAD_REGISTRY_H
#define LUTDLA_API_WORKLOAD_REGISTRY_H

/**
 * @file
 * Named-workload registry bridging workloads::model_zoo into the pipeline
 * facade. A workload bundles everything a run might need under one name:
 * the GEMM trace of the real network (for timing) and, for the synthetic
 * substitute tasks, a trainable model + dataset + float-training recipe
 * (for accuracy/conversion runs). `Pipeline::forWorkload("resnet18")`
 * resolves here.
 */

#include <functional>
#include <string>
#include <vector>

#include "api/status.h"
#include "nn/dataset.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "workloads/model_zoo.h"

namespace lutdla::api {

/** One registered workload; unset callbacks mean the stage is unavailable. */
struct WorkloadSpec
{
    std::string name;
    std::string description;
    /** GEMM trace of the (full-scale) network, for timing runs. */
    std::function<workloads::Network()> network;
    /** Trainable substitute model, for conversion runs. */
    std::function<nn::LayerPtr()> model;
    /** Dataset paired with the substitute model. */
    std::function<nn::Dataset()> dataset;
    /** Recommended float pre-training recipe for the substitute. */
    nn::TrainConfig pretrain;
    /** True when this spec can drive a LUTBoost conversion. */
    bool trainable() const { return model != nullptr && dataset != nullptr; }
};

/** Look up a workload. NotFound status lists the known names. */
Result<WorkloadSpec> findWorkload(const std::string &name);

/** All registered names, built-ins first, in registration order. */
std::vector<std::string> workloadNames();

/**
 * Register (or override, by name) a workload. Callers extend the registry
 * with their own serving workloads; built-ins cover the paper's zoo.
 */
void registerWorkload(WorkloadSpec spec);

} // namespace lutdla::api

#endif // LUTDLA_API_WORKLOAD_REGISTRY_H
