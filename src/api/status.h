#ifndef LUTDLA_API_STATUS_H
#define LUTDLA_API_STATUS_H

/**
 * @file
 * Typed error reporting for the public pipeline API.
 *
 * The inner layers follow the gem5 fatal()/panic() convention, which is
 * right for a research library but wrong for a serving-facing facade: a
 * misconfigured request must come back to the caller as data, not take the
 * process down. `Status` carries an error code + human-readable message;
 * `Result<T>` is the standard status-or-value return used by every
 * `PipelineBuilder` terminal.
 */

#include <string>
#include <utility>

#include "util/logging.h"

namespace lutdla::api {

/** Error taxonomy, loosely after absl::Status. */
enum class StatusCode
{
    Ok = 0,
    InvalidArgument,     ///< a supplied value is out of range / malformed
    FailedPrecondition,  ///< a required stage input was never supplied
    NotFound,            ///< named workload/file does not exist
    IoError,             ///< filesystem read/write failed
    Internal,            ///< invariant violation inside the pipeline
    DeadlineExceeded,    ///< request deadline passed before it was served
    ResourceExhausted,   ///< bounded queue full; request shed under overload
    Cancelled            ///< caller cancelled the request before execution
};

/** Printable name of a status code. */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:                 return "OK";
      case StatusCode::InvalidArgument:    return "INVALID_ARGUMENT";
      case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::NotFound:           return "NOT_FOUND";
      case StatusCode::IoError:            return "IO_ERROR";
      case StatusCode::Internal:           return "INTERNAL";
      case StatusCode::DeadlineExceeded:   return "DEADLINE_EXCEEDED";
      case StatusCode::ResourceExhausted:  return "RESOURCE_EXHAUSTED";
      case StatusCode::Cancelled:          return "CANCELLED";
    }
    return "UNKNOWN";
}

/** An error code plus message; default-constructed means success. */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status
    invalidArgument(std::string msg)
    {
        return {StatusCode::InvalidArgument, std::move(msg)};
    }
    static Status
    failedPrecondition(std::string msg)
    {
        return {StatusCode::FailedPrecondition, std::move(msg)};
    }
    static Status
    notFound(std::string msg)
    {
        return {StatusCode::NotFound, std::move(msg)};
    }
    static Status
    ioError(std::string msg)
    {
        return {StatusCode::IoError, std::move(msg)};
    }
    static Status
    internal(std::string msg)
    {
        return {StatusCode::Internal, std::move(msg)};
    }
    static Status
    deadlineExceeded(std::string msg)
    {
        return {StatusCode::DeadlineExceeded, std::move(msg)};
    }
    static Status
    resourceExhausted(std::string msg)
    {
        return {StatusCode::ResourceExhausted, std::move(msg)};
    }
    static Status
    cancelled(std::string msg)
    {
        return {StatusCode::Cancelled, std::move(msg)};
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "INVALID_ARGUMENT: c must be a power of two (got 12)". */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * Status-or-value return type. `T` must be default-constructible (all
 * pipeline artifacts are). Accessing value() on an error status panics —
 * callers must check ok() first.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status))
    {
        LUTDLA_CHECK(!status_.ok(),
                     "Result constructed from an OK status without a value");
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &
    value() const
    {
        LUTDLA_CHECK(ok(), "value() on error Result: ", status_.toString());
        return value_;
    }
    T &
    value()
    {
        LUTDLA_CHECK(ok(), "value() on error Result: ", status_.toString());
        return value_;
    }

    /** Move the value out (for single-consumer call sites). */
    T
    take()
    {
        LUTDLA_CHECK(ok(), "take() on error Result: ", status_.toString());
        return std::move(value_);
    }

    const T &operator*() const { return value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    T value_{};
};

} // namespace lutdla::api

#endif // LUTDLA_API_STATUS_H
