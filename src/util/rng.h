#ifndef LUTDLA_UTIL_RNG_H
#define LUTDLA_UTIL_RNG_H

/**
 * @file
 * Seeded random-number utilities.
 *
 * All stochastic components (dataset synthesis, weight init, k-means init)
 * take an explicit Rng so experiments are reproducible bit-for-bit.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace lutdla {

/** Thin wrapper over a 64-bit Mersenne Twister with convenience draws. */
class Rng
{
  public:
    /** Construct from an explicit seed (default fixed for reproducibility). */
    explicit Rng(uint64_t seed = 0x1ebf00d5) : engine_(seed) {}

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Standard normal draw scaled by `stddev` around `mean`. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Fill `out` with N(mean, stddev) floats. */
    void
    fillGaussian(std::vector<float> &out, float mean, float stddev)
    {
        std::normal_distribution<float> dist(mean, stddev);
        for (auto &x : out)
            x = dist(engine_);
    }

    /** In-place Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /** Expose the engine for std distributions not wrapped here. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace lutdla

#endif // LUTDLA_UTIL_RNG_H
