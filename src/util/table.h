#ifndef LUTDLA_UTIL_TABLE_H
#define LUTDLA_UTIL_TABLE_H

/**
 * @file
 * Aligned ASCII table printer used by every bench binary to render the
 * paper's tables and figure series in a uniform way. Also exports CSV.
 */

#include <string>
#include <vector>

namespace lutdla {

/** A simple column-aligned table with a title and optional footnotes. */
class Table
{
  public:
    /** Create a table titled `title` with the given column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a row of preformatted cells; pads/truncates to column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a footnote line printed under the table. */
    void addNote(std::string note);

    /** Render the aligned table to a string. */
    std::string str() const;

    /** Render as CSV (header row first, notes as trailing comments). */
    std::string csv() const;

    /** Print to stdout. */
    void print() const;

    /** Number formatting helpers shared by benches. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmtKb(double bytes, int precision = 2);
    static std::string fmtRatio(double v, int precision = 1);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

} // namespace lutdla

#endif // LUTDLA_UTIL_TABLE_H
