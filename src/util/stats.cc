#include "util/stats.h"

#include <sstream>

namespace lutdla {

std::string
RunningStats::summary() const
{
    std::ostringstream oss;
    oss << "n=" << n_ << " mean=" << mean() << " std=" << stddev()
        << " min=" << min() << " max=" << max();
    return oss.str();
}

} // namespace lutdla
