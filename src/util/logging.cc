#include "util/logging.h"

namespace lutdla {

namespace {

/** Process-wide threshold; benches default to Warn to keep tables clean. */
LogLevel g_threshold = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
      default:              return "?";
    }
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

namespace detail {

void
emitLog(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace detail

} // namespace lutdla
