#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace lutdla {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::ostringstream oss;
        oss << "|";
        for (size_t i = 0; i < headers_.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            oss << " " << cell << std::string(widths[i] - cell.size(), ' ')
                << " |";
        }
        return oss.str();
    };

    size_t total = 1;
    for (size_t w : widths)
        total += w + 3;

    std::ostringstream oss;
    oss << "== " << title_ << " ==\n";
    oss << renderRow(headers_) << "\n";
    oss << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        oss << renderRow(row) << "\n";
    for (const auto &note : notes_)
        oss << "  * " << note << "\n";
    return oss.str();
}

std::string
Table::csv() const
{
    std::ostringstream oss;
    auto join = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            oss << (i ? "," : "") << row[i];
        oss << "\n";
    };
    join(headers_);
    for (const auto &row : rows_)
        join(row);
    for (const auto &note : notes_)
        oss << "# " << note << "\n";
    return oss.str();
}

void
Table::print() const
{
    std::cout << str() << std::endl;
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtKb(double bytes, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fKB", precision, bytes / 1024.0);
    return buf;
}

std::string
Table::fmtRatio(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

} // namespace lutdla
