#include "util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace lutdla::util {

namespace {

SimdLevel
detect()
{
    SimdLevel best = SimdLevel::Generic;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
        best = SimdLevel::Avx2;
    // The shuffle gather needs BW (byte shuffles and int16 lanes on zmm);
    // the encode argmin needs F. Require both so one level tag covers the
    // whole 512-bit kernel set.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw")) {
        best = SimdLevel::Avx512;
        // The dot-accumulate gather additionally needs VPERMB (VBMI) and
        // VPDPBUSD (VNNI) — Ice Lake and newer.
        if (__builtin_cpu_supports("avx512vbmi") &&
            __builtin_cpu_supports("avx512vnni"))
            best = SimdLevel::Avx512Vnni;
    }
#endif
    const char *cap = std::getenv("LUTDLA_SIMD");
    if (cap != nullptr) {
        if (std::strcmp(cap, "generic") == 0)
            return SimdLevel::Generic;
        if (std::strcmp(cap, "avx2") == 0 && best >= SimdLevel::Avx2)
            return SimdLevel::Avx2;
        if (std::strcmp(cap, "avx512") == 0 && best >= SimdLevel::Avx512)
            return SimdLevel::Avx512;
        // Unknown or uncapping values keep the detected level: the
        // override can only disable features the CPU has, never enable
        // ones it lacks.
    }
    return best;
}

} // namespace

SimdLevel
simdLevel()
{
    static const SimdLevel level = detect();
    return level;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx512Vnni:
        return "avx512-vnni";
      case SimdLevel::Avx512:
        return "avx512";
      case SimdLevel::Avx2:
        return "avx2";
      default:
        return "generic";
    }
}

} // namespace lutdla::util
