#ifndef LUTDLA_UTIL_LOGGING_H
#define LUTDLA_UTIL_LOGGING_H

/**
 * @file
 * Minimal logging and error-reporting helpers.
 *
 * Follows the gem5 fatal()/panic() split: fatal() is a user error (bad
 * configuration, impossible request) and exits cleanly; panic() is an
 * internal invariant violation and aborts.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lutdla {

/** Log severity levels, ordered by verbosity. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/** Global log threshold; messages below it are suppressed. */
LogLevel logThreshold();

/** Set the global log threshold. */
void setLogThreshold(LogLevel level);

namespace detail {

/** Emit one formatted log line to stderr if `level` passes the threshold. */
void emitLog(LogLevel level, const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Informational message for normal operation. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Debug chatter, off by default. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emitLog(LogLevel::Debug,
                    detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort on a user-caused error (bad parameters, impossible configuration).
 * Mirrors gem5's fatal(): prints and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog(LogLevel::Error,
                    detail::concat("fatal: ", std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Abort on an internal invariant violation (a bug in this library).
 * Mirrors gem5's panic(): prints and calls abort() so a core is produced.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog(LogLevel::Error,
                    detail::concat("panic: ", std::forward<Args>(args)...));
    std::abort();
}

/** Assert-like check that survives NDEBUG; panics with a message on failure. */
#define LUTDLA_CHECK(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::lutdla::panic("check failed: ", #cond, " @ ", __FILE__, ":",    \
                            __LINE__, " ", ##__VA_ARGS__);                    \
        }                                                                     \
    } while (0)

} // namespace lutdla

#endif // LUTDLA_UTIL_LOGGING_H
