#ifndef LUTDLA_UTIL_CPU_FEATURES_H
#define LUTDLA_UTIL_CPU_FEATURES_H

/**
 * @file
 * Runtime CPU-feature detection for the serving kernel dispatch.
 *
 * The SIMD fast paths (the AVX-512 encode argmin, the shuffle-based INT8
 * gather) used to be compile-time gated behind the -march=native TU flags,
 * which meant a binary built on one host silently lost (or illegally
 * used) them on another. simdLevel() probes cpuid once at first use and
 * the kernels in lutboost/kernels_simd.h are compiled with per-function
 * target attributes, so one binary carries every variant and picks the
 * best the *running* CPU supports. The chosen level is recorded in every
 * serving plan (serve::planSummary) so deployments can see exactly which
 * data plane they got.
 *
 * LUTDLA_SIMD=generic|avx2|avx512 (environment) caps the detected level —
 * useful for A/B-ing kernel variants and for exercising the fallback
 * paths on capable hardware.
 */

namespace lutdla::util {

/** SIMD capability tier the kernel dispatch selects between. */
enum class SimdLevel
{
    Generic,    ///< no usable vector extensions (portable scalar kernels)
    Avx2,       ///< AVX2: 256-bit shuffle gather + encode fast paths
    Avx512,     ///< AVX-512F/BW: 512-bit shuffle gather + encode paths
    Avx512Vnni  ///< + VBMI/VNNI: VPERMB/VPDPBUSD dot-accumulate gather
};

/**
 * Best SIMD level the running CPU supports, capped by the LUTDLA_SIMD
 * environment override. Probed once; subsequent calls are a load.
 */
SimdLevel simdLevel();

/** Stable lower-case name for a level ("generic" / "avx2" / "avx512"). */
const char *simdLevelName(SimdLevel level);

} // namespace lutdla::util

#endif // LUTDLA_UTIL_CPU_FEATURES_H
