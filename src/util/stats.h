#ifndef LUTDLA_UTIL_STATS_H
#define LUTDLA_UTIL_STATS_H

/**
 * @file
 * Streaming summary statistics (count/mean/min/max/variance) used by the
 * simulator's per-module counters and by accuracy sweeps.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace lutdla {

/** Welford-style streaming accumulator for scalar samples. */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    /** Number of samples folded so far. */
    uint64_t count() const { return n_; }
    /** Running sum of all samples. */
    double sum() const { return sum_; }
    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }
    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Unbiased sample variance (0 with <2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Reset to the empty state. */
    void
    reset()
    {
        *this = RunningStats();
    }

    /** One-line human-readable rendering. */
    std::string summary() const;

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace lutdla

#endif // LUTDLA_UTIL_STATS_H
