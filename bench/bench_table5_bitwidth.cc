/**
 * @file
 * Table V: accuracy vs equivalent bitwidth (ceil(log2 c)/v) for the
 * MiniResNet-20 substitute, sweeping v in {9, 6, 3} x c in {8, 16} under
 * L2 and L1 similarity.
 *
 * Expected shape (paper, ResNet20/CIFAR10): accuracy rises with the
 * equivalent bitwidth (0.3b -> 1.3b), L1 a touch under L2, with occasional
 * non-monotonic cells from clustering outliers.
 */

#include <cstdio>

#include "bench_common.h"

using namespace lutdla;
using namespace lutdla::bench;

int
main()
{
    nn::ShapeImageConfig dcfg;
    dcfg.classes = 8;
    dcfg.train_per_class = 40;
    dcfg.test_per_class = 12;
    dcfg.noise = 0.3;
    const nn::Dataset ds = nn::makeShapeImages(dcfg);
    auto factory = [] { return nn::makeMiniResNet(1, 8, 8); };

    const struct
    {
        int64_t v, c;
        const char *paper_bits;
        const char *paper_l2;
        const char *paper_l1;
    } cells[] = {
        {9, 8, "0.3", "87.78", "87.18"},  {9, 16, "0.4", "89.45", "88.47"},
        {6, 8, "0.5", "89.18", "87.58"},  {6, 16, "0.7", "90.18", "88.53"},
        {3, 8, "1.0", "90.48", "89.08"},  {3, 16, "1.3", "90.78", "89.48"},
    };

    Table t("Table V: bitwidth and similarity evaluation (MiniResNet20 "
            "substitute)",
            {"equiv bits", "v", "c", "L2", "L1", "(paper L2)",
             "(paper L1)"});
    double baseline = 0.0;
    for (const auto &cell : cells) {
        double acc[2];
        int idx = 0;
        for (vq::Metric metric : {vq::Metric::L2, vq::Metric::L1}) {
            auto opts = benchConvertOptions(cell.v, cell.c, metric, 2, 4);
            const auto rep = runMultistage(factory, ds, 8, opts);
            acc[idx++] = rep.final_accuracy;
            baseline = rep.baseline_accuracy;
        }
        vq::PQConfig pq;
        pq.v = cell.v;
        pq.c = cell.c;
        t.addRow({Table::fmt(pq.equivalentBits(), 2) + "b (" +
                      cell.paper_bits + "b)",
                  std::to_string(cell.v), std::to_string(cell.c),
                  pct(acc[0]), pct(acc[1]), cell.paper_l2,
                  cell.paper_l1});
    }
    t.addNote("float baseline: " + pct(baseline) +
              " (paper baseline 91.73 on CIFAR-10)");
    t.addNote("expected trend: accuracy rises with equivalent bits; "
              "L1 slightly under L2");
    t.print();
    return 0;
}
