/**
 * @file
 * Figure 7: multistage vs single-stage training-loss curves on the
 * transformer substitute (paper: BERT-base, v=4, c=64). Multistage drops
 * the loss sharply during the centroid-calibration iterations and
 * converges faster and lower during joint training.
 */

#include <cstdio>

#include "bench_common.h"

using namespace lutdla;
using namespace lutdla::bench;

namespace {

/** Downsample a loss trace to `points` evenly spaced samples. */
std::vector<double>
sampleTrace(const std::vector<double> &trace, size_t points)
{
    std::vector<double> out;
    if (trace.empty())
        return out;
    for (size_t i = 0; i < points; ++i) {
        const size_t idx = i * (trace.size() - 1) / (points - 1);
        out.push_back(trace[idx]);
    }
    return out;
}

} // namespace

int
main()
{
    nn::SequenceTaskConfig scfg;
    scfg.classes = 4;
    scfg.train_per_class = 40;
    scfg.test_per_class = 12;
    const nn::Dataset ds = nn::makeSequenceTask(scfg);

    auto factory = [] {
        nn::TinyTransformerConfig tc;
        tc.classes = 4;
        return nn::makeTinyTransformer(tc);
    };
    const int pre_epochs = 12;

    auto opts = benchConvertOptions(4, 64, vq::Metric::L2, 3, 6);

    // Multistage run: concatenate centroid-stage and joint-stage traces.
    nn::LayerPtr multi_model = factory();
    {
        nn::TrainConfig pre;
        pre.epochs = pre_epochs;
        pre.lr = 2e-3;
        pre.use_adam = true;
        nn::Trainer(multi_model, ds, pre).train();
    }
    const auto multi = lutboost::convert(multi_model, ds, opts);
    std::vector<double> multi_trace = multi.centroid_stage.iter_losses;
    multi_trace.insert(multi_trace.end(),
                       multi.joint_stage.iter_losses.begin(),
                       multi.joint_stage.iter_losses.end());

    // Single-stage run with the same total budget.
    const auto single = runSingleStage(
        factory, ds, pre_epochs, opts,
        lutboost::SingleStageMode::JointFromRandom);

    const size_t points = 12;
    const auto ms = sampleTrace(multi_trace, points);
    const auto ss = sampleTrace(single.joint_stage.iter_losses, points);

    Table t("Fig.7: training loss, single-stage vs LUTBoost multistage "
            "(v=4, c=64)",
            {"progress", "single-stage ('previous work')",
             "multistage (ours)"});
    for (size_t i = 0; i < points; ++i) {
        const int percent = static_cast<int>(100 * i / (points - 1));
        t.addRow({std::to_string(percent) + "%",
                  Table::fmt(i < ss.size() ? ss[i] : 0.0, 3),
                  Table::fmt(i < ms.size() ? ms[i] : 0.0, 3)});
    }
    t.addNote("final accuracy: single " + pct(single.final_accuracy) +
              "%, multi " + pct(multi.final_accuracy) +
              "% (baseline " + pct(multi.baseline_accuracy) + "%)");
    t.addNote("paper shape: multistage loss falls within the first "
              "calibration iterations and stays below single-stage");
    t.print();
    return 0;
}
