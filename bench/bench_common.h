#ifndef LUTDLA_BENCH_BENCH_COMMON_H
#define LUTDLA_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's tables
 * and figures. Accuracy benches run the full LUTBoost pipeline on the
 * synthetic substitute workloads (see DESIGN.md) with deliberately small
 * epoch budgets so the whole bench suite completes in minutes.
 */

#include <cstdio>
#include <functional>
#include <string>

#include "lutboost/converter.h"
#include "nn/dataset.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "util/table.h"

namespace lutdla::bench {

/** Percentage formatting for accuracy cells. */
inline std::string
pct(double fraction, int precision = 1)
{
    return Table::fmt(100.0 * fraction, precision);
}

/** A reusable "train a float model" step. */
inline nn::LayerPtr
trainFloatModel(const std::function<nn::LayerPtr()> &factory,
                const nn::Dataset &ds, int epochs, double lr = 0.05,
                bool adam = false)
{
    nn::LayerPtr model = factory();
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = lr;
    cfg.use_adam = adam;
    nn::Trainer(model, ds, cfg).train();
    return model;
}

/** Standard conversion options for the accuracy benches. */
inline lutboost::ConvertOptions
benchConvertOptions(int64_t v, int64_t c, vq::Metric metric,
                    int centroid_epochs = 2, int joint_epochs = 5)
{
    lutboost::ConvertOptions opts;
    opts.pq.v = v;
    opts.pq.c = c;
    opts.pq.metric = metric;
    opts.recon_penalty_centroid = 0.05;
    opts.recon_penalty_joint = 0.05;
    opts.centroid_stage.epochs = centroid_epochs;
    opts.joint_stage.epochs = joint_epochs;
    return opts;
}

/** One multistage conversion of a freshly trained model. */
inline lutboost::ConversionReport
runMultistage(const std::function<nn::LayerPtr()> &factory,
              const nn::Dataset &ds, int pre_epochs,
              const lutboost::ConvertOptions &opts,
              nn::LayerPtr *out_model = nullptr)
{
    nn::LayerPtr model = trainFloatModel(factory, ds, pre_epochs);
    auto report = lutboost::convert(model, ds, opts);
    if (out_model)
        *out_model = model;
    return report;
}

/** One single-stage conversion with an equal total epoch budget. */
inline lutboost::ConversionReport
runSingleStage(const std::function<nn::LayerPtr()> &factory,
               const nn::Dataset &ds, int pre_epochs,
               const lutboost::ConvertOptions &opts,
               lutboost::SingleStageMode mode)
{
    nn::LayerPtr model = trainFloatModel(factory, ds, pre_epochs);
    const int budget =
        opts.centroid_stage.epochs + opts.joint_stage.epochs;
    return lutboost::singleStageConvert(model, ds, opts, mode, budget);
}

/** Evaluate a converted model under a LUT precision setting. */
inline double
evalWithPrecision(const nn::LayerPtr &model, const nn::Dataset &ds,
                  vq::LutPrecision precision)
{
    for (auto *layer : lutboost::findLutLayers(model)) {
        layer->setPrecision(precision);
        layer->refreshInferenceLut();
    }
    nn::Trainer probe(model, ds, {});
    const double acc = probe.evaluate(ds.test_x, ds.test_y);
    for (auto *layer : lutboost::findLutLayers(model))
        layer->clearInferenceLut();
    return acc;
}

} // namespace lutdla::bench

#endif // LUTDLA_BENCH_BENCH_COMMON_H
