#ifndef LUTDLA_BENCH_BENCH_COMMON_H
#define LUTDLA_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's tables
 * and figures, built on the api::Pipeline facade. Accuracy benches run the
 * full LUTBoost pipeline on the synthetic substitute workloads (see
 * DESIGN.md) with deliberately small epoch budgets so the whole bench
 * suite completes in minutes.
 */

#include <cstdio>
#include <functional>
#include <string>

#include "api/lutdla.h"
#include "nn/models.h"
#include "util/table.h"

namespace lutdla::bench {

/** Percentage formatting for accuracy cells. */
inline std::string
pct(double fraction, int precision = 1)
{
    return Table::fmt(100.0 * fraction, precision);
}

/** A reusable "train a float model" step. */
inline nn::LayerPtr
trainFloatModel(const std::function<nn::LayerPtr()> &factory,
                const nn::Dataset &ds, int epochs, double lr = 0.05,
                bool adam = false)
{
    nn::TrainConfig cfg =
        adam ? nn::TrainConfig::adam(epochs, lr)
             : nn::TrainConfig::sgd(epochs, lr);
    nn::LayerPtr model = factory();
    nn::Trainer(model, ds, cfg).train();
    return model;
}

/** Standard conversion options for the accuracy benches. */
inline lutboost::ConvertOptions
benchConvertOptions(int64_t v, int64_t c, vq::Metric metric,
                    int centroid_epochs = 2, int joint_epochs = 5)
{
    lutboost::ConvertOptions opts;
    opts.pq.v = v;
    opts.pq.c = c;
    opts.pq.metric = metric;
    opts.recon_penalty_centroid = 0.05;
    opts.recon_penalty_joint = 0.05;
    opts.centroid_stage.epochs = centroid_epochs;
    opts.joint_stage.epochs = joint_epochs;
    return opts;
}

/** Fail hard on pipeline misconfiguration inside a bench. */
inline api::RunArtifacts
mustRun(api::Result<api::RunArtifacts> run)
{
    if (!run.ok())
        fatal("bench pipeline failed: ", run.status().toString());
    return run.take();
}

/** One multistage conversion of a freshly trained model (facade run). */
inline lutboost::ConversionReport
runMultistage(const std::function<nn::LayerPtr()> &factory,
              const nn::Dataset &ds, int pre_epochs,
              const lutboost::ConvertOptions &opts,
              nn::LayerPtr *out_model = nullptr)
{
    auto builder = api::Pipeline::builder()
                       .tag("bench-multistage")
                       .model(factory())
                       .dataset(ds)
                       .pretrain(nn::TrainConfig::sgd(pre_epochs, 0.05))
                       .convert(opts);
    const api::RunArtifacts artifacts = mustRun(builder.report());
    if (out_model)
        *out_model = builder.convertedModel();
    return artifacts.conversion;
}

/** One single-stage conversion with an equal total epoch budget. */
inline lutboost::ConversionReport
runSingleStage(const std::function<nn::LayerPtr()> &factory,
               const nn::Dataset &ds, int pre_epochs,
               const lutboost::ConvertOptions &opts,
               lutboost::SingleStageMode mode)
{
    const int budget =
        opts.centroid_stage.epochs + opts.joint_stage.epochs;
    auto builder = api::Pipeline::builder()
                       .tag("bench-singlestage")
                       .model(factory())
                       .dataset(ds)
                       .pretrain(nn::TrainConfig::sgd(pre_epochs, 0.05))
                       .convertSingleStage(opts, mode, budget);
    return mustRun(builder.report()).conversion;
}

/** Evaluate a converted model under a LUT precision setting. */
inline double
evalWithPrecision(const nn::LayerPtr &model, const nn::Dataset &ds,
                  vq::LutPrecision precision)
{
    const api::RunArtifacts artifacts =
        mustRun(api::Pipeline::builder()
                    .tag("bench-precision")
                    .model(model)
                    .dataset(ds)
                    .deployPrecision(precision)
                    .report());
    for (auto *layer : lutboost::findLutLayers(model))
        layer->clearInferenceLut();
    return artifacts.deployed_accuracy;
}

} // namespace lutdla::bench

#endif // LUTDLA_BENCH_BENCH_COMMON_H
