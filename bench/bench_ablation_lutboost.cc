/**
 * @file
 * Ablation study of LUTBoost's ingredients (the design choices Sec. V
 * argues for), on the MiniResNet-20 substitute:
 *
 *   full          - k-means calibration + centroid stage + joint stage
 *                   with reconstruction loss,
 *   no-recon      - full pipeline but Lre penalty = 0,
 *   no-calib      - random centroid init, stages 2+3 unchanged,
 *   no-stage2     - calibration then joint only (no centroid-only stage),
 *   single-stage  - random centroids + joint only (the prior-work recipe).
 *
 * Expected: every ablation costs accuracy; dropping calibration or the
 * centroid stage hurts most, reproducing the paper's argument that
 * weights otherwise overfit to suboptimal centroids.
 */

#include <cstdio>

#include "bench_common.h"

using namespace lutdla;
using namespace lutdla::bench;

int
main()
{
    nn::ShapeImageConfig dcfg;
    dcfg.classes = 8;
    dcfg.train_per_class = 40;
    dcfg.test_per_class = 12;
    dcfg.noise = 0.35;
    const nn::Dataset ds = nn::makeShapeImages(dcfg);
    auto factory = [] { return nn::makeMiniResNet(1, 8, 8); };
    const int pre = 8;

    Table t("LUTBoost ablation (MiniResNet20 substitute, v=4, c=16, L2)",
            {"variant", "accuracy (%)", "drop vs full"});

    // Full pipeline.
    const auto full = runMultistage(
        factory, ds, pre, benchConvertOptions(4, 16, vq::Metric::L2, 2, 4));

    // No reconstruction loss.
    auto opts_norecon = benchConvertOptions(4, 16, vq::Metric::L2, 2, 4);
    opts_norecon.recon_penalty_centroid = 0.0;
    opts_norecon.recon_penalty_joint = 0.0;
    const auto norecon = runMultistage(factory, ds, pre, opts_norecon);

    // No calibration: random centroids, then stages 2+3. Emulated by
    // replacing operators manually and skipping calibrateCentroids.
    double nocalib_acc = 0.0;
    {
        nn::LayerPtr model = trainFloatModel(factory, ds, pre);
        auto opts = benchConvertOptions(4, 16, vq::Metric::L2, 2, 4);
        lutboost::replaceOperators(model, opts);
        for (auto *layer : lutboost::findLutLayers(model))
            layer->setReconPenalty(opts.recon_penalty_centroid);
        {
            nn::Trainer trainer(model, ds, opts.centroid_stage);
            std::vector<nn::Parameter *> cents;
            for (auto *layer : lutboost::findLutLayers(model))
                cents.push_back(&layer->centroids());
            trainer.setTrainableParams(cents);
            trainer.train();
        }
        {
            nn::Trainer trainer(model, ds, opts.joint_stage);
            trainer.train();
        }
        for (auto *layer : lutboost::findLutLayers(model))
            layer->setReconPenalty(0.0);
        nn::Trainer probe(model, ds, {});
        nocalib_acc = probe.evaluate(ds.test_x, ds.test_y);
    }

    // No centroid-only stage: calibrate, then joint directly.
    double nostage2_acc = 0.0;
    {
        nn::LayerPtr model = trainFloatModel(factory, ds, pre);
        auto opts = benchConvertOptions(4, 16, vq::Metric::L2, 0, 6);
        lutboost::replaceOperators(model, opts);
        lutboost::calibrateCentroids(model, ds, opts);
        for (auto *layer : lutboost::findLutLayers(model))
            layer->setReconPenalty(opts.recon_penalty_joint);
        nn::Trainer trainer(model, ds, opts.joint_stage);
        trainer.train();
        for (auto *layer : lutboost::findLutLayers(model))
            layer->setReconPenalty(0.0);
        nn::Trainer probe(model, ds, {});
        nostage2_acc = probe.evaluate(ds.test_x, ds.test_y);
    }

    // Single-stage prior-work recipe.
    const auto single = runSingleStage(
        factory, ds, pre, benchConvertOptions(4, 16, vq::Metric::L2, 2, 4),
        lutboost::SingleStageMode::JointFromRandom);

    auto row = [&](const char *name, double acc) {
        t.addRow({name, pct(acc),
                  Table::fmt(100.0 * (full.final_accuracy - acc), 1)});
    };
    row("full LUTBoost", full.final_accuracy);
    row("no reconstruction loss", norecon.final_accuracy);
    row("no k-means calibration", nocalib_acc);
    row("no centroid-only stage", nostage2_acc);
    row("single-stage (prior work)", single.final_accuracy);
    t.addNote("float baseline " + pct(full.baseline_accuracy) + "%");
    t.print();
    return 0;
}
