/**
 * @file
 * Table IV: accuracy of LUT-based models across the CNN zoo under
 * FP32+FP32 and BF16+INT8, with L2 and L1 similarity, against the float
 * baseline. Synthetic substitutes per DESIGN.md: MiniResNet / VGG-style /
 * LeNet-style on the shape-image task, MLP on the Gaussian-mixture task.
 *
 * Expected shape (paper): drops of ~0.1-3.1% (L2) and ~0.1-3.4% (L1);
 * BF16+INT8 costs <1% extra.
 */

#include <cstdio>

#include "bench_common.h"

using namespace lutdla;
using namespace lutdla::bench;

int
main()
{
    nn::ShapeImageConfig icfg;
    icfg.classes = 8;
    icfg.train_per_class = 40;
    icfg.test_per_class = 12;
    icfg.noise = 0.3;
    const nn::Dataset images = nn::makeShapeImages(icfg);

    nn::GaussianMixtureConfig gcfg;
    gcfg.classes = 10;
    gcfg.dim = 32;
    gcfg.train_per_class = 40;
    gcfg.test_per_class = 12;
    const nn::Dataset mixture = nn::makeGaussianMixture(gcfg);

    struct ModelSpec
    {
        const char *name;
        const char *dataset_name;
        const nn::Dataset *ds;
        std::function<nn::LayerPtr()> factory;
        int pre_epochs;
    };
    const ModelSpec specs[] = {
        {"MiniResNet20", "shapes-8", &images,
         [] { return nn::makeMiniResNet(1, 8, 8); }, 8},
        {"VGG-style", "shapes-8", &images,
         [] { return nn::makeVggStyle(8); }, 8},
        {"LeNet-style", "shapes-8", &images,
         [] { return nn::makeLeNetStyle(8); }, 8},
        {"MLP-768", "mixture-10", &mixture,
         [] { return nn::makeMlp(32, {24}, 10); }, 10},
    };

    Table t("Table IV: accuracy of LUT-based models (v=4, c=16)",
            {"model", "dataset", "baseline", "FP32 L2", "FP32 L1",
             "BF16+INT8 L2", "BF16+INT8 L1"});
    for (const auto &spec : specs) {
        std::vector<std::string> row{spec.name, spec.dataset_name};
        double baseline = 0.0;
        std::string fp32[2], bf16[2];
        int idx = 0;
        for (vq::Metric metric : {vq::Metric::L2, vq::Metric::L1}) {
            auto opts = benchConvertOptions(4, 16, metric, 2, 4);
            nn::LayerPtr model;
            const auto rep = runMultistage(spec.factory, *spec.ds,
                                           spec.pre_epochs, opts, &model);
            baseline = rep.baseline_accuracy;
            fp32[idx] = pct(rep.final_accuracy);
            bf16[idx] = pct(evalWithPrecision(
                model, *spec.ds, vq::LutPrecision{true, true}));
            ++idx;
        }
        row.push_back(pct(baseline));
        row.push_back(fp32[0]);
        row.push_back(fp32[1]);
        row.push_back(bf16[0]);
        row.push_back(bf16[1]);
        t.addRow(row);
    }
    t.addNote("paper shape: L2 drop 0.1-3.1%, L1 drop 0.1-3.4%, BF16+INT8 "
              "costs <1% extra while cutting LUT storage 4x");
    t.print();
    return 0;
}
