/**
 * @file
 * Table VIII: PPA comparison against published accelerators. Published
 * rows are quoted as printed in the paper; LUT-DLA designs are evaluated
 * by our analytical PPA model (arithmetic library + SRAM model at 28 nm).
 * Expected shape: the three LUT-DLA designs lead both efficiency columns,
 * with Design3 (Fit) on top, and gains of roughly 1.4-7x in power
 * efficiency and 1.5-146x in area efficiency over the baselines.
 */

#include <cstdio>

#include "hw/accel.h"
#include "hw/soa_db.h"
#include "util/table.h"

using namespace lutdla;
using namespace lutdla::hw;

int
main()
{
    ArithLibrary lib(tech28());
    SramModel sram(tech28());

    Table t("Table VIII: comparison with other accelerators",
            {"design", "tech(nm)", "freq(MHz)", "area(mm^2)", "power(mW)",
             "perf(GOPS)", "GOPS/mm^2", "GOPS/mW"});
    for (const auto &spec : publishedAccelerators()) {
        t.addRow({spec.name, Table::fmt(spec.tech_nm, 0),
                  Table::fmt(spec.freq_mhz, 0),
                  Table::fmt(spec.area_mm2, 2),
                  Table::fmt(spec.power_mw, 1),
                  Table::fmt(spec.perf_gops, 0),
                  Table::fmt(spec.scaledAreaEff(tech28()), 1),
                  Table::fmt(spec.scaledPowerEff(tech28()), 2)});
    }

    double min_area_eff = 1e30, max_area_eff = 0.0;
    double min_pow_eff = 1e30, max_pow_eff = 0.0;
    for (const auto &spec : publishedAccelerators()) {
        min_area_eff = std::min(min_area_eff,
                                spec.scaledAreaEff(tech28()));
        max_area_eff = std::max(max_area_eff,
                                spec.scaledAreaEff(tech28()));
        min_pow_eff = std::min(min_pow_eff,
                               spec.scaledPowerEff(tech28()));
        max_pow_eff = std::max(max_pow_eff,
                               spec.scaledPowerEff(tech28()));
    }

    const LutDlaDesign designs[] = {design1Tiny(), design2Large(),
                                    design3Fit()};
    const char *paper_area[] = {"0.755", "1.701", "3.64"};
    const char *paper_power[] = {"219.57", "314.975", "496.4"};
    const char *paper_perf[] = {"460.8", "1228.8", "2764.8"};
    double best_area_eff = 0.0, best_pow_eff = 0.0;
    for (size_t i = 0; i < 3; ++i) {
        const AccelPpa ppa = evaluateDesign(lib, sram, designs[i]);
        best_area_eff = std::max(best_area_eff, ppa.areaEfficiency());
        best_pow_eff = std::max(best_pow_eff, ppa.powerEfficiency());
        t.addRow({designs[i].name, "28", "300",
                  Table::fmt(ppa.area_mm2, 3) + " (" + paper_area[i] +
                      ")",
                  Table::fmt(ppa.power_mw, 1) + " (" + paper_power[i] +
                      ")",
                  Table::fmt(ppa.peak_gops, 1) + " (" + paper_perf[i] +
                      ")",
                  Table::fmt(ppa.areaEfficiency(), 1),
                  Table::fmt(ppa.powerEfficiency(), 2)});
    }
    t.addNote("published rows quoted from the paper; efficiencies scaled "
              "to 28nm via our Stillmaker-style model");
    t.addNote("LUT-DLA rows computed by our PPA model; (paper) = Cadence "
              "Genus synthesis values from the paper");
    t.print();

    Table s("Table VIII headline gains (LUT-DLA best vs baselines)",
            {"quantity", "paper claim", "ours"});
    s.addRow({"power-efficiency gain", "1.4 - 7.0x",
              Table::fmtRatio(best_pow_eff / max_pow_eff, 1) + " - " +
                  Table::fmtRatio(best_pow_eff / min_pow_eff, 1)});
    s.addRow({"area-efficiency gain", "1.5 - 146.1x",
              Table::fmtRatio(best_area_eff / max_area_eff, 1) + " - " +
                  Table::fmtRatio(best_area_eff / min_area_eff, 1)});
    s.print();
    return 0;
}
