/**
 * @file
 * Figure 9: dPE area and power. Left panel: metric (L2/L1/Chebyshev) and
 * precision (FP32/FP16) at v=8. Right panel: hardware overhead vs vector
 * length (v = 4/8/16, Chebyshev/L1/L2).
 *
 * Expected shape: L2 > L1 > Chebyshev in both area and power; FP16 well
 * under FP32; cost grows roughly linearly in v with a mild superlinear
 * reduction-tree term.
 */

#include <cstdio>

#include "hw/dpe.h"
#include "util/table.h"

using namespace lutdla;
using namespace lutdla::hw;

namespace {

/** Power (mW) of one dPE comparing every cycle at 300 MHz. */
double
dpePowerMw(const UnitCost &cost)
{
    return cost.energy_pj * 300e6 * 1e-9;
}

} // namespace

int
main()
{
    ArithLibrary lib(tech28());

    Table left("Fig.9 (left): dPE cost by metric and precision, v=8",
               {"metric", "format", "area(um^2)", "power(mW @300MHz)"});
    for (vq::Metric m :
         {vq::Metric::L2, vq::Metric::L1, vq::Metric::Chebyshev}) {
        for (NumFormat f : {NumFormat::Fp32, NumFormat::Fp16,
                            NumFormat::Bf16}) {
            DpeConfig cfg{8, m, f};
            const UnitCost cost = dpeCost(lib, cfg);
            left.addRow({vq::metricName(m), formatName(f),
                         Table::fmt(cost.area_um2, 0),
                         Table::fmt(dpePowerMw(cost), 4)});
        }
    }
    left.addNote("paper shape: L2 > L1 > Chebyshev; FP16 < FP32");
    left.print();

    Table right("Fig.9 (right): dPE cost vs vector length",
                {"v", "metric", "area(um^2)", "power(mW @300MHz)"});
    for (int64_t v : {4, 8, 16}) {
        for (vq::Metric m :
             {vq::Metric::Chebyshev, vq::Metric::L1, vq::Metric::L2}) {
            DpeConfig cfg{v, m, NumFormat::Fp16};
            const UnitCost cost = dpeCost(lib, cfg);
            right.addRow({std::to_string(v), vq::metricName(m),
                          Table::fmt(cost.area_um2, 0),
                          Table::fmt(dpePowerMw(cost), 4)});
        }
    }
    right.addNote("approximately linear growth in v; reduction-tree "
                  "wiring adds ~12%/doubling beyond 4 lanes");
    right.print();

    // Relative savings headline.
    const UnitCost l2 = dpeCost(lib, {8, vq::Metric::L2, NumFormat::Fp32});
    const UnitCost l1 = dpeCost(lib, {8, vq::Metric::L1, NumFormat::Fp32});
    const UnitCost ch =
        dpeCost(lib, {8, vq::Metric::Chebyshev, NumFormat::Fp32});
    Table s("Fig.9 summary: savings vs L2 (FP32, v=8)",
            {"metric", "area saving", "power saving"});
    s.addRow({"L1", Table::fmtRatio(l2.area_um2 / l1.area_um2, 2),
              Table::fmtRatio(l2.energy_pj / l1.energy_pj, 2)});
    s.addRow({"Chebyshev", Table::fmtRatio(l2.area_um2 / ch.area_um2, 2),
              Table::fmtRatio(l2.energy_pj / ch.energy_pj, 2)});
    s.print();
    return 0;
}
