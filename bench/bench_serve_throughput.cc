/**
 * @file
 * Serving throughput sweep: threads x max_batch on the resnet18 registry
 * workload (trace-synthesized frozen LUT model), against single-thread
 * single-row baselines.
 *
 * Two baselines are reported:
 *   - "reference": single-row serving the way the repo did it before the
 *     serving engine existed — per-row ProductQuantizer::encode +
 *     LookupTable::lookupGemm per layer. This is the status quo the engine
 *     replaces and the acceptance bar: the batched engine must beat it by
 *     >= 3x rows/s.
 *   - "arena 1-row": the new row-blocked arena kernel driven one row at a
 *     time, isolating how much of the win comes from batching vs from the
 *     kernel itself.
 *
 * The win comes from the arena kernel's cache behavior: a batch loads each
 * subspace's table bank into cache once and amortizes it across every row
 * in the block, where row-at-a-time serving re-streams the multi-megabyte
 * table set for every single row. Worker threads add on multi-core hosts
 * (this bench also sweeps them; on a single-core host they are ~neutral).
 *
 * A second section tracks CNN serving: a frozen LeNet-style conv chain
 * (conv -> pool -> flatten -> linear, the lenet-shapes workload model)
 * lowered onto the serving stage graph and driven with flattened 12x12
 * image rows, so the im2col + arena conv path has a rows/s number from
 * day one.
 *
 * Run: ./build/bench/bench_serve_throughput   (takes ~2 min: it builds the
 * 91 MB resnet18 table set twice, once per implementation)
 *   LUTDLA_SERVE_ROWS=N   override rows per configuration (default 192)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "bench_common.h"
#include "lutboost/converter.h"
#include "serve/frozen_model.h"
#include "util/rng.h"
#include "vq/lut.h"

using namespace lutdla;

namespace {

using Clock = std::chrono::steady_clock;

Tensor
randomRows(int64_t rows, int64_t width, uint64_t seed)
{
    Rng rng(seed);
    Tensor x(Shape{rows, width});
    for (int64_t i = 0; i < x.numel(); ++i)
        x.at(i) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return x;
}

/**
 * The pre-engine serving stack: one ProductQuantizer + LookupTable per
 * traced layer, built from serve::synthesizeTraceLayer — the SAME
 * codebooks/weights FrozenModel::fromTrace uses — and driven row by row
 * through the vq:: reference kernels.
 */
struct ReferenceStack
{
    std::vector<vq::ProductQuantizer> pqs;
    std::vector<vq::LookupTable> luts;

    ReferenceStack(const std::vector<sim::GemmShape> &gemms,
                   const vq::PQConfig &pq, uint64_t seed)
    {
        int64_t index = 0;
        for (const sim::GemmShape &gemm : gemms) {
            serve::TraceLayer layer =
                serve::synthesizeTraceLayer(gemm, pq, seed, index++);
            luts.emplace_back(layer.quantizer, layer.weights);
            pqs.push_back(std::move(layer.quantizer));
        }
    }

    Tensor
    forwardRow(const Tensor &row) const
    {
        Tensor cur = row;
        for (size_t layer = 0; layer < luts.size(); ++layer) {
            const int64_t want = pqs[layer].featureDim();
            if (cur.dim(1) != want) {
                Tensor adapted(Shape{1, want});
                for (int64_t j = 0; j < want; ++j)
                    adapted.at(0, j) = cur.at(0, j % cur.dim(1));
                cur = adapted;
            }
            cur = luts[layer].lookupGemm(pqs[layer].encode(cur), 1);
        }
        return cur;
    }
};

/** Rows/s of a row-at-a-time loop over `forward`. */
template <typename Fn>
double
singleRowRate(const Tensor &rows, const Fn &forward)
{
    const int64_t n = rows.dim(0), width = rows.dim(1);
    Tensor row(Shape{1, width});
    const auto start = Clock::now();
    for (int64_t r = 0; r < n; ++r) {
        std::copy(rows.data() + r * width, rows.data() + (r + 1) * width,
                  row.data());
        const Tensor y = forward(row);
        if (y.dim(0) != 1)
            fatal("single-row forward produced wrong shape");
    }
    return static_cast<double>(n) /
           std::chrono::duration<double>(Clock::now() - start).count();
}

/** Serve `rows` single-row requests through one engine configuration. */
serve::EngineStats
runConfig(const serve::FrozenModel &model, const Tensor &rows, int threads,
          int64_t max_batch)
{
    serve::EngineOptions options;
    options.threads = threads;
    options.max_batch = max_batch;
    options.max_wait_us = 200;
    options.queue_capacity =
        static_cast<int64_t>(rows.dim(0)) + 1;  // enqueue without blocking
    auto engine = serve::InferenceEngine::create(model, options);
    if (!engine.ok())
        fatal("engine creation failed: ", engine.status().toString());

    const int64_t n = rows.dim(0), width = rows.dim(1);
    std::vector<std::future<api::Result<Tensor>>> futures;
    futures.reserve(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
        Tensor row(Shape{1, width});
        std::copy(rows.data() + r * width, rows.data() + (r + 1) * width,
                  row.data());
        futures.push_back(engine.value()->submitAsync(std::move(row)));
    }
    for (auto &future : futures) {
        auto result = future.get();
        if (!result.ok())
            fatal("request failed: ", result.status().toString());
    }
    engine.value()->shutdown();
    return engine.value()->stats();
}

} // namespace

int
main()
{
    const char *rows_env = std::getenv("LUTDLA_SERVE_ROWS");
    const int64_t kRows = rows_env ? std::atoll(rows_env) : 192;
    constexpr uint64_t kSeed = 91;  // FrozenModel::fromTrace default

    vq::PQConfig pq;
    pq.v = 8;
    pq.c = 16;

    auto spec = api::findWorkload("resnet18");
    if (!spec.ok())
        fatal(spec.status().toString());
    const std::vector<sim::GemmShape> gemms = spec->network().gemms;

    std::printf("Building resnet18 trace stacks (v=%lld, c=%lld) ...\n",
                static_cast<long long>(pq.v), static_cast<long long>(pq.c));
    const ReferenceStack reference(gemms, pq, kSeed);
    auto model = serve::FrozenModel::fromTrace(gemms, pq, {}, kSeed);
    if (!model.ok())
        fatal(model.status().toString());
    std::printf("%lld LUT stages, %.1f MB of table arenas, %lld rows per "
                "config\n\n",
                static_cast<long long>(model->numLutStages()),
                static_cast<double>(model->tableBytes()) / (1024 * 1024),
                static_cast<long long>(kRows));

    const Tensor rows = randomRows(kRows, model->inputWidth(), 17);
    const int64_t kBaselineRows = std::min<int64_t>(kRows, 64);
    Tensor baseline_rows(Shape{kBaselineRows, rows.dim(1)});
    std::copy(rows.data(), rows.data() + kBaselineRows * rows.dim(1),
              baseline_rows.data());

    const double reference_rate = singleRowRate(
        baseline_rows,
        [&](const Tensor &row) { return reference.forwardRow(row); });
    const double arena_rate = singleRowRate(
        baseline_rows,
        [&](const Tensor &row) { return model->forwardBatch(row); });

    Table t("serving throughput on the resnet18 trace (reference 1-row: " +
                Table::fmt(reference_rate, 1) + " rows/s, arena 1-row: " +
                Table::fmt(arena_rate, 1) + " rows/s)",
            {"threads", "max_batch", "rows/s", "vs reference", "vs arena",
             "avg fill", "p50 us", "p99 us"});

    double best_vs_reference = 0.0;
    for (int threads : {1, 2, 4}) {
        for (int64_t max_batch :
             {int64_t{1}, int64_t{16}, int64_t{64}, int64_t{256}}) {
            const serve::EngineStats stats =
                runConfig(*model, rows, threads, max_batch);
            const double rate = stats.rowsPerSec();
            best_vs_reference =
                std::max(best_vs_reference, rate / reference_rate);
            t.addRow({std::to_string(threads), std::to_string(max_batch),
                      Table::fmt(rate, 1),
                      Table::fmtRatio(rate / reference_rate, 2),
                      Table::fmtRatio(rate / arena_rate, 2),
                      Table::fmt(stats.avgBatchFill(), 1),
                      Table::fmt(stats.p50_latency_us, 0),
                      Table::fmt(stats.p99_latency_us, 0)});
        }
    }
    t.addNote("reference = pre-engine serving (per-row vq encode + "
              "lookupGemm); arena = this PR's kernel driven one row at a "
              "time");
    t.addNote("batching amortizes table-bank loads across the block; "
              "threads add on multi-core hosts");
    t.print();

    std::printf("\nbest speedup vs single-thread single-row serving: "
                "%.2fx (target >= 3x)\n",
                best_vs_reference);

    // ---- CNN serving: the stage-graph conv path ------------------------
    // Convert the lenet-shapes workload model (replace only; random
    // centroids are fine for throughput) and freeze it, then serve
    // flattened 12x12 image rows through the engine. This tracks the
    // im2col + arena conv pipeline, not just flat GEMM stages.
    nn::LayerPtr cnn = nn::makeLeNetStyle(6);
    lutboost::ConvertOptions convert_opts;
    convert_opts.pq.v = 3;
    convert_opts.pq.c = 16;
    lutboost::replaceOperators(cnn, convert_opts);
    for (lutboost::LutLinear *layer : lutboost::findLutLayers(cnn))
        layer->refreshInferenceLut();
    auto cnn_model =
        serve::FrozenModel::fromModel(cnn, serve::ServeInputShape{12, 12});
    if (!cnn_model.ok())
        fatal("CNN lowering failed: ", cnn_model.status().toString());
    std::printf("\nCNN trace (lenet-shapes, 12x12 rows): %s, %.1f KB of "
                "tables\n",
                cnn_model->describe().c_str(),
                static_cast<double>(cnn_model->tableBytes()) / 1024.0);

    const Tensor cnn_rows = randomRows(kRows, cnn_model->inputWidth(), 23);
    Table ct("CNN serving throughput (lenet-shapes stage graph)",
             {"threads", "max_batch", "rows/s", "avg fill", "p50 us",
              "p99 us"});
    double cnn_best = 0.0;
    for (int threads : {1, 2}) {
        for (int64_t max_batch : {int64_t{16}, int64_t{64}}) {
            const serve::EngineStats stats =
                runConfig(*cnn_model, cnn_rows, threads, max_batch);
            const double rate = stats.rowsPerSec();
            cnn_best = std::max(cnn_best, rate);
            ct.addRow({std::to_string(threads), std::to_string(max_batch),
                       Table::fmt(rate, 1),
                       Table::fmt(stats.avgBatchFill(), 1),
                       Table::fmt(stats.p50_latency_us, 0),
                       Table::fmt(stats.p99_latency_us, 0)});
        }
    }
    ct.addNote("each row is a flattened [1, 12, 12] image; conv stages "
               "run batched im2col into per-worker scratch");
    ct.print();
    std::printf("\nCNN serving best: %.1f rows/s\n", cnn_best);

    return best_vs_reference >= 3.0 ? 0 : 1;
}
