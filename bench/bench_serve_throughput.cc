/**
 * @file
 * Serving throughput sweep: threads x max_batch x kernel backend on the
 * resnet18 registry workload (trace-synthesized frozen LUT model),
 * against single-thread single-row baselines.
 *
 * Baselines reported:
 *   - "reference": single-row serving the way the repo did it before the
 *     serving engine existed — per-row ProductQuantizer::encode +
 *     LookupTable::lookupGemm per layer. The batched engine must beat it
 *     by >= 3x rows/s.
 *   - "arena 1-row": the row-blocked arena kernel driven one row at a
 *     time, isolating how much of the win comes from batching vs from the
 *     kernel itself.
 *
 * The sweep runs every engine configuration under FOUR data-plane plans:
 *   - float32: the bit-exact reference backend (the PR-3 stage-graph
 *     baseline this PR is measured against);
 *   - int8: the quantized backend — bit-packed codes + INT8 table bank —
 *     which must beat the float32 plan on rows/s for this (MLP-class,
 *     memory-bound) arena config. The win is table traffic: the resnet18
 *     float bank streams ~91 MB per row-block sweep, the INT8 bank ~23;
 *   - int4: the nibble-packed bit-plane bank (two output columns per
 *     byte), halving the INT8 stream again;
 *   - int4+int8enc: the int4 gather plan with encode_precision = Int8 —
 *     the VNNI/AVX2 integer argmin-encode replaces the float32 encode
 *     prologue. With int4 gather already memory-lean, encode was ~49% of
 *     the hot path, so this plan is the headline rows/s config. Its
 *     top-1 agreement envelope is measured on the TRAINED mlp-mixture
 *     model (int8-encode vs float-encode, same float tables): on the
 *     random-codebook resnet18 trace any mid-chain argmin flip is
 *     chaotically amplified (same effect the auto-tune paragraph below
 *     describes), so end-to-end agreement there is noise, not signal.
 * Every config row also records the plan's RESIDENT arena bytes (gather
 * stream + CPU-gated mirror layouts), so byte savings are first-class in
 * the cross-PR trajectory.
 *
 * A separate "mixture" section runs the mixed-precision auto-tuner
 * (serve/autotune.h) on the TRAINED mlp-mixture model — the same model
 * serving_demo converts — and serves the tuned plan next to the all-int8
 * plan of the same model. The tuner needs real decision margins to have
 * room to move: on the random-codebook trace model any mid-chain
 * quantization error is chaotically amplified by downstream re-encoding
 * (PQ argmin flips), so end-to-end top-1 agreement collapses and the
 * tuner honestly refuses every move but the final stage. On the trained
 * model the descent assigns int8/int4 per stage within the 90% top-1
 * agreement budget and must beat all-int8 on rows/s or resident bytes
 * (the acceptance gate). The same section now runs the tuner TWICE —
 * the joint (table, encode) search vs table-only (allow_int8_encode =
 * false) — and serves both plans, so the joint assignment's rows/s win
 * at equal-or-better byte cost is a recorded, gated number.
 *
 * A second section tracks CNN serving: a frozen LeNet-style conv chain
 * lowered onto the serving stage graph and driven with flattened 12x12
 * image rows, so the im2col + arena conv path has a rows/s number from
 * day one.
 *
 * A "mlp-untiled" A/B section re-runs the single-thread resnet18 configs
 * with the row-tiled executor disabled (PlanOptions::tile_rows = -1, the
 * full-batch phase-barrier executor), so the streaming win is measured
 * directly instead of inferred across PR artifacts.
 *
 * Run: ./build/bench/bench_serve_throughput [--json out.json] [--rows N]
 *   --json <path>         write machine-readable results (configs, rows/s,
 *                         p50/p99, arena bytes, phase split) for the
 *                         cross-PR perf trajectory (BENCH_serve_throughput
 *                         .json)
 *   --rows N              rows per configuration (default 192; the
 *                         LUTDLA_SERVE_ROWS env var is the fallback)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <thread>

#include "api/pipeline.h"
#include "bench_common.h"
#include "lutboost/converter.h"
#include "nn/attention.h"
#include "nn/sequential.h"
#include "serve/autotune.h"
#include "serve/frozen_model.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "vq/lut.h"

using namespace lutdla;

namespace {

using Clock = std::chrono::steady_clock;

Tensor
randomRows(int64_t rows, int64_t width, uint64_t seed)
{
    Rng rng(seed);
    Tensor x(Shape{rows, width});
    for (int64_t i = 0; i < x.numel(); ++i)
        x.at(i) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return x;
}

/**
 * The pre-engine serving stack: one ProductQuantizer + LookupTable per
 * traced layer, built from serve::synthesizeTraceLayer — the SAME
 * codebooks/weights FrozenModel::fromTrace uses — and driven row by row
 * through the vq:: reference kernels.
 */
struct ReferenceStack
{
    std::vector<vq::ProductQuantizer> pqs;
    std::vector<vq::LookupTable> luts;

    ReferenceStack(const std::vector<sim::GemmShape> &gemms,
                   const vq::PQConfig &pq, uint64_t seed)
    {
        int64_t index = 0;
        for (const sim::GemmShape &gemm : gemms) {
            serve::TraceLayer layer =
                serve::synthesizeTraceLayer(gemm, pq, seed, index++);
            luts.emplace_back(layer.quantizer, layer.weights);
            pqs.push_back(std::move(layer.quantizer));
        }
    }

    Tensor
    forwardRow(const Tensor &row) const
    {
        Tensor cur = row;
        for (size_t layer = 0; layer < luts.size(); ++layer) {
            const int64_t want = pqs[layer].featureDim();
            if (cur.dim(1) != want) {
                Tensor adapted(Shape{1, want});
                for (int64_t j = 0; j < want; ++j)
                    adapted.at(0, j) = cur.at(0, j % cur.dim(1));
                cur = adapted;
            }
            cur = luts[layer].lookupGemm(pqs[layer].encode(cur), 1);
        }
        return cur;
    }
};

/** Rows/s of a row-at-a-time loop over `forward`. */
template <typename Fn>
double
singleRowRate(const Tensor &rows, const Fn &forward)
{
    const int64_t n = rows.dim(0), width = rows.dim(1);
    Tensor row(Shape{1, width});
    const auto start = Clock::now();
    for (int64_t r = 0; r < n; ++r) {
        std::copy(rows.data() + r * width, rows.data() + (r + 1) * width,
                  row.data());
        const Tensor y = forward(row);
        if (y.dim(0) != 1)
            fatal("single-row forward produced wrong shape");
    }
    return static_cast<double>(n) /
           std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Serve `rows` through one engine configuration, `group` rows per
 * request (1 = single-row requests; attention models must submit whole
 * seq_len-row sequences, so their sections pass group = seq_len).
 */
serve::EngineStats
runConfig(const serve::FrozenModel &model, const Tensor &rows, int threads,
          int64_t max_batch, int64_t group = 1)
{
    serve::EngineOptions options;
    options.threads = threads;
    options.max_batch = max_batch;
    options.max_wait_us = 200;
    options.queue_capacity =
        static_cast<int64_t>(rows.dim(0)) + 1;  // enqueue without blocking
    auto engine = serve::InferenceEngine::create(model, options);
    if (!engine.ok())
        fatal("engine creation failed: ", engine.status().toString());

    const int64_t n = rows.dim(0), width = rows.dim(1);
    std::vector<std::future<api::Result<Tensor>>> futures;
    futures.reserve(static_cast<size_t>(n / group));
    for (int64_t r = 0; r + group <= n; r += group) {
        Tensor chunk(Shape{group, width});
        std::copy(rows.data() + r * width,
                  rows.data() + (r + group) * width, chunk.data());
        futures.push_back(engine.value()->submitAsync(std::move(chunk)));
    }
    for (auto &future : futures) {
        auto result = future.get();
        if (!result.ok())
            fatal("request failed: ", result.status().toString());
    }
    engine.value()->shutdown();
    return engine.value()->stats();
}

/** Fraction of rows where both models put their output argmax on the
 * same column (the same top-1 metric the auto-tuner probes with). */
double
topOneAgreement(const serve::FrozenModel &a, const serve::FrozenModel &b,
                const Tensor &rows)
{
    const Tensor ya = a.forwardBatch(rows);
    const Tensor yb = b.forwardBatch(rows);
    const int64_t n = ya.dim(0), width = ya.dim(1);
    int64_t same = 0;
    for (int64_t r = 0; r < n; ++r) {
        int64_t ia = 0, ib = 0;
        for (int64_t j = 1; j < width; ++j) {
            if (ya.at(r, j) > ya.at(r, ia))
                ia = j;
            if (yb.at(r, j) > yb.at(r, ib))
                ib = j;
        }
        same += ia == ib ? 1 : 0;
    }
    return n > 0 ? static_cast<double>(same) / static_cast<double>(n)
                 : 0.0;
}

/** One measured configuration for the JSON artifact. */
struct JsonRecord
{
    std::string section;
    std::string backend;
    int threads;
    int64_t max_batch;
    double rows_per_sec;
    double p50_us;
    double p99_us;
    double p50_queue_us;    ///< submit -> batch execution start
    double p99_queue_us;
    double p50_service_us;  ///< batch execution start -> done
    double p99_service_us;
    double avg_fill;
    int64_t arena_bytes;
    int64_t resident_bytes;
    double encode_s;  ///< per-active-worker average (EngineStats)
    double gather_s;  ///< per-active-worker average (EngineStats)
    int active_workers;
};

/** Rows/s of the matching threads=1 config, or 0 when absent. */
double
singleThreadRate(const std::vector<JsonRecord> &records,
                 const JsonRecord &config)
{
    for (const JsonRecord &r : records) {
        if (r.section == config.section && r.backend == config.backend &&
            r.max_batch == config.max_batch && r.threads == 1)
            return r.rows_per_sec;
    }
    return 0.0;
}

/** Headline numbers for the JSON "best" section. The float32/int8/int4
 * slots come from the resnet18 trace sweep; the auto_* slots come from
 * the trained-mixture section, where auto_int8 is the all-int8 plan of
 * the SAME model (the comparison the acceptance gate uses). */
struct BestStats
{
    double float32 = 0.0, int8 = 0.0, int4 = 0.0;
    double auto_plan = 0.0, auto_int8 = 0.0;
    double auto_agreement = 0.0;
    std::string auto_assignment;
    int64_t float_resident = 0, int8_resident = 0, int4_resident = 0,
            auto_resident = 0, auto_int8_resident = 0;
    /** Quantized encode plane: best rows/s of the int4-table plan with
     * encode_precision = Int8 and its resident bytes (gather banks + the
     * INT8 encode bank). The agreement slot is the int8-encode vs
     * float-encode top-1 agreement (same float tables) on the TRAINED
     * mlp-mixture model — the only harness where the number means
     * anything (see the file comment on trace-model chaos). */
    double int8enc = 0.0;
    double int8enc_agreement = 0.0;
    int64_t int8enc_resident = 0;
    /** Joint vs table-only auto-tune on the trained mixture model:
     * auto_* above IS the joint result (the facade default); these slots
     * hold the allow_int8_encode = false re-run it must beat. */
    double tableonly_plan = 0.0;
    double tableonly_agreement = 0.0;
    std::string joint_encode_assignment;
    /** Tiled-executor A/B: best single-thread int4 rows/s with tiling
     * disabled, and the tiled/untiled ratio at threads=1. */
    double int4_untiled = 0.0;
    double tiled_speedup_int4 = 0.0;
};

void
writeJson(const char *path, const vq::PQConfig &pq, int64_t rows,
          double reference_rate, double arena_rate,
          const std::vector<JsonRecord> &records, const BestStats &best)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f)
        fatal("cannot open ", path, " for writing");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
    std::fprintf(f, "  \"workload\": \"resnet18\",\n");
    std::fprintf(f, "  \"isa\": \"%s\",\n",
                 util::simdLevelName(util::simdLevel()));
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f,
                 "  \"pq\": {\"v\": %lld, \"c\": %lld},\n",
                 static_cast<long long>(pq.v), static_cast<long long>(pq.c));
    std::fprintf(f, "  \"rows_per_config\": %lld,\n",
                 static_cast<long long>(rows));
    std::fprintf(f,
                 "  \"baselines\": {\"reference_1row_rows_per_sec\": %.1f, "
                 "\"arena_1row_rows_per_sec\": %.1f},\n",
                 reference_rate, arena_rate);
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const JsonRecord &r = records[i];
        std::fprintf(
            f,
            "    {\"section\": \"%s\", \"backend\": \"%s\", "
            "\"threads\": %d, \"max_batch\": %lld, "
            "\"rows_per_sec\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
            "\"p50_queue_us\": %.1f, \"p99_queue_us\": %.1f, "
            "\"p50_service_us\": %.1f, \"p99_service_us\": %.1f, "
            "\"avg_fill\": %.2f, \"arena_bytes\": %lld, "
            "\"resident_bytes\": %lld, "
            "\"encode_s\": %.6f, \"gather_s\": %.6f, "
            "\"active_workers\": %d}%s\n",
            r.section.c_str(), r.backend.c_str(), r.threads,
            static_cast<long long>(r.max_batch), r.rows_per_sec, r.p50_us,
            r.p99_us, r.p50_queue_us, r.p99_queue_us, r.p50_service_us,
            r.p99_service_us, r.avg_fill,
            static_cast<long long>(r.arena_bytes),
            static_cast<long long>(r.resident_bytes), r.encode_s,
            r.gather_s, r.active_workers,
            i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Thread-scaling section: every multi-thread config's speedup over
    // its own threads=1 twin (same backend + max_batch), so the perf
    // guard and the cross-PR trajectory can see scaling directly.
    std::fprintf(f, "  \"thread_scaling\": [\n");
    bool first_scaling = true;
    for (const JsonRecord &r : records) {
        if (r.threads == 1)
            continue;
        const double base = singleThreadRate(records, r);
        if (base <= 0.0)
            continue;
        std::fprintf(f,
                     "%s    {\"section\": \"%s\", \"backend\": \"%s\", "
                     "\"max_batch\": %lld, \"threads\": %d, "
                     "\"speedup_vs_1\": %.3f}",
                     first_scaling ? "" : ",\n", r.section.c_str(),
                     r.backend.c_str(),
                     static_cast<long long>(r.max_batch), r.threads,
                     r.rows_per_sec / base);
        first_scaling = false;
    }
    std::fprintf(f, "\n  ],\n");
    // auto_vs_int8 compares within the mixture section: the tuned plan
    // against the all-int8 plan of the same trained model.
    std::fprintf(
        f,
        "  \"best\": {\"float32_rows_per_sec\": %.1f, "
        "\"int8_rows_per_sec\": %.1f, "
        "\"int4_rows_per_sec\": %.1f, "
        "\"int8enc_rows_per_sec\": %.1f, "
        "\"auto_rows_per_sec\": %.1f, "
        "\"auto_int8_rows_per_sec\": %.1f, "
        "\"tableonly_rows_per_sec\": %.1f, "
        "\"int8_vs_float32\": %.3f, "
        "\"int4_vs_int8\": %.3f, "
        "\"int8enc_vs_int4\": %.3f, "
        "\"auto_vs_int8\": %.3f, "
        "\"joint_vs_tableonly\": %.3f, "
        "\"int8enc_agreement\": %.4f, "
        "\"auto_agreement\": %.4f, "
        "\"tableonly_agreement\": %.4f, "
        "\"auto_assignment\": \"%s\", "
        "\"auto_encode_assignment\": \"%s\", "
        "\"auto_workload\": \"mlp-mixture\", "
        "\"int4_untiled_rows_per_sec\": %.1f, "
        "\"tiled_speedup_int4\": %.3f, "
        "\"float32_resident_bytes\": %lld, "
        "\"int8_resident_bytes\": %lld, "
        "\"int4_resident_bytes\": %lld, "
        "\"int8enc_resident_bytes\": %lld, "
        "\"auto_resident_bytes\": %lld, "
        "\"auto_int8_resident_bytes\": %lld}\n",
        best.float32, best.int8, best.int4, best.int8enc, best.auto_plan,
        best.auto_int8, best.tableonly_plan,
        best.float32 > 0 ? best.int8 / best.float32 : 0.0,
        best.int8 > 0 ? best.int4 / best.int8 : 0.0,
        best.int4 > 0 ? best.int8enc / best.int4 : 0.0,
        best.auto_int8 > 0 ? best.auto_plan / best.auto_int8 : 0.0,
        best.tableonly_plan > 0 ? best.auto_plan / best.tableonly_plan
                                : 0.0,
        best.int8enc_agreement, best.auto_agreement,
        best.tableonly_agreement, best.auto_assignment.c_str(),
        best.joint_encode_assignment.c_str(),
        best.int4_untiled, best.tiled_speedup_int4,
        static_cast<long long>(best.float_resident),
        static_cast<long long>(best.int8_resident),
        static_cast<long long>(best.int4_resident),
        static_cast<long long>(best.int8enc_resident),
        static_cast<long long>(best.auto_resident),
        static_cast<long long>(best.auto_int8_resident));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote JSON results to %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    const char *rows_env = std::getenv("LUTDLA_SERVE_ROWS");
    int64_t arg_rows = rows_env ? std::atoll(rows_env) : 192;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
            arg_rows = std::atoll(argv[++i]);
    }
    if (arg_rows <= 0)
        fatal("--rows must be positive");
    const int64_t kRows = arg_rows;
    constexpr uint64_t kSeed = 91;  // FrozenModel::fromTrace default

    vq::PQConfig pq;
    pq.v = 8;
    pq.c = 16;

    auto spec = api::findWorkload("resnet18");
    if (!spec.ok())
        fatal(spec.status().toString());
    const std::vector<sim::GemmShape> gemms = spec->network().gemms;

    std::printf("Building resnet18 trace stacks (v=%lld, c=%lld) ...\n",
                static_cast<long long>(pq.v), static_cast<long long>(pq.c));
    const ReferenceStack reference(gemms, pq, kSeed);
    auto model = serve::FrozenModel::fromTrace(gemms, pq, {}, kSeed);
    if (!model.ok())
        fatal(model.status().toString());
    serve::PlanOptions int8_plan;
    int8_plan.table_precision = serve::TablePrecision::Int8;
    auto int8_model =
        serve::FrozenModel::fromTrace(gemms, pq, {}, kSeed, int8_plan);
    if (!int8_model.ok())
        fatal(int8_model.status().toString());
    serve::PlanOptions int4_plan;
    int4_plan.table_precision = serve::TablePrecision::Int4;
    const serve::FrozenModel int4_model = model->withPlan(int4_plan);
    // The headline plan: int4 gather + INT8 integer argmin-encode. Same
    // tables as int4_model, so their top-1 agreement isolates the encode
    // quantization alone.
    serve::PlanOptions int8enc_plan = int4_plan;
    int8enc_plan.encode_precision = serve::EncodePrecision::Int8;
    const serve::FrozenModel int8enc_model = model->withPlan(int8enc_plan);
    std::printf("%lld LUT stages, %.1f MB float arenas / %.1f MB int8 "
                "bank / %.1f MB int4 bank, %lld rows per config\n\n",
                static_cast<long long>(model->numLutStages()),
                static_cast<double>(model->tableBytes()) / (1024 * 1024),
                static_cast<double>(int8_model->tableBytes()) /
                    (1024 * 1024),
                static_cast<double>(int4_model.tableBytes()) /
                    (1024 * 1024),
                static_cast<long long>(kRows));

    const Tensor rows = randomRows(kRows, model->inputWidth(), 17);
    const int64_t kBaselineRows = std::min<int64_t>(kRows, 64);
    Tensor baseline_rows(Shape{kBaselineRows, rows.dim(1)});
    std::copy(rows.data(), rows.data() + kBaselineRows * rows.dim(1),
              baseline_rows.data());

    const double reference_rate = singleRowRate(
        baseline_rows,
        [&](const Tensor &row) { return reference.forwardRow(row); });
    const double arena_rate = singleRowRate(
        baseline_rows,
        [&](const Tensor &row) { return model->forwardBatch(row); });

    Table t("serving throughput on the resnet18 trace (reference 1-row: " +
                Table::fmt(reference_rate, 1) + " rows/s, arena 1-row: " +
                Table::fmt(arena_rate, 1) + " rows/s)",
            {"threads", "max_batch", "backend", "rows/s", "vs reference",
             "avg fill", "p50 us", "p99 us", "enc %"});

    struct PlanEntry
    {
        const char *backend;
        const serve::FrozenModel *model;
    };
    const PlanEntry plans[] = {{"float32", &*model},
                               {"int8", &*int8_model},
                               {"int4", &int4_model},
                               {"int4+int8enc", &int8enc_model}};

    std::vector<JsonRecord> records;
    double best_vs_reference = 0.0;
    BestStats best;
    best.float_resident = model->residentBytes();
    best.int8_resident = int8_model->residentBytes();
    best.int4_resident = int4_model.residentBytes();
    best.int8enc_resident = int8enc_model.residentBytes();
    for (int threads : {1, 2, 4}) {
        for (int64_t max_batch :
             {int64_t{1}, int64_t{16}, int64_t{64}, int64_t{256}}) {
            for (const PlanEntry &plan : plans) {
                const serve::FrozenModel &m = *plan.model;
                const serve::EngineStats stats =
                    runConfig(m, rows, threads, max_batch);
                const double rate = stats.rowsPerSec();
                double &slot = std::strcmp(plan.backend, "int8") == 0
                                   ? best.int8
                               : std::strcmp(plan.backend, "int4") == 0
                                   ? best.int4
                               : std::strcmp(plan.backend,
                                             "int4+int8enc") == 0
                                   ? best.int8enc
                                   : best.float32;
                slot = std::max(slot, rate);
                best_vs_reference =
                    std::max(best_vs_reference, rate / reference_rate);
                t.addRow({std::to_string(threads),
                          std::to_string(max_batch), plan.backend,
                          Table::fmt(rate, 1),
                          Table::fmtRatio(rate / reference_rate, 2),
                          Table::fmt(stats.avgBatchFill(), 1),
                          Table::fmt(stats.p50_latency_us, 0),
                          Table::fmt(stats.p99_latency_us, 0),
                          Table::fmt(stats.encodeFraction() * 100.0, 0)});
                records.push_back(
                    {"mlp", plan.backend, threads, max_batch, rate,
                     stats.p50_latency_us, stats.p99_latency_us,
                     stats.p50_queue_us, stats.p99_queue_us,
                     stats.p50_service_us, stats.p99_service_us,
                     stats.avgBatchFill(), m.tableBytes(),
                     m.residentBytes(), stats.encode_seconds,
                     stats.gather_seconds, stats.active_workers});
            }
        }
    }
    t.addNote("reference = pre-engine serving (per-row vq encode + "
              "lookupGemm); float32 = bit-exact plan (PR-3 baseline); "
              "int8 = packed codes + INT8 tables; int4 = nibble-packed "
              "bit-plane bank; int4+int8enc = int4 tables + INT8 "
              "VNNI/AVX2 argmin-encode");
    t.addNote("batching amortizes table-bank loads across the block; the "
              "int8 bank streams ~1/4 of the float bank's bytes");
    t.print();

    // Thread-scaling digest: each multi-thread config vs its threads=1
    // twin. On a single-core host these hover around 1.0x no matter how
    // well intra-batch sharding works — the JSON records the hardware
    // thread count so consumers can tell "can't scale" from "didn't".
    Table st("thread scaling (rows/s speedup vs threads=1; host has " +
                 std::to_string(std::thread::hardware_concurrency()) +
                 " hardware threads)",
             {"backend", "max_batch", "threads=2", "threads=4"});
    for (const char *backend :
         {"float32", "int8", "int4", "int4+int8enc"}) {
        for (int64_t max_batch :
             {int64_t{1}, int64_t{16}, int64_t{64}, int64_t{256}}) {
            double base = 0.0, t2 = 0.0, t4 = 0.0;
            for (const JsonRecord &r : records) {
                if (r.section != "mlp" || r.backend != backend ||
                    r.max_batch != max_batch)
                    continue;
                (r.threads == 1 ? base : r.threads == 2 ? t2 : t4) =
                    r.rows_per_sec;
            }
            if (base <= 0.0)
                continue;
            st.addRow({backend, std::to_string(max_batch),
                       Table::fmtRatio(t2 / base, 2),
                       Table::fmtRatio(t4 / base, 2)});
        }
    }
    st.print();

    // ---- Tiled vs untiled executor A/B ---------------------------------
    // The same resnet18 plans with the row-tiled segment executor
    // disabled (tile_rows = -1: full-batch phase barriers between
    // stages), single-thread so the comparison isolates cache residency
    // rather than work-stealing. The streamed executor must win on int4
    // — the narrowest table stream leaves activation-plane traffic as
    // the dominant cost, which is exactly what tiling removes.
    serve::PlanOptions untiled_float;
    untiled_float.tile_rows = -1;
    serve::PlanOptions untiled_int8 = int8_plan;
    untiled_int8.tile_rows = -1;
    serve::PlanOptions untiled_int4 = int4_plan;
    untiled_int4.tile_rows = -1;
    const serve::FrozenModel untiled_models[] = {
        model->withPlan(untiled_float), model->withPlan(untiled_int8),
        model->withPlan(untiled_int4)};
    Table at("tiled vs untiled executor (threads=1; tiled = streaming "
             "segment executor, untiled = full-batch phase barriers)",
             {"backend", "max_batch", "untiled rows/s", "tiled rows/s",
              "speedup"});
    // Enough rows that the max_batch=256 configs actually form 256-row
    // batches (several tiles each) instead of one sub-tile remainder.
    const int64_t ab_row_count = std::max<int64_t>(kRows, 1024);
    const Tensor ab_rows =
        randomRows(ab_row_count, model->inputWidth(), 19);
    double best_untiled_int4 = 0.0, best_tiled1_int4 = 0.0;
    for (size_t p = 0; p < 3; ++p) {
        const char *backend = plans[p].backend;
        for (int64_t max_batch : {int64_t{64}, int64_t{256}}) {
            // Both sides run FRESH and interleaved, best of 3, so the
            // ratio compares executors rather than where in the process
            // lifetime each side happened to run.
            double untiled_rate = 0.0, tiled_rate = 0.0;
            serve::EngineStats stats{};
            for (int rep = 0; rep < 3; ++rep) {
                const serve::EngineStats u =
                    runConfig(untiled_models[p], ab_rows, 1, max_batch);
                if (u.rowsPerSec() > untiled_rate) {
                    untiled_rate = u.rowsPerSec();
                    stats = u;
                }
                tiled_rate =
                    std::max(tiled_rate,
                             runConfig(*plans[p].model, ab_rows, 1,
                                       max_batch)
                                 .rowsPerSec());
            }
            at.addRow({backend, std::to_string(max_batch),
                       Table::fmt(untiled_rate, 1),
                       Table::fmt(tiled_rate, 1),
                       Table::fmtRatio(untiled_rate > 0
                                           ? tiled_rate / untiled_rate
                                           : 0.0,
                                       2)});
            if (std::strcmp(backend, "int4") == 0) {
                best_untiled_int4 =
                    std::max(best_untiled_int4, untiled_rate);
                best_tiled1_int4 = std::max(best_tiled1_int4, tiled_rate);
            }
            records.push_back(
                {"mlp-untiled", backend, 1, max_batch, untiled_rate,
                 stats.p50_latency_us, stats.p99_latency_us,
                 stats.p50_queue_us, stats.p99_queue_us,
                 stats.p50_service_us, stats.p99_service_us,
                 stats.avgBatchFill(), untiled_models[p].tableBytes(),
                 untiled_models[p].residentBytes(), stats.encode_seconds,
                 stats.gather_seconds, stats.active_workers});
        }
    }
    best.int4_untiled = best_untiled_int4;
    best.tiled_speedup_int4 = best_untiled_int4 > 0
                                  ? best_tiled1_int4 / best_untiled_int4
                                  : 0.0;
    at.addNote("tile plan (int4): " +
               [&] {
                   const serve::TileExecPlan &tp = int4_model.tilePlan();
                   if (tp.segments.empty())
                       return std::string("off");
                   return std::to_string(tp.segments.size()) +
                          " segment(s), tile " +
                          std::to_string(tp.segments[0].tile_rows) +
                          " rows (granule " +
                          std::to_string(tp.segments[0].granule) + ")";
               }());
    at.print();
    std::printf("\ntiled executor speedup (int4, threads=1): %.2fx\n",
                best.tiled_speedup_int4);

    std::printf("\nbest speedup vs single-thread single-row serving: "
                "%.2fx (target >= 3x)\n",
                best_vs_reference);
    std::printf("best rows/s: float32 %.1f, int8 %.1f, int4 %.1f "
                "(int8/float32 = %.2fx, target > 1x on this MLP arena "
                "config)\n",
                best.float32, best.int8, best.int4,
                best.float32 > 0 ? best.int8 / best.float32 : 0.0);
    std::printf("int8 encode plane: int4+int8enc %.1f rows/s "
                "(%.2fx vs float-encode int4, target > 1x)\n",
                best.int8enc,
                best.int4 > 0 ? best.int8enc / best.int4 : 0.0);
    std::printf("resident arena bytes: float32 %.1f MB, int8 %.1f MB, "
                "int4 %.1f MB, int4+int8enc %.1f MB (adds the INT8 "
                "encode bank)\n",
                static_cast<double>(best.float_resident) / (1024 * 1024),
                static_cast<double>(best.int8_resident) / (1024 * 1024),
                static_cast<double>(best.int4_resident) / (1024 * 1024),
                static_cast<double>(best.int8enc_resident) /
                    (1024 * 1024));

    // ---- Mixed-precision auto-tune: the trained mlp-mixture model ------
    // The tuner's acceptance story needs a model with real decision
    // margins (see the file comment): convert the trained mlp-mixture
    // workload exactly like serving_demo does, run the greedy descent,
    // and serve the tuned plan next to the all-int8 plan of the SAME
    // model. The tuned plan must beat all-int8 on rows/s or resident
    // bytes while holding >= 90% top-1 agreement against float32.
    lutboost::ConvertOptions mix_opts;
    mix_opts.pq.v = 4;
    mix_opts.pq.c = 16;
    auto mix_builder = api::Pipeline::forWorkload("mlp-mixture")
                           .pretrain()
                           .convert(mix_opts)
                           .deployPrecision(vq::LutPrecision{true, false});
    auto mix_run = mix_builder.report();
    if (!mix_run.ok())
        fatal("mixture pipeline failed: ", mix_run.status().toString());
    nn::LayerPtr mix = mix_builder.convertedModel();
    for (lutboost::LutLinear *layer : lutboost::findLutLayers(mix))
        if (!layer->inferenceLutReady())
            layer->refreshInferenceLut();
    auto mix_model = serve::FrozenModel::fromModel(mix);
    if (!mix_model.ok())
        fatal("mixture lowering failed: ", mix_model.status().toString());

    // Joint (table, encode) descent — the facade default — next to a
    // table-only re-run (allow_int8_encode = false). The joint plan must
    // beat table-only on rows/s at equal-or-better agreement: encode
    // moves cost zero gather bytes and shrink the dominant encode phase.
    const serve::AutoTuneResult tuned =
        serve::autoTunePrecision(*mix_model, {}, {});
    serve::AutoTuneOptions tbl_opts;
    tbl_opts.allow_int8_encode = false;
    const serve::AutoTuneResult tuned_tbl =
        serve::autoTunePrecision(*mix_model, {}, tbl_opts);
    serve::PlanOptions mix_auto_plan;
    mix_auto_plan.stage_precision = tuned.stage_precision;
    mix_auto_plan.stage_encode_precision = tuned.stage_encode_precision;
    const serve::FrozenModel mix_auto = mix_model->withPlan(mix_auto_plan);
    serve::PlanOptions mix_tbl_plan;
    mix_tbl_plan.stage_precision = tuned_tbl.stage_precision;
    const serve::FrozenModel mix_tbl = mix_model->withPlan(mix_tbl_plan);
    const serve::FrozenModel mix_int8 = mix_model->withPlan(int8_plan);
    // The encode-envelope number: int8 encode vs float encode with the
    // SAME float tables, on the trained model where argmin flips are
    // decided by real margins instead of random-codebook chaos.
    serve::PlanOptions mix_enc_plan;
    mix_enc_plan.encode_precision = serve::EncodePrecision::Int8;
    const serve::FrozenModel mix_enc = mix_model->withPlan(mix_enc_plan);
    best.auto_agreement = tuned.agreement;
    best.auto_assignment = tuned.assignmentString();
    best.joint_encode_assignment = tuned.encodeAssignmentString();
    best.tableonly_agreement = tuned_tbl.agreement;
    best.auto_resident = mix_auto.residentBytes();
    best.auto_int8_resident = mix_int8.residentBytes();
    std::printf("\nauto-tuned mlp-mixture plan: tables %s, encode %s "
                "(top-1 agreement %.3f vs float32, %lld probe "
                "forwards)\n",
                tuned.assignmentString().c_str(),
                tuned.encodeAssignmentString().c_str(), tuned.agreement,
                static_cast<long long>(tuned.evals));
    std::printf("table-only re-run: tables %s (agreement %.3f, %lld "
                "probe forwards)\n",
                tuned_tbl.assignmentString().c_str(), tuned_tbl.agreement,
                static_cast<long long>(tuned_tbl.evals));

    // The mixture model is tiny (two 16-wide stages), so a kRows run
    // finishes in microseconds and its rows/s would be CI-gated noise;
    // use a much larger row count to stretch each config past the
    // timer's jitter floor.
    const int64_t mix_row_count = std::max<int64_t>(kRows * 16, 3072);
    const Tensor mix_rows =
        randomRows(mix_row_count, mix_model->inputWidth(), 31);
    best.int8enc_agreement = topOneAgreement(*mix_model, mix_enc, mix_rows);
    std::printf("int8-encode top-1 agreement vs float encode (same "
                "float tables, trained model): %.4f over %lld rows\n",
                best.int8enc_agreement,
                static_cast<long long>(mix_row_count));
    Table mt("auto-tuned serving throughput (trained mlp-mixture)",
             {"threads", "max_batch", "backend", "rows/s", "p50 us",
              "p99 us"});
    const PlanEntry mix_plans[] = {{"float32", &*mix_model},
                                   {"int8", &mix_int8},
                                   {"auto", &mix_auto},
                                   {"auto-tbl", &mix_tbl}};
    for (int threads : {1, 2}) {
        for (int64_t max_batch : {int64_t{16}, int64_t{64}}) {
            for (const PlanEntry &plan : mix_plans) {
                const serve::FrozenModel &m = *plan.model;
                const serve::EngineStats stats =
                    runConfig(m, mix_rows, threads, max_batch);
                const double rate = stats.rowsPerSec();
                if (std::strcmp(plan.backend, "auto") == 0)
                    best.auto_plan = std::max(best.auto_plan, rate);
                else if (std::strcmp(plan.backend, "auto-tbl") == 0)
                    best.tableonly_plan =
                        std::max(best.tableonly_plan, rate);
                else if (std::strcmp(plan.backend, "int8") == 0)
                    best.auto_int8 = std::max(best.auto_int8, rate);
                mt.addRow({std::to_string(threads),
                           std::to_string(max_batch), plan.backend,
                           Table::fmt(rate, 1),
                           Table::fmt(stats.p50_latency_us, 0),
                           Table::fmt(stats.p99_latency_us, 0)});
                records.push_back(
                    {"mixture", plan.backend, threads, max_batch, rate,
                     stats.p50_latency_us, stats.p99_latency_us,
                     stats.p50_queue_us, stats.p99_queue_us,
                     stats.p50_service_us, stats.p99_service_us,
                     stats.avgBatchFill(), m.tableBytes(),
                     m.residentBytes(), stats.encode_seconds,
                     stats.gather_seconds, stats.active_workers});
            }
        }
    }
    mt.addNote("auto = joint (table, encode) tuner assignment (" +
               tuned.assignmentString() + " / enc " +
               tuned.encodeAssignmentString() + "); auto-tbl = "
               "table-only descent; int8 = all-int8 plan of the same "
               "trained model (the acceptance comparison)");
    mt.print();
    std::printf("\njoint vs table-only tuner: %.1f vs %.1f rows/s "
                "(%.2fx), agreement %.3f vs %.3f\n",
                best.auto_plan, best.tableonly_plan,
                best.tableonly_plan > 0
                    ? best.auto_plan / best.tableonly_plan
                    : 0.0,
                tuned.agreement, tuned_tbl.agreement);
    std::printf("\nmixture resident arena bytes: int8 %lld, auto %lld "
                "(auto/int8 = %.2fx)\n",
                static_cast<long long>(best.auto_int8_resident),
                static_cast<long long>(best.auto_resident),
                best.auto_int8_resident > 0
                    ? static_cast<double>(best.auto_resident) /
                          static_cast<double>(best.auto_int8_resident)
                    : 0.0);

    // ---- CNN serving: the stage-graph conv path ------------------------
    // Convert the lenet-shapes workload model (replace only; random
    // centroids are fine for throughput) and freeze it, then serve
    // flattened 12x12 image rows through the engine. This tracks the
    // im2col + arena conv path, not just flat GEMM stages.
    nn::LayerPtr cnn = nn::makeLeNetStyle(6);
    lutboost::ConvertOptions convert_opts;
    convert_opts.pq.v = 3;
    convert_opts.pq.c = 16;
    lutboost::replaceOperators(cnn, convert_opts);
    for (lutboost::LutLinear *layer : lutboost::findLutLayers(cnn))
        layer->refreshInferenceLut();
    auto cnn_model =
        serve::FrozenModel::fromModel(cnn, serve::ServeInputShape{12, 12});
    if (!cnn_model.ok())
        fatal("CNN lowering failed: ", cnn_model.status().toString());
    std::printf("\nCNN trace (lenet-shapes, 12x12 rows): %s, %.1f KB of "
                "tables\n",
                cnn_model->describe().c_str(),
                static_cast<double>(cnn_model->tableBytes()) / 1024.0);

    const Tensor cnn_rows = randomRows(kRows, cnn_model->inputWidth(), 23);
    Table ct("CNN serving throughput (lenet-shapes stage graph)",
             {"threads", "max_batch", "rows/s", "avg fill", "p50 us",
              "p99 us"});
    double cnn_best = 0.0;
    for (int threads : {1, 2}) {
        for (int64_t max_batch : {int64_t{16}, int64_t{64}}) {
            const serve::EngineStats stats =
                runConfig(*cnn_model, cnn_rows, threads, max_batch);
            const double rate = stats.rowsPerSec();
            cnn_best = std::max(cnn_best, rate);
            ct.addRow({std::to_string(threads), std::to_string(max_batch),
                       Table::fmt(rate, 1),
                       Table::fmt(stats.avgBatchFill(), 1),
                       Table::fmt(stats.p50_latency_us, 0),
                       Table::fmt(stats.p99_latency_us, 0)});
            records.push_back({"cnn", "float32", threads, max_batch, rate,
                               stats.p50_latency_us, stats.p99_latency_us,
                               stats.p50_queue_us, stats.p99_queue_us,
                               stats.p50_service_us, stats.p99_service_us,
                               stats.avgBatchFill(),
                               cnn_model->tableBytes(),
                               cnn_model->residentBytes(),
                               stats.encode_seconds,
                               stats.gather_seconds,
                               stats.active_workers});
        }
    }
    ct.addNote("each row is a flattened [1, 12, 12] image; conv stages "
               "run batched im2col into per-worker scratch");
    ct.print();
    std::printf("\nCNN serving best: %.1f rows/s\n", cnn_best);

    // ---- Transformer serving: the skip-edge stage graph ----------------
    // A BERT-style pre-LN encoder block (embedding LutLinear + attention
    // with LUT-converted Q/K/V/output projections + LUT FFN), served as
    // whole [B*seq_len, d_model] sequences under both table precisions.
    // This tracks the attention projections + sdpa + residual skip-edge
    // path end to end.
    const int64_t kSeqLen = 64, kHeads = 4, kDModel = 64, kDff = 128;
    lutboost::ConvertOptions tf_opts;
    tf_opts.pq.v = 4;
    tf_opts.pq.c = 16;
    tf_opts.min_in_features = 0;
    auto tf = std::make_shared<nn::Sequential>(std::vector<nn::LayerPtr>{
        std::make_shared<lutboost::LutLinear>(kDModel, kDModel, tf_opts.pq,
                                              /*bias=*/true, 131),
        std::make_shared<nn::TransformerBlock>(kSeqLen, kDModel, kHeads,
                                               kDff, 132)});
    lutboost::replaceOperators(tf, tf_opts);
    for (lutboost::LutLinear *layer : lutboost::findLutLayers(tf))
        layer->refreshInferenceLut();
    auto tf_model = serve::FrozenModel::fromModel(tf);
    if (!tf_model.ok())
        fatal("transformer lowering failed: ",
              tf_model.status().toString());
    auto tf_int8 = serve::FrozenModel::fromModel(tf, {}, int8_plan);
    if (!tf_int8.ok())
        fatal("transformer int8 plan failed: ",
              tf_int8.status().toString());
    std::printf("\ntransformer block (h%lld, t%lld, d%lld): %s\n",
                static_cast<long long>(kHeads),
                static_cast<long long>(kSeqLen),
                static_cast<long long>(kDModel),
                tf_model->describe().c_str());

    // Whole sequences only: round the row budget down to full sequences.
    const int64_t tf_sequences = std::max<int64_t>(1, kRows / kSeqLen);
    const Tensor tf_rows =
        randomRows(tf_sequences * kSeqLen, tf_model->inputWidth(), 29);
    Table tt("transformer serving throughput (one request = one " +
                 std::to_string(kSeqLen) + "-row sequence)",
             {"threads", "max_batch", "backend", "rows/s", "avg fill",
              "p50 us", "p99 us", "enc %"});
    double tf_best_float = 0.0, tf_best_int8 = 0.0;
    for (int threads : {1, 2}) {
        for (int64_t max_batch : {kSeqLen, kSeqLen * 4}) {
            for (const bool int8 : {false, true}) {
                const serve::FrozenModel &m = int8 ? *tf_int8 : *tf_model;
                const serve::EngineStats stats = runConfig(
                    m, tf_rows, threads, max_batch, kSeqLen);
                const double rate = stats.rowsPerSec();
                (int8 ? tf_best_int8 : tf_best_float) =
                    std::max(int8 ? tf_best_int8 : tf_best_float, rate);
                tt.addRow({std::to_string(threads),
                           std::to_string(max_batch),
                           int8 ? "int8" : "float32", Table::fmt(rate, 1),
                           Table::fmt(stats.avgBatchFill(), 1),
                           Table::fmt(stats.p50_latency_us, 0),
                           Table::fmt(stats.p99_latency_us, 0),
                           Table::fmt(stats.encodeFraction() * 100.0, 0)});
                records.push_back(
                    {"transformer", int8 ? "int8" : "float32", threads,
                     max_batch, rate, stats.p50_latency_us,
                     stats.p99_latency_us, stats.p50_queue_us,
                     stats.p99_queue_us, stats.p50_service_us,
                     stats.p99_service_us, stats.avgBatchFill(),
                     m.tableBytes(), m.residentBytes(),
                     stats.encode_seconds, stats.gather_seconds,
                     stats.active_workers});
            }
        }
    }
    tt.addNote("four projection LUT-GEMMs + shared-softmax sdpa per "
               "sequence; skip edges ride per-worker scratch slots");
    tt.print();
    std::printf("\ntransformer serving best: float32 %.1f rows/s, int8 "
                "%.1f rows/s\n",
                tf_best_float, tf_best_int8);

    if (json_path)
        writeJson(json_path, pq, kRows, reference_rate, arena_rate,
                  records, best);

    // Acceptance: the engine beats pre-engine serving >= 3x, INT8 beats
    // float32 on rows/s, the auto-tuned plan justifies itself by beating
    // the all-INT8 plan of the same trained model on rows/s or resident
    // bytes while meeting the 90% top-1 agreement budget, the INT8
    // encode plane beats the float-encode int4 plan on rows/s, and the
    // joint (table, encode) descent beats the table-only descent on
    // rows/s or total streamed bytes without giving up its agreement.
    const bool auto_ok =
        tuned.agreement >= 0.90 &&
        (best.auto_plan > best.auto_int8 ||
         best.auto_resident < best.auto_int8_resident);
    const bool int8enc_ok =
        best.int8enc > best.int4 && best.int8enc_agreement >= 0.90;
    const int64_t joint_bytes =
        mix_auto.tableBytes() + mix_auto.encodeBytes();
    const int64_t tbl_bytes = mix_tbl.tableBytes() + mix_tbl.encodeBytes();
    const bool joint_ok =
        tuned.agreement >= 0.90 &&
        (best.auto_plan > best.tableonly_plan || joint_bytes < tbl_bytes);
    const bool pass = best_vs_reference >= 3.0 &&
                      best.int8 > best.float32 && auto_ok &&
                      int8enc_ok && joint_ok;
    if (!pass)
        std::printf("\nFAIL: acceptance targets not met "
                    "(engine>=3x %d, int8>float32 %d, auto %d, "
                    "int8enc>int4 %d, joint %d)\n",
                    best_vs_reference >= 3.0, best.int8 > best.float32,
                    auto_ok, int8enc_ok, joint_ok);
    return pass ? 0 : 1;
}
