/**
 * @file
 * Multi-tenant front-door bench: two models with different SLOs on ONE
 * shared worker pool, driven through three phases that exercise the
 * scheduler contracts the front door promises (serve/frontdoor.h):
 *
 *   1. steady    — mixed interactive + bulk traffic well inside capacity:
 *                  everything serves, and the per-model latency/queue/
 *                  service split lands in the JSON.
 *   2. overload  — a bulk flood several times the queue capacity with
 *                  interactive traffic interleaved: low-priority bulk is
 *                  shed with typed ResourceExhausted while EVERY
 *                  interactive request is admitted (priority eviction)
 *                  and its p99 stays within the published SLO.
 *   3. hotswap   — continuous interactive traffic with a publish() of a
 *                  new model version mid-stream: zero failed or dropped
 *                  accepted requests, every response bit-exact against
 *                  the version the request was pinned to, and requests
 *                  submitted before the swap provably served by v1.
 *
 * Each phase runs on a FRESH front door so its stats() snapshot is the
 * phase's own (percentiles cannot be deltaed across phases).
 *
 * Run: ./build/bench/bench_serve_multitenant [--json out.json] [--smoke]
 *   --json <path>  machine-readable results (BENCH_serve_multitenant.json)
 *   --smoke        ~8x fewer requests; used by the CI smoke step
 */

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/frontdoor.h"
#include "serve/frozen_model.h"
#include "util/rng.h"

using namespace lutdla;

namespace {

Tensor
randomRows(int64_t rows, int64_t width, uint64_t seed)
{
    Rng rng(seed);
    Tensor x(Shape{rows, width});
    for (int64_t i = 0; i < x.numel(); ++i)
        x.at(i) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return x;
}

/** Interactive model: small trace, fast per-batch service. */
serve::FrozenModel
interactiveModel(uint64_t seed)
{
    std::vector<sim::GemmShape> gemms{{16, 64, 48, "fc1"},
                                      {16, 48, 16, "fc2"}};
    vq::PQConfig pq;
    pq.v = 8;
    pq.c = 16;
    auto model = serve::FrozenModel::fromTrace(gemms, pq, {}, seed);
    if (!model.ok())
        fatal("interactive model: ", model.status().toString());
    return model.take();
}

/** Bulk model: wider trace on the INT8 plan — heavier batches. */
serve::FrozenModel
bulkModel(uint64_t seed)
{
    std::vector<sim::GemmShape> gemms{{64, 256, 256, "l1"},
                                      {64, 256, 128, "l2"},
                                      {64, 128, 64, "l3"}};
    vq::PQConfig pq;
    pq.v = 8;
    pq.c = 16;
    serve::PlanOptions plan;
    plan.table_precision = serve::TablePrecision::Int8;
    auto model = serve::FrozenModel::fromTrace(gemms, pq, {}, seed, plan);
    if (!model.ok())
        fatal("bulk model: ", model.status().toString());
    return model.take();
}

constexpr int64_t kInteractiveDeadlineUs = 250'000;  // the published SLO

/** Build a fresh two-tenant front door for one phase. */
std::shared_ptr<serve::FrontDoor>
makeDoor(const serve::FrozenModel &interactive,
         const serve::FrozenModel &bulk, int64_t queue_capacity)
{
    serve::FrontDoorOptions options;
    options.threads = 2;
    options.queue_capacity = queue_capacity;
    auto door = serve::FrontDoor::create(options);
    if (!door.ok())
        fatal("front door: ", door.status().toString());

    serve::ModelSlo islo;
    islo.priority = 10;
    islo.max_batch = 32;
    islo.batch_window_us = 100;
    islo.default_deadline_us = kInteractiveDeadlineUs;
    if (auto v = door.value()->publish("interactive", interactive, islo);
        !v.ok())
        fatal("publish interactive: ", v.status().toString());

    serve::ModelSlo bslo;
    bslo.priority = 0;
    bslo.max_batch = 64;
    bslo.batch_window_us = 200;
    bslo.default_deadline_us = 0;  // bulk is throughput-only
    if (auto v = door.value()->publish("bulk", bulk, bslo); !v.ok())
        fatal("publish bulk: ", v.status().toString());
    return door.take();
}

void
printLane(Table &t, const std::string &name, const serve::LaneStats &lane)
{
    t.addRow({name, std::to_string(lane.accepted),
              std::to_string(lane.served), std::to_string(lane.shed()),
              Table::fmt(lane.p50_latency_us, 0),
              Table::fmt(lane.p99_latency_us, 0),
              Table::fmt(lane.p99_queue_us, 0),
              Table::fmt(lane.p99_service_us, 0),
              bench::pct(lane.sloAttainment())});
}

void
jsonLane(std::FILE *f, const char *name, const serve::LaneStats &lane,
         bool last)
{
    std::fprintf(
        f,
        "    \"%s\": {\"accepted\": %llu, \"served\": %llu, "
        "\"rejected\": %llu, \"shed_capacity\": %llu, "
        "\"shed_deadline\": %llu, \"cancelled\": %llu, "
        "\"p50_latency_us\": %.1f, \"p99_latency_us\": %.1f, "
        "\"p50_queue_us\": %.1f, \"p99_queue_us\": %.1f, "
        "\"p50_service_us\": %.1f, \"p99_service_us\": %.1f, "
        "\"slo_attainment\": %.4f}%s\n",
        name, static_cast<unsigned long long>(lane.accepted),
        static_cast<unsigned long long>(lane.served),
        static_cast<unsigned long long>(lane.rejected),
        static_cast<unsigned long long>(lane.shed_capacity),
        static_cast<unsigned long long>(lane.shed_deadline),
        static_cast<unsigned long long>(lane.cancelled),
        lane.p50_latency_us, lane.p99_latency_us, lane.p50_queue_us,
        lane.p99_queue_us, lane.p50_service_us, lane.p99_service_us,
        lane.sloAttainment(), last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    const int scale = smoke ? 8 : 1;

    std::printf("Building tenant models ...\n");
    const serve::FrozenModel interactive = interactiveModel(7);
    const serve::FrozenModel interactive_v2 = interactiveModel(8);
    const serve::FrozenModel bulk = bulkModel(9);
    std::printf("interactive: %s (%.1f KB tables)\n",
                interactive.describe().c_str(),
                static_cast<double>(interactive.tableBytes()) / 1024.0);
    std::printf("bulk:        %s (%.1f KB int8 bank)\n\n",
                bulk.describe().c_str(),
                static_cast<double>(bulk.tableBytes()) / 1024.0);

    const Tensor irow = randomRows(1, interactive.inputWidth(), 31);
    const Tensor brow = randomRows(4, bulk.inputWidth(), 32);

    // ---- Phase 1: steady mixed traffic ---------------------------------
    const int kSteady = 512 / scale;
    auto door = makeDoor(interactive, bulk, 1024);
    {
        std::vector<std::future<api::Result<Tensor>>> futures;
        for (int i = 0; i < kSteady; ++i) {
            futures.push_back(door->submitAsync(
                "interactive", irow, {{}, {}, "web"}));
            if (i % 2 == 0)
                futures.push_back(
                    door->submitAsync("bulk", brow, {{}, {}, "batch"}));
        }
        for (auto &future : futures)
            if (auto result = future.get(); !result.ok())
                fatal("steady-phase request failed: ",
                      result.status().toString());
        door->shutdown();
    }
    const serve::FrontDoorStats steady = door->stats();

    Table st("phase 1 — steady mixed traffic (2 models, one pool of 2 "
             "workers)",
             {"model", "accepted", "served", "shed", "p50 us", "p99 us",
              "q p99", "svc p99", "slo %"});
    printLane(st, "interactive", steady.models.at("interactive"));
    printLane(st, "bulk", steady.models.at("bulk"));
    st.addNote("q = queue wait (submit -> batch start), svc = batch "
               "service; the two partition end-to-end latency");
    st.print();

    const bool steady_pass =
        steady.models.at("interactive").served ==
            static_cast<uint64_t>(kSteady) &&
        steady.models.at("bulk").served ==
            static_cast<uint64_t>(kSteady / 2) &&
        steady.total.shed() == 0;

    // ---- Phase 2: overload — bulk flood, interactive protected --------
    // Queue capacity far below the flood size: admission must shed bulk
    // with typed ResourceExhausted while every interactive request gets
    // in (evicting bulk if needed) and lands inside its deadline SLO.
    // Interactive count stays below the queue capacity: the phase
    // measures bulk being shed FOR interactive, not interactive
    // self-flooding past its own admission limit.
    const int kFlood = 768 / scale;
    const int kOverloadInteractive = 48 / scale;
    auto overload_door = makeDoor(interactive, bulk, 64);
    int bulk_ok = 0, bulk_shed = 0, bulk_other = 0;
    int interactive_ok = 0, interactive_failed = 0;
    {
        std::vector<std::future<api::Result<Tensor>>> bulk_futures;
        std::vector<std::future<api::Result<Tensor>>> interactive_futures;
        for (int i = 0; i < kFlood; ++i) {
            bulk_futures.push_back(overload_door->submitAsync(
                "bulk", brow, {{}, {}, "batch"}));
            if (i % (kFlood / kOverloadInteractive) == 0)
                interactive_futures.push_back(overload_door->submitAsync(
                    "interactive", irow, {{}, {}, "web"}));
        }
        for (auto &future : bulk_futures) {
            auto result = future.get();
            if (result.ok())
                bulk_ok++;
            else if (result.status().code() ==
                     api::StatusCode::ResourceExhausted)
                bulk_shed++;
            else
                bulk_other++;
        }
        for (auto &future : interactive_futures) {
            if (future.get().ok())
                interactive_ok++;
            else
                interactive_failed++;
        }
        overload_door->shutdown();
    }
    const serve::FrontDoorStats overload = overload_door->stats();
    const serve::LaneStats &oi = overload.models.at("interactive");
    const serve::LaneStats &ob = overload.models.at("bulk");

    Table ot("phase 2 — overload (bulk flood of " +
                 std::to_string(kFlood) + " vs queue capacity 64)",
             {"model", "accepted", "served", "shed", "p50 us", "p99 us",
              "q p99", "svc p99", "slo %"});
    printLane(ot, "interactive", oi);
    printLane(ot, "bulk", ob);
    ot.addNote("bulk sheds with typed ResourceExhausted (never blocks); "
               "interactive evicts bulk when the queue is full");
    ot.print();

    const bool overload_pass =
        bulk_shed > 0 && bulk_other == 0 && interactive_failed == 0 &&
        oi.shed() == 0 && oi.p99_latency_us <= kInteractiveDeadlineUs &&
        oi.sloAttainment() == 1.0;
    std::printf("\noverload: %d/%d bulk shed (typed), interactive p99 "
                "%.0f us vs %lld us SLO, interactive shed %llu\n",
                bulk_shed, kFlood, oi.p99_latency_us,
                static_cast<long long>(kInteractiveDeadlineUs),
                static_cast<unsigned long long>(oi.shed()));

    // ---- Phase 3: mid-run hot-swap, zero drain -------------------------
    // Fixed input so every response is checkable bit-exactly against the
    // version the request was pinned to. Requests submitted before the
    // publish MUST serve v1 (their snapshot is pinned at submission);
    // requests after MUST serve v2.
    const int kSwapBefore = 256 / scale;
    const int kSwapAfter = 256 / scale;
    const Tensor ref_v1 = interactive.forwardBatch(irow);
    const Tensor ref_v2 = interactive_v2.forwardBatch(irow);
    if (ref_v1.equals(ref_v2))
        fatal("hot-swap versions are indistinguishable; bump a seed");

    auto swap_door = makeDoor(interactive, bulk, 1024);
    int swap_failures = 0, swap_mismatches = 0;
    int served_v1 = 0, served_v2 = 0;
    uint64_t swapped_version = 0;
    {
        std::vector<std::future<api::Result<Tensor>>> before, after;
        for (int i = 0; i < kSwapBefore; ++i)
            before.push_back(swap_door->submitAsync(
                "interactive", irow, {{}, {}, "web"}));
        serve::ModelSlo islo;
        islo.priority = 10;
        islo.max_batch = 32;
        islo.batch_window_us = 100;
        islo.default_deadline_us = kInteractiveDeadlineUs;
        auto v2 = swap_door->publish("interactive", interactive_v2, islo);
        if (!v2.ok())
            fatal("hot-swap publish: ", v2.status().toString());
        swapped_version = *v2;
        for (int i = 0; i < kSwapAfter; ++i)
            after.push_back(swap_door->submitAsync(
                "interactive", irow, {{}, {}, "web"}));

        for (auto &future : before) {
            auto result = future.get();
            if (!result.ok())
                swap_failures++;
            else if (result->equals(ref_v1))
                served_v1++;
            else
                swap_mismatches++;
        }
        for (auto &future : after) {
            auto result = future.get();
            if (!result.ok())
                swap_failures++;
            else if (result->equals(ref_v2))
                served_v2++;
            else
                swap_mismatches++;
        }
        swap_door->shutdown();
    }
    const serve::FrontDoorStats swap = swap_door->stats();

    const bool swap_pass = swap_failures == 0 && swap_mismatches == 0 &&
                           served_v1 == kSwapBefore &&
                           served_v2 == kSwapAfter &&
                           swapped_version == 2 &&
                           swap.last_version.at("interactive") == 2;
    std::printf("\nhot-swap: %d pre-swap requests served by v1, %d "
                "post-swap by v2, %d failures, %d mismatches (zero "
                "drain)\n",
                served_v1, served_v2, swap_failures, swap_mismatches);

    if (json_path) {
        std::FILE *f = std::fopen(json_path, "w");
        if (!f)
            fatal("cannot open ", json_path, " for writing");
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"serve_multitenant\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"hardware_threads\": %u,\n",
                     std::thread::hardware_concurrency());
        std::fprintf(f, "  \"pool_threads\": 2,\n");
        std::fprintf(
            f,
            "  \"models\": [\n"
            "    {\"name\": \"interactive\", \"priority\": 10, "
            "\"deadline_us\": %lld, \"max_batch\": 32, "
            "\"table_bytes\": %lld},\n"
            "    {\"name\": \"bulk\", \"priority\": 0, "
            "\"deadline_us\": 0, \"max_batch\": 64, "
            "\"table_bytes\": %lld}\n  ],\n",
            static_cast<long long>(kInteractiveDeadlineUs),
            static_cast<long long>(interactive.tableBytes()),
            static_cast<long long>(bulk.tableBytes()));
        std::fprintf(f, "  \"steady\": {\n");
        jsonLane(f, "interactive", steady.models.at("interactive"), false);
        jsonLane(f, "bulk", steady.models.at("bulk"), true);
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"overload\": {\n");
        std::fprintf(f, "    \"flood_requests\": %d,\n", kFlood);
        std::fprintf(f, "    \"queue_capacity\": 64,\n");
        jsonLane(f, "interactive", oi, false);
        jsonLane(f, "bulk", ob, true);
        std::fprintf(f, "  },\n");
        std::fprintf(
            f,
            "  \"hotswap\": {\"pre_swap_requests\": %d, "
            "\"post_swap_requests\": %d, \"served_v1\": %d, "
            "\"served_v2\": %d, \"failures\": %d, \"mismatches\": %d, "
            "\"final_version\": %llu},\n",
            kSwapBefore, kSwapAfter, served_v1, served_v2, swap_failures,
            swap_mismatches,
            static_cast<unsigned long long>(swapped_version));
        std::fprintf(
            f,
            "  \"pass\": {\"steady\": %s, \"overload\": %s, "
            "\"hotswap\": %s}\n}\n",
            steady_pass ? "true" : "false",
            overload_pass ? "true" : "false",
            swap_pass ? "true" : "false");
        std::fclose(f);
        std::printf("\nwrote JSON results to %s\n", json_path);
    }

    const bool pass = steady_pass && overload_pass && swap_pass;
    if (!pass)
        std::printf("\nFAIL: steady=%d overload=%d hotswap=%d\n",
                    steady_pass, overload_pass, swap_pass);
    return pass ? 0 : 1;
}
